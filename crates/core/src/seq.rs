//! Sequential SM programs (Definition 3.2).
//!
//! A sequential program `(W, w0, p, β)` folds its inputs one at a time:
//! start in `w0`, apply `w := p(w, q_i)` per input, output `β(w)`. It
//! defines an SM function exactly when the final output is independent of
//! the input ordering — a semantic condition this module *decides* (see
//! [`SeqProgram::check_sm`]).

use crate::check::{coarsest_congruence, reachable};
use crate::multiset::Multiset;
use crate::{Id, SmError};

/// A sequential program `(W, w0, p, β)` over input alphabet `Q`
/// (Definition 3.2), with all components given as dense tables.
///
/// ```
/// use fssga_core::SeqProgram;
///
/// // Parity of 1-inputs over Q = {0, 1}.
/// let parity = SeqProgram::from_fn(2, 2, 2, 0, |w, q| w ^ q, |w| w).unwrap();
/// assert!(parity.is_sm()); // order-invariance is *decided*, not assumed
/// assert_eq!(parity.eval_seq(&[1, 0, 1, 1]), 1);
///
/// // "Last input" is not symmetric — and the checker says so.
/// let last = SeqProgram::from_fn(2, 3, 2, 2, |_, q| q, |w| w.min(1)).unwrap();
/// assert!(!last.is_sm());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqProgram {
    num_inputs: usize,
    num_working: usize,
    num_outputs: usize,
    w0: u32,
    /// `p[w * num_inputs + q]` = next working state.
    p: Vec<u32>,
    /// `beta[w]` = result id.
    beta: Vec<u32>,
}

impl SeqProgram {
    /// Builds a program from raw tables, validating all ranges.
    pub fn new(
        num_inputs: usize,
        num_working: usize,
        num_outputs: usize,
        w0: Id,
        p: Vec<u32>,
        beta: Vec<u32>,
    ) -> Result<Self, SmError> {
        if num_inputs == 0 || num_working == 0 || num_outputs == 0 {
            return Err(SmError::Malformed("empty alphabet not allowed".into()));
        }
        if w0 >= num_working {
            return Err(SmError::Malformed(format!("w0 = {w0} out of range")));
        }
        if p.len() != num_working * num_inputs {
            return Err(SmError::Malformed(format!(
                "p table has {} entries, expected {}",
                p.len(),
                num_working * num_inputs
            )));
        }
        if beta.len() != num_working {
            return Err(SmError::Malformed("beta table has wrong length".into()));
        }
        if let Some(&bad) = p.iter().find(|&&w| w as usize >= num_working) {
            return Err(SmError::Malformed(format!("p entry {bad} out of range")));
        }
        if let Some(&bad) = beta.iter().find(|&&r| r as usize >= num_outputs) {
            return Err(SmError::Malformed(format!("beta entry {bad} out of range")));
        }
        Ok(Self {
            num_inputs,
            num_working,
            num_outputs,
            w0: w0 as u32,
            p,
            beta,
        })
    }

    /// Convenience constructor from closures.
    pub fn from_fn(
        num_inputs: usize,
        num_working: usize,
        num_outputs: usize,
        w0: Id,
        mut p: impl FnMut(Id, Id) -> Id,
        mut beta: impl FnMut(Id) -> Id,
    ) -> Result<Self, SmError> {
        let mut ptab = Vec::with_capacity(num_working * num_inputs);
        for w in 0..num_working {
            for q in 0..num_inputs {
                ptab.push(p(w, q) as u32);
            }
        }
        let btab = (0..num_working).map(|w| beta(w) as u32).collect();
        Self::new(num_inputs, num_working, num_outputs, w0, ptab, btab)
    }

    /// `|Q|`.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// `|W|`.
    pub fn num_working(&self) -> usize {
        self.num_working
    }

    /// `|R|`.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The starting working state `w0`.
    pub fn w0(&self) -> Id {
        self.w0 as usize
    }

    /// One processing step `p(w, q)`.
    #[inline]
    pub fn step(&self, w: Id, q: Id) -> Id {
        debug_assert!(w < self.num_working && q < self.num_inputs);
        self.p[w * self.num_inputs + q] as usize
    }

    /// The output map `β(w)`.
    #[inline]
    pub fn output(&self, w: Id) -> Id {
        self.beta[w] as usize
    }

    /// Evaluates the program on an explicit input sequence (Equation (2)).
    /// Panics on the empty sequence: SM functions have domain `Q^+`.
    pub fn eval_seq(&self, inputs: &[Id]) -> Id {
        assert!(!inputs.is_empty(), "SM functions take at least one input");
        let mut w = self.w0 as usize;
        for &q in inputs {
            w = self.step(w, q);
        }
        self.output(w)
    }

    /// Applies `g_q : w -> p(w, q)` exactly `count` times, in
    /// `O(min(count, |W|))` using rho-shaped orbit reduction. This is the
    /// computational content of the "eventually periodic" observation in
    /// the proof of Lemma 3.9.
    pub fn apply_iterated(&self, w: Id, q: Id, count: u64) -> Id {
        let mut w = w;
        if count <= self.num_working as u64 {
            for _ in 0..count {
                w = self.step(w, q);
            }
            return w;
        }
        // Walk until a repeat; record the path to find tail + cycle.
        let mut seen: Vec<i64> = vec![-1; self.num_working];
        let mut path: Vec<Id> = Vec::new();
        let mut cur = w;
        loop {
            if seen[cur] >= 0 {
                let tail = seen[cur] as u64;
                let cycle = path.len() as u64 - tail;
                let idx = if count < tail {
                    count
                } else {
                    tail + (count - tail) % cycle
                };
                return path[idx as usize];
            }
            seen[cur] = path.len() as i64;
            path.push(cur);
            cur = self.step(cur, q);
        }
    }

    /// Evaluates on a multiset, processing states in canonical (ascending)
    /// order. For an SM program this equals the value on any ordering; for
    /// a non-SM program it is simply the canonical-order fold.
    pub fn eval_multiset(&self, ms: &Multiset) -> Id {
        assert!(!ms.is_empty(), "SM functions take at least one input");
        assert_eq!(ms.alphabet(), self.num_inputs, "alphabet mismatch");
        let mut w = self.w0 as usize;
        for q in 0..self.num_inputs {
            let c = ms.mu(q);
            if c > 0 {
                w = self.apply_iterated(w, q, c);
            }
        }
        self.output(w)
    }

    /// Per-input transition tables `g_q`, as columns of `p`. Public so
    /// external analyses (reachability, congruence-based audits in
    /// `fssga-analysis`) can reuse the table layout without re-deriving it.
    pub fn input_tables(&self) -> Vec<Vec<u32>> {
        (0..self.num_inputs)
            .map(|q| {
                (0..self.num_working)
                    .map(|w| self.p[w * self.num_inputs + q])
                    .collect()
            })
            .collect()
    }

    /// Working states reachable from `w0` by processing zero or more inputs.
    pub fn reachable_states(&self) -> Vec<bool> {
        let tables = self.input_tables();
        let refs: Vec<&[u32]> = tables.iter().map(|t| t.as_slice()).collect();
        reachable(self.num_working, &[self.w0 as usize], &refs)
    }

    /// Decides whether this program satisfies Definition 3.2 (the output is
    /// independent of input order), i.e. whether it defines a sequential SM
    /// function.
    ///
    /// Sound and complete: compute behavioural equivalence `≈` of working
    /// states (coarsest congruence refining β and respecting every `g_q`),
    /// then require `p(p(w,a),b) ≈ p(p(w,b),a)` for all reachable `w` and
    /// all input pairs. Adjacent transpositions generate all permutations,
    /// and `≈`-equivalent states yield equal outputs under every suffix, so
    /// the condition holds iff Equation (2) is permutation-invariant.
    pub fn check_sm(&self) -> Result<(), SmError> {
        let tables = self.input_tables();
        let refs: Vec<&[u32]> = tables.iter().map(|t| t.as_slice()).collect();
        let classes = coarsest_congruence(self.num_working, &self.beta, &refs);
        let reach = reachable(self.num_working, &[self.w0 as usize], &refs);
        for (w, _) in reach.iter().enumerate().filter(|&(_, &r)| r) {
            for a in 0..self.num_inputs {
                let wa = self.step(w, a);
                for b in (a + 1)..self.num_inputs {
                    let wb = self.step(w, b);
                    let wab = self.step(wa, b);
                    let wba = self.step(wb, a);
                    if classes[wab] != classes[wba] {
                        return Err(SmError::NotSymmetric(format!(
                            "at reachable working state {w}, inputs ({a},{b}) and ({b},{a}) \
                             lead to inequivalent states {wab} vs {wba}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Returns `true` iff [`Self::check_sm`] succeeds.
    pub fn is_sm(&self) -> bool {
        self.check_sm().is_ok()
    }

    /// Tail length `t_j` and period `m_j` of the orbit of `w0` under
    /// `g_j` (proof of Lemma 3.9): for all `z1, z2 >= t_j` with
    /// `z1 ≡ z2 (mod m_j)`, `g_j^(z1)(w0) = g_j^(z2)(w0)`.
    pub fn orbit_tail_period(&self, j: Id) -> (u64, u64) {
        let mut seen: Vec<i64> = vec![-1; self.num_working];
        let mut cur = self.w0 as usize;
        let mut step = 0i64;
        loop {
            if seen[cur] >= 0 {
                let tail = seen[cur] as u64;
                let period = step as u64 - tail;
                return (tail, period);
            }
            seen[cur] = step;
            cur = self.step(cur, j);
            step += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    /// OR over {0,1}: output 1 iff some input is 1.
    fn or_program() -> SeqProgram {
        SeqProgram::from_fn(2, 2, 2, 0, |w, q| w | q, |w| w).unwrap()
    }

    /// Parity over {0,1}: output = sum of inputs mod 2.
    fn parity_program() -> SeqProgram {
        SeqProgram::from_fn(2, 2, 2, 0, |w, q| w ^ q, |w| w).unwrap()
    }

    /// "Last input" — the canonical NON-symmetric program.
    fn last_input_program() -> SeqProgram {
        SeqProgram::from_fn(2, 3, 2, 2, |_, q| q, |w| if w == 2 { 0 } else { w }).unwrap()
    }

    #[test]
    fn or_evaluates() {
        let p = or_program();
        assert_eq!(p.eval_seq(&[0, 0, 0]), 0);
        assert_eq!(p.eval_seq(&[0, 1, 0]), 1);
        assert_eq!(p.eval_seq(&[1]), 1);
    }

    #[test]
    fn or_is_sm() {
        assert!(or_program().is_sm());
    }

    #[test]
    fn parity_is_sm() {
        assert!(parity_program().is_sm());
    }

    #[test]
    fn last_input_is_not_sm() {
        let p = last_input_program();
        assert_eq!(p.eval_seq(&[0, 1]), 1);
        assert_eq!(p.eval_seq(&[1, 0]), 0);
        let err = p.check_sm().unwrap_err();
        assert!(matches!(err, SmError::NotSymmetric(_)));
    }

    #[test]
    fn non_sm_on_unreachable_part_is_still_sm() {
        // p is order-sensitive only from working state 3, which is
        // unreachable from w0 = 0; the program is still SM.
        let p = SeqProgram::from_fn(
            2,
            4,
            2,
            0,
            |w, q| match (w, q) {
                (3, q) => q, // order-sensitive, but unreachable
                (w, q) => (w | q) & 1,
            },
            |w| w & 1,
        )
        .unwrap();
        assert!(p.is_sm());
    }

    #[test]
    fn eval_multiset_matches_eval_seq_for_sm() {
        let p = parity_program();
        let ms = Multiset::from_seq(2, &[1, 0, 1, 1]);
        assert_eq!(p.eval_multiset(&ms), p.eval_seq(&[1, 0, 1, 1]));
        assert_eq!(p.eval_multiset(&ms), 1);
    }

    #[test]
    fn apply_iterated_matches_naive() {
        let p = library::count_ones_mod_seq(3);
        for start in 0..p.num_working() {
            for count in 0..20u64 {
                let mut w = start;
                for _ in 0..count {
                    w = p.step(w, 1);
                }
                assert_eq!(p.apply_iterated(start, 1, count), w);
            }
        }
    }

    #[test]
    fn apply_iterated_huge_count() {
        // Parity: even huge counts reduce by the period.
        let p = parity_program();
        assert_eq!(p.apply_iterated(0, 1, 1_000_000_000_001), 1);
        assert_eq!(p.apply_iterated(0, 1, 1_000_000_000_000), 0);
    }

    #[test]
    fn orbit_tail_period_examples() {
        // OR on input 1: w0=0 -> 1 -> 1 -> ... tail 1, period 1.
        assert_eq!(or_program().orbit_tail_period(1), (1, 1));
        // OR on input 0: stays at 0 forever: tail 0, period 1.
        assert_eq!(or_program().orbit_tail_period(0), (0, 1));
        // Parity on input 1: 0 -> 1 -> 0: tail 0, period 2.
        assert_eq!(parity_program().orbit_tail_period(1), (0, 2));
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_input_rejected() {
        or_program().eval_seq(&[]);
    }

    #[test]
    fn malformed_tables_rejected() {
        assert!(matches!(
            SeqProgram::new(2, 2, 2, 5, vec![0, 0, 0, 0], vec![0, 0]),
            Err(SmError::Malformed(_))
        ));
        assert!(matches!(
            SeqProgram::new(2, 2, 2, 0, vec![0, 0, 0], vec![0, 0]),
            Err(SmError::Malformed(_))
        ));
        assert!(matches!(
            SeqProgram::new(2, 2, 2, 0, vec![0, 0, 0, 9], vec![0, 0]),
            Err(SmError::Malformed(_))
        ));
        assert!(matches!(
            SeqProgram::new(2, 2, 2, 0, vec![0, 0, 0, 0], vec![0, 7]),
            Err(SmError::Malformed(_))
        ));
    }

    #[test]
    fn exhaustive_permutation_invariance_spotcheck() {
        // Directly verify Definition 3.2 on all sequences of length <= 4
        // for a program check_sm accepts.
        let p = or_program();
        assert!(p.is_sm());
        for len in 1..=4usize {
            let total = 1usize << len;
            for bits in 0..total {
                let seq: Vec<Id> = (0..len).map(|i| (bits >> i) & 1).collect();
                let mut sorted = seq.clone();
                sorted.sort_unstable();
                assert_eq!(p.eval_seq(&seq), p.eval_seq(&sorted));
            }
        }
    }
}

impl SeqProgram {
    /// Returns the Moore-minimal equivalent program: unreachable working
    /// states are dropped and behaviourally-equivalent states merged.
    /// The result computes the same function with the fewest working
    /// states any sequential program with this transition structure can
    /// have — the natural inverse to the Theorem 3.7 conversions, whose
    /// constructions can blow the working set up.
    pub fn minimized(&self) -> SeqProgram {
        let tables = self.input_tables();
        let refs: Vec<&[u32]> = tables.iter().map(|t| t.as_slice()).collect();
        let reach = reachable(self.num_working, &[self.w0 as usize], &refs);
        // Quotient by behavioural equivalence, computed on the reachable
        // part only (unreachable states may not respect the congruence
        // and must not prevent merging).
        let reach_ids: Vec<usize> = (0..self.num_working).filter(|&w| reach[w]).collect();
        let old_to_dense: Vec<Option<usize>> = {
            let mut m = vec![None; self.num_working];
            for (d, &w) in reach_ids.iter().enumerate() {
                m[w] = Some(d);
            }
            m
        };
        // Dense transition tables over reachable states (closed under p).
        let dense_tabs: Vec<Vec<u32>> = (0..self.num_inputs)
            .map(|q| {
                reach_ids
                    .iter()
                    .map(|&w| old_to_dense[self.step(w, q)].expect("closed") as u32)
                    .collect()
            })
            .collect();
        let dense_beta: Vec<u32> = reach_ids.iter().map(|&w| self.beta[w]).collect();
        let dense_refs: Vec<&[u32]> = dense_tabs.iter().map(|t| t.as_slice()).collect();
        let classes = coarsest_congruence(reach_ids.len(), &dense_beta, &dense_refs);
        let num_classes = classes
            .iter()
            .copied()
            .max()
            .map(|c| c as usize + 1)
            .unwrap_or(0);
        // Representative per class.
        let mut rep = vec![usize::MAX; num_classes];
        for (d, &c) in classes.iter().enumerate() {
            if rep[c as usize] == usize::MAX {
                rep[c as usize] = d;
            }
        }
        let mut p = Vec::with_capacity(num_classes * self.num_inputs);
        let mut beta = Vec::with_capacity(num_classes);
        for &r in &rep {
            for q in 0..self.num_inputs {
                p.push(classes[dense_tabs[q][r] as usize]);
            }
            beta.push(dense_beta[r]);
        }
        let w0 = classes[old_to_dense[self.w0 as usize].expect("start reachable")] as usize;
        SeqProgram::new(self.num_inputs, num_classes, self.num_outputs, w0, p, beta)
            .expect("quotient is well-formed")
    }
}

#[cfg(test)]
mod minimize_tests {
    use super::*;
    use crate::convert::{mt_to_par, par_to_seq, seq_to_mt, DEFAULT_LIMIT};
    use crate::equiv::decide_equiv_seq;
    use crate::library;

    #[test]
    fn already_minimal_programs_stay_put() {
        for p in [
            library::or_seq(),
            library::parity_seq(),
            library::count_ones_mod_seq(5),
        ] {
            let m = p.minimized();
            assert_eq!(m.num_working(), p.num_working());
            assert_eq!(decide_equiv_seq(&p, &m, 1 << 20).unwrap(), None);
        }
    }

    #[test]
    fn conversion_blowup_shrinks_back() {
        // seq -> mt -> par -> seq inflates the working set; minimization
        // recovers (at most) the original size.
        for orig in [
            library::or_seq(),
            library::parity_seq(),
            library::max_state_seq(3),
            library::count_at_least_seq(2, 1, 3),
        ] {
            let mt = seq_to_mt(&orig, DEFAULT_LIMIT).unwrap();
            let par = mt_to_par(&mt, DEFAULT_LIMIT).unwrap();
            let big = par_to_seq(&par);
            assert!(big.num_working() > orig.num_working());
            let small = big.minimized();
            assert!(
                small.num_working() <= orig.num_working(),
                "minimized {} > original {}",
                small.num_working(),
                orig.num_working()
            );
            assert_eq!(decide_equiv_seq(&orig, &small, 1 << 22).unwrap(), None);
        }
    }

    #[test]
    fn unreachable_states_are_dropped() {
        // 5 working states, only 2 reachable (OR with junk states).
        let p = SeqProgram::from_fn(
            2,
            5,
            2,
            0,
            |w, q| if w < 2 { w | q } else { 4 },
            |w| usize::from(w == 1),
        )
        .unwrap();
        let m = p.minimized();
        assert_eq!(m.num_working(), 2);
        assert_eq!(decide_equiv_seq(&p, &m, 1 << 20).unwrap(), None);
    }

    #[test]
    fn minimization_is_idempotent() {
        let p = par_to_seq(
            &mt_to_par(
                &seq_to_mt(&library::all_equal_seq(3), DEFAULT_LIMIT).unwrap(),
                DEFAULT_LIMIT,
            )
            .unwrap(),
        );
        let once = p.minimized();
        let twice = once.minimized();
        assert_eq!(once.num_working(), twice.num_working());
    }

    #[test]
    fn minimized_program_preserves_sm_property() {
        let p = library::max_state_seq(4);
        let m = p.minimized();
        assert!(m.is_sm());
    }
}
