//! Finite multisets over the input alphabet `Q`.
//!
//! An SM function (Definition 3.1) is exactly a function of the
//! *multiplicity vector* `(μ_0(q⃗), ..., μ_{s-1}(q⃗))`, so this is the
//! canonical input representation throughout the crate.

use crate::Id;

/// A multiset over `Q = {0, .., s-1}`, stored as a multiplicity vector.
///
/// The paper's SM functions take inputs from `Q^+` (nonempty sequences);
/// an empty `Multiset` is constructible (it is useful as an accumulator)
/// but evaluators reject it.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Multiset {
    counts: Vec<u64>,
}

impl Multiset {
    /// The empty multiset over an alphabet of `s` states.
    pub fn empty(s: usize) -> Self {
        Self { counts: vec![0; s] }
    }

    /// Builds from an explicit multiplicity vector.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Self { counts }
    }

    /// Builds from a sequence of elements; `s` is the alphabet size.
    /// Panics if an element is out of range — inputs are states of a finite
    /// automaton and an out-of-range one is a caller bug.
    pub fn from_seq(s: usize, elems: &[Id]) -> Self {
        let mut counts = vec![0u64; s];
        for &e in elems {
            assert!(e < s, "element {e} out of range for alphabet size {s}");
            counts[e] += 1;
        }
        Self { counts }
    }

    /// Alphabet size `s = |Q|`.
    pub fn alphabet(&self) -> usize {
        self.counts.len()
    }

    /// Multiplicity `μ_i`.
    #[inline]
    pub fn mu(&self, i: Id) -> u64 {
        self.counts[i]
    }

    /// The raw multiplicity vector.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of elements `|q⃗|`.
    pub fn len(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether the multiset is empty (not a valid SM input).
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Adds one occurrence of `e`.
    pub fn push(&mut self, e: Id) {
        self.counts[e] += 1;
    }

    /// Resets the multiplicity of `e` to zero. Buffer-reuse fast path for
    /// interpreters that keep one accumulator alive and clear only the
    /// indices they touched, instead of reallocating per activation.
    #[inline]
    pub fn zero(&mut self, e: Id) {
        self.counts[e] = 0;
    }

    /// Iterates the elements in canonical (sorted) order, expanding
    /// multiplicities. Intended for small multisets (tests, conversions).
    pub fn iter_elems(&self) -> impl Iterator<Item = Id> + '_ {
        self.counts
            .iter()
            .enumerate()
            .flat_map(|(i, &c)| std::iter::repeat_n(i, c as usize))
    }

    /// Enumerates every *nonempty* multiset over `s` states with total
    /// multiplicity at most `max_total`. Used by exhaustive equivalence
    /// checks; the count is `C(max_total + s, s) - 1`, so keep the
    /// parameters small.
    pub fn enumerate_up_to(s: usize, max_total: u64) -> Vec<Multiset> {
        let mut out = Vec::new();
        let mut current = vec![0u64; s];
        fn rec(
            s: usize,
            i: usize,
            remaining: u64,
            current: &mut Vec<u64>,
            out: &mut Vec<Multiset>,
        ) {
            if i == s {
                out.push(Multiset::from_counts(current.clone()));
                return;
            }
            for c in 0..=remaining {
                current[i] = c;
                rec(s, i + 1, remaining - c, current, out);
            }
            current[i] = 0;
        }
        rec(s, 0, max_total, &mut current, &mut out);
        out.retain(|ms| !ms.is_empty());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seq_counts_correctly() {
        let ms = Multiset::from_seq(3, &[0, 2, 2, 0, 0]);
        assert_eq!(ms.counts(), &[3, 0, 2]);
        assert_eq!(ms.len(), 5);
        assert_eq!(ms.mu(2), 2);
        assert!(!ms.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_seq_rejects_out_of_range() {
        Multiset::from_seq(2, &[0, 5]);
    }

    #[test]
    fn empty_is_empty() {
        let ms = Multiset::empty(4);
        assert!(ms.is_empty());
        assert_eq!(ms.len(), 0);
    }

    #[test]
    fn push_accumulates() {
        let mut ms = Multiset::empty(2);
        ms.push(1);
        ms.push(1);
        ms.push(0);
        assert_eq!(ms.counts(), &[1, 2]);
    }

    #[test]
    fn iter_elems_canonical_order() {
        let ms = Multiset::from_counts(vec![2, 0, 1]);
        let elems: Vec<_> = ms.iter_elems().collect();
        assert_eq!(elems, vec![0, 0, 2]);
    }

    #[test]
    fn enumerate_counts_match_stars_and_bars() {
        // Nonempty multisets over 2 states with total <= 3:
        // C(3+2,2) - 1 = 10 - 1 = 9.
        let all = Multiset::enumerate_up_to(2, 3);
        assert_eq!(all.len(), 9);
        assert!(all.iter().all(|ms| !ms.is_empty() && ms.len() <= 3));
        // All distinct.
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn enumerate_single_state() {
        let all = Multiset::enumerate_up_to(1, 5);
        assert_eq!(all.len(), 5);
    }
}
