//! Extensional equivalence of SM programs.
//!
//! Two programs are equivalent when they agree on every nonempty multiset.
//! For arbitrary evaluators we offer exhaustive checking up to a total
//! multiplicity bound; for pairs of *sequential* SM programs we offer a
//! sound-and-complete decision procedure, built on the Lemma 3.9
//! observation that each program reads `μ_j` only through a
//! tail-`t`/period-`m` class — so checking one representative per joint
//! class suffices.

use crate::fssga::FsmProgram;
use crate::modthresh::{lcm, ModThreshProgram};
use crate::multiset::Multiset;
use crate::par::ParProgram;
use crate::seq::SeqProgram;
use crate::{Id, SmError};

/// Anything that evaluates an SM function on a multiset.
pub trait SmEval {
    /// Alphabet size `|Q|`.
    fn num_inputs(&self) -> usize;
    /// Result-set size `|R|`.
    fn num_outputs(&self) -> usize;
    /// The function value on a nonempty multiset.
    fn eval_ms(&self, ms: &Multiset) -> Id;
}

impl SmEval for SeqProgram {
    fn num_inputs(&self) -> usize {
        SeqProgram::num_inputs(self)
    }
    fn num_outputs(&self) -> usize {
        SeqProgram::num_outputs(self)
    }
    fn eval_ms(&self, ms: &Multiset) -> Id {
        self.eval_multiset(ms)
    }
}

impl SmEval for ParProgram {
    fn num_inputs(&self) -> usize {
        ParProgram::num_inputs(self)
    }
    fn num_outputs(&self) -> usize {
        ParProgram::num_outputs(self)
    }
    fn eval_ms(&self, ms: &Multiset) -> Id {
        self.eval_multiset(ms)
    }
}

impl SmEval for ModThreshProgram {
    fn num_inputs(&self) -> usize {
        ModThreshProgram::num_inputs(self)
    }
    fn num_outputs(&self) -> usize {
        ModThreshProgram::num_outputs(self)
    }
    fn eval_ms(&self, ms: &Multiset) -> Id {
        self.eval_multiset(ms)
    }
}

impl SmEval for FsmProgram {
    fn num_inputs(&self) -> usize {
        FsmProgram::num_inputs(self)
    }
    fn num_outputs(&self) -> usize {
        FsmProgram::num_outputs(self)
    }
    fn eval_ms(&self, ms: &Multiset) -> Id {
        self.eval_multiset(ms)
    }
}

/// Exhaustively compares two evaluators on every nonempty multiset of
/// total multiplicity at most `max_total`. Returns the first
/// counterexample, if any. Sound but (on its own) not complete.
pub fn first_disagreement(a: &dyn SmEval, b: &dyn SmEval, max_total: u64) -> Option<Multiset> {
    assert_eq!(a.num_inputs(), b.num_inputs(), "alphabet mismatch");
    Multiset::enumerate_up_to(a.num_inputs(), max_total)
        .into_iter()
        .find(|ms| a.eval_ms(ms) != b.eval_ms(ms))
}

/// Sound-and-complete equivalence for two *sequential SM* programs.
///
/// For each input state `j`, program A reads `μ_j` through classes with
/// tail `tA` / period `mA`, and likewise B; the joint behaviour of the
/// pair on `μ_j` is determined by its class with tail `max(tA, tB)` and
/// period `lcm(mA, mB)`. Checking all count vectors with
/// `μ_j < max(tA,tB) + lcm(mA,mB)` therefore covers one representative of
/// every joint class (with room to spare). Errors if either program is
/// not SM, or if the number of representative vectors exceeds `limit`.
pub fn decide_equiv_seq(
    a: &SeqProgram,
    b: &SeqProgram,
    limit: u128,
) -> Result<Option<Multiset>, SmError> {
    if a.num_inputs() != b.num_inputs() {
        return Err(SmError::Malformed("alphabet mismatch".into()));
    }
    a.check_sm()?;
    b.check_sm()?;
    let s = a.num_inputs();
    let bounds: Vec<u64> = (0..s)
        .map(|j| {
            let (ta, ma) = a.orbit_tail_period(j);
            let (tb, mb) = b.orbit_tail_period(j);
            ta.max(tb) + lcm(ma, mb)
        })
        .collect();
    let total: u128 = bounds.iter().map(|&b| b as u128 + 1).product();
    if total > limit {
        return Err(SmError::TooLarge {
            needed: total,
            limit,
        });
    }
    // Enumerate all vectors with mu_j in 0..=bounds[j].
    let mut counts = vec![0u64; s];
    loop {
        if counts.iter().any(|&c| c > 0) {
            let ms = Multiset::from_counts(counts.clone());
            if a.eval_multiset(&ms) != b.eval_multiset(&ms) {
                return Ok(Some(ms));
            }
        }
        let mut j = 0;
        loop {
            if j == s {
                return Ok(None);
            }
            counts[j] += 1;
            if counts[j] <= bounds[j] {
                break;
            }
            counts[j] = 0;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert;
    use crate::library;

    #[test]
    fn identical_programs_agree() {
        let a = library::parity_seq();
        let b = library::parity_seq();
        assert!(first_disagreement(&a, &b, 8).is_none());
        assert_eq!(decide_equiv_seq(&a, &b, 1 << 20).unwrap(), None);
    }

    #[test]
    fn or_vs_and_disagree() {
        let a = library::or_seq();
        let b = library::and_seq();
        let ce = first_disagreement(&a, &b, 4).expect("OR != AND");
        assert_ne!(a.eval_multiset(&ce), b.eval_multiset(&ce));
        assert!(decide_equiv_seq(&a, &b, 1 << 20).unwrap().is_some());
    }

    #[test]
    fn decision_procedure_catches_large_period_difference() {
        // mod 2 vs mod 4 counters agree on counts 0,1 and first differ at
        // a 1-count of 2 (2 mod 2 = 0 as output 0 vs 2 mod 4 = 2)... but
        // with unequal output ranges we compare raw ids — they first
        // differ at count 2.
        let a = library::count_ones_mod_seq(2);
        let b = library::count_ones_mod_seq(4);
        let ce = decide_equiv_seq(&a, &b, 1 << 20).unwrap();
        assert!(ce.is_some());
        // These agree on every multiset with at most one 1-input — the
        // exhaustive check needs depth >= 2 to see it.
        assert!(first_disagreement(&a, &b, 1).is_none());
        assert!(first_disagreement(&a, &b, 2).is_some());
    }

    #[test]
    fn mod6_vs_mod2_and_mod3_composite() {
        // (n mod 6 == 0) equals (n mod 2 == 0 && n mod 3 == 0): build both
        // as seq programs and decide equivalence.
        let a =
            SeqProgram::from_fn(2, 6, 2, 0, |w, q| (w + q) % 6, |w| usize::from(w == 0)).unwrap();
        let b = SeqProgram::from_fn(
            2,
            6,
            2,
            0,
            |w, q| {
                let (w2, w3) = (w % 2, w / 2);
                let w2 = (w2 + q) % 2;
                let w3 = (w3 + q) % 3;
                w3 * 2 + w2
            },
            |w| usize::from(w == 0),
        )
        .unwrap();
        assert_eq!(decide_equiv_seq(&a, &b, 1 << 20).unwrap(), None);
    }

    #[test]
    fn converted_programs_are_equivalent_decidedly() {
        for seq in [
            library::or_seq(),
            library::parity_seq(),
            library::count_ones_mod_seq(3),
            library::max_state_seq(3),
        ] {
            let mt = convert::seq_to_mt(&seq, convert::DEFAULT_LIMIT).unwrap();
            let par = convert::mt_to_par(&mt, convert::DEFAULT_LIMIT).unwrap();
            let back = convert::par_to_seq(&par);
            assert_eq!(
                decide_equiv_seq(&seq, &back, 1 << 24).unwrap(),
                None,
                "round trip changed the function"
            );
        }
    }

    #[test]
    fn limit_guard() {
        let a = library::count_ones_mod_seq(64);
        let b = library::count_ones_mod_seq(63);
        assert!(matches!(
            decide_equiv_seq(&a, &b, 16),
            Err(SmError::TooLarge { .. })
        ));
    }

    #[test]
    fn non_sm_input_rejected() {
        let bad =
            SeqProgram::from_fn(2, 3, 2, 2, |_, q| q, |w| if w == 2 { 0 } else { w }).unwrap();
        let good = library::or_seq();
        assert!(matches!(
            decide_equiv_seq(&bad, &good, 1 << 20),
            Err(SmError::NotSymmetric(_))
        ));
    }
}
