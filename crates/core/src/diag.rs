//! Diagnostics: the common currency of every static analysis
//! (`fssga-analysis`) and semantic check (`fssga-verify`) in the
//! workspace.
//!
//! Each analysis produces [`Diagnostic`]s tagged with the subject program
//! or protocol, a severity, and — whenever the finding is semantic — a
//! concrete witness the reader can replay by hand. A [`Report`] collects
//! them and decides the lint exit status.

use std::fmt;

/// How bad a finding is.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a fact worth surfacing (e.g. a collapsible clause).
    Note,
    /// Suspicious but not wrong (e.g. an unreachable working state).
    Warning,
    /// A genuine defect: the program violates its definition or its
    /// declared bounds. Errors make `fssga-lint` exit non-zero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single analysis finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which analysis produced this (e.g. `"dead-code"`, `"sm-audit"`).
    pub analysis: &'static str,
    /// The program or protocol under analysis (e.g. `"library::or_seq"`).
    pub subject: String,
    /// Severity of the finding.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// A concrete witness (multiset, input sequence, or shadowing proof),
    /// when the analysis can produce one.
    pub witness: Option<String>,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(
        analysis: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            analysis,
            subject: subject.into(),
            severity: Severity::Error,
            message: message.into(),
            witness: None,
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(
        analysis: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            analysis,
            subject: subject.into(),
            severity: Severity::Warning,
            message: message.into(),
            witness: None,
        }
    }

    /// Builds a note diagnostic.
    pub fn note(
        analysis: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            analysis,
            subject: subject.into(),
            severity: Severity::Note,
            message: message.into(),
            witness: None,
        }
    }

    /// Attaches a witness.
    pub fn with_witness(mut self, witness: impl Into<String>) -> Self {
        self.witness = Some(witness.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.analysis, self.subject, self.message
        )?;
        if let Some(w) = &self.witness {
            write!(f, "\n    witness: {w}")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics from one or more analyses.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// The findings, in analysis order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends another report's findings.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True when no finding is an error (warnings and notes allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} finding(s) total",
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_counts() {
        let mut r = Report::new();
        assert!(r.is_clean());
        r.push(Diagnostic::note("x", "s", "n"));
        r.push(Diagnostic::warning("x", "s", "w"));
        assert!(r.is_clean());
        r.push(Diagnostic::error("x", "s", "e").with_witness("[1, 2]"));
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        let text = r.to_string();
        assert!(text.contains("witness: [1, 2]"), "{text}");
        assert!(text.contains("1 error(s)"), "{text}");
    }
}
