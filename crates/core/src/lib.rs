//! The formal heart of the reproduction: Section 3 of Pritchard & Vempala,
//! *Symmetric Network Computation* (SPAA 2006).
//!
//! A **symmetric multi-input (SM) function** (Definition 3.1) maps finite
//! nonempty multisets over a finite alphabet `Q` to a finite result set `R`.
//! The paper gives three machine models for computing SM functions with
//! finite working memory and proves them equivalent (Theorem 3.7):
//!
//! * [`seq::SeqProgram`] — a *sequential* automaton `(W, w0, p, β)` folding
//!   the inputs one at a time (Definition 3.2);
//! * [`par::ParProgram`] — a *parallel* automaton `(W, α, p, β)` reducing
//!   the inputs pairwise over an arbitrary binary tree (Definition 3.4);
//! * [`modthresh::ModThreshProgram`] — a decision list over *mod* atoms
//!   `μ_i(q⃗) ≡ r (mod m)` and *thresh* atoms `μ_i(q⃗) < t`
//!   (Definition 3.6).
//!
//! The three constructive inclusions are implemented in [`convert`]:
//! Lemma 3.5 (`par_to_seq`), Lemma 3.8 (`mt_to_par`) and Lemma 3.9
//! (`seq_to_mt`); composing them yields all six conversions.
//!
//! Beyond the paper's statements, this crate makes the definitions
//! *executable*: [`check`] contains sound-and-complete decision procedures
//! for the symmetry conditions of Definitions 3.2 and 3.4 (via coarsest-
//! congruence computation on the working-state automaton), and [`equiv`]
//! decides extensional equality of programs.
//!
//! Finally, [`fssga`] packages SM functions into the paper's distributed
//! model (Definitions 3.10 and 3.11): a **finite-state symmetric graph
//! automaton** assigns to each own-state `q` an SM function `f[q]` applied
//! to the multiset of neighbour states.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod convert;
pub mod diag;
pub mod equiv;
pub mod fssga;
pub mod library;
pub mod modfree;
pub mod modthresh;
pub mod multiset;
pub mod par;
pub mod semilattice;
pub mod seq;
pub mod tape;
pub mod tree;

pub use fssga::{FsmProgram, Fssga, ProbFssga};
pub use modthresh::{Atom, ModThreshProgram, Prop};
pub use multiset::Multiset;
pub use par::ParProgram;
pub use seq::SeqProgram;
pub use tree::CombTree;

/// Identifier of an input state (an element of `Q = {0, .., |Q|-1}`), a
/// working state (`W`), or a result (`R`). Program tables store these as
/// `u32` internally to keep the (possibly conversion-blown-up) tables
/// compact; the public API uses `usize`.
pub type Id = usize;

/// Errors produced by conversions and decision procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmError {
    /// The program violates the symmetry condition of its definition, so
    /// the requested operation (e.g. Lemma 3.9) is not defined for it.
    NotSymmetric(String),
    /// A constructed table would exceed the configured size budget. The
    /// paper notes the conversions "can entail an exponential increase in
    /// program complexity"; we surface that instead of thrashing memory.
    TooLarge {
        /// Table entries (or clauses) the construction would need.
        needed: u128,
        /// The caller's budget.
        limit: u128,
    },
    /// Structurally ill-formed program (table sizes inconsistent, ids out
    /// of range, modulus zero, ...).
    Malformed(String),
}

impl std::fmt::Display for SmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmError::NotSymmetric(why) => write!(f, "program is not an SM function: {why}"),
            SmError::TooLarge { needed, limit } => {
                write!(
                    f,
                    "construction needs {needed} table entries, limit is {limit}"
                )
            }
            SmError::Malformed(why) => write!(f, "malformed program: {why}"),
        }
    }
}

impl std::error::Error for SmError {}
