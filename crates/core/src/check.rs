//! Coarsest-congruence computation (Moore-style partition refinement).
//!
//! Both symmetry decision procedures (Definitions 3.2 and 3.4) reduce to
//! the same question about a finite deterministic transition system: *which
//! working states are behaviourally equivalent* — indistinguishable by any
//! sequence of further transitions followed by the output map β?
//!
//! Given `n` states, an initial classification `init` (here: β), and a set
//! of unary transition functions (here: "process input q" for each q, or
//! "combine with reachable value u on the left/right"), the coarsest
//! congruence is the limit of signature refinement: two states stay
//! together while they have equal class and all their successors have equal
//! classes. This is precisely DFA minimisation's state-equivalence, and it
//! is what makes the swap test `p(p(w,a),b) ≈ p(p(w,b),a)` *complete*: an
//! inequivalent pair is, by definition, separated by some suffix, which
//! would be a witness sequence violating Definition 3.2.

use std::collections::HashMap;

/// Computes the coarsest equivalence `~` on `0..n` such that
///
/// * `x ~ y` implies `init[x] == init[y]`, and
/// * `x ~ y` implies `f(x) ~ f(y)` for every `f` in `fns`
///   (each `f` given as a full table of length `n`).
///
/// Returns the class index of each state, with classes numbered
/// consecutively from 0 in first-occurrence order (so the result is
/// canonical).
pub fn coarsest_congruence(n: usize, init: &[u32], fns: &[&[u32]]) -> Vec<u32> {
    assert_eq!(init.len(), n);
    for f in fns {
        assert_eq!(f.len(), n, "transition table has wrong length");
    }
    let mut class: Vec<u32> = canonicalize(init);
    loop {
        // Signature of x: (class[x], class[f1(x)], ..., class[fk(x)]).
        let mut sig_to_class: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut next = vec![0u32; n];
        for x in 0..n {
            let mut sig = Vec::with_capacity(fns.len() + 1);
            sig.push(class[x]);
            for f in fns {
                sig.push(class[f[x] as usize]);
            }
            let fresh = sig_to_class.len() as u32;
            next[x] = *sig_to_class.entry(sig).or_insert(fresh);
        }
        if next == class {
            return class;
        }
        class = next;
    }
}

/// Renumbers an arbitrary labelling into consecutive class ids in
/// first-occurrence order.
fn canonicalize(labels: &[u32]) -> Vec<u32> {
    let mut map: HashMap<u32, u32> = HashMap::new();
    labels
        .iter()
        .map(|&l| {
            let fresh = map.len() as u32;
            *map.entry(l).or_insert(fresh)
        })
        .collect()
}

/// Forward reachability closure: all states reachable from `starts` by the
/// given transition tables. Returns a membership mask.
pub fn reachable(n: usize, starts: &[usize], fns: &[&[u32]]) -> Vec<bool> {
    let mut seen = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    for &s in starts {
        if !seen[s] {
            seen[s] = true;
            stack.push(s);
        }
    }
    while let Some(x) = stack.pop() {
        for f in fns {
            let y = f[x] as usize;
            if !seen[y] {
                seen[y] = true;
                stack.push(y);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_distinct_outputs_stay_distinct() {
        // No transitions; classes are exactly the init classes.
        let classes = coarsest_congruence(3, &[7, 9, 7], &[]);
        assert_eq!(classes, vec![0, 1, 0]);
    }

    #[test]
    fn behavioural_merge() {
        // States 0 and 1 both output 0 and both map to state 2 under f:
        // they are equivalent. State 2 outputs 1.
        let f = [2u32, 2, 2];
        let classes = coarsest_congruence(3, &[0, 0, 1], &[&f]);
        assert_eq!(classes[0], classes[1]);
        assert_ne!(classes[0], classes[2]);
    }

    #[test]
    fn successor_distinguishes() {
        // 0 and 1 share outputs, but f sends 0 to an accepting state and 1
        // to a rejecting one, so they must be split.
        let f = [2u32, 3, 2, 3];
        let classes = coarsest_congruence(4, &[0, 0, 1, 2], &[&f]);
        assert_ne!(classes[0], classes[1]);
    }

    #[test]
    fn two_step_distinction_parity_automaton() {
        // Mod-3 counter with output = (state == 0). States 1 and 2 output
        // the same and step to 2 and 0: distinguished only through the
        // *class* of their successors (iteration to fixpoint).
        let f = [1u32, 2, 0];
        let out = [1u32, 0, 0];
        let classes = coarsest_congruence(3, &out, &[&f]);
        // All three states are pairwise inequivalent.
        assert_ne!(classes[0], classes[1]);
        assert_ne!(classes[1], classes[2]);
        assert_ne!(classes[0], classes[2]);
    }

    #[test]
    fn merge_with_two_functions() {
        // Two unary functions; equivalence requires agreement under both.
        let f = [1u32, 0, 3, 2];
        let g = [2u32, 3, 0, 1];
        let out = [0u32, 0, 0, 0];
        let classes = coarsest_congruence(4, &out, &[&f, &g]);
        // Identical outputs, structure-preserving maps: everything merges.
        assert!(classes.iter().all(|&c| c == classes[0]));
    }

    #[test]
    fn reachable_closure() {
        let f = [1u32, 2, 2, 4, 3];
        let seen = reachable(5, &[0], &[&f]);
        assert_eq!(seen, vec![true, true, true, false, false]);
    }

    #[test]
    fn reachable_multiple_starts_and_fns() {
        let f = [1u32, 1, 3, 3];
        let g = [0u32, 2, 2, 0];
        let seen = reachable(4, &[0], &[&f, &g]);
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn canonical_class_numbering() {
        let classes = coarsest_congruence(4, &[5, 3, 5, 9], &[]);
        assert_eq!(classes, vec![0, 1, 0, 2]);
    }
}
