//! Finite-state symmetric graph automata (Definitions 3.10 and 3.11).
//!
//! An FSSGA `(Q, f)` places a copy of the same automaton at every node of
//! a connected graph: when a node in state `q` activates, its new state is
//! `f[q]` applied to the multiset of its neighbours' states. The node thus
//! acts *symmetrically on its neighbours but asymmetrically on itself*.
//! The probabilistic variant `(Q, r, f)` lets each activation draw a coin
//! `i ∈ {0..r-1}` uniformly and use `f[q, i]`.
//!
//! This module holds the model-level definitions; actually *running* an
//! FSSGA over a graph (schedulers, faults, instrumentation) lives in the
//! `fssga-engine` crate.

use crate::modthresh::ModThreshProgram;
use crate::multiset::Multiset;
use crate::par::ParProgram;
use crate::seq::SeqProgram;
use crate::{Id, SmError};

/// An FSM function in any of the three equivalent presentations of
/// Theorem 3.7.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsmProgram {
    /// A sequential program (Definition 3.2).
    Seq(SeqProgram),
    /// A parallel program (Definition 3.4).
    Par(ParProgram),
    /// A mod-thresh program (Definition 3.6).
    ModThresh(ModThreshProgram),
}

impl FsmProgram {
    /// `|Q|`.
    pub fn num_inputs(&self) -> usize {
        match self {
            FsmProgram::Seq(p) => p.num_inputs(),
            FsmProgram::Par(p) => p.num_inputs(),
            FsmProgram::ModThresh(p) => p.num_inputs(),
        }
    }

    /// `|R|`.
    pub fn num_outputs(&self) -> usize {
        match self {
            FsmProgram::Seq(p) => p.num_outputs(),
            FsmProgram::Par(p) => p.num_outputs(),
            FsmProgram::ModThresh(p) => p.num_outputs(),
        }
    }

    /// Evaluates on a nonempty multiset.
    pub fn eval_multiset(&self, ms: &Multiset) -> Id {
        match self {
            FsmProgram::Seq(p) => p.eval_multiset(ms),
            FsmProgram::Par(p) => p.eval_multiset(ms),
            FsmProgram::ModThresh(p) => p.eval_multiset(ms),
        }
    }

    /// Checks that the program really is an SM function (mod-thresh
    /// programs are symmetric by construction; sequential and parallel
    /// programs are checked with the Section 3 decision procedures).
    pub fn check_sm(&self) -> Result<(), SmError> {
        match self {
            FsmProgram::Seq(p) => p.check_sm(),
            FsmProgram::Par(p) => p.check_sm(),
            FsmProgram::ModThresh(_) => Ok(()),
        }
    }
}

/// A deterministic FSSGA `(Q, f)` (Definition 3.10): for each own-state
/// `q ∈ Q`, an FSM function `f[q] : Q^+ -> Q`.
#[derive(Clone, Debug)]
pub struct Fssga {
    num_states: usize,
    f: Vec<FsmProgram>,
}

impl Fssga {
    /// Builds an automaton, checking that there is one program per state
    /// and that every program maps `Q^+` to `Q`.
    pub fn new(num_states: usize, f: Vec<FsmProgram>) -> Result<Self, SmError> {
        if num_states == 0 {
            return Err(SmError::Malformed("at least one state required".into()));
        }
        if f.len() != num_states {
            return Err(SmError::Malformed(format!(
                "need {} programs, got {}",
                num_states,
                f.len()
            )));
        }
        for (q, prog) in f.iter().enumerate() {
            if prog.num_inputs() != num_states || prog.num_outputs() != num_states {
                return Err(SmError::Malformed(format!(
                    "program for state {q} has signature {} -> {}, expected {num_states} -> {num_states}",
                    prog.num_inputs(),
                    prog.num_outputs()
                )));
            }
        }
        Ok(Self { num_states, f })
    }

    /// `|Q|`.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The FSM function used by a node whose current state is `q`.
    pub fn program(&self, q: Id) -> &FsmProgram {
        &self.f[q]
    }

    /// The new state of an activating node: own state `q`, neighbour
    /// multiset `nbrs`.
    pub fn transition(&self, q: Id, nbrs: &Multiset) -> Id {
        self.f[q].eval_multiset(nbrs)
    }

    /// Verifies every per-state program satisfies its SM condition.
    pub fn check_sm(&self) -> Result<(), SmError> {
        for (q, prog) in self.f.iter().enumerate() {
            prog.check_sm()
                .map_err(|e| SmError::NotSymmetric(format!("program for state {q}: {e}")))?;
        }
        Ok(())
    }
}

/// A probabilistic FSSGA `(Q, r, f)` (Definition 3.11): for each state `q`
/// and coin value `i ∈ {0..r-1}`, an FSM function `f[q, i]`.
#[derive(Clone, Debug)]
pub struct ProbFssga {
    num_states: usize,
    r: usize,
    /// Row-major: `f[q * r + i]`.
    f: Vec<FsmProgram>,
}

impl ProbFssga {
    /// Builds a probabilistic automaton; `f` is indexed `[q * r + i]`.
    pub fn new(num_states: usize, r: usize, f: Vec<FsmProgram>) -> Result<Self, SmError> {
        if num_states == 0 || r == 0 {
            return Err(SmError::Malformed("need |Q| >= 1 and r >= 1".into()));
        }
        if f.len() != num_states * r {
            return Err(SmError::Malformed(format!(
                "need {} programs, got {}",
                num_states * r,
                f.len()
            )));
        }
        for (idx, prog) in f.iter().enumerate() {
            if prog.num_inputs() != num_states || prog.num_outputs() != num_states {
                return Err(SmError::Malformed(format!(
                    "program {idx} has wrong signature"
                )));
            }
        }
        Ok(Self { num_states, r, f })
    }

    /// Wraps a deterministic automaton as the trivial `r = 1` case.
    pub fn from_deterministic(auto: Fssga) -> Self {
        Self {
            num_states: auto.num_states,
            r: 1,
            f: auto.f,
        }
    }

    /// `|Q|`.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The amount of per-activation randomness `r`.
    pub fn randomness(&self) -> usize {
        self.r
    }

    /// The FSM function for own-state `q` and coin `i`.
    pub fn program(&self, q: Id, i: usize) -> &FsmProgram {
        &self.f[q * self.r + i]
    }

    /// The new state for own-state `q`, coin `i`, neighbours `nbrs`.
    pub fn transition(&self, q: Id, i: usize, nbrs: &Multiset) -> Id {
        assert!(i < self.r, "coin out of range");
        self.f[q * self.r + i].eval_multiset(nbrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::modthresh::Prop;

    /// A 2-state "infection" FSSGA: state 1 spreads to any node with an
    /// infected neighbour (iterated OR — the Flajolet-Martin core).
    fn infection() -> Fssga {
        let stay_infected = ModThreshProgram::new(2, 2, vec![(Prop::True, 1)], 1).unwrap();
        let catch = ModThreshProgram::new(2, 2, vec![(Prop::some(1), 1)], 0).unwrap();
        Fssga::new(
            2,
            vec![
                FsmProgram::ModThresh(catch),
                FsmProgram::ModThresh(stay_infected),
            ],
        )
        .unwrap()
    }

    #[test]
    fn transition_applies_per_state_program() {
        let auto = infection();
        let none = Multiset::from_seq(2, &[0, 0]);
        let some = Multiset::from_seq(2, &[0, 1]);
        assert_eq!(auto.transition(0, &none), 0);
        assert_eq!(auto.transition(0, &some), 1);
        assert_eq!(auto.transition(1, &none), 1, "infected stays infected");
    }

    #[test]
    fn fsm_program_dispatch() {
        let seq = FsmProgram::Seq(library::or_seq());
        let par = FsmProgram::Par(library::or_par());
        let ms = Multiset::from_seq(2, &[0, 1, 0]);
        assert_eq!(seq.eval_multiset(&ms), 1);
        assert_eq!(par.eval_multiset(&ms), 1);
        assert_eq!(seq.num_inputs(), 2);
        assert_eq!(par.num_outputs(), 2);
        assert!(seq.check_sm().is_ok());
        assert!(par.check_sm().is_ok());
    }

    #[test]
    fn signature_mismatch_rejected() {
        // A 3-input program can't serve a 2-state automaton.
        let p = FsmProgram::Seq(library::max_state_seq(3));
        assert!(Fssga::new(2, vec![p.clone(), p]).is_err());
    }

    #[test]
    fn wrong_count_rejected() {
        let p = FsmProgram::Seq(library::or_seq());
        assert!(Fssga::new(2, vec![p]).is_err());
        assert!(Fssga::new(0, vec![]).is_err());
    }

    #[test]
    fn check_sm_flags_bad_component() {
        let bad =
            SeqProgram::from_fn(2, 3, 2, 2, |_, q| q, |w| if w == 2 { 0 } else { w }).unwrap();
        let auto = Fssga::new(
            2,
            vec![FsmProgram::Seq(library::or_seq()), FsmProgram::Seq(bad)],
        )
        .unwrap();
        let err = auto.check_sm().unwrap_err();
        assert!(matches!(err, SmError::NotSymmetric(msg) if msg.contains("state 1")));
    }

    #[test]
    fn probabilistic_wrapper() {
        let auto = ProbFssga::from_deterministic(infection());
        assert_eq!(auto.randomness(), 1);
        let ms = Multiset::from_seq(2, &[1]);
        assert_eq!(auto.transition(0, 0, &ms), 1);
    }

    #[test]
    fn probabilistic_coin_selects_program() {
        // r = 2: coin 0 -> constant 0, coin 1 -> constant 1.
        let c0 = FsmProgram::ModThresh(ModThreshProgram::new(2, 2, vec![], 0).unwrap());
        let c1 = FsmProgram::ModThresh(ModThreshProgram::new(2, 2, vec![], 1).unwrap());
        let auto = ProbFssga::new(2, 2, vec![c0.clone(), c1.clone(), c0, c1]).unwrap();
        let ms = Multiset::from_seq(2, &[0]);
        assert_eq!(auto.transition(0, 0, &ms), 0);
        assert_eq!(auto.transition(0, 1, &ms), 1);
        assert_eq!(auto.transition(1, 0, &ms), 0);
    }

    #[test]
    #[should_panic(expected = "coin out of range")]
    fn coin_out_of_range_panics() {
        let auto = ProbFssga::from_deterministic(infection());
        auto.transition(0, 5, &Multiset::from_seq(2, &[0]));
    }
}
