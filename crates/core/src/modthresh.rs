//! Mod-thresh programs (Definition 3.6) — the "programming language"
//! presentation of SM functions.
//!
//! A *mod atom* is `μ_i(q⃗) ≡ r (mod m)`; a *thresh atom* is
//! `μ_i(q⃗) < t`. Propositions close the atoms under finite conjunction,
//! disjunction and negation, and a program is a decision list
//! `(P_1, ..., P_{c-1}; r_1, ..., r_c)`: return `r_j` for the first true
//! `P_j`, else the default `r_c`. Such a function is automatically
//! symmetric, since it reads the input only through the multiplicities
//! `μ_i`.

use crate::multiset::Multiset;
use crate::{Id, SmError};

/// An atomic proposition over the multiplicity vector.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Atom {
    /// `μ_state ≡ r (mod m)`, with `0 <= r < m`.
    Mod {
        /// The state whose multiplicity is tested.
        state: Id,
        /// The required residue.
        r: u64,
        /// The modulus (`>= 1`).
        m: u64,
    },
    /// `μ_state < t`, with `t >= 1`.
    Thresh {
        /// The state whose multiplicity is tested.
        state: Id,
        /// The strict upper bound.
        t: u64,
    },
}

impl Atom {
    /// Evaluates the atom against a multiplicity vector.
    pub fn eval(&self, counts: &[u64]) -> bool {
        match *self {
            Atom::Mod { state, r, m } => counts[state] % m == r,
            Atom::Thresh { state, t } => counts[state] < t,
        }
    }

    /// Validates ranges against an alphabet size.
    fn validate(&self, num_inputs: usize) -> Result<(), SmError> {
        match *self {
            Atom::Mod { state, r, m } => {
                if state >= num_inputs {
                    return Err(SmError::Malformed(format!(
                        "atom state {state} out of range"
                    )));
                }
                if m == 0 || r >= m {
                    return Err(SmError::Malformed(format!(
                        "mod atom needs 0 <= r < m, got r={r}, m={m}"
                    )));
                }
            }
            Atom::Thresh { state, t } => {
                if state >= num_inputs {
                    return Err(SmError::Malformed(format!(
                        "atom state {state} out of range"
                    )));
                }
                if t == 0 {
                    return Err(SmError::Malformed("thresh atom needs t >= 1".into()));
                }
            }
        }
        Ok(())
    }
}

/// A boolean combination of atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Prop {
    /// Constant truth — identity for conjunction, handy in builders.
    True,
    /// Constant falsity.
    False,
    /// An atom.
    Atom(Atom),
    /// Logical negation.
    Not(Box<Prop>),
    /// Finite conjunction (empty = true).
    And(Vec<Prop>),
    /// Finite disjunction (empty = false).
    Or(Vec<Prop>),
}

impl Prop {
    /// The mod atom `μ_state ≡ r (mod m)`.
    pub fn mod_count(state: Id, r: u64, m: u64) -> Prop {
        Prop::Atom(Atom::Mod { state, r, m })
    }

    /// The thresh atom `μ_state < t`.
    pub fn below(state: Id, t: u64) -> Prop {
        Prop::Atom(Atom::Thresh { state, t })
    }

    /// `μ_state >= t`, i.e. `¬(μ_state < t)` — the paper's pseudocode
    /// constantly uses this shape ("some neighbour has state i" is
    /// `¬(μ_i < 1)`).
    pub fn at_least(state: Id, t: u64) -> Prop {
        Prop::Not(Box::new(Prop::below(state, t)))
    }

    /// "Some input is in `state`": `μ_state >= 1`.
    pub fn some(state: Id) -> Prop {
        Prop::at_least(state, 1)
    }

    /// "No input is in `state`": `μ_state < 1`.
    pub fn none(state: Id) -> Prop {
        Prop::below(state, 1)
    }

    /// "Exactly one input is in `state`": `μ >= 1 ∧ μ < 2`.
    pub fn exactly_one(state: Id) -> Prop {
        Prop::at_least(state, 1).and(Prop::below(state, 2))
    }

    /// Conjunction combinator.
    pub fn and(self, other: Prop) -> Prop {
        match (self, other) {
            (Prop::And(mut a), Prop::And(b)) => {
                a.extend(b);
                Prop::And(a)
            }
            (Prop::And(mut a), b) => {
                a.push(b);
                Prop::And(a)
            }
            (a, Prop::And(mut b)) => {
                b.insert(0, a);
                Prop::And(b)
            }
            (a, b) => Prop::And(vec![a, b]),
        }
    }

    /// Disjunction combinator.
    pub fn or(self, other: Prop) -> Prop {
        match (self, other) {
            (Prop::Or(mut a), Prop::Or(b)) => {
                a.extend(b);
                Prop::Or(a)
            }
            (Prop::Or(mut a), b) => {
                a.push(b);
                Prop::Or(a)
            }
            (a, Prop::Or(mut b)) => {
                b.insert(0, a);
                Prop::Or(b)
            }
            (a, b) => Prop::Or(vec![a, b]),
        }
    }

    /// Negation combinator.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Prop {
        Prop::Not(Box::new(self))
    }

    /// Evaluates against a multiplicity vector.
    pub fn eval(&self, counts: &[u64]) -> bool {
        match self {
            Prop::True => true,
            Prop::False => false,
            Prop::Atom(a) => a.eval(counts),
            Prop::Not(p) => !p.eval(counts),
            Prop::And(ps) => ps.iter().all(|p| p.eval(counts)),
            Prop::Or(ps) => ps.iter().any(|p| p.eval(counts)),
        }
    }

    /// Validates every atom in the proposition.
    fn validate(&self, num_inputs: usize) -> Result<(), SmError> {
        match self {
            Prop::True | Prop::False => Ok(()),
            Prop::Atom(a) => a.validate(num_inputs),
            Prop::Not(p) => p.validate(num_inputs),
            Prop::And(ps) | Prop::Or(ps) => ps.iter().try_for_each(|p| p.validate(num_inputs)),
        }
    }

    /// Visits every atom.
    pub fn visit_atoms<'a>(&'a self, f: &mut impl FnMut(&'a Atom)) {
        match self {
            Prop::True | Prop::False => {}
            Prop::Atom(a) => f(a),
            Prop::Not(p) => p.visit_atoms(f),
            Prop::And(ps) | Prop::Or(ps) => ps.iter().for_each(|p| p.visit_atoms(f)),
        }
    }

    /// Number of atoms (a crude size measure for the blow-up experiments).
    pub fn atom_count(&self) -> usize {
        let mut n = 0;
        self.visit_atoms(&mut |_| n += 1);
        n
    }

    /// Constant-folds the proposition: drops `true` conjuncts and `false`
    /// disjuncts, collapses trivial atoms (`μ ≡ 0 (mod 1)` is always
    /// true), simplifies double negation, and flattens singleton
    /// connectives. Purely syntactic — the function is unchanged.
    pub fn normalized(&self) -> Prop {
        match self {
            Prop::True => Prop::True,
            Prop::False => Prop::False,
            Prop::Atom(Atom::Mod { m: 1, .. }) => Prop::True,
            Prop::Atom(a) => Prop::Atom(a.clone()),
            Prop::Not(p) => match p.normalized() {
                Prop::True => Prop::False,
                Prop::False => Prop::True,
                Prop::Not(inner) => *inner,
                q => Prop::Not(Box::new(q)),
            },
            Prop::And(ps) => {
                let mut out = Vec::new();
                for p in ps {
                    match p.normalized() {
                        Prop::True => {}
                        Prop::False => return Prop::False,
                        Prop::And(inner) => out.extend(inner),
                        q => out.push(q),
                    }
                }
                match out.len() {
                    0 => Prop::True,
                    1 => out.pop().unwrap(),
                    _ => Prop::And(out),
                }
            }
            Prop::Or(ps) => {
                let mut out = Vec::new();
                for p in ps {
                    match p.normalized() {
                        Prop::False => {}
                        Prop::True => return Prop::True,
                        Prop::Or(inner) => out.extend(inner),
                        q => out.push(q),
                    }
                }
                match out.len() {
                    0 => Prop::False,
                    1 => out.pop().unwrap(),
                    _ => Prop::Or(out),
                }
            }
        }
    }
}

/// A mod-thresh program `(P_1, ..., P_{c-1}; r_1, ..., r_c)`
/// (Definition 3.6): a decision list with a default result.
///
/// ```
/// use fssga_core::{ModThreshProgram, Multiset, Prop};
///
/// // "FAILED if both colours adjacent" — a clause from the paper's §4.1.
/// let p = ModThreshProgram::new(
///     4, 4,
///     vec![(Prop::some(1).and(Prop::some(2)), 3)],
///     0,
/// ).unwrap();
/// assert_eq!(p.eval_multiset(&Multiset::from_seq(4, &[1, 2, 0])), 3);
/// assert_eq!(p.eval_multiset(&Multiset::from_seq(4, &[1, 1, 0])), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModThreshProgram {
    num_inputs: usize,
    num_outputs: usize,
    clauses: Vec<(Prop, u32)>,
    default: u32,
}

impl ModThreshProgram {
    /// Builds a program, validating atoms and result ranges.
    pub fn new(
        num_inputs: usize,
        num_outputs: usize,
        clauses: Vec<(Prop, Id)>,
        default: Id,
    ) -> Result<Self, SmError> {
        if num_inputs == 0 || num_outputs == 0 {
            return Err(SmError::Malformed("empty alphabet not allowed".into()));
        }
        if default >= num_outputs {
            return Err(SmError::Malformed(format!(
                "default result {default} out of range"
            )));
        }
        let mut checked = Vec::with_capacity(clauses.len());
        for (prop, r) in clauses {
            prop.validate(num_inputs)?;
            if r >= num_outputs {
                return Err(SmError::Malformed(format!(
                    "clause result {r} out of range"
                )));
            }
            checked.push((prop, r as u32));
        }
        Ok(Self {
            num_inputs,
            num_outputs,
            clauses: checked,
            default: default as u32,
        })
    }

    /// `|Q|`.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// `|R|`.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of clauses `c` (the decision list length, counting the
    /// default).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() + 1
    }

    /// The guarded clauses `(P_j, r_j)`.
    pub fn clauses(&self) -> impl Iterator<Item = (&Prop, Id)> {
        self.clauses.iter().map(|(p, r)| (p, *r as Id))
    }

    /// The default result `r_c`.
    pub fn default_result(&self) -> Id {
        self.default as usize
    }

    /// Evaluates the decision list on a multiplicity vector.
    pub fn eval_counts(&self, counts: &[u64]) -> Id {
        debug_assert_eq!(counts.len(), self.num_inputs);
        for (prop, r) in &self.clauses {
            if prop.eval(counts) {
                return *r as Id;
            }
        }
        self.default as Id
    }

    /// Evaluates on a multiset (rejects the empty multiset, per `Q^+`).
    pub fn eval_multiset(&self, ms: &Multiset) -> Id {
        assert!(!ms.is_empty(), "SM functions take at least one input");
        assert_eq!(ms.alphabet(), self.num_inputs, "alphabet mismatch");
        self.eval_counts(ms.counts())
    }

    /// `M_i` of Lemma 3.8: the lcm of all moduli mentioned for state `i`
    /// (at least 1).
    pub fn moduli(&self) -> Vec<u64> {
        let mut m = vec![1u64; self.num_inputs];
        for (prop, _) in &self.clauses {
            prop.visit_atoms(&mut |a| {
                if let Atom::Mod {
                    state, m: modulus, ..
                } = *a
                {
                    m[state] = lcm(m[state], modulus);
                }
            });
        }
        m
    }

    /// `T_i` of Lemma 3.8: the max of all thresholds mentioned for state
    /// `i` (at least 1).
    pub fn thresholds(&self) -> Vec<u64> {
        let mut t = vec![1u64; self.num_inputs];
        for (prop, _) in &self.clauses {
            prop.visit_atoms(&mut |a| {
                if let Atom::Thresh { state, t: thresh } = *a {
                    t[state] = t[state].max(thresh);
                }
            });
        }
        t
    }

    /// Total atom count across all clauses (size measure).
    pub fn atom_count(&self) -> usize {
        self.clauses.iter().map(|(p, _)| p.atom_count()).sum()
    }
}

/// Least common multiple (used for `M_i`).
pub fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Greatest common divisor.
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Section 4.1 two-colouring transition for a BLANK node:
    /// states 0=BLANK, 1=RED, 2=BLUE, 3=FAILED.
    fn two_coloring_blank() -> ModThreshProgram {
        ModThreshProgram::new(
            4,
            4,
            vec![
                (Prop::some(3), 3),                    // a FAILED neighbour
                (Prop::some(1).and(Prop::some(2)), 3), // both colours adjacent
                (Prop::some(1), 2),                    // red neighbour -> become blue
                (Prop::some(2), 1),                    // blue neighbour -> become red
            ],
            0, // stay blank
        )
        .unwrap()
    }

    #[test]
    fn atoms_evaluate() {
        let counts = [3u64, 0, 7];
        assert!(Atom::Mod {
            state: 0,
            r: 1,
            m: 2
        }
        .eval(&counts));
        assert!(Atom::Mod {
            state: 2,
            r: 0,
            m: 7
        }
        .eval(&counts));
        assert!(!Atom::Mod {
            state: 2,
            r: 1,
            m: 7
        }
        .eval(&counts));
        assert!(Atom::Thresh { state: 1, t: 1 }.eval(&counts));
        assert!(!Atom::Thresh { state: 0, t: 3 }.eval(&counts));
    }

    #[test]
    fn prop_builders_evaluate() {
        let counts = [2u64, 5];
        assert!(Prop::some(0).eval(&counts));
        assert!(Prop::none(1).not().eval(&counts));
        assert!(Prop::at_least(1, 5).eval(&counts));
        assert!(!Prop::at_least(1, 6).eval(&counts));
        assert!(Prop::exactly_one(0).eval(&[1, 0]));
        assert!(!Prop::exactly_one(0).eval(&[2, 0]));
        assert!(Prop::True.eval(&counts));
        assert!(!Prop::False.eval(&counts));
        assert!(Prop::some(0).and(Prop::some(1)).eval(&counts));
        assert!(Prop::none(0).or(Prop::some(1)).eval(&counts));
    }

    #[test]
    fn and_or_flattening() {
        let p = Prop::some(0).and(Prop::some(1)).and(Prop::some(2));
        if let Prop::And(ps) = &p {
            assert_eq!(ps.len(), 3);
        } else {
            panic!("expected flattened And");
        }
        let q = Prop::some(0).or(Prop::some(1)).or(Prop::some(2));
        if let Prop::Or(ps) = &q {
            assert_eq!(ps.len(), 3);
        } else {
            panic!("expected flattened Or");
        }
    }

    #[test]
    fn two_coloring_clauses() {
        let p = two_coloring_blank();
        // FAILED neighbour dominates.
        assert_eq!(p.eval_counts(&[0, 1, 1, 1]), 3);
        // Both colours without FAILED: conflict.
        assert_eq!(p.eval_counts(&[5, 2, 1, 0]), 3);
        // Only red neighbours: become blue.
        assert_eq!(p.eval_counts(&[1, 2, 0, 0]), 2);
        // Only blue: become red.
        assert_eq!(p.eval_counts(&[1, 0, 1, 0]), 1);
        // All blank: stay blank (default).
        assert_eq!(p.eval_counts(&[4, 0, 0, 0]), 0);
    }

    #[test]
    fn eval_multiset_rejects_empty() {
        let p = two_coloring_blank();
        let ms = Multiset::empty(4);
        let r = std::panic::catch_unwind(|| p.eval_multiset(&ms));
        assert!(r.is_err());
    }

    #[test]
    fn moduli_and_thresholds_extraction() {
        let p = ModThreshProgram::new(
            2,
            2,
            vec![
                (Prop::mod_count(0, 1, 4).and(Prop::mod_count(0, 0, 6)), 1),
                (Prop::below(1, 7).or(Prop::below(1, 3)), 0),
            ],
            0,
        )
        .unwrap();
        assert_eq!(p.moduli(), vec![12, 1]);
        assert_eq!(p.thresholds(), vec![1, 7]);
        assert_eq!(p.atom_count(), 4);
    }

    #[test]
    fn validation_rejects_bad_atoms() {
        assert!(ModThreshProgram::new(2, 2, vec![(Prop::mod_count(0, 3, 3), 0)], 0).is_err());
        assert!(ModThreshProgram::new(2, 2, vec![(Prop::mod_count(0, 0, 0), 0)], 0).is_err());
        assert!(ModThreshProgram::new(2, 2, vec![(Prop::below(0, 0), 0)], 0).is_err());
        assert!(ModThreshProgram::new(2, 2, vec![(Prop::some(5), 0)], 0).is_err());
        assert!(ModThreshProgram::new(2, 2, vec![(Prop::True, 9)], 0).is_err());
        assert!(ModThreshProgram::new(2, 2, vec![], 9).is_err());
    }

    #[test]
    fn decision_list_order_matters() {
        let p =
            ModThreshProgram::new(2, 3, vec![(Prop::some(0), 1), (Prop::some(1), 2)], 0).unwrap();
        // Both clauses true: the first wins.
        assert_eq!(p.eval_counts(&[1, 1]), 1);
        assert_eq!(p.eval_counts(&[0, 1]), 2);
        assert_eq!(p.num_clauses(), 3);
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 1), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(1, 9), 9);
    }

    #[test]
    fn symmetry_is_automatic() {
        // A mod-thresh program depends only on counts: permuting a
        // sequence cannot change its multiset image. Spot-check by
        // evaluating sequences through Multiset::from_seq.
        let p = two_coloring_blank();
        let a = Multiset::from_seq(4, &[1, 0, 0, 2]);
        let b = Multiset::from_seq(4, &[0, 2, 1, 0]);
        assert_eq!(p.eval_multiset(&a), p.eval_multiset(&b));
    }
}

impl ModThreshProgram {
    /// The per-state count-class space this program can distinguish:
    /// each `μ_i` matters only through `(min(μ_i, T_i), μ_i mod M_i)`, so
    /// enumerating one representative per class combination covers every
    /// behaviourally distinct input. Returns the class representatives'
    /// count vectors (nonempty inputs only). Public so `fssga-analysis`
    /// can decide clause liveness exactly over the same class space.
    pub fn class_representatives(&self, limit: u128) -> Result<Vec<Vec<u64>>, SmError> {
        let s = self.num_inputs;
        let moduli = self.moduli();
        let thresholds = self.thresholds();
        let class_counts: Vec<u64> = (0..s).map(|j| thresholds[j] + moduli[j]).collect();
        let total: u128 = class_counts.iter().map(|&c| c as u128).product();
        if total > limit {
            return Err(SmError::TooLarge {
                needed: total,
                limit,
            });
        }
        let mut out = Vec::with_capacity(total as usize);
        let mut combo = vec![0u64; s];
        loop {
            let mut counts = vec![0u64; s];
            for j in 0..s {
                let (t, m) = (thresholds[j], moduli[j]);
                let c = combo[j];
                counts[j] = if c < t {
                    c
                } else {
                    t + (c - t + m - t % m) % m
                };
            }
            if counts.iter().all(|&c| c == 0) {
                if let Some(j) = (0..s).find(|&j| combo[j] >= thresholds[j]) {
                    counts[j] += moduli[j];
                }
            }
            if counts.iter().any(|&c| c > 0) {
                out.push(counts);
            }
            let mut j = 0;
            loop {
                if j == s {
                    return Ok(out);
                }
                combo[j] += 1;
                if combo[j] < class_counts[j] {
                    break;
                }
                combo[j] = 0;
                j += 1;
            }
        }
    }

    /// Removes clauses that can never fire (their guard is false on every
    /// input, or every input satisfying it is captured by an earlier
    /// clause) and collapses a trailing clause whose result equals the
    /// default. The check is *exact*: clause liveness is evaluated over
    /// the complete finite class space, not sampled. Errors with
    /// [`SmError::TooLarge`] if the class space exceeds `limit`.
    pub fn simplified(&self, limit: u128) -> Result<ModThreshProgram, SmError> {
        let reps = self.class_representatives(limit)?;
        // For each representative, which clause fires?
        let mut live = vec![false; self.clauses.len()];
        for counts in &reps {
            for (i, (prop, _)) in self.clauses.iter().enumerate() {
                if prop.eval(counts) {
                    live[i] = true;
                    break;
                }
            }
        }
        let mut clauses: Vec<(Prop, Id)> = self
            .clauses
            .iter()
            .zip(&live)
            .filter(|&(_, &l)| l)
            .map(|((p, r), _)| (p.normalized(), *r as Id))
            .collect();
        // Trailing clauses whose result equals the default are redundant.
        while let Some(&(_, r)) = clauses.last() {
            if r == self.default as Id {
                clauses.pop();
            } else {
                break;
            }
        }
        ModThreshProgram::new(
            self.num_inputs,
            self.num_outputs,
            clauses,
            self.default as Id,
        )
    }
}

#[cfg(test)]
mod simplify_tests {
    use super::*;
    use crate::multiset::Multiset;

    fn agree(a: &ModThreshProgram, b: &ModThreshProgram, depth: u64) {
        for ms in Multiset::enumerate_up_to(a.num_inputs(), depth) {
            assert_eq!(a.eval_multiset(&ms), b.eval_multiset(&ms), "{ms:?}");
        }
    }

    #[test]
    fn dead_clauses_are_removed() {
        // Second clause is shadowed by the first (same guard), third is
        // unsatisfiable (μ_0 < 1 AND μ_0 >= 2).
        let p = ModThreshProgram::new(
            2,
            3,
            vec![
                (Prop::some(0), 1),
                (Prop::some(0), 2),
                (Prop::none(0).and(Prop::at_least(0, 2)), 2),
            ],
            0,
        )
        .unwrap();
        let q = p.simplified(1 << 16).unwrap();
        assert_eq!(q.num_clauses(), 2, "one live clause + default");
        agree(&p, &q, 6);
    }

    #[test]
    fn trailing_default_clauses_collapse() {
        let p =
            ModThreshProgram::new(2, 2, vec![(Prop::some(1), 1), (Prop::some(0), 0)], 0).unwrap();
        let q = p.simplified(1 << 16).unwrap();
        assert_eq!(q.num_clauses(), 2);
        agree(&p, &q, 6);
    }

    #[test]
    fn live_programs_are_untouched() {
        let p = crate::library::two_coloring_blank_mt();
        let q = p.simplified(1 << 16).unwrap();
        assert_eq!(q.num_clauses(), p.num_clauses());
        agree(&p, &q, 4);
    }

    #[test]
    fn conversion_output_shrinks() {
        // Lemma 3.9 output contains one clause per class combination;
        // for OR most are redundant next to the default.
        let seq = crate::library::or_seq();
        let mt = crate::convert::seq_to_mt(&seq, 1 << 20).unwrap();
        let slim = mt.simplified(1 << 16).unwrap();
        assert!(slim.num_clauses() <= mt.num_clauses());
        agree(&mt, &slim, 7);
    }

    #[test]
    fn normalization_folds_constants() {
        let p = Prop::True
            .and(Prop::mod_count(0, 0, 1))
            .and(Prop::some(1))
            .and(Prop::True);
        assert_eq!(p.normalized().to_string(), "!(mu_1 < 1)");
        assert_eq!(
            Prop::some(0).not().not().normalized(),
            Prop::some(0).normalized().not().not().normalized()
        );
        assert_eq!(
            Prop::False.or(Prop::below(0, 2)).normalized().to_string(),
            "mu_0 < 2"
        );
        assert_eq!(Prop::True.not().normalized(), Prop::False);
    }

    #[test]
    fn normalization_preserves_semantics() {
        let p = Prop::some(0)
            .and(Prop::mod_count(1, 0, 1))
            .or(Prop::False)
            .or(Prop::below(1, 3).not().not());
        let q = p.normalized();
        for a in 0..5u64 {
            for b in 0..5u64 {
                assert_eq!(p.eval(&[a, b]), q.eval(&[a, b]), "({a},{b})");
            }
        }
    }

    #[test]
    fn mod_atom_classes_respected() {
        // Parity program: the simplifier must keep the mod clause.
        let p = crate::library::parity_mt(2, 1);
        let q = p.simplified(1 << 16).unwrap();
        agree(&p, &q, 8);
        assert!(q.num_clauses() >= 2);
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Atom::Mod { state, r, m } => write!(f, "mu_{state} = {r} (mod {m})"),
            Atom::Thresh { state, t } => write!(f, "mu_{state} < {t}"),
        }
    }
}

impl std::fmt::Display for Prop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Prop::True => write!(f, "true"),
            Prop::False => write!(f, "false"),
            Prop::Atom(a) => write!(f, "{a}"),
            Prop::Not(p) => write!(f, "!({p})"),
            Prop::And(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", parts.join(" & "))
            }
            Prop::Or(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", parts.join(" | "))
            }
        }
    }
}

impl std::fmt::Display for ModThreshProgram {
    /// Renders the decision list in the paper's procedural style
    /// (Definition 3.6).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "procedure f(q)")?;
        for (i, (prop, r)) in self.clauses.iter().enumerate() {
            let kw = if i == 0 { "if" } else { "else if" };
            writeln!(f, "  {kw} {prop} then return {r}")?;
        }
        writeln!(f, "  else return {}", self.default)?;
        write!(f, "end procedure")
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn atoms_render() {
        assert_eq!(
            Atom::Mod {
                state: 2,
                r: 1,
                m: 3
            }
            .to_string(),
            "mu_2 = 1 (mod 3)"
        );
        assert_eq!(Atom::Thresh { state: 0, t: 4 }.to_string(), "mu_0 < 4");
    }

    #[test]
    fn props_render() {
        let p = Prop::some(1).and(Prop::below(0, 2));
        assert_eq!(p.to_string(), "(!(mu_1 < 1)) & (mu_0 < 2)");
        assert_eq!(Prop::True.to_string(), "true");
    }

    #[test]
    fn program_renders_like_definition_3_6() {
        let p = ModThreshProgram::new(
            2,
            3,
            vec![(Prop::some(1), 2), (Prop::mod_count(0, 0, 2), 1)],
            0,
        )
        .unwrap();
        let s = p.to_string();
        assert!(s.starts_with("procedure f(q)"), "{s}");
        assert!(s.contains("if !(mu_1 < 1) then return 2"), "{s}");
        assert!(s.contains("else if mu_0 = 0 (mod 2) then return 1"), "{s}");
        assert!(s.contains("else return 0"), "{s}");
    }
}
