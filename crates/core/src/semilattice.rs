//! Semi-lattice SM functions (paper §5 discussion).
//!
//! "The class of semi-lattice (or infimum) functions essentially provide
//! the automatic fault-tolerance we desire, but these functions are
//! limited in their scope. One example of a semi-lattice function is the
//! iterated OR of the Flajolet-Martin algorithm."
//!
//! A parallel program's combine `p` is a semi-lattice operation when it is
//! idempotent, commutative and associative *on the obtainable values* —
//! then iterated application over a network is order-, duplication- and
//! history-insensitive, which is exactly why OR-diffusion shrugs off
//! benign faults. This module decides the property and the related
//! inflationary (progress-monotone) property.

use crate::par::ParProgram;
use crate::Id;

/// Why a program failed the semi-lattice test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LatticeViolation {
    /// `p(a, a) != a` for an obtainable `a`.
    NotIdempotent(Id),
    /// `p(a, b) != p(b, a)` for obtainable `a, b`.
    NotCommutative(Id, Id),
    /// `p(p(a,b),c) != p(a,p(b,c))` for obtainable `a, b, c`.
    NotAssociative(Id, Id, Id),
}

/// Decides whether the combine of `par` is a semi-lattice operation on
/// its obtainable values (exact table equality — stronger than the
/// behavioural-equivalence test in [`ParProgram::check_sm`], because the
/// fault-tolerance argument needs the *state*, not just the output, to be
/// history-insensitive).
pub fn check_semilattice(par: &ParProgram) -> Result<(), LatticeViolation> {
    let values = par.obtainable_values();
    for &a in &values {
        if par.combine(a, a) != a {
            return Err(LatticeViolation::NotIdempotent(a));
        }
    }
    for &a in &values {
        for &b in &values {
            if par.combine(a, b) != par.combine(b, a) {
                return Err(LatticeViolation::NotCommutative(a, b));
            }
        }
    }
    for &a in &values {
        for &b in &values {
            let ab = par.combine(a, b);
            for &c in &values {
                if par.combine(ab, c) != par.combine(a, par.combine(b, c)) {
                    return Err(LatticeViolation::NotAssociative(a, b, c));
                }
            }
        }
    }
    Ok(())
}

/// Returns `true` iff [`check_semilattice`] succeeds.
pub fn is_semilattice(par: &ParProgram) -> bool {
    check_semilattice(par).is_ok()
}

/// The lattice order induced by a semi-lattice combine:
/// `a <= b` iff `p(a, b) = b`. Returns the relation as a matrix over the
/// obtainable values (callers should have verified the semi-lattice
/// property first).
pub fn lattice_order(par: &ParProgram) -> Vec<(Id, Id)> {
    let values = par.obtainable_values();
    let mut order = Vec::new();
    for &a in &values {
        for &b in &values {
            if par.combine(a, b) == b {
                order.push((a, b));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::ParProgram;

    #[test]
    fn or_max_min_are_semilattices() {
        assert!(is_semilattice(&library::or_par()));
        assert!(is_semilattice(&library::max_state_par(5)));
        // Bitwise OR over 3-bit sketches (the FM core).
        let fm = ParProgram::from_fn(8, 8, 8, |q| q, |a, b| a | b, |w| w).unwrap();
        assert!(is_semilattice(&fm));
    }

    #[test]
    fn sum_mod_is_not_a_semilattice() {
        // Commutative and associative but NOT idempotent: 1 + 1 = 2.
        let p = library::sum_mod_par(3);
        assert_eq!(
            check_semilattice(&p),
            Err(LatticeViolation::NotIdempotent(1))
        );
    }

    #[test]
    fn keep_left_fails_commutativity() {
        let p = ParProgram::from_fn(2, 2, 2, |q| q, |a, _| a, |w| w).unwrap();
        // Idempotent (p(a,a) = a) but not commutative.
        assert!(matches!(
            check_semilattice(&p),
            Err(LatticeViolation::NotCommutative(_, _))
        ));
    }

    #[test]
    fn order_of_or_is_boolean_lattice() {
        let order = lattice_order(&library::or_par());
        // 0 <= 0, 0 <= 1, 1 <= 1 (and not 1 <= 0).
        assert!(order.contains(&(0, 0)));
        assert!(order.contains(&(0, 1)));
        assert!(order.contains(&(1, 1)));
        assert!(!order.contains(&(1, 0)));
    }

    #[test]
    fn semilattice_implies_duplication_insensitivity() {
        // The automatic-fault-tolerance mechanism: re-delivering the same
        // input (a node reading a neighbour twice across rounds) cannot
        // change a semi-lattice fold — spot-check on MAX.
        let p = library::max_state_par(4);
        let with_dup = p.eval_seq(&[2, 3, 3, 3, 1, 2]);
        let without = p.eval_seq(&[2, 3, 1]);
        assert_eq!(with_dup, without);
    }
}
