//! Parallel SM programs (Definition 3.4).
//!
//! A parallel program `(W, α, p, β)` maps each input to a working value via
//! `α`, reduces the values pairwise with `p : W × W -> W` over an arbitrary
//! rooted binary tree (Definition 3.3), and outputs `β` of the final value.
//! It defines an SM function exactly when the result is independent of both
//! the tree and the leaf permutation — decided by [`ParProgram::check_sm`].

use crate::check::coarsest_congruence;
use crate::multiset::Multiset;
use crate::tree::CombTree;
use crate::{Id, SmError};

/// A parallel program `(W, α, p, β)` with dense tables.
///
/// ```
/// use fssga_core::{CombTree, ParProgram};
///
/// let sum3 = ParProgram::from_fn(3, 3, 3, |q| q, |a, b| (a + b) % 3, |w| w).unwrap();
/// let inputs = [2, 2, 1, 0, 2];
/// // Definition 3.4: every combination tree gives the same answer.
/// for tree in CombTree::enumerate_all(inputs.len()) {
///     assert_eq!(sum3.eval_with_tree(&tree, &inputs), 7 % 3);
/// }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParProgram {
    num_inputs: usize,
    num_working: usize,
    num_outputs: usize,
    /// `alpha[q]` = initial working value of an input in state `q`.
    alpha: Vec<u32>,
    /// `p[w1 * num_working + w2]` = combined value.
    p: Vec<u32>,
    /// `beta[w]` = result id.
    beta: Vec<u32>,
}

impl ParProgram {
    /// Builds a program from raw tables, validating all ranges.
    pub fn new(
        num_inputs: usize,
        num_working: usize,
        num_outputs: usize,
        alpha: Vec<u32>,
        p: Vec<u32>,
        beta: Vec<u32>,
    ) -> Result<Self, SmError> {
        if num_inputs == 0 || num_working == 0 || num_outputs == 0 {
            return Err(SmError::Malformed("empty alphabet not allowed".into()));
        }
        if alpha.len() != num_inputs {
            return Err(SmError::Malformed("alpha table has wrong length".into()));
        }
        if p.len() != num_working * num_working {
            return Err(SmError::Malformed(format!(
                "p table has {} entries, expected {}",
                p.len(),
                num_working * num_working
            )));
        }
        if beta.len() != num_working {
            return Err(SmError::Malformed("beta table has wrong length".into()));
        }
        if let Some(&bad) = alpha
            .iter()
            .chain(p.iter())
            .find(|&&w| w as usize >= num_working)
        {
            return Err(SmError::Malformed(format!(
                "table entry {bad} out of range"
            )));
        }
        if let Some(&bad) = beta.iter().find(|&&r| r as usize >= num_outputs) {
            return Err(SmError::Malformed(format!("beta entry {bad} out of range")));
        }
        Ok(Self {
            num_inputs,
            num_working,
            num_outputs,
            alpha,
            p,
            beta,
        })
    }

    /// Convenience constructor from closures.
    pub fn from_fn(
        num_inputs: usize,
        num_working: usize,
        num_outputs: usize,
        mut alpha: impl FnMut(Id) -> Id,
        mut p: impl FnMut(Id, Id) -> Id,
        mut beta: impl FnMut(Id) -> Id,
    ) -> Result<Self, SmError> {
        let atab = (0..num_inputs).map(|q| alpha(q) as u32).collect();
        let mut ptab = Vec::with_capacity(num_working * num_working);
        for w1 in 0..num_working {
            for w2 in 0..num_working {
                ptab.push(p(w1, w2) as u32);
            }
        }
        let btab = (0..num_working).map(|w| beta(w) as u32).collect();
        Self::new(num_inputs, num_working, num_outputs, atab, ptab, btab)
    }

    /// `|Q|`.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// `|W|`.
    pub fn num_working(&self) -> usize {
        self.num_working
    }

    /// `|R|`.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// `α(q)`.
    #[inline]
    pub fn lift(&self, q: Id) -> Id {
        self.alpha[q] as usize
    }

    /// `p(w1, w2)`.
    #[inline]
    pub fn combine(&self, w1: Id, w2: Id) -> Id {
        debug_assert!(w1 < self.num_working && w2 < self.num_working);
        self.p[w1 * self.num_working + w2] as usize
    }

    /// `β(w)`.
    #[inline]
    pub fn output(&self, w: Id) -> Id {
        self.beta[w] as usize
    }

    /// Evaluates over an explicit combination tree (Equation (3)). The
    /// tree must have exactly `inputs.len()` leaves.
    pub fn eval_with_tree(&self, tree: &CombTree, inputs: &[Id]) -> Id {
        assert!(!inputs.is_empty(), "SM functions take at least one input");
        assert_eq!(tree.leaves(), inputs.len(), "tree/leaf count mismatch");
        let lifted: Vec<Id> = inputs.iter().map(|&q| self.lift(q)).collect();
        let mut p = |a: Id, b: Id| self.combine(a, b);
        let w = tree.combine(&lifted, &mut p);
        self.output(w)
    }

    /// Evaluates with the left-comb tree (a plain left fold).
    pub fn eval_seq(&self, inputs: &[Id]) -> Id {
        assert!(!inputs.is_empty(), "SM functions take at least one input");
        let mut w = self.lift(inputs[0]);
        for &q in &inputs[1..] {
            w = self.combine(w, self.lift(q));
        }
        self.output(w)
    }

    /// Evaluates on a multiset by folding states in canonical order, with
    /// rho-shaped orbit reduction for large multiplicities (the map
    /// `w -> p(w, α(q))` over a finite set is eventually periodic).
    pub fn eval_multiset(&self, ms: &Multiset) -> Id {
        assert!(!ms.is_empty(), "SM functions take at least one input");
        assert_eq!(ms.alphabet(), self.num_inputs, "alphabet mismatch");
        let mut w: Option<Id> = None;
        for q in 0..self.num_inputs {
            let c = ms.mu(q);
            if c == 0 {
                continue;
            }
            let aq = self.lift(q);
            let (start, reps) = match w {
                None => (aq, c - 1),
                Some(w) => (self.combine(w, aq), c - 1), // first copy consumed here
            };
            w = Some(self.fold_copies(start, aq, reps));
        }
        self.output(w.expect("nonempty multiset"))
    }

    /// Evaluates on a run-length-encoded multiset — sparse `(state,
    /// count)` pairs in strictly ascending state order — without
    /// materializing a dense [`Multiset`]. This is the table-level
    /// analogue of the compiled kernel's gather/sort/RLE neighbour
    /// reduction: an SM program's value is invariant under regrouping
    /// the fold into per-state runs (Definition 3.4 quantifies over
    /// *all* combination trees), and each run collapses through the
    /// rho-shaped orbit of `w -> p(w, α(q))` in `O(min(count, |W|))`.
    pub fn eval_sparse_pairs(&self, pairs: &[(Id, u64)]) -> Id {
        let mut w: Option<Id> = None;
        let mut prev: Option<Id> = None;
        for &(q, c) in pairs {
            assert!(q < self.num_inputs, "state {q} out of range");
            assert!(c > 0, "runs must have positive multiplicity");
            if let Some(p) = prev {
                assert!(p < q, "runs must be strictly ascending");
            }
            prev = Some(q);
            let aq = self.lift(q);
            let (start, reps) = match w {
                None => (aq, c - 1),
                Some(w) => (self.combine(w, aq), c - 1), // first copy consumed here
            };
            w = Some(self.fold_copies(start, aq, reps));
        }
        self.output(w.expect("SM functions take at least one input"))
    }

    /// Applies `w := p(w, aq)` exactly `reps` times with cycle detection.
    fn fold_copies(&self, start: Id, aq: Id, reps: u64) -> Id {
        let mut w = start;
        if reps <= self.num_working as u64 {
            for _ in 0..reps {
                w = self.combine(w, aq);
            }
            return w;
        }
        let mut seen: Vec<i64> = vec![-1; self.num_working];
        let mut path: Vec<Id> = Vec::new();
        let mut cur = w;
        loop {
            if seen[cur] >= 0 {
                let tail = seen[cur] as u64;
                let cycle = path.len() as u64 - tail;
                let idx = if reps < tail {
                    reps
                } else {
                    tail + (reps - tail) % cycle
                };
                return path[idx as usize];
            }
            seen[cur] = path.len() as i64;
            path.push(cur);
            cur = self.combine(cur, aq);
        }
    }

    /// The set of working values obtainable as the combination of *some*
    /// multiset over *some* tree: the closure of `α(Q)` under `p`.
    /// (Multisets may repeat inputs, so any two obtainable values can be
    /// realized on disjoint leaf sets and then combined — the pairwise
    /// closure is exact, not an over-approximation.)
    pub fn obtainable_values(&self) -> Vec<Id> {
        let mut in_set = vec![false; self.num_working];
        let mut queue: Vec<Id> = Vec::new();
        for q in 0..self.num_inputs {
            let a = self.lift(q);
            if !in_set[a] {
                in_set[a] = true;
                queue.push(a);
            }
        }
        let mut members: Vec<Id> = queue.clone();
        while let Some(x) = queue.pop() {
            // Combine x with everything currently in the set (both orders).
            let snapshot = members.clone();
            for &y in &snapshot {
                for z in [self.combine(x, y), self.combine(y, x)] {
                    if !in_set[z] {
                        in_set[z] = true;
                        members.push(z);
                        queue.push(z);
                    }
                }
            }
        }
        members.sort_unstable();
        members
    }

    /// Decides whether this program satisfies Definition 3.4, i.e. whether
    /// its value is independent of combination tree and leaf order.
    ///
    /// Method: let `V` be the obtainable values. Compute behavioural
    /// equivalence `≈` on `W` — the coarsest congruence refining `β` and
    /// stable under every one-sided combination `w -> p(v, w)` and
    /// `w -> p(w, v)` for `v ∈ V` (these generate every context a value
    /// can appear in). Then the program is SM iff `p` is commutative and
    /// associative *up to `≈`* on `V`: tree rotations and sibling swaps
    /// generate all (tree, permutation) pairs, and `≈` is preserved by all
    /// contexts, so local invariance is equivalent to global invariance.
    ///
    /// The associativity check is `O(|V|^3)`; `max_checks` caps the work
    /// (`Err(TooLarge)` beyond it) since conversion-generated programs can
    /// have thousands of working states.
    pub fn check_sm_with_limit(&self, max_checks: u128) -> Result<(), SmError> {
        let values = self.obtainable_values();
        let v = values.len() as u128;
        if v * v * v > max_checks {
            return Err(SmError::TooLarge {
                needed: v * v * v,
                limit: max_checks,
            });
        }
        // Context maps: for each obtainable v, w -> p(v, w) and w -> p(w, v).
        let mut fns: Vec<Vec<u32>> = Vec::with_capacity(2 * values.len());
        for &val in &values {
            fns.push(
                (0..self.num_working)
                    .map(|w| self.p[val * self.num_working + w])
                    .collect(),
            );
            fns.push(
                (0..self.num_working)
                    .map(|w| self.p[w * self.num_working + val])
                    .collect(),
            );
        }
        let refs: Vec<&[u32]> = fns.iter().map(|t| t.as_slice()).collect();
        let classes = coarsest_congruence(self.num_working, &self.beta, &refs);

        for &a in &values {
            for &b in &values {
                let ab = self.combine(a, b);
                let ba = self.combine(b, a);
                if classes[ab] != classes[ba] {
                    return Err(SmError::NotSymmetric(format!(
                        "p({a},{b}) = {ab} and p({b},{a}) = {ba} are behaviourally inequivalent"
                    )));
                }
            }
        }
        for &a in &values {
            for &b in &values {
                let ab = self.combine(a, b);
                for &c in &values {
                    let left = self.combine(ab, c);
                    let right = self.combine(a, self.combine(b, c));
                    if classes[left] != classes[right] {
                        return Err(SmError::NotSymmetric(format!(
                            "p(p({a},{b}),{c}) and p({a},p({b},{c})) are behaviourally inequivalent"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// [`Self::check_sm_with_limit`] with a budget suitable for hand-written
    /// programs (up to a few hundred obtainable values).
    pub fn check_sm(&self) -> Result<(), SmError> {
        self.check_sm_with_limit(1u128 << 28)
    }

    /// Returns `true` iff [`Self::check_sm`] succeeds.
    pub fn is_sm(&self) -> bool {
        self.check_sm().is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::permutations;

    /// Bitwise OR over {0,1}.
    fn or_par() -> ParProgram {
        ParProgram::from_fn(2, 2, 2, |q| q, |a, b| a | b, |w| w).unwrap()
    }

    /// Sum mod 3 of inputs in {0,1,2}.
    fn sum_mod3_par() -> ParProgram {
        ParProgram::from_fn(3, 3, 3, |q| q, |a, b| (a + b) % 3, |w| w).unwrap()
    }

    /// Non-commutative: always keep the left operand.
    fn keep_left_par() -> ParProgram {
        ParProgram::from_fn(2, 2, 2, |q| q, |a, _| a, |w| w).unwrap()
    }

    /// Commutative but NOT associative (up to behaviour): NAND-ish combine
    /// over {0,1}: p(a,b) = 1 - (a & b).
    fn nand_par() -> ParProgram {
        ParProgram::from_fn(2, 2, 2, |q| q, |a, b| 1 - (a & b), |w| w).unwrap()
    }

    #[test]
    fn or_tree_invariance() {
        let p = or_par();
        let inputs = [0, 1, 0, 0, 1];
        for t in CombTree::enumerate_all(5) {
            assert_eq!(p.eval_with_tree(&t, &inputs), 1);
        }
        let zeros = [0, 0, 0, 0];
        for t in CombTree::enumerate_all(4) {
            assert_eq!(p.eval_with_tree(&t, &zeros), 0);
        }
    }

    #[test]
    fn or_is_sm() {
        assert!(or_par().is_sm());
        assert!(sum_mod3_par().is_sm());
    }

    #[test]
    fn keep_left_is_not_sm() {
        let p = keep_left_par();
        assert_eq!(p.eval_seq(&[0, 1]), 0);
        assert!(matches!(p.check_sm(), Err(SmError::NotSymmetric(_))));
    }

    #[test]
    fn nand_is_not_sm() {
        // ((1,1),1): p(1,1)=0, p(0,1)=1. (1,(1,1)): p(1,0)=1... wait both 1?
        // Check via the decision procedure and via a brute-force witness.
        let p = nand_par();
        let verdict = p.check_sm();
        // Brute force: try all inputs of length <= 4, all trees.
        let mut brute_ok = true;
        'outer: for len in 1..=4usize {
            for bits in 0..(1u32 << len) {
                let inputs: Vec<Id> = (0..len).map(|i| ((bits >> i) & 1) as Id).collect();
                let trees = CombTree::enumerate_all(len);
                let perms = permutations(len);
                let mut results = std::collections::HashSet::new();
                for t in &trees {
                    for perm in &perms {
                        let permuted: Vec<Id> = perm.iter().map(|&i| inputs[i]).collect();
                        results.insert(p.eval_with_tree(t, &permuted));
                    }
                }
                if results.len() > 1 {
                    brute_ok = false;
                    break 'outer;
                }
            }
        }
        assert_eq!(verdict.is_ok(), brute_ok);
        assert!(!brute_ok, "NAND should be tree-dependent");
    }

    #[test]
    fn decision_procedure_matches_bruteforce_on_random_programs() {
        // Randomized cross-validation of check_sm against the definition.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut rnd = move |b: usize| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % b as u64) as usize
        };
        let mut seen_sm = 0;
        let mut seen_nonsm = 0;
        for _trial in 0..300 {
            let nq = 2;
            let nw = 3;
            let nr = 2;
            let alpha: Vec<u32> = (0..nq).map(|_| rnd(nw) as u32).collect();
            let ptab: Vec<u32> = (0..nw * nw).map(|_| rnd(nw) as u32).collect();
            let beta: Vec<u32> = (0..nw).map(|_| rnd(nr) as u32).collect();
            let prog = ParProgram::new(nq, nw, nr, alpha, ptab, beta).unwrap();
            let verdict = prog.check_sm().is_ok();
            // Brute force over all inputs of length <= 5, all trees, all perms.
            let mut brute = true;
            'b: for len in 1..=5usize {
                let trees = CombTree::enumerate_all(len);
                let perms = permutations(len);
                for bits in 0..(nq as u32).pow(len as u32) {
                    let mut inputs = Vec::with_capacity(len);
                    let mut v = bits;
                    for _ in 0..len {
                        inputs.push((v % nq as u32) as Id);
                        v /= nq as u32;
                    }
                    let base = prog.eval_with_tree(&trees[0], &inputs);
                    for t in &trees {
                        for perm in &perms {
                            let permuted: Vec<Id> = perm.iter().map(|&i| inputs[i]).collect();
                            if prog.eval_with_tree(t, &permuted) != base {
                                brute = false;
                                break 'b;
                            }
                        }
                    }
                }
            }
            // check_sm is complete; brute force up to length 5 is only a
            // partial check, so: verdict=true must imply brute=true.
            if verdict {
                assert!(brute, "check_sm accepted but brute force found a witness");
                seen_sm += 1;
            } else if !brute {
                seen_nonsm += 1;
            }
        }
        assert!(seen_sm > 0, "sample should contain some SM programs");
        assert!(seen_nonsm > 0, "sample should contain some non-SM programs");
    }

    #[test]
    fn eval_multiset_matches_eval_seq() {
        let p = sum_mod3_par();
        let ms = Multiset::from_seq(3, &[2, 2, 1, 0]);
        assert_eq!(p.eval_multiset(&ms), p.eval_seq(&[0, 1, 2, 2]));
        assert_eq!(p.eval_multiset(&ms), 5 % 3);
    }

    #[test]
    fn eval_sparse_pairs_matches_multiset() {
        let p = sum_mod3_par();
        let ms = Multiset::from_counts(vec![3, 0, 1_000_000_000_007]);
        assert_eq!(
            p.eval_sparse_pairs(&[(0, 3), (2, 1_000_000_000_007)]),
            p.eval_multiset(&ms)
        );
        // A single huge run exercises the orbit shortcut.
        assert_eq!(p.eval_sparse_pairs(&[(1, 1_000_000_000_007)]), 2);
        // Order-sensitive combine: regrouping still matches the fold
        // chain only through the runs' canonical order, which the
        // kernel's sort guarantees — assert the contract is checked.
        let r = std::panic::catch_unwind(|| p.eval_sparse_pairs(&[(2, 1), (0, 1)]));
        assert!(r.is_err(), "descending runs must be rejected");
    }

    #[test]
    fn eval_multiset_huge_counts() {
        let p = sum_mod3_par();
        let ms = Multiset::from_counts(vec![0, 1_000_000_000_007, 0]);
        assert_eq!(p.eval_multiset(&ms), (1_000_000_000_007u64 % 3) as usize);
    }

    #[test]
    fn obtainable_values_or() {
        assert_eq!(or_par().obtainable_values(), vec![0, 1]);
    }

    #[test]
    fn obtainable_values_grow_under_combination() {
        // alpha maps to {0}; p(0,0)=1, p(anything with 1)=2, p(2,_)=2.
        let p = ParProgram::from_fn(
            1,
            3,
            3,
            |_| 0,
            |a, b| if a == 0 && b == 0 { 1 } else { 2 },
            |w| w,
        )
        .unwrap();
        assert_eq!(p.obtainable_values(), vec![0, 1, 2]);
    }

    #[test]
    fn too_large_guard_fires() {
        let p = sum_mod3_par();
        assert!(matches!(
            p.check_sm_with_limit(1),
            Err(SmError::TooLarge { .. })
        ));
    }

    #[test]
    fn malformed_rejected() {
        assert!(ParProgram::new(2, 2, 2, vec![0], vec![0; 4], vec![0, 0]).is_err());
        assert!(ParProgram::new(2, 2, 2, vec![0, 9], vec![0; 4], vec![0, 0]).is_err());
        assert!(ParProgram::new(2, 2, 2, vec![0, 1], vec![0; 3], vec![0, 0]).is_err());
        assert!(ParProgram::new(2, 2, 2, vec![0, 1], vec![0; 4], vec![0, 5]).is_err());
    }
}
