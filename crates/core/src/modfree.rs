//! Deciding whether a program truly needs mod atoms (paper §5.2).
//!
//! The paper closes with: "We have not yet found any practical use for
//! mod atoms. Perhaps they can be cleverly applied to one of these
//! problems, or else removed to yield a simpler model." This module makes
//! the question *decidable* for any given SM function: a threshold-only
//! program exists iff the function is eventually constant in every
//! multiplicity — i.e., on the periodic part of each state's count
//! classes (Lemma 3.9), the output must not depend on the residue.
//!
//! Soundness and completeness: a threshold-only program reads `μ_j` only
//! through `min(μ_j, T)`, so its value is eventually constant in `μ_j`;
//! conversely, if the value is eventually constant in every `μ_j`
//! (uniformly over the other counts, which the class product enumerates),
//! the decision list built from threshold classes alone computes it.

use crate::modthresh::{ModThreshProgram, Prop};
use crate::multiset::Multiset;
use crate::seq::SeqProgram;
use crate::{Id, SmError};

/// A witness that a function genuinely depends on a residue: two
/// multisets equal in every coordinate except a `μ_j` shifted by the
/// period, with different outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModWitness {
    /// The state whose residue matters.
    pub state: Id,
    /// A multiset where the output differs from its period-shifted twin.
    pub multiset: Multiset,
    /// The twin (same classes except the `state` count moved one period).
    pub shifted: Multiset,
}

/// Decides whether `seq` has an equivalent *threshold-only* mod-thresh
/// program. Returns `Ok(None)` if it does (mod atoms removable),
/// `Ok(Some(witness))` if mod atoms are essential, and an error if the
/// program is not SM or the class product exceeds `limit`.
pub fn mod_atoms_essential(seq: &SeqProgram, limit: u128) -> Result<Option<ModWitness>, SmError> {
    seq.check_sm()?;
    let s = seq.num_inputs();
    let tp: Vec<(u64, u64)> = (0..s).map(|j| seq.orbit_tail_period(j)).collect();
    let class_counts: Vec<u64> = tp.iter().map(|&(t, m)| t + m).collect();
    let total: u128 = class_counts.iter().map(|&c| c as u128).product();
    if total > limit {
        return Err(SmError::TooLarge {
            needed: total,
            limit,
        });
    }
    // Enumerate class combinations; within each, compare the output when
    // one periodic state's count is shifted by one period.
    let mut combo = vec![0u64; s];
    loop {
        // Representative counts for this combo.
        let mut counts = vec![0u64; s];
        for j in 0..s {
            let (t, m) = tp[j];
            let c = combo[j];
            counts[j] = if c < t {
                c
            } else {
                t + (c - t + m - t % m) % m
            };
        }
        if counts.iter().any(|&c| c > 0) {
            let base = Multiset::from_counts(counts.clone());
            let out = seq.eval_multiset(&base);
            for j in 0..s {
                let (t, m) = tp[j];
                if m <= 1 || combo[j] < t {
                    continue; // not periodic in j at this combo
                }
                // Shift μ_j by one period: same threshold class, different
                // residue reachability is irrelevant — we test whether
                // moving within the periodic REGION but to the next
                // residue class changes the output.
                let mut shifted = counts.clone();
                shifted[j] += 1; // next residue class, still >= t
                let tw = Multiset::from_counts(shifted);
                if seq.eval_multiset(&tw) != out {
                    return Ok(Some(ModWitness {
                        state: j,
                        multiset: base,
                        shifted: tw,
                    }));
                }
            }
        }
        let mut j = 0;
        loop {
            if j == s {
                return Ok(None);
            }
            combo[j] += 1;
            if combo[j] < class_counts[j] {
                break;
            }
            combo[j] = 0;
            j += 1;
        }
    }
}

/// Builds the threshold-only program for a function whose mod atoms are
/// removable ([`mod_atoms_essential`] returned `None`): one clause per
/// threshold class combination.
pub fn to_threshold_only(seq: &SeqProgram, limit: u128) -> Result<ModThreshProgram, SmError> {
    if let Some(w) = mod_atoms_essential(seq, limit)? {
        return Err(SmError::NotSymmetric(format!(
            "mod atoms are essential: outputs differ on {:?} vs {:?} (state {})",
            w.multiset.counts(),
            w.shifted.counts(),
            w.state
        )));
    }
    let s = seq.num_inputs();
    let tp: Vec<(u64, u64)> = (0..s).map(|j| seq.orbit_tail_period(j)).collect();
    // Threshold classes only: {0}, {1}, ..., {t_j - 1}, {>= t_j}.
    let class_counts: Vec<u64> = tp.iter().map(|&(t, _)| t + 1).collect();
    let total: u128 = class_counts.iter().map(|&c| c as u128).product();
    if total > limit {
        return Err(SmError::TooLarge {
            needed: total,
            limit,
        });
    }
    let mut clauses: Vec<(Prop, Id)> = Vec::new();
    let mut combo = vec![0u64; s];
    loop {
        let mut counts = vec![0u64; s];
        let mut guard = Prop::True;
        for j in 0..s {
            let (t, _) = tp[j];
            let c = combo[j];
            if c < t {
                counts[j] = c;
                let mut p = Prop::below(j, c + 1);
                if c > 0 {
                    p = p.and(Prop::below(j, c).not());
                }
                guard = guard.and(p);
            } else {
                counts[j] = t.max(1);
                if t > 0 {
                    guard = guard.and(Prop::below(j, t).not());
                }
            }
        }
        if counts.iter().any(|&c| c > 0) {
            let result = seq.eval_multiset(&Multiset::from_counts(counts));
            clauses.push((guard, result));
        }
        let mut j = 0;
        loop {
            if j == s {
                let default = clauses
                    .last()
                    .map(|&(_, r)| r)
                    .unwrap_or_else(|| seq.output(seq.w0()));
                if !clauses.is_empty() {
                    clauses.pop();
                }
                return ModThreshProgram::new(s, seq.num_outputs(), clauses, default);
            }
            combo[j] += 1;
            if combo[j] < class_counts[j] {
                break;
            }
            combo[j] = 0;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::first_disagreement;
    use crate::library;

    #[test]
    fn or_and_max_threshold_are_mod_free() {
        for seq in [
            library::or_seq(),
            library::and_seq(),
            library::max_state_seq(4),
            library::count_at_least_seq(2, 1, 3),
            library::all_equal_seq(3),
        ] {
            assert_eq!(mod_atoms_essential(&seq, 1 << 20).unwrap(), None);
        }
    }

    #[test]
    fn parity_needs_mod_atoms() {
        let w = mod_atoms_essential(&library::parity_seq(), 1 << 20)
            .unwrap()
            .expect("parity is the canonical mod function");
        assert_eq!(w.state, 1);
    }

    #[test]
    fn count_mod_k_needs_mod_atoms() {
        for k in [2usize, 3, 5] {
            assert!(
                mod_atoms_essential(&library::count_ones_mod_seq(k), 1 << 20)
                    .unwrap()
                    .is_some()
            );
        }
    }

    #[test]
    fn threshold_only_rewrite_is_equivalent() {
        for seq in [
            library::or_seq(),
            library::and_seq(),
            library::max_state_seq(3),
            library::count_at_least_seq(3, 2, 4),
            library::all_equal_seq(3),
        ] {
            let mt = to_threshold_only(&seq, 1 << 20).unwrap();
            // No mod atoms with modulus > 1 may appear.
            for (p, _) in mt.clauses() {
                p.visit_atoms(&mut |a| {
                    if let crate::modthresh::Atom::Mod { m, .. } = a {
                        assert!(*m <= 1, "threshold-only program contains a mod atom");
                    }
                });
            }
            assert!(
                first_disagreement(&seq, &mt, 10).is_none(),
                "rewrite changed the function"
            );
        }
    }

    #[test]
    fn rewrite_refuses_essential_mod_functions() {
        assert!(matches!(
            to_threshold_only(&library::parity_seq(), 1 << 20),
            Err(SmError::NotSymmetric(_))
        ));
    }

    #[test]
    fn witness_multisets_really_disagree() {
        let seq = library::count_ones_mod_seq(3);
        let w = mod_atoms_essential(&seq, 1 << 20).unwrap().unwrap();
        assert_ne!(
            seq.eval_multiset(&w.multiset),
            seq.eval_multiset(&w.shifted)
        );
    }
}
