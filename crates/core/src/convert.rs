//! The constructive conversions of Theorem 3.7.
//!
//! * [`par_to_seq`] — Lemma 3.5: conquer one input at a time.
//! * [`mt_to_par`] — Lemma 3.8: evaluate the multiplicity counters needed
//!   by a mod-thresh program in divide-and-conquer fashion, with working
//!   states `⊗_i (Z_{M_i} × {0..T_i-1, ∞})`.
//! * [`seq_to_mt`] — Lemma 3.9: exploit the eventual periodicity of the
//!   iterated processing map `g_j : w ↦ p(w, j)` to express the program as
//!   a decision list over per-state count classes.
//!
//! The compositions give the remaining three directions. The paper notes
//! that these constructions "can entail an exponential increase in program
//! complexity"; all builders therefore take (or default) a table-size
//! budget and return [`SmError::TooLarge`] rather than allocating
//! unboundedly. [`mt_to_par_cost`] and [`seq_to_mt_cost`] report the
//! would-be sizes analytically, which is what the blow-up experiment (E4)
//! plots.

use crate::modthresh::{Atom, ModThreshProgram, Prop};
use crate::multiset::Multiset;
use crate::par::ParProgram;
use crate::seq::SeqProgram;
use crate::{Id, SmError};

/// Default table-entry budget for constructed programs (2^22 entries,
/// 16 MiB of `u32`s).
pub const DEFAULT_LIMIT: u128 = 1 << 22;

/// Lemma 3.5: every parallel SM program has an equivalent sequential
/// program with one extra working state `NIL`.
///
/// ```
/// use fssga_core::convert::{par_to_seq, seq_to_mt, mt_to_par, DEFAULT_LIMIT};
/// use fssga_core::library;
///
/// // The full Theorem 3.7 cycle, with equality decided (not sampled):
/// let seq = library::count_ones_mod_seq(3);
/// let mt = seq_to_mt(&seq, DEFAULT_LIMIT).unwrap();
/// let par = mt_to_par(&mt, DEFAULT_LIMIT).unwrap();
/// let back = par_to_seq(&par);
/// let verdict = fssga_core::equiv::decide_equiv_seq(&seq, &back, 1 << 22).unwrap();
/// assert!(verdict.is_none(), "extensionally identical");
/// ```
///
/// `W' = W ∪ {NIL}`, `w0 = NIL`, `p'(NIL, q) = α(q)`,
/// `p'(w, q) = p(α(q), w)`, and `β'` extends `β` arbitrarily on `NIL`
/// (inputs are nonempty, so `NIL` never reaches `β'`).
pub fn par_to_seq(par: &ParProgram) -> SeqProgram {
    let nw = par.num_working();
    let nil = nw; // index of the NIL state
    SeqProgram::from_fn(
        par.num_inputs(),
        nw + 1,
        par.num_outputs(),
        nil,
        |w, q| {
            if w == nil {
                par.lift(q)
            } else {
                par.combine(par.lift(q), w)
            }
        },
        |w| if w == nil { 0 } else { par.output(w) },
    )
    .expect("construction preserves well-formedness")
}

/// The number of working states Lemma 3.8 would build for `mt`
/// (`∏_i M_i · (T_i + 1)`), without materializing anything.
pub fn mt_to_par_cost(mt: &ModThreshProgram) -> u128 {
    let moduli = mt.moduli();
    let thresholds = mt.thresholds();
    moduli
        .iter()
        .zip(&thresholds)
        .map(|(&m, &t)| m as u128 * (t as u128 + 1))
        .product()
}

/// Lemma 3.8: every mod-thresh program has an equivalent parallel program.
///
/// The working state is, per input state `i`, a pair of finite counters:
/// a mod-`M_i` counter and a saturating counter in `{0..T_i-1, ∞}`
/// (represented as `0..=T_i` with `T_i` standing for "`>= T_i`"), where
/// `M_i` is the lcm of all moduli and `T_i` the max of all thresholds that
/// the program mentions for `i`. `α` is the indicator, `p` adds counters
/// component-wise, and `β` evaluates the decision list on the counters.
///
/// Fails with [`SmError::TooLarge`] if `|W|^2 + |W|` table entries exceed
/// `limit` (the `p` table is `|W| × |W|`).
pub fn mt_to_par(mt: &ModThreshProgram, limit: u128) -> Result<ParProgram, SmError> {
    let s = mt.num_inputs();
    let moduli = mt.moduli();
    let thresholds = mt.thresholds();
    // Per-state digit radix and stride for mixed-radix encoding.
    let radix: Vec<u64> = moduli
        .iter()
        .zip(&thresholds)
        .map(|(&m, &t)| m * (t + 1))
        .collect();
    let num_working = mt_to_par_cost(mt);
    let needed = num_working * num_working + num_working;
    if needed > limit {
        return Err(SmError::TooLarge { needed, limit });
    }
    let num_working = num_working as usize;
    let mut stride = vec![1u64; s];
    for i in 1..s {
        stride[i] = stride[i - 1] * radix[i - 1];
    }

    // Decode working state -> per-state (a_i, b_i) counters.
    let decode = |w: usize| -> Vec<(u64, u64)> {
        let mut w = w as u64;
        (0..s)
            .map(|i| {
                let digit = w % radix[i];
                w /= radix[i];
                (digit / (thresholds[i] + 1), digit % (thresholds[i] + 1))
            })
            .collect()
    };
    let encode = |counters: &[(u64, u64)]| -> usize {
        counters
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (a * (thresholds[i] + 1) + b) * stride[i])
            .sum::<u64>() as usize
    };

    // alpha: the Dirac indicator (δ_q^i, δ_q^i).
    let alpha: Vec<u32> = (0..s)
        .map(|q| {
            let counters: Vec<(u64, u64)> = (0..s)
                .map(|i| {
                    if i == q {
                        (1 % moduli[i], 1.min(thresholds[i]))
                    } else {
                        (0, 0)
                    }
                })
                .collect();
            encode(&counters) as u32
        })
        .collect();

    // p: component-wise (mod, saturating) addition.
    let mut ptab = vec![0u32; num_working * num_working];
    let decoded: Vec<Vec<(u64, u64)>> = (0..num_working).map(decode).collect();
    for w1 in 0..num_working {
        for w2 in 0..num_working {
            let combined: Vec<(u64, u64)> = (0..s)
                .map(|i| {
                    let (a1, b1) = decoded[w1][i];
                    let (a2, b2) = decoded[w2][i];
                    ((a1 + a2) % moduli[i], (b1 + b2).min(thresholds[i]))
                })
                .collect();
            ptab[w1 * num_working + w2] = encode(&combined) as u32;
        }
    }

    // beta: evaluate the decision list, answering atoms from the counters.
    let beta: Vec<u32> = (0..num_working)
        .map(|w| {
            let counters = &decoded[w];
            eval_mt_on_counters(mt, counters, &moduli) as u32
        })
        .collect();

    ParProgram::new(s, num_working, mt.num_outputs(), alpha, ptab, beta)
}

/// Evaluates a mod-thresh decision list given per-state `(a_i, b_i)`
/// counters, where `a_i = μ_i mod M_i` and `b_i = min(μ_i, T_i)`.
fn eval_mt_on_counters(mt: &ModThreshProgram, counters: &[(u64, u64)], moduli: &[u64]) -> Id {
    fn eval_prop(p: &Prop, counters: &[(u64, u64)], moduli: &[u64]) -> bool {
        match p {
            Prop::True => true,
            Prop::False => false,
            Prop::Not(inner) => !eval_prop(inner, counters, moduli),
            Prop::And(ps) => ps.iter().all(|p| eval_prop(p, counters, moduli)),
            Prop::Or(ps) => ps.iter().any(|p| eval_prop(p, counters, moduli)),
            Prop::Atom(Atom::Mod { state, r, m }) => {
                debug_assert_eq!(moduli[*state] % m, 0, "M_i must be a multiple of m");
                counters[*state].0 % m == *r
            }
            Prop::Atom(Atom::Thresh { state, t }) => counters[*state].1 < *t,
        }
    }
    for (prop, r) in mt.clauses() {
        if eval_prop(prop, counters, moduli) {
            return r;
        }
    }
    mt.default_result()
}

/// The number of clauses Lemma 3.9 would build for `seq`
/// (`∏_j (t_j + m_j)`), without materializing anything.
pub fn seq_to_mt_cost(seq: &SeqProgram) -> u128 {
    (0..seq.num_inputs())
        .map(|j| {
            let (t, m) = seq.orbit_tail_period(j);
            t as u128 + m as u128
        })
        .product()
}

/// Lemma 3.9: every sequential SM program has an equivalent mod-thresh
/// program.
///
/// For each input state `j`, the orbit of `w0` under `g_j : w ↦ p(w, j)`
/// is eventually periodic with tail `t_j` and period `m_j`; the value of
/// the function depends on `μ_j` only through its `~_j`-class — one of the
/// singletons `{0}, ..., {t_j - 1}` or the residue classes
/// `{n >= t_j : n ≡ i (mod m_j)}`. The constructed decision list has one
/// clause per element of the product of the class sets; each clause is the
/// conjunction over `j` of the class-membership proposition (Equations (4)
/// and (5) of the paper) and returns the sequential program's value on a
/// representative input.
///
/// Requires the program to actually be SM ([`SmError::NotSymmetric`]
/// otherwise — for a non-symmetric program the value on a representative
/// is meaningless), and respects the clause budget `limit`.
pub fn seq_to_mt(seq: &SeqProgram, limit: u128) -> Result<ModThreshProgram, SmError> {
    seq.check_sm()?;
    let s = seq.num_inputs();
    let tails_periods: Vec<(u64, u64)> = (0..s).map(|j| seq.orbit_tail_period(j)).collect();
    let num_combos = seq_to_mt_cost(seq);
    if num_combos > limit {
        return Err(SmError::TooLarge {
            needed: num_combos,
            limit,
        });
    }

    // Enumerate class combinations in mixed radix, where class index
    // c < t_j means the singleton {c}, and c >= t_j means the residue
    // class i = c - t_j (mod m_j) among counts >= t_j.
    let class_counts: Vec<u64> = tails_periods.iter().map(|&(t, m)| t + m).collect();
    let mut clauses: Vec<(Prop, Id)> = Vec::with_capacity(num_combos as usize);
    let mut combo = vec![0u64; s];
    loop {
        // Build representative counts and the guard proposition.
        let mut counts = vec![0u64; s];
        let mut guard = Prop::True;
        for j in 0..s {
            let (t_j, m_j) = tails_periods[j];
            let c = combo[j];
            if c < t_j {
                // Singleton class {c}: (μ_j < c+1) ∧ ¬(μ_j < c)  [Eq (4)].
                counts[j] = c;
                let mut p = Prop::below(j, c + 1);
                if c > 0 {
                    p = p.and(Prop::below(j, c).not());
                }
                guard = guard.and(p);
            } else {
                // Residue class i among counts >= t_j  [Eq (5)].
                let i = c - t_j;
                // Smallest representative z >= t_j with z ≡ i (mod m_j).
                let z = t_j + (i + m_j - (t_j % m_j)) % m_j;
                counts[j] = z;
                let mut p = Prop::mod_count(j, i % m_j, m_j);
                if t_j > 0 {
                    p = Prop::below(j, t_j).not().and(p);
                }
                guard = guard.and(p);
            }
        }
        // The minimal representative may be the all-zero vector. If some
        // position is in a *periodic* class, that class also contains
        // nonempty inputs — bump that position by its period to get a
        // valid representative. If every class is the singleton {0}, the
        // combination matches only the empty input (outside Q^+): skip.
        if counts.iter().all(|&c| c == 0) {
            if let Some(j) = (0..s).find(|&j| combo[j] >= tails_periods[j].0) {
                counts[j] += tails_periods[j].1;
            }
        }
        if counts.iter().any(|&c| c > 0) {
            let ms = Multiset::from_counts(counts);
            let result = seq.eval_multiset(&ms);
            clauses.push((guard, result));
        }
        // Increment mixed-radix combo.
        let mut j = 0;
        loop {
            if j == s {
                // Done: turn the last clause into the default. (If every
                // combination was the skipped empty-input one, the function
                // is the constant β(w0) — every input state is absorbing.)
                let default = clauses
                    .last()
                    .map(|&(_, r)| r)
                    .unwrap_or_else(|| seq.output(seq.w0()));
                if !clauses.is_empty() {
                    clauses.pop();
                }
                return ModThreshProgram::new(s, seq.num_outputs(), clauses, default);
            }
            combo[j] += 1;
            if combo[j] < class_counts[j] {
                break;
            }
            combo[j] = 0;
            j += 1;
        }
    }
}

/// Sequential → parallel, via Lemma 3.9 then Lemma 3.8 (the composite
/// direction whose existence is the paper's headline surprise).
pub fn seq_to_par(seq: &SeqProgram, limit: u128) -> Result<ParProgram, SmError> {
    let mt = seq_to_mt(seq, limit)?;
    mt_to_par(&mt, limit)
}

/// Parallel → mod-thresh, via Lemma 3.5 then Lemma 3.9.
pub fn par_to_mt(par: &ParProgram, limit: u128) -> Result<ModThreshProgram, SmError> {
    seq_to_mt(&par_to_seq(par), limit)
}

/// Mod-thresh → sequential, via Lemma 3.8 then Lemma 3.5.
pub fn mt_to_seq(mt: &ModThreshProgram, limit: u128) -> Result<SeqProgram, SmError> {
    Ok(par_to_seq(&mt_to_par(mt, limit)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    fn check_agree_seq_mt(seq: &SeqProgram, mt: &ModThreshProgram, max_total: u64) {
        for ms in Multiset::enumerate_up_to(seq.num_inputs(), max_total) {
            assert_eq!(
                seq.eval_multiset(&ms),
                mt.eval_multiset(&ms),
                "disagree on {ms:?}"
            );
        }
    }

    fn check_agree_mt_par(mt: &ModThreshProgram, par: &ParProgram, max_total: u64) {
        for ms in Multiset::enumerate_up_to(mt.num_inputs(), max_total) {
            assert_eq!(
                mt.eval_multiset(&ms),
                par.eval_multiset(&ms),
                "disagree on {ms:?}"
            );
        }
    }

    #[test]
    fn lemma_3_5_or() {
        let par = library::or_par();
        let seq = par_to_seq(&par);
        assert!(seq.is_sm());
        for ms in Multiset::enumerate_up_to(2, 6) {
            assert_eq!(par.eval_multiset(&ms), seq.eval_multiset(&ms));
        }
    }

    #[test]
    fn lemma_3_5_preserves_order_sensitivity_shape() {
        // par_to_seq on sum mod 3.
        let par = library::sum_mod_par(3);
        let seq = par_to_seq(&par);
        assert!(seq.is_sm());
        assert_eq!(seq.num_working(), par.num_working() + 1);
        for ms in Multiset::enumerate_up_to(3, 5) {
            assert_eq!(par.eval_multiset(&ms), seq.eval_multiset(&ms));
        }
    }

    #[test]
    fn lemma_3_8_two_coloring() {
        let mt = library::two_coloring_blank_mt();
        let par = mt_to_par(&mt, DEFAULT_LIMIT).unwrap();
        check_agree_mt_par(&mt, &par, 5);
        // The construction is exactly commutative/associative, hence SM.
        assert!(par.check_sm_with_limit(1 << 30).is_ok());
    }

    #[test]
    fn lemma_3_8_with_mod_atoms() {
        // Parity of state-1 count, plus a threshold on state 0.
        let mt = ModThreshProgram::new(
            2,
            2,
            vec![
                (Prop::mod_count(1, 1, 2).and(Prop::at_least(0, 2)), 1),
                (Prop::mod_count(1, 0, 4), 0),
            ],
            1,
        )
        .unwrap();
        let par = mt_to_par(&mt, DEFAULT_LIMIT).unwrap();
        // M = [1, 4], T = [2, 1]: |W| = (1*3) * (4*2) = 24.
        assert_eq!(par.num_working(), 24);
        check_agree_mt_par(&mt, &par, 9);
    }

    #[test]
    fn lemma_3_8_size_guard() {
        let mt = ModThreshProgram::new(
            3,
            2,
            vec![(
                Prop::mod_count(0, 0, 97)
                    .and(Prop::below(1, 50))
                    .and(Prop::below(2, 50)),
                1,
            )],
            0,
        )
        .unwrap();
        assert!(mt_to_par_cost(&mt) > 100_000);
        assert!(matches!(
            mt_to_par(&mt, 1000),
            Err(SmError::TooLarge { .. })
        ));
    }

    #[test]
    fn lemma_3_9_or() {
        let seq = library::or_seq();
        let mt = seq_to_mt(&seq, DEFAULT_LIMIT).unwrap();
        check_agree_seq_mt(&seq, &mt, 7);
    }

    #[test]
    fn lemma_3_9_parity() {
        let seq = library::parity_seq();
        let mt = seq_to_mt(&seq, DEFAULT_LIMIT).unwrap();
        check_agree_seq_mt(&seq, &mt, 8);
        // Parity genuinely needs a mod atom: find one.
        let mut has_mod = false;
        for (p, _) in mt.clauses() {
            p.visit_atoms(&mut |a| {
                if matches!(a, Atom::Mod { m, .. } if *m > 1) {
                    has_mod = true;
                }
            });
        }
        assert!(has_mod, "parity's mod-thresh program must use mod atoms");
    }

    #[test]
    fn lemma_3_9_max_state() {
        let seq = library::max_state_seq(4);
        let mt = seq_to_mt(&seq, DEFAULT_LIMIT).unwrap();
        check_agree_seq_mt(&seq, &mt, 5);
    }

    #[test]
    fn lemma_3_9_threshold() {
        let seq = library::count_at_least_seq(3, 1, 4);
        let mt = seq_to_mt(&seq, DEFAULT_LIMIT).unwrap();
        check_agree_seq_mt(&seq, &mt, 10);
    }

    #[test]
    fn lemma_3_9_rejects_non_sm() {
        let seq =
            SeqProgram::from_fn(2, 3, 2, 2, |_, q| q, |w| if w == 2 { 0 } else { w }).unwrap();
        assert!(matches!(
            seq_to_mt(&seq, DEFAULT_LIMIT),
            Err(SmError::NotSymmetric(_))
        ));
    }

    #[test]
    fn lemma_3_9_clause_guard() {
        let seq = library::count_ones_mod_seq(30);
        // t=0, m=30 for input 1; input 0 has (t,m) = (0,1): 30 combos.
        assert_eq!(seq_to_mt_cost(&seq), 30);
        assert!(matches!(seq_to_mt(&seq, 10), Err(SmError::TooLarge { .. })));
    }

    #[test]
    fn full_cycle_seq_to_par_to_seq() {
        let seq = library::count_ones_mod_seq(3);
        let par = seq_to_par(&seq, DEFAULT_LIMIT).unwrap();
        let back = par_to_seq(&par);
        for ms in Multiset::enumerate_up_to(2, 9) {
            let expect = seq.eval_multiset(&ms);
            assert_eq!(par.eval_multiset(&ms), expect);
            assert_eq!(back.eval_multiset(&ms), expect);
        }
    }

    #[test]
    fn full_cycle_mt_round_trip() {
        let mt = library::two_coloring_blank_mt();
        let seq = mt_to_seq(&mt, DEFAULT_LIMIT).unwrap();
        assert!(seq.is_sm());
        let mt2 = seq_to_mt(&seq, 1 << 26).unwrap();
        for ms in Multiset::enumerate_up_to(4, 4) {
            assert_eq!(mt.eval_multiset(&ms), mt2.eval_multiset(&ms));
        }
    }

    #[test]
    fn par_to_mt_composite() {
        let par = library::sum_mod_par(2);
        let mt = par_to_mt(&par, DEFAULT_LIMIT).unwrap();
        for ms in Multiset::enumerate_up_to(2, 8) {
            assert_eq!(par.eval_multiset(&ms), mt.eval_multiset(&ms));
        }
    }

    #[test]
    fn blowup_is_observable() {
        // The paper: conversions "can entail an exponential increase".
        // count_ones_mod(m) has 2-state inputs and m working states; its
        // mod-thresh program has ~m clauses, and converting THAT back to
        // parallel yields m*(1+1) * 1*(1+1)-ish working states — observe
        // super-constant growth across m.
        let costs: Vec<u128> = [2u64, 4, 8, 16]
            .iter()
            .map(|&m| seq_to_mt_cost(&library::count_ones_mod_seq(m as usize)))
            .collect();
        assert!(costs.windows(2).all(|w| w[1] >= w[0] * 2));
    }
}
