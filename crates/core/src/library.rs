//! A library of named SM functions.
//!
//! These are the worked examples used across the test suites, benches and
//! documentation: classic semi-lattice functions (OR, AND, MAX — the class
//! the paper's Section 5 notes give "automatic fault-tolerance"), modular
//! counters (which genuinely need mod atoms), thresholds, and the
//! Section 4.1 two-colouring clauses.

use crate::modthresh::{ModThreshProgram, Prop};
use crate::par::ParProgram;
use crate::seq::SeqProgram;
use crate::Id;

/// Sequential OR over `{0,1}`: outputs 1 iff some input is 1.
pub fn or_seq() -> SeqProgram {
    SeqProgram::from_fn(2, 2, 2, 0, |w, q| w | q, |w| w).expect("valid")
}

/// Parallel OR over `{0,1}`.
pub fn or_par() -> ParProgram {
    ParProgram::from_fn(2, 2, 2, |q| q, |a, b| a | b, |w| w).expect("valid")
}

/// Sequential AND over `{0,1}`: outputs 1 iff all inputs are 1.
pub fn and_seq() -> SeqProgram {
    SeqProgram::from_fn(2, 2, 2, 1, |w, q| w & q, |w| w).expect("valid")
}

/// Sequential parity over `{0,1}`: sum of inputs mod 2.
pub fn parity_seq() -> SeqProgram {
    SeqProgram::from_fn(2, 2, 2, 0, |w, q| w ^ q, |w| w).expect("valid")
}

/// Sequential count of 1-inputs modulo `m` (outputs `0..m`).
pub fn count_ones_mod_seq(m: usize) -> SeqProgram {
    assert!(m >= 1);
    SeqProgram::from_fn(2, m, m, 0, |w, q| (w + q) % m, |w| w).expect("valid")
}

/// Parallel sum of input ids modulo `m`, over alphabet `{0..m}`.
pub fn sum_mod_par(m: usize) -> ParProgram {
    assert!(m >= 1);
    ParProgram::from_fn(m, m, m, |q| q, |a, b| (a + b) % m, |w| w).expect("valid")
}

/// Sequential MAX over alphabet `{0..s}` (a semi-lattice function).
pub fn max_state_seq(s: usize) -> SeqProgram {
    assert!(s >= 1);
    SeqProgram::from_fn(s, s, s, 0, |w, q| w.max(q), |w| w).expect("valid")
}

/// Parallel MAX over alphabet `{0..s}`.
pub fn max_state_par(s: usize) -> ParProgram {
    assert!(s >= 1);
    ParProgram::from_fn(s, s, s, |q| q, |a, b| a.max(b), |w| w).expect("valid")
}

/// Sequential MIN over alphabet `{0..s}` — the aggregation at the heart of
/// the Section 2.2 shortest-path rule (`1 + min` of neighbour labels).
pub fn min_state_seq(s: usize) -> SeqProgram {
    assert!(s >= 1);
    SeqProgram::from_fn(s, s, s, s - 1, |w, q| w.min(q), |w| w).expect("valid")
}

/// Sequential saturating counter of inputs equal to `target`, capped at
/// `cap`; outputs 1 iff at least `t` inputs equal `target`. Needs
/// `1 <= t <= cap`.
pub fn count_at_least_seq(s: usize, target: Id, t: u64) -> SeqProgram {
    assert!(target < s && t >= 1);
    let cap = t as usize;
    SeqProgram::from_fn(
        s,
        cap + 1,
        2,
        0,
        move |w, q| {
            if q == target {
                (w + 1).min(cap)
            } else {
                w
            }
        },
        move |w| usize::from(w >= cap),
    )
    .expect("valid")
}

/// "All inputs equal": outputs 1 iff the multiset is `{q, q, ..., q}` for
/// some single `q`. Working states: `s` "seen only q" states, plus a
/// "mixed" sink and a "nothing yet" start.
pub fn all_equal_seq(s: usize) -> SeqProgram {
    assert!(s >= 1);
    let start = s; // nothing seen yet
    let mixed = s + 1; // conflicting inputs seen
    SeqProgram::from_fn(
        s,
        s + 2,
        2,
        start,
        move |w, q| {
            if w == start {
                q
            } else if w == mixed || w != q {
                mixed
            } else {
                w
            }
        },
        move |w| usize::from(w < s),
    )
    .expect("valid")
}

/// The Section 4.1 two-colouring clause set, as seen from a BLANK node.
/// States: 0 = BLANK, 1 = RED, 2 = BLUE, 3 = FAILED.
pub fn two_coloring_blank_mt() -> ModThreshProgram {
    ModThreshProgram::new(
        4,
        4,
        vec![
            (Prop::some(3), 3),
            (Prop::some(1).and(Prop::some(2)), 3),
            (Prop::some(1), 2),
            (Prop::some(2), 1),
        ],
        0,
    )
    .expect("valid")
}

/// Mod-thresh parity of state-`target` multiplicity over alphabet `s`.
pub fn parity_mt(s: usize, target: Id) -> ModThreshProgram {
    assert!(target < s);
    ModThreshProgram::new(s, 2, vec![(Prop::mod_count(target, 1, 2), 1)], 0).expect("valid")
}

/// Mod-thresh "exactly one input in `target`" over alphabet `s` — the
/// shape used by the random-walk tournament (Algorithm 4.2, "exactly one
/// neighbour in state tails").
pub fn exactly_one_mt(s: usize, target: Id) -> ModThreshProgram {
    assert!(target < s);
    ModThreshProgram::new(s, 2, vec![(Prop::exactly_one(target), 1)], 0).expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiset::Multiset;

    #[test]
    fn all_library_seq_programs_are_sm() {
        assert!(or_seq().is_sm());
        assert!(and_seq().is_sm());
        assert!(parity_seq().is_sm());
        assert!(count_ones_mod_seq(5).is_sm());
        assert!(max_state_seq(4).is_sm());
        assert!(min_state_seq(4).is_sm());
        assert!(count_at_least_seq(3, 1, 3).is_sm());
        assert!(all_equal_seq(3).is_sm());
    }

    #[test]
    fn all_library_par_programs_are_sm() {
        assert!(or_par().is_sm());
        assert!(sum_mod_par(4).is_sm());
        assert!(max_state_par(5).is_sm());
    }

    #[test]
    fn and_semantics() {
        let p = and_seq();
        assert_eq!(p.eval_seq(&[1, 1, 1]), 1);
        assert_eq!(p.eval_seq(&[1, 0, 1]), 0);
    }

    #[test]
    fn min_semantics() {
        let p = min_state_seq(5);
        assert_eq!(p.eval_seq(&[4, 2, 3]), 2);
        assert_eq!(p.eval_seq(&[4]), 4);
    }

    #[test]
    fn count_at_least_semantics() {
        let p = count_at_least_seq(3, 2, 3);
        assert_eq!(p.eval_seq(&[2, 2]), 0);
        assert_eq!(p.eval_seq(&[2, 0, 2, 1, 2]), 1);
        assert_eq!(p.eval_seq(&[2, 2, 2, 2]), 1);
    }

    #[test]
    fn all_equal_semantics() {
        let p = all_equal_seq(3);
        assert_eq!(p.eval_seq(&[1, 1, 1]), 1);
        assert_eq!(p.eval_seq(&[2]), 1);
        assert_eq!(p.eval_seq(&[1, 2]), 0);
        assert_eq!(p.eval_seq(&[0, 0, 1]), 0);
    }

    #[test]
    fn parity_mt_semantics() {
        let p = parity_mt(3, 1);
        assert_eq!(p.eval_multiset(&Multiset::from_seq(3, &[1, 1, 2])), 0);
        assert_eq!(p.eval_multiset(&Multiset::from_seq(3, &[1, 0, 1, 1])), 1);
    }

    #[test]
    fn exactly_one_mt_semantics() {
        let p = exactly_one_mt(2, 1);
        assert_eq!(p.eval_multiset(&Multiset::from_seq(2, &[1, 0])), 1);
        assert_eq!(p.eval_multiset(&Multiset::from_seq(2, &[1, 1])), 0);
        assert_eq!(p.eval_multiset(&Multiset::from_seq(2, &[0, 0])), 0);
    }
}
