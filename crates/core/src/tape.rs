//! Uniform tape-program families (paper §5 discussion).
//!
//! The paper generalizes the model from finite state sets to binary
//! tapes: `Q_N = {0,1}^{q(N)}`, `W_N = {0,1}^{w(N)}`, with the program
//! components uniformly Turing-computable in the parameter `N`. Extending
//! Theorem 3.7, a sequential family yields a parallel family with
//! `w'(N) = O(2^{q(N)} · w(N))` working bits (one bounded class counter
//! per input value, each describable in `O(w(N))` bits). The paper then
//! asks: *is sequential processing ever much more efficient than
//! parallel?* — "we do not know of an example where we cannot take
//! `w'(N) = O(w(N))`".
//!
//! This module represents uniform families concretely (a constructor
//! closure per `N`), performs the per-member conversion, and measures the
//! working-bit growth — so the open question becomes a measurable table
//! (see the `tape_families` test and the E4 notes).

use crate::convert::{mt_to_par, seq_to_mt};
use crate::par::ParProgram;
use crate::seq::SeqProgram;
use crate::SmError;

/// A uniformly-constructed family of sequential SM programs, indexed by a
/// size parameter `N`, optionally with a hand-crafted parallel family
/// computing the same functions (the object of the paper's question).
pub struct SeqFamily {
    /// Human-readable name (for tables).
    pub name: &'static str,
    /// Constructs the member for parameter `N`.
    pub make: Box<dyn Fn(usize) -> SeqProgram>,
    /// A direct parallel construction, when one is known. The open
    /// question is whether one with `w'(N) = O(w(N))` always exists;
    /// every family here has one.
    pub best_par: Option<Box<dyn Fn(usize) -> ParProgram>>,
}

impl SeqFamily {
    /// Working bits `w(N) = ceil(log2 |W_N|)` of the sequential member.
    pub fn seq_bits(&self, n: usize) -> u32 {
        ((self.make)(n).num_working() as u64)
            .next_power_of_two()
            .trailing_zeros()
    }

    /// Input bits `q(N) = ceil(log2 |Q_N|)`.
    pub fn input_bits(&self, n: usize) -> u32 {
        ((self.make)(n).num_inputs() as u64)
            .next_power_of_two()
            .trailing_zeros()
    }

    /// Converts the member for `N` into a parallel program (via
    /// Lemma 3.9 then Lemma 3.8) and returns it with its working-bit
    /// count `w'(N)`.
    pub fn parallel_member(&self, n: usize, limit: u128) -> Result<(ParProgram, u32), SmError> {
        let seq = (self.make)(n);
        let mt = seq_to_mt(&seq, limit)?;
        let par = mt_to_par(&mt, limit)?;
        let bits = (par.num_working() as u64)
            .next_power_of_two()
            .trailing_zeros();
        Ok((par, bits))
    }

    /// The paper's generic bound on the parallel working bits:
    /// `2^{q(N)} · (w(N) + 2)` (each of the `2^q` counters fits in
    /// `O(w)` bits because tails and periods are at most `|W| = 2^w`).
    pub fn generic_bound_bits(&self, n: usize) -> u64 {
        (1u64 << self.input_bits(n)) * (u64::from(self.seq_bits(n)) + 2)
    }

    /// Working bits of the best-known parallel member, if one is defined.
    pub fn best_par_bits(&self, n: usize) -> Option<u32> {
        self.best_par.as_ref().map(|mk| {
            (mk(n).num_working() as u64)
                .next_power_of_two()
                .trailing_zeros()
        })
    }
}

/// The example families used by the tests and the E4 discussion.
pub fn example_families() -> Vec<SeqFamily> {
    use crate::library;
    vec![
        SeqFamily {
            name: "count-ones mod N",
            make: Box::new(|n| library::count_ones_mod_seq(n.max(1))),
            best_par: Some(Box::new(|n| {
                let n = n.max(1);
                ParProgram::from_fn(2, n, n, |q| q % n, move |a, b| (a + b) % n, |w| w)
                    .expect("valid")
            })),
        },
        SeqFamily {
            name: "at-least-N ones",
            make: Box::new(|n| library::count_at_least_seq(2, 1, n.max(1) as u64)),
            best_par: Some(Box::new(|n| {
                let cap = n.max(1);
                ParProgram::from_fn(
                    2,
                    cap + 1,
                    2,
                    |q| q,
                    move |a, b| (a + b).min(cap),
                    move |w| usize::from(w >= cap),
                )
                .expect("valid")
            })),
        },
        SeqFamily {
            name: "max over N states",
            make: Box::new(|n| library::max_state_seq(n.max(2))),
            best_par: Some(Box::new(|n| library::max_state_par(n.max(2)))),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::par_to_seq;
    use crate::equiv::decide_equiv_seq;

    #[test]
    fn members_convert_and_stay_equivalent() {
        for fam in example_families() {
            for n in [2usize, 4, 8] {
                let seq = (fam.make)(n);
                let (par, _) = fam.parallel_member(n, 1 << 22).unwrap();
                let back = par_to_seq(&par);
                assert_eq!(
                    decide_equiv_seq(&seq, &back, 1 << 24).unwrap(),
                    None,
                    "{} at N={n}",
                    fam.name
                );
            }
        }
    }

    #[test]
    fn generic_construction_respects_its_bound() {
        // Small N only: the generic construction is genuinely exponential
        // in q(N) — exactly the O(2^{q(N)} w(N)) the paper states.
        for fam in example_families() {
            for n in [2usize, 4, 8] {
                let (_, wp) = fam.parallel_member(n, 1 << 24).unwrap();
                assert!(
                    u64::from(wp) <= fam.generic_bound_bits(n) + 2,
                    "{} at N={n}: w'={wp} > bound {}",
                    fam.name,
                    fam.generic_bound_bits(n)
                );
            }
        }
        // And the blow-up is real: the 16-state max family exceeds a 2^24
        // table budget through the generic pipeline...
        let fam = &example_families()[2];
        assert!(matches!(
            fam.parallel_member(16, 1 << 24),
            Err(SmError::TooLarge { .. })
        ));
        // ...while its hand-crafted parallel member needs 4 bits.
        assert_eq!(fam.best_par_bits(16), Some(4));
    }

    #[test]
    fn observed_families_have_linear_parallel_overhead() {
        // The paper's open question, measured: for every example family a
        // DIRECT parallel construction with w'(N) = O(w(N)) exists — no
        // family here separates sequential from parallel.
        use crate::equiv::first_disagreement;
        for fam in example_families() {
            for n in [4usize, 8, 16, 32] {
                let ws = fam.seq_bits(n).max(1);
                let best = fam.best_par.as_ref().expect("all examples have one")(n);
                assert!(best.check_sm_with_limit(1 << 30).is_ok());
                let wp = fam.best_par_bits(n).unwrap();
                assert!(
                    wp <= 2 * ws + 2,
                    "{} at N={n}: w'={wp} vs w={ws} — a separation candidate!",
                    fam.name
                );
                // The direct member computes the same function.
                let seq = (fam.make)(n);
                assert!(first_disagreement(&seq, &best, 6).is_none(), "{}", fam.name);
            }
        }
    }

    #[test]
    fn bit_accounting() {
        let fam = &example_families()[0]; // count-ones mod N
        assert_eq!(fam.input_bits(4), 1); // Q = {0,1}
        assert_eq!(fam.seq_bits(4), 2); // |W| = 4
        assert_eq!(fam.seq_bits(5), 3); // |W| = 5 -> 3 bits
        assert!(fam.generic_bound_bits(4) >= 8);
    }
}
