//! Rooted binary combination trees (Definition 3.3, Figure 1).
//!
//! A parallel SM program reduces its `k` inputs pairwise over *some* rooted
//! binary tree with `k` leaves; Definition 3.4 requires the result to be
//! independent of which tree (and of the leaf ordering). This module
//! provides the tree type, the shapes used in testing (left comb, right
//! comb, balanced, random), exhaustive enumeration of all shapes (Catalan
//! many — use only for small `k`), and the ASCII rendering that reproduces
//! Figure 1.

use crate::Id;

/// A rooted binary tree whose leaves, read left to right, are implicitly
/// labelled `t_1, ..., t_k` (0-indexed here).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CombTree {
    /// A leaf; payload is its left-to-right index.
    Leaf(usize),
    /// An internal node with left and right subtrees (`T.ℓ`, `T.r`).
    Node(Box<CombTree>, Box<CombTree>),
}

impl CombTree {
    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        match self {
            CombTree::Leaf(_) => 1,
            CombTree::Node(l, r) => l.leaves() + r.leaves(),
        }
    }

    /// Height (a single leaf has height 0).
    pub fn height(&self) -> usize {
        match self {
            CombTree::Leaf(_) => 0,
            CombTree::Node(l, r) => 1 + l.height().max(r.height()),
        }
    }

    /// The left comb `((((t1 t2) t3) t4) ...)` — the shape that makes a
    /// parallel reduction degenerate to a sequential fold.
    pub fn left_comb(k: usize) -> Self {
        assert!(k >= 1);
        let mut t = CombTree::Leaf(0);
        for i in 1..k {
            t = CombTree::Node(Box::new(t), Box::new(CombTree::Leaf(i)));
        }
        t
    }

    /// The right comb `(... (t_{k-2} (t_{k-1} t_k)))`.
    pub fn right_comb(k: usize) -> Self {
        assert!(k >= 1);
        let mut t = CombTree::Leaf(k - 1);
        for i in (0..k - 1).rev() {
            t = CombTree::Node(Box::new(CombTree::Leaf(i)), Box::new(t));
        }
        t
    }

    /// A balanced tree: splits the leaf range in half recursively. This is
    /// the O(log k)-depth shape that motivates the *parallel* reading of
    /// Definition 3.4.
    pub fn balanced(k: usize) -> Self {
        assert!(k >= 1);
        fn build(lo: usize, hi: usize) -> CombTree {
            if hi - lo == 1 {
                CombTree::Leaf(lo)
            } else {
                let mid = lo + (hi - lo) / 2;
                CombTree::Node(Box::new(build(lo, mid)), Box::new(build(mid, hi)))
            }
        }
        build(0, k)
    }

    /// A uniformly-shaped random tree over `k` leaves, built by random
    /// splits. `rand` must return a value in `[0, bound)`.
    pub fn random(k: usize, mut rand: impl FnMut(usize) -> usize) -> Self {
        assert!(k >= 1);
        fn build(lo: usize, hi: usize, rand: &mut impl FnMut(usize) -> usize) -> CombTree {
            if hi - lo == 1 {
                CombTree::Leaf(lo)
            } else {
                let split = lo + 1 + rand(hi - lo - 1);
                CombTree::Node(
                    Box::new(build(lo, split, rand)),
                    Box::new(build(split, hi, rand)),
                )
            }
        }
        build(0, k, &mut rand)
    }

    /// Every rooted binary tree shape with `k` leaves (Catalan(k-1) many):
    /// 1, 1, 2, 5, 14, 42, 132, 429, ... Use only for small `k`.
    pub fn enumerate_all(k: usize) -> Vec<CombTree> {
        assert!((1..=12).contains(&k), "Catalan growth: refuse k > 12");
        fn build(lo: usize, hi: usize) -> Vec<CombTree> {
            if hi - lo == 1 {
                return vec![CombTree::Leaf(lo)];
            }
            let mut out = Vec::new();
            for split in (lo + 1)..hi {
                for l in build(lo, split) {
                    for r in build(split, hi) {
                        out.push(CombTree::Node(Box::new(l.clone()), Box::new(r)));
                    }
                }
            }
            out
        }
        build(0, k)
    }

    /// Leaf indices in left-to-right order (should be `0..k`).
    pub fn leaf_order(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            CombTree::Leaf(i) => out.push(*i),
            CombTree::Node(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// The tree-combination `TC^{(p,T)}` of Definition 3.3: recursively
    /// combine the leaf values `w` with `p`.
    pub fn combine<W: Copy>(&self, w: &[W], p: &mut impl FnMut(W, W) -> W) -> W {
        match self {
            CombTree::Leaf(i) => w[*i],
            CombTree::Node(l, r) => {
                let a = l.combine(w, p);
                let b = r.combine(w, p);
                p(a, b)
            }
        }
    }

    /// ASCII rendering in the style of Figure 1: each internal node shows
    /// the combined value, leaves show `labels[i]`. Returns a multi-line
    /// string (root at top).
    pub fn render(&self, labels: &[String]) -> String {
        fn node_label(t: &CombTree, labels: &[String]) -> String {
            match t {
                CombTree::Leaf(i) => labels.get(*i).cloned().unwrap_or_else(|| format!("t{i}")),
                CombTree::Node(_, _) => "p".to_string(),
            }
        }
        let mut lines = Vec::new();
        fn rec(
            t: &CombTree,
            prefix: &str,
            is_last: bool,
            is_root: bool,
            labels: &[String],
            lines: &mut Vec<String>,
        ) {
            let connector = if is_root {
                ""
            } else if is_last {
                "└── "
            } else {
                "├── "
            };
            lines.push(format!("{prefix}{connector}{}", node_label(t, labels)));
            if let CombTree::Node(l, r) = t {
                let child_prefix = if is_root {
                    String::new()
                } else if is_last {
                    format!("{prefix}    ")
                } else {
                    format!("{prefix}│   ")
                };
                rec(l, &child_prefix, false, false, labels, lines);
                rec(r, &child_prefix, true, false, labels, lines);
            }
        }
        rec(self, "", true, true, labels, &mut lines);
        lines.join("\n")
    }

    /// Renders with an evaluated value at every node (Figure 1 shows the
    /// intermediate combined data). `alpha` gives each leaf's value;
    /// `p` combines; `show` formats a value.
    pub fn render_evaluated<W: Copy>(
        &self,
        alpha: &[W],
        p: &mut impl FnMut(W, W) -> W,
        show: &mut impl FnMut(W) -> String,
    ) -> String {
        fn value<W: Copy>(t: &CombTree, alpha: &[W], p: &mut impl FnMut(W, W) -> W) -> W {
            t.combine(alpha, p)
        }
        let mut lines = Vec::new();
        #[allow(clippy::too_many_arguments)]
        fn rec<W: Copy>(
            t: &CombTree,
            prefix: &str,
            is_last: bool,
            is_root: bool,
            alpha: &[W],
            p: &mut impl FnMut(W, W) -> W,
            show: &mut impl FnMut(W) -> String,
            lines: &mut Vec<String>,
        ) {
            let connector = if is_root {
                ""
            } else if is_last {
                "└── "
            } else {
                "├── "
            };
            let v = value(t, alpha, p);
            let tag = match t {
                CombTree::Leaf(i) => format!("leaf t{} = {}", i + 1, show(v)),
                CombTree::Node(_, _) => format!("p -> {}", show(v)),
            };
            lines.push(format!("{prefix}{connector}{tag}"));
            if let CombTree::Node(l, r) = t {
                let child_prefix = if is_root {
                    String::new()
                } else if is_last {
                    format!("{prefix}    ")
                } else {
                    format!("{prefix}│   ")
                };
                rec(l, &child_prefix, false, false, alpha, p, show, lines);
                rec(r, &child_prefix, true, false, alpha, p, show, lines);
            }
        }
        rec(self, "", true, true, alpha, p, show, &mut lines);
        lines.join("\n")
    }

    /// Applies a permutation to the leaf labels: leaf `i` becomes leaf
    /// `perm[i]`. Used when testing π-invariance (Definition 3.4).
    pub fn permute_leaves(&self, perm: &[Id]) -> CombTree {
        match self {
            CombTree::Leaf(i) => CombTree::Leaf(perm[*i]),
            CombTree::Node(l, r) => CombTree::Node(
                Box::new(l.permute_leaves(perm)),
                Box::new(r.permute_leaves(perm)),
            ),
        }
    }
}

/// All permutations of `0..k` (k! many; use for small k).
pub fn permutations(k: usize) -> Vec<Vec<usize>> {
    assert!(k <= 8, "factorial growth: refuse k > 8");
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..k).collect();
    fn heap(n: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if n <= 1 {
            out.push(cur.clone());
            return;
        }
        for i in 0..n {
            heap(n - 1, cur, out);
            if n.is_multiple_of(2) {
                cur.swap(i, n - 1);
            } else {
                cur.swap(0, n - 1);
            }
        }
    }
    heap(k, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_counts() {
        assert_eq!(CombTree::left_comb(5).leaves(), 5);
        assert_eq!(CombTree::right_comb(5).leaves(), 5);
        assert_eq!(CombTree::balanced(5).leaves(), 5);
        assert_eq!(CombTree::Leaf(0).leaves(), 1);
    }

    #[test]
    fn heights() {
        assert_eq!(CombTree::left_comb(8).height(), 7);
        assert_eq!(CombTree::balanced(8).height(), 3);
        assert_eq!(CombTree::balanced(1).height(), 0);
    }

    #[test]
    fn leaf_order_is_identity() {
        for k in 1..=6 {
            assert_eq!(
                CombTree::left_comb(k).leaf_order(),
                (0..k).collect::<Vec<_>>()
            );
            assert_eq!(
                CombTree::right_comb(k).leaf_order(),
                (0..k).collect::<Vec<_>>()
            );
            assert_eq!(
                CombTree::balanced(k).leaf_order(),
                (0..k).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn enumerate_matches_catalan() {
        // Trees with k leaves = Catalan(k - 1).
        let catalan = [1usize, 1, 2, 5, 14, 42];
        for k in 1..=catalan.len() {
            assert_eq!(CombTree::enumerate_all(k).len(), catalan[k - 1], "k = {k}");
        }
    }

    #[test]
    fn enumerated_trees_are_distinct_and_ordered() {
        let all = CombTree::enumerate_all(4);
        for t in &all {
            assert_eq!(t.leaf_order(), vec![0, 1, 2, 3]);
        }
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn combine_sum_is_tree_independent() {
        let vals = [1i64, 2, 3, 4, 5];
        let mut add = |a: i64, b: i64| a + b;
        for t in CombTree::enumerate_all(5) {
            assert_eq!(t.combine(&vals, &mut add), 15);
        }
    }

    #[test]
    fn combine_subtraction_is_tree_dependent() {
        let vals = [10i64, 3, 2];
        let mut sub = |a: i64, b: i64| a - b;
        let left = CombTree::left_comb(3).combine(&vals, &mut sub); // (10-3)-2
        let right = CombTree::right_comb(3).combine(&vals, &mut sub); // 10-(3-2)
        assert_eq!(left, 5);
        assert_eq!(right, 9);
    }

    #[test]
    fn random_trees_have_right_leaves() {
        let mut x = 12345usize;
        let mut rand = move |b: usize| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) % b
        };
        for k in 1..=20 {
            let t = CombTree::random(k, &mut rand);
            assert_eq!(t.leaves(), k);
            assert_eq!(t.leaf_order(), (0..k).collect::<Vec<_>>());
        }
    }

    #[test]
    fn permute_leaves_relabels() {
        let t = CombTree::left_comb(3).permute_leaves(&[2, 0, 1]);
        assert_eq!(t.leaf_order(), vec![2, 0, 1]);
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(5).len(), 120);
        let p4 = permutations(4);
        let set: std::collections::HashSet<_> = p4.iter().cloned().collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn render_contains_all_leaves() {
        let t = CombTree::balanced(4);
        let labels: Vec<String> = (0..4).map(|i| format!("q{i}")).collect();
        let s = t.render(&labels);
        for l in &labels {
            assert!(s.contains(l.as_str()), "missing {l} in:\n{s}");
        }
    }

    #[test]
    fn render_evaluated_shows_root_value() {
        let t = CombTree::balanced(4);
        let alpha = [1u32, 2, 3, 4];
        let mut p = |a: u32, b: u32| a + b;
        let mut show = |v: u32| v.to_string();
        let s = t.render_evaluated(&alpha, &mut p, &mut show);
        assert!(s.lines().next().unwrap().contains("10"), "{s}");
    }
}
