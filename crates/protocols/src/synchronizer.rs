//! Section 4.2: synchronizers.
//!
//! **α synchronizer** ([`Alpha`]): a generic transform that takes any
//! synchronous FSSGA protocol `P` and produces an asynchronous protocol
//! over states `(cur, prev, clock mod 3)`. A node advances only when no
//! neighbour's clock is behind; it then feeds `P` the `cur` of same-clock
//! neighbours and the `prev` of ahead-by-one neighbours. Adjacent clocks
//! provably differ by at most 1, so mod-3 clocks suffice (finite state),
//! and — unlike in message passing — reading neighbour state is free in
//! the FSSGA model, so the transform costs nothing extra per round.
//!
//! **β synchronizer baseline** ([`BetaSynchronizer`]): the spanning-tree
//! synchronizer from the introduction, included because its sensitivity
//! is Θ(n) — one dead interior tree node halts every node beneath it —
//! which is exactly the contrast experiment E13 measures against α's
//! sensitivity 0.
//!
//! The α wrapper synthesizes the inner protocol's neighbour view from
//! its own finite queries: it reads, for each product state, the count
//! capped at `P::MAX_THRESHOLD` and mod `P::MODULI_LCM`, and sums those
//! into per-inner-state pseudo-counts that answer every query `P` is
//! declared to make with the exact same result as the true counts.

use fssga_engine::{
    NeighborView, Network, Protocol, Sensitive, SensitiveProtocol, SensitivityClass, StateSpace,
};
use fssga_graph::exact;
use fssga_graph::{DynGraph, Graph, NodeId};

/// The α synchronizer's node state: current simulated state, previous
/// simulated state, and a mod-3 clock.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AlphaState<S> {
    /// `q_c` — state in the simulated round `clock`.
    pub cur: S,
    /// `q_p` — state in the simulated round `clock - 1`.
    pub prev: S,
    /// The round counter mod 3.
    pub clock: u8,
}

impl<S: StateSpace> AlphaState<S> {
    /// The initial wrapper state around `P`'s initial state.
    pub fn init(inner: S) -> Self {
        AlphaState {
            cur: inner,
            prev: inner,
            clock: 0,
        }
    }
}

impl<S: StateSpace> StateSpace for AlphaState<S> {
    const COUNT: usize = S::COUNT * S::COUNT * 3;

    fn index(self) -> usize {
        (self.cur.index() * S::COUNT + self.prev.index()) * 3 + self.clock as usize
    }

    fn from_index(i: usize) -> Self {
        assert!(i < Self::COUNT);
        let clock = (i % 3) as u8;
        let rest = i / 3;
        AlphaState {
            cur: S::from_index(rest / S::COUNT),
            prev: S::from_index(rest % S::COUNT),
            clock,
        }
    }
}

/// The α synchronizer transform: wraps a synchronous protocol for
/// asynchronous execution.
pub struct Alpha<P>(pub P);

impl<P: Protocol> Protocol for Alpha<P> {
    type State = AlphaState<P::State>;
    const COMPILED: bool = P::COMPILED;
    const RANDOMNESS: u32 = P::RANDOMNESS;
    // The wrapper itself reads capped/modded counts of product states.
    const MAX_THRESHOLD: u32 = P::MAX_THRESHOLD;
    const MODULI_LCM: u32 = P::MODULI_LCM;

    fn transition(
        &self,
        own: AlphaState<P::State>,
        nbrs: &NeighborView<'_, AlphaState<P::State>>,
        coin: u32,
    ) -> AlphaState<P::State> {
        let i = own.clock;
        let behind = (i + 2) % 3;
        let ahead = (i + 1) % 3;
        let t_bound = P::MAX_THRESHOLD.max(1);
        let l_bound = P::MODULI_LCM.max(1);
        // First pass: if any neighbour is a clock behind, WAIT.
        for ps in nbrs.present_states() {
            if ps.clock == behind {
                return own;
            }
        }
        // Second pass: synthesize the inner neighbour counts. For each
        // product state we learn min(μ, T) and μ mod L, and reconstruct
        // the smallest count consistent with both; sums of these answer
        // every inner query (t <= T, m | L) exactly as the true counts.
        let mut eff = vec![0u32; P::State::COUNT];
        for ps in nbrs.present_states() {
            let contributes = if ps.clock == i {
                ps.cur
            } else if ps.clock == ahead {
                ps.prev
            } else {
                continue;
            };
            let capped = nbrs.count_capped(ps, t_bound);
            let synth = if capped < t_bound {
                capped
            } else {
                let residue = nbrs.count_mod(ps, l_bound);
                t_bound + (residue + l_bound - t_bound % l_bound) % l_bound
            };
            eff[contributes.index()] += synth;
        }
        let inner_view: NeighborView<'_, P::State> = NeighborView::over(&eff);
        let new_cur = self.0.transition(own.cur, &inner_view, coin);
        AlphaState {
            cur: new_cur,
            prev: own.cur,
            clock: (i + 1) % 3,
        }
    }
}

/// Builds an α-wrapped network from a synchronous protocol and its
/// per-node initializer.
pub fn alpha_network<P: Protocol>(
    g: &Graph,
    protocol: P,
    mut init: impl FnMut(NodeId) -> P::State,
) -> Network<Alpha<P>> {
    Network::new(g, Alpha(protocol), |v| AlphaState::init(init(v)))
}

/// The α synchronizer keeps no global structure — each node compares
/// clocks with whoever happens to still be its neighbour — so, like the
/// diffusions it wraps, its critical set is empty: faults merely shrink
/// the neighbourhood being waited on.
impl<P: Protocol> SensitiveProtocol for Alpha<P> {
    fn algorithm_name() -> &'static str {
        "alpha-synchronizer"
    }

    fn declared_class() -> SensitivityClass {
        SensitivityClass::Zero
    }
}

/// The checked semantic contract for `Alpha<TwoColoring>` (the shipped
/// lint instantiation). The synchronizer is *designed* for asynchrony but
/// not order-independent in the strong sense: clock skew is bounded, not
/// absent, so intermediate configurations genuinely depend on the
/// interleaving and the simulation never quiesces (clocks tick forever) —
/// hence no confluence claim. 0-sensitive like the diffusions it wraps.
pub const CONTRACT: crate::contract::SemanticContract = crate::contract::SemanticContract {
    name: "alpha-synchronizer",
    order_independent: false,
    semilattice: false,
    scheduling: crate::contract::Scheduling::Any,
    sensitivity: SensitivityClass::Zero,
    max_nodes: 3,
    config_budget: 150_000,
};

/// The tree-based β synchronizer baseline.
///
/// Pulses are driven over a BFS spanning tree: pulse `k` completes for a
/// node iff its entire tree path to the root is still alive (convergecast
/// and broadcast both traverse it). No repair is attempted — matching the
/// introduction's observation that "a spanning tree-based algorithm ...
/// fails if one of the tree edges dies".
pub struct BetaSynchronizer {
    parent: Vec<u32>,
    root: NodeId,
    pulses: u64,
}

impl BetaSynchronizer {
    /// Builds the spanning tree over the initial topology.
    pub fn new(g: &Graph, root: NodeId) -> Self {
        Self {
            parent: exact::bfs_tree(g, root),
            root,
            pulses: 0,
        }
    }

    /// The critical set: every interior (non-leaf) tree node — Θ(n) of
    /// them on most topologies.
    pub fn critical_set(&self) -> Vec<NodeId> {
        let n = self.parent.len();
        let mut interior = vec![false; n];
        for v in 0..n {
            if self.parent[v] != exact::UNREACHABLE && self.parent[v] != v as u32 {
                interior[self.parent[v] as usize] = true;
            }
        }
        (0..n as NodeId).filter(|&v| interior[v as usize]).collect()
    }

    /// Which alive nodes can still complete pulses, given the current
    /// graph: those whose whole tree path to the root survives.
    pub fn synchronized_nodes(&self, g: &DynGraph) -> Vec<NodeId> {
        let n = self.parent.len();
        let mut ok = vec![None::<bool>; n];
        let mut out = Vec::new();
        for v in 0..n as NodeId {
            if self.path_ok(g, v, &mut ok) {
                out.push(v);
            }
        }
        out
    }

    fn path_ok(&self, g: &DynGraph, v: NodeId, memo: &mut [Option<bool>]) -> bool {
        if let Some(b) = memo[v as usize] {
            return b;
        }
        let result = if !g.is_alive(v) || self.parent[v as usize] == exact::UNREACHABLE {
            false
        } else if v == self.root {
            true
        } else {
            let p = self.parent[v as usize];
            g.has_edge(v, p) && self.path_ok(g, p, memo)
        };
        memo[v as usize] = Some(result);
        result
    }

    /// Attempts one pulse: succeeds (for everyone) iff every alive node is
    /// still synchronized. Returns the set that completed the pulse.
    pub fn pulse(&mut self, g: &DynGraph) -> Vec<NodeId> {
        let sync = self.synchronized_nodes(g);
        self.pulses += 1;
        sync
    }

    /// Pulses attempted so far.
    pub fn pulses(&self) -> u64 {
        self.pulses
    }
}

/// The paper's Θ(n)-sensitive cautionary tale: every interior node of the
/// spanning tree is load-bearing, and the tree is never repaired.
impl Sensitive for BetaSynchronizer {
    fn algorithm(&self) -> &'static str {
        "beta-synchronizer"
    }

    fn sensitivity_class(&self) -> SensitivityClass {
        SensitivityClass::Linear
    }

    fn critical_set(&self) -> Vec<NodeId> {
        BetaSynchronizer::critical_set(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest_paths::{labels_as_distances, ShortestPaths, SpState};
    use crate::two_coloring::{outcome, Color, TwoColoring};
    use fssga_engine::{AsyncPolicy, Budget, Policy, Runner};
    use fssga_graph::generators;
    use fssga_graph::rng::Xoshiro256;

    #[test]
    fn alpha_state_roundtrip() {
        for i in 0..AlphaState::<Color>::COUNT {
            assert_eq!(AlphaState::<Color>::from_index(i).index(), i);
        }
    }

    /// Track per-node clock advances while running an async schedule, and
    /// assert the adjacency skew invariant after every sweep.
    fn run_async_tracking<P: Protocol>(
        g: &Graph,
        protocol: P,
        init: impl Fn(NodeId) -> P::State,
        sweeps: usize,
        seed: u64,
    ) -> (Network<Alpha<P>>, Vec<u64>) {
        let mut net = alpha_network(g, protocol, &init);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let n = g.n();
        let mut advances = vec![0u64; n];
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        for _ in 0..sweeps {
            rng.shuffle(&mut order);
            for &v in &order {
                let before = net.state(v).clock;
                net.activate(v, &mut rng);
                if net.state(v).clock != before {
                    advances[v as usize] += 1;
                }
            }
            // Skew invariant: adjacent total clocks differ by at most 1.
            for (u, v) in g.edges() {
                let du = advances[u as usize] as i64;
                let dv = advances[v as usize] as i64;
                assert!(
                    (du - dv).abs() <= 1,
                    "clock skew violation between {u} and {v}: {du} vs {dv}"
                );
            }
        }
        (net, advances)
    }

    #[test]
    fn clocks_advance_at_least_once_per_sweep() {
        // The paper: "in k units of time each node has advanced the clock
        // of its synchronizer at least k times".
        let g = generators::grid(5, 5);
        let (_, advances) =
            run_async_tracking(&g, TwoColoring, |v| TwoColoring::init(v == 0), 20, 61);
        assert!(
            advances.iter().all(|&a| a >= 20),
            "every node advances >= k times in k sweeps: {advances:?}"
        );
    }

    #[test]
    fn alpha_simulates_synchronous_two_coloring() {
        let mut rng = Xoshiro256::seed_from_u64(62);
        for trial in 0..10 {
            let g = generators::connected_gnp(15, 0.2, &mut rng);
            // Synchronous ground truth.
            let mut sync_net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
            Runner::new(&mut sync_net)
                .budget(Budget::Fixpoint(1000))
                .run()
                .fixpoint
                .unwrap();
            let truth = outcome(sync_net.states());
            // Async simulation.
            let (net, advances) =
                run_async_tracking(&g, TwoColoring, |v| TwoColoring::init(v == 0), 60, trial);
            let cur: Vec<Color> = net.states().iter().map(|s| s.cur).collect();
            assert_eq!(outcome(&cur), truth, "trial {trial}");
            assert!(advances.iter().all(|&a| a >= 60));
        }
    }

    #[test]
    fn alpha_simulation_is_round_exact() {
        // Stronger than outcome equality: after its k-th advance, a
        // node's `cur` equals the synchronous execution's state at round
        // k. Verify on a deterministic protocol by replaying rounds.
        let g = generators::path(8);
        let init = |v: NodeId| ShortestPaths::<16>::init(v == 0);
        // Synchronous trace.
        let mut sync_net = Network::new(&g, ShortestPaths::<16>, init);
        let mut trace: Vec<Vec<SpState<16>>> = vec![sync_net.states().to_vec()];
        let mut rng = Xoshiro256::seed_from_u64(63);
        for _ in 0..30 {
            sync_net.sync_step(&mut rng);
            trace.push(sync_net.states().to_vec());
        }
        // Async alpha run with advance tracking.
        let mut net = alpha_network(&g, ShortestPaths::<16>, init);
        let mut advances = vec![0usize; g.n()];
        let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
        for sweep in 0..30 {
            if sweep % 2 == 1 {
                order.reverse(); // stress different orders
            }
            for &v in &order {
                let before = net.state(v).clock;
                net.activate(v, &mut rng);
                if net.state(v).clock != before {
                    advances[v as usize] += 1;
                    let k = advances[v as usize];
                    assert_eq!(
                        net.state(v).cur,
                        trace[k][v as usize],
                        "node {v} after advance {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn alpha_shortest_paths_converges_asynchronously() {
        let mut rng = Xoshiro256::seed_from_u64(64);
        let g = generators::connected_gnp(25, 0.12, &mut rng);
        let mut net = alpha_network(&g, ShortestPaths::<64>, |v| {
            ShortestPaths::<64>::init(v == 0)
        });
        Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::UniformRandom))
            .budget(Budget::Steps(200 * g.n()))
            .rng(&mut rng)
            .run();
        let labels: Vec<SpState<64>> = net.states().iter().map(|s| s.cur).collect();
        assert_eq!(labels_as_distances(&labels), exact::bfs_distances(&g, &[0]));
    }

    #[test]
    fn beta_critical_set_is_large() {
        let g = generators::path(20);
        let beta = BetaSynchronizer::new(&g, 0);
        // On a path rooted at an end, every non-leaf is interior: 19... 18
        // interior nodes (all but the far leaf and... root is interior too
        // since it has a child).
        let crit = beta.critical_set();
        assert!(
            crit.len() >= g.n() - 2,
            "Θ(n) critical nodes: {}",
            crit.len()
        );
    }

    #[test]
    fn beta_halts_below_a_dead_tree_node() {
        let g = generators::path(10);
        let mut beta = BetaSynchronizer::new(&g, 0);
        let mut dyn_g = DynGraph::from_graph(&g);
        assert_eq!(beta.pulse(&dyn_g).len(), 10);
        dyn_g.remove_node(4);
        let sync = beta.pulse(&dyn_g);
        assert_eq!(sync, vec![0, 1, 2, 3], "everything past the corpse halts");
    }

    #[test]
    fn beta_vs_alpha_fault_survival() {
        // The E13 contrast in miniature: kill one interior node; alpha
        // keeps every alive node advancing (in its component), beta only
        // keeps the root-side fragment.
        let g = generators::path(12);
        let mut beta = BetaSynchronizer::new(&g, 0);
        let mut dyn_g = DynGraph::from_graph(&g);
        dyn_g.remove_node(6);
        let beta_alive = beta.pulse(&dyn_g).len();
        assert_eq!(beta_alive, 6, "beta: only nodes 0..=5 survive");

        let mut net = alpha_network(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        net.remove_node(6);
        let mut rng = Xoshiro256::seed_from_u64(65);
        let mut advances = vec![0u64; g.n()];
        let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
        for _ in 0..10 {
            rng.shuffle(&mut order);
            for &v in &order {
                let before = net.state(v).clock;
                net.activate(v, &mut rng);
                if net.state(v).clock != before {
                    advances[v as usize] += 1;
                }
            }
        }
        let alpha_alive = (0..g.n()).filter(|&v| v != 6 && advances[v] >= 5).count();
        assert_eq!(alpha_alive, 11, "alpha: every alive node keeps advancing");
    }
}
