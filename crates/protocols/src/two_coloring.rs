//! Section 4.1: bipartiteness testing by 2-colouring.
//!
//! The paper's first and simplest FSSGA example, transcribed verbatim:
//! states `{BLANK, RED, BLUE, FAILED}`, one node initially `RED`, the rest
//! `BLANK`. Colours flood outward; a node that sees both colours (or any
//! failure) turns `FAILED`, and `FAILED` itself floods. On a bipartite
//! graph the network stabilizes on a proper 2-colouring; on an odd cycle
//! the conflict meets itself and every node ends `FAILED`.
//!
//! **Deviation note.** The paper's printed clause list applies the same
//! five clauses to every own-state, which makes colours *non-sticky*: a
//! coloured node with only blank neighbours reverts to blank, and the
//! synchronous execution then oscillates forever on, e.g., a 2-path
//! (seed loses its colour in the very first round). We keep the paper's
//! clauses for conflict detection and colour adoption but make
//! already-assigned colours sticky, which is the evident intent
//! ("Initially, one node is in the state RED" + steady-state
//! convergence, property P3). The literal non-sticky clause list is
//! available as [`fssga_core::library::two_coloring_blank_mt`] for
//! side-by-side study.

use fssga_engine::{impl_state_space, NeighborView, Protocol};

/// The four node states of the Section 4.1 automaton.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Color {
    /// Not yet coloured.
    Blank,
    /// Colour class 0.
    Red,
    /// Colour class 1.
    Blue,
    /// A 2-colouring conflict has been observed somewhere.
    Failed,
}
impl_state_space!(Color {
    Blank,
    Red,
    Blue,
    Failed
});

/// The Section 4.1 two-colouring protocol (deterministic).
pub struct TwoColoring;

impl TwoColoring {
    /// Initial state: the designated seed node is `RED`, everyone else
    /// `BLANK`.
    pub fn init(is_seed: bool) -> Color {
        if is_seed {
            Color::Red
        } else {
            Color::Blank
        }
    }
}

impl Protocol for TwoColoring {
    type State = Color;
    const COMPILED: bool = true;

    fn transition(&self, own: Color, nbrs: &NeighborView<'_, Color>, _coin: u32) -> Color {
        // The paper's f[q] clause list (identical for every own state,
        // except that coloured nodes keep their colour when no conflict is
        // visible).
        if nbrs.some(Color::Failed) {
            return Color::Failed;
        }
        if nbrs.some(Color::Red) && nbrs.some(Color::Blue) {
            return Color::Failed;
        }
        match own {
            Color::Failed => Color::Failed,
            Color::Red | Color::Blue => {
                // A coloured node that sees its own colour adjacent has
                // found an odd cycle.
                let clash = match own {
                    Color::Red => nbrs.some(Color::Red),
                    Color::Blue => nbrs.some(Color::Blue),
                    _ => unreachable!(),
                };
                if clash {
                    Color::Failed
                } else {
                    own
                }
            }
            Color::Blank => {
                if nbrs.some(Color::Red) {
                    Color::Blue
                } else if nbrs.some(Color::Blue) {
                    Color::Red
                } else {
                    Color::Blank
                }
            }
        }
    }
}

/// The checked semantic contract. With sticky colours the state order
/// `Blank < {Red, Blue} < Failed` makes every run terminating, and from a
/// single seed the fixed point is unique (the parity colouring on
/// bipartite instances, all-`Failed` otherwise) — so the protocol is
/// order-independent, which the checker verifies over every activation
/// interleaving. 0-sensitive: all paths between two nodes of a bipartite
/// graph share one parity, so stale colours stay consistent on any
/// subgraph.
pub const CONTRACT: crate::contract::SemanticContract = crate::contract::SemanticContract {
    name: "two-coloring",
    order_independent: true,
    semilattice: false,
    scheduling: crate::contract::Scheduling::Any,
    sensitivity: fssga_engine::SensitivityClass::Zero,
    max_nodes: 6,
    config_budget: 50_000,
};

/// The outcome of a stabilized 2-colouring run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColoringOutcome {
    /// Every node coloured, no conflicts: the graph (restricted to the
    /// seed's component) is bipartite.
    ProperColoring,
    /// Some node failed: an odd cycle exists.
    OddCycleDetected,
    /// Some nodes still blank (disconnected from the seed, or not yet
    /// converged).
    Incomplete,
}

/// Classifies a network state vector.
pub fn outcome(states: &[Color]) -> ColoringOutcome {
    if states.contains(&Color::Failed) {
        ColoringOutcome::OddCycleDetected
    } else if states.contains(&Color::Blank) {
        ColoringOutcome::Incomplete
    } else {
        ColoringOutcome::ProperColoring
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_engine::Network;
    use fssga_engine::{AsyncPolicy, Budget, Policy, Runner};
    use fssga_graph::rng::Xoshiro256;
    use fssga_graph::{exact, generators};

    fn run_sync(g: &fssga_graph::Graph) -> (Vec<Color>, usize) {
        let mut net = Network::new(g, TwoColoring, |v| TwoColoring::init(v == 0));
        let rounds = Runner::new(&mut net)
            .budget(Budget::Fixpoint(4 * g.n() + 16))
            .run()
            .fixpoint
            .expect("2-colouring must stabilize");
        (net.states().to_vec(), rounds)
    }

    #[test]
    fn even_cycle_gets_proper_coloring() {
        let (states, _) = run_sync(&generators::cycle(10));
        assert_eq!(outcome(&states), ColoringOutcome::ProperColoring);
        let g = generators::cycle(10);
        for (u, v) in g.edges() {
            assert_ne!(states[u as usize], states[v as usize]);
        }
    }

    #[test]
    fn odd_cycle_fails_everywhere() {
        let (states, _) = run_sync(&generators::cycle(9));
        assert!(states.iter().all(|&s| s == Color::Failed));
    }

    #[test]
    fn triangle_fails() {
        let (states, _) = run_sync(&generators::complete(3));
        assert_eq!(outcome(&states), ColoringOutcome::OddCycleDetected);
    }

    #[test]
    fn grid_is_bipartite() {
        let (states, rounds) = run_sync(&generators::grid(6, 7));
        assert_eq!(outcome(&states), ColoringOutcome::ProperColoring);
        // Stabilizes in O(diameter) rounds: colour floods at speed 1.
        let diam = exact::diameter(&generators::grid(6, 7)).unwrap() as usize;
        assert!(rounds <= diam + 3, "rounds = {rounds}, diam = {diam}");
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        let mut rng = Xoshiro256::seed_from_u64(41);
        for trial in 0..30 {
            let g = if trial % 2 == 0 {
                generators::random_bipartite(6, 8, 0.25, &mut rng)
            } else {
                generators::connected_gnp(14, 0.2, &mut rng)
            };
            let truth = exact::bipartition(&g).is_some();
            let (states, _) = run_sync(&g);
            let got = outcome(&states);
            if truth {
                assert_eq!(got, ColoringOutcome::ProperColoring, "trial {trial}");
            } else {
                assert_eq!(got, ColoringOutcome::OddCycleDetected, "trial {trial}");
            }
        }
    }

    #[test]
    fn async_execution_agrees_with_oracle() {
        let mut rng = Xoshiro256::seed_from_u64(42);
        for trial in 0..20 {
            let g = generators::connected_gnp(12, 0.25, &mut rng);
            let truth = exact::bipartition(&g).is_some();
            let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
            Runner::new(&mut net)
                .policy(Policy::Async(AsyncPolicy::RandomPermutation))
                .budget(Budget::Fixpoint(20 * g.n()))
                .rng(&mut rng)
                .run()
                .fixpoint
                .expect("stabilizes");
            let got = outcome(net.states());
            if truth {
                assert_eq!(got, ColoringOutcome::ProperColoring, "trial {trial}");
            } else {
                assert_eq!(got, ColoringOutcome::OddCycleDetected, "trial {trial}");
            }
        }
    }

    #[test]
    fn seedless_network_stays_blank() {
        let g = generators::cycle(6);
        let mut net = Network::new(&g, TwoColoring, |_| Color::Blank);
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(10))
            .run()
            .fixpoint
            .expect("immediately stable");
        assert_eq!(outcome(net.states()), ColoringOutcome::Incomplete);
    }

    #[test]
    fn compiles_to_formal_fssga() {
        // Witness that TwoColoring is a bona fide FSSGA: extract mod-thresh
        // tables and lock-step them against the native protocol.
        let auto = fssga_engine::compile::compile_protocol(&TwoColoring, 1 << 16).unwrap();
        assert_eq!(auto.num_states(), 4);
        let g = generators::grid(4, 5);
        let mut native = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        use fssga_engine::StateSpace;
        let mut interp = fssga_engine::interp::InterpNetwork::new(&g, &auto, |v| {
            TwoColoring::init(v == 0).index()
        });
        for round in 0..30 {
            native.sync_step_seeded(round);
            interp.sync_step_seeded(round);
            let ids: Vec<usize> = native.states().iter().map(|s| s.index()).collect();
            assert_eq!(&ids, interp.states(), "round {round}");
        }
    }

    #[test]
    fn fault_tolerance_edge_cut_leaves_components_consistent() {
        // Cut an even cycle mid-run: both halves still stabilize without
        // spurious failures (the algorithm is correct on whatever stays
        // connected to the seed; the far side simply stays blank/partial).
        let g = generators::cycle(12);
        let mut net = Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        let mut rng = Xoshiro256::seed_from_u64(43);
        net.sync_step(&mut rng);
        net.remove_edge(3, 4);
        net.remove_edge(9, 10);
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(100))
            .run()
            .fixpoint
            .expect("stabilizes");
        assert!(
            net.states().iter().all(|&s| s != Color::Failed),
            "an even cycle minus edges is still bipartite: no node may fail"
        );
    }
}

/// The paper's *literal* §4.1 automaton: the same five-clause program for
/// every own-state, with non-sticky colours. Exposed to make the
/// deviation note above executable — see the `paper_literal_*` tests for
/// the oscillation and the dead-end the sticky variant fixes.
pub fn paper_literal_automaton() -> fssga_core::ProbFssga {
    use fssga_core::{FsmProgram, Fssga};
    let clause_list = fssga_core::library::two_coloring_blank_mt();
    let f = (0..4)
        .map(|_| FsmProgram::ModThresh(clause_list.clone()))
        .collect();
    fssga_core::ProbFssga::from_deterministic(Fssga::new(4, f).expect("well-formed"))
}

#[cfg(test)]
mod paper_literal_tests {
    use super::*;
    use fssga_engine::interp::InterpNetwork;
    use fssga_engine::{AsyncPolicy, Budget, Policy, Runner};
    use fssga_graph::generators;
    use fssga_graph::rng::Xoshiro256;

    #[test]
    fn paper_literal_oscillates_synchronously() {
        // On a 2-path the seed loses its colour in round 1 and the
        // network blinks forever: no fixpoint within any budget.
        let auto = paper_literal_automaton();
        let g = generators::path(2);
        let mut net = InterpNetwork::new(&g, &auto, |v| usize::from(v == 0)); // RED = 1
        let mut rng = Xoshiro256::seed_from_u64(1);
        assert_eq!(net.run_to_fixpoint(&mut rng, 200), None, "must oscillate");
        // And the orbit really is period-2 blinking, not chaos:
        let s0 = net.states().to_vec();
        net.sync_step(&mut rng);
        let s1 = net.states().to_vec();
        net.sync_step(&mut rng);
        assert_eq!(net.states(), &s0[..]);
        assert_ne!(s0, s1);
    }

    #[test]
    fn paper_literal_can_lose_the_seed_asynchronously() {
        // Activating the seed first erases the only colour in the
        // network: every node is BLANK forever after.
        let auto = paper_literal_automaton();
        let g = generators::path(3);
        let mut net = InterpNetwork::new(&g, &auto, |v| usize::from(v == 0));
        let mut rng = Xoshiro256::seed_from_u64(2);
        net.activate(0, &mut rng); // seed sees only BLANK -> returns BLANK
        assert!(net.states().iter().all(|&s| s == 0), "colour lost");
        // From the all-blank state nothing can ever change again.
        for _ in 0..20 {
            assert_eq!(net.sync_step(&mut rng), 0);
        }
    }

    #[test]
    fn sticky_variant_fixes_both_failure_modes() {
        // Same graphs, our sticky protocol: converges synchronously and
        // survives seed-first asynchronous activation.
        let g = generators::path(2);
        let mut net = fssga_engine::Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        assert!(Runner::new(&mut net)
            .budget(Budget::Fixpoint(50))
            .run()
            .fixpoint
            .is_some());
        assert_eq!(outcome(net.states()), ColoringOutcome::ProperColoring);

        let g = generators::path(3);
        let mut net = fssga_engine::Network::new(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        let mut rng = Xoshiro256::seed_from_u64(3);
        net.activate(0, &mut rng); // sticky: seed keeps RED
        assert_eq!(net.state(0), Color::Red);
        Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::RoundRobin))
            .budget(Budget::Fixpoint(100))
            .rng(&mut rng)
            .run()
            .fixpoint
            .expect("stabilizes");
        assert_eq!(outcome(net.states()), ColoringOutcome::ProperColoring);
    }
}
