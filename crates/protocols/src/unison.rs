//! k-unison: a mod-`K` phase clock (synchronisation under churn).
//!
//! Every node carries a clock `c ∈ 0..K` and ticks `c := (c + 1) mod K`
//! exactly when no clocked neighbour is outside `{c, c+1 mod K}` — the
//! classic *unison* guard, expressible with `μ_q >= 1` thresh atoms only.
//! A freshly arrived node starts in a *joining* state and adopts a
//! neighbour's clock before participating (the minimum clock index
//! present, a deterministic symmetric choice); with no clocked neighbour
//! it opens its own epoch at 0.
//!
//! Unlike the one-shot algorithms of Section 4, unison never reaches a
//! fixpoint — its steady state is a global limit cycle (all clocks equal,
//! advancing one step per round). That makes it the natural companion to
//! the streaming churn engine ([`fssga_engine::churn`]): from a
//! synchronised region, a joining node is one adoption step away from
//! lockstep, a node left behind by a missed tick is caught up by the
//! guard (its neighbours stall until it arrives), and removals can never
//! desynchronise the survivors. Benign faults therefore leave the
//! protocol reasonably correct — sensitivity class 0 — and the verifier
//! explores its cyclic configuration graph directly (the bounded checker
//! tolerates non-terminating protocols).

use fssga_engine::{NeighborView, Protocol, StateSpace};

/// Node state of [`KUnison`]: a clock in `0..K`, or *joining* (`None`)
/// for a node that has not yet adopted a phase.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct UnisonState<const K: usize> {
    /// The current phase, once adopted.
    pub clock: Option<u8>,
}

impl<const K: usize> UnisonState<K> {
    /// A node already running at phase `c`.
    pub fn at(c: u8) -> Self {
        assert!((c as usize) < K);
        UnisonState { clock: Some(c) }
    }

    /// A freshly arrived node that has yet to adopt a phase.
    pub fn joining() -> Self {
        UnisonState { clock: None }
    }
}

impl<const K: usize> StateSpace for UnisonState<K> {
    const COUNT: usize = K + 1;

    fn index(self) -> usize {
        match self.clock {
            None => 0,
            Some(c) => c as usize + 1,
        }
    }

    fn from_index(i: usize) -> Self {
        assert!(i < Self::COUNT);
        UnisonState {
            clock: if i == 0 { None } else { Some((i - 1) as u8) },
        }
    }
}

/// The mod-`K` unison protocol. `K` must be in `3..=128` (with two
/// phases "one ahead" and "one behind" coincide and the guard cannot
/// order them).
pub struct KUnison<const K: usize>;

impl<const K: usize> Protocol for KUnison<K> {
    type State = UnisonState<K>;
    const COMPILED: bool = true;

    fn transition(
        &self,
        own: UnisonState<K>,
        nbrs: &NeighborView<'_, UnisonState<K>>,
        _coin: u32,
    ) -> UnisonState<K> {
        const {
            assert!(K >= 3 && K <= 128, "K must be in 3..=128");
        }
        match own.clock {
            None => {
                // Joining: adopt the minimum clock present among the
                // neighbours; with none, open a fresh epoch. (Across a
                // wrap like {K-1, 0} the minimum index 0 is the *ahead*
                // phase, which the guard below lets stragglers reach.)
                let mut seen: Option<u8> = None;
                for nb in nbrs.present_states() {
                    if let Some(c) = nb.clock {
                        seen = Some(match seen {
                            None => c,
                            Some(x) => x.min(c),
                        });
                    }
                }
                UnisonState {
                    clock: Some(seen.unwrap_or(0)),
                }
            }
            Some(c) => {
                let next = ((c as usize + 1) % K) as u8;
                // Tick unless a clocked neighbour is outside {c, c+1}.
                // Joining neighbours never block: they adopt in their own
                // next activation.
                for nb in nbrs.present_states() {
                    if let Some(x) = nb.clock {
                        if x != c && x != next {
                            return own;
                        }
                    }
                }
                UnisonState { clock: Some(next) }
            }
        }
    }
}

/// The checked semantic contract (for the `K = 4` instance the verifier
/// explores). Unison cycles forever, so no fixpoint-flavoured claim is
/// made; removals cannot desynchronise the survivors, hence class 0.
pub const CONTRACT: crate::contract::SemanticContract = crate::contract::SemanticContract {
    name: "k-unison",
    order_independent: false,
    semilattice: false,
    scheduling: crate::contract::Scheduling::SyncOnly,
    sensitivity: fssga_engine::SensitivityClass::Zero,
    max_nodes: 5,
    config_budget: 50_000,
};

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_engine::Network;
    use fssga_graph::generators;

    fn clocks<const K: usize>(net: &Network<KUnison<K>>) -> Vec<Option<u8>> {
        net.graph()
            .alive_nodes()
            .map(|v| net.state(v).clock)
            .collect()
    }

    fn in_unison<const K: usize>(net: &Network<KUnison<K>>) -> bool {
        let cs = clocks(net);
        cs.iter().all(|c| c.is_some() && *c == cs[0])
    }

    #[test]
    fn state_space_roundtrip() {
        for i in 0..UnisonState::<4>::COUNT {
            assert_eq!(UnisonState::<4>::from_index(i).index(), i);
        }
        assert_eq!(UnisonState::<4>::COUNT, 5);
    }

    #[test]
    fn lockstep_from_the_synchronised_start() {
        let g = generators::grid(4, 4);
        let mut net = Network::new_compiled(&g, KUnison::<4>, |_| UnisonState::at(0));
        for round in 1..=10u8 {
            net.sync_step_kernel_seeded(0);
            assert!(
                clocks(&net).iter().all(|c| *c == Some(round % 4)),
                "round {round}"
            );
        }
    }

    #[test]
    fn straggler_is_caught_up_by_the_guard() {
        let g = generators::path(3);
        let mut net = Network::new_compiled(&g, KUnison::<4>, |_| UnisonState::at(1));
        net.set_state(2, UnisonState::at(0));
        for _ in 0..6 {
            net.sync_step_kernel_seeded(0);
        }
        assert!(in_unison(&net), "clocks = {:?}", clocks(&net));
        // And the unison keeps advancing afterwards.
        let before = clocks(&net)[0].unwrap();
        net.sync_step_kernel_seeded(0);
        assert!(clocks(&net).iter().all(|c| *c == Some((before + 1) % 4)));
    }

    #[test]
    fn joining_node_adopts_and_rejoins_lockstep() {
        // The churn story: run a synchronised network, attach a fresh
        // joining node mid-run, and watch it pull into unison.
        let g = generators::cycle(6);
        let mut net = Network::new_compiled(&g, KUnison::<5>, |_| UnisonState::at(0));
        for _ in 0..3 {
            net.sync_step_kernel_seeded(0);
        }
        let v = net.add_node(UnisonState::joining());
        assert!(net.add_edge(v, 0));
        assert!(net.add_edge(v, 3));
        for _ in 0..12 {
            net.sync_step_kernel_seeded(0);
        }
        assert!(in_unison(&net), "clocks = {:?}", clocks(&net));
        let before = clocks(&net)[0].unwrap();
        net.sync_step_kernel_seeded(0);
        assert!(clocks(&net).iter().all(|c| *c == Some((before + 1) % 5)));
    }

    #[test]
    fn removals_never_desynchronise_survivors() {
        let g = generators::grid(3, 4);
        let mut net = Network::new_compiled(&g, KUnison::<4>, |_| UnisonState::at(0));
        for _ in 0..2 {
            net.sync_step_kernel_seeded(0);
        }
        net.remove_node(5);
        net.remove_edge(0, 1);
        for round in 0..8u8 {
            net.sync_step_kernel_seeded(0);
            assert!(in_unison(&net), "round {round}: {:?}", clocks(&net));
        }
    }
}
