//! Machine-readable semantic contracts, consumed by the bounded model
//! checker in `fssga-verify`.
//!
//! Every shipped algorithm declares, as plain data, the semantic
//! properties the rest of the workspace relies on: whether its
//! asynchronous executions are order-independent (the Church–Rosser
//! property the paper's SM framework promises for multiset-function
//! protocols), whether its state transition induces a semilattice join,
//! which scheduling model its correctness argument assumes, and its
//! Section 2 sensitivity class. The checker *verifies* these claims by
//! exhaustive exploration on small graphs instead of trusting them — a
//! contract here is a proof obligation, not documentation.
//!
//! The exploration caps (`max_nodes`, `config_budget`) are part of the
//! contract on purpose: they pin down the instance family on which the
//! claim has been machine-checked, so a future change that silently blows
//! up the reachable state space fails the lint gate instead of silently
//! shrinking coverage.

use fssga_engine::SensitivityClass;

/// Which scheduling model a protocol's correctness argument assumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// Correct under arbitrary single-node activation orders (the paper's
    /// adversarial asynchronous daemon). The checker explores *all*
    /// interleavings.
    Any,
    /// Correct only under synchronous rounds (Algorithm 4.1's BFS, the
    /// firing squad, ...). The checker explores the synchronous round
    /// tree, branching over every per-node coin assignment.
    SyncOnly,
}

/// A protocol's declared semantic properties, as checkable data.
#[derive(Clone, Copy, Debug)]
pub struct SemanticContract {
    /// Stable name (matches the `Sensitive`/lint naming where one exists).
    pub name: &'static str,
    /// Claim: every maximal run from a canonical initial configuration
    /// reaches the same fixed point, regardless of activation order and
    /// coins (only meaningful — and only checked — for [`Scheduling::Any`]
    /// protocols; it is trivially true for deterministic synchronous
    /// protocols and therefore not claimed by them).
    pub order_independent: bool,
    /// Claim: the induced binary operation `a ∘ b := f(a, {b})` is a
    /// semilattice join (idempotent, commutative, associative) — the
    /// algebraic core behind a diffusion's order-independence.
    pub semilattice: bool,
    /// The scheduling model the protocol is correct under.
    pub scheduling: Scheduling,
    /// The declared Section 2 sensitivity class (cross-checked against the
    /// `Sensitive`/`SensitiveProtocol` declarations where those exist).
    pub sensitivity: SensitivityClass,
    /// Largest instance in the checker's graph family for this protocol.
    pub max_nodes: usize,
    /// Upper bound on distinct reachable configurations explored per
    /// (graph, init) instance before the checker reports a budget warning.
    pub config_budget: usize,
}

/// The contracts of all twelve shipped protocols, in the lint pass order.
pub fn all() -> [&'static SemanticContract; 12] {
    [
        &crate::census::CONTRACT,
        &crate::shortest_paths::CONTRACT,
        &crate::two_coloring::CONTRACT,
        &crate::synchronizer::CONTRACT,
        &crate::bfs::CONTRACT,
        &crate::random_walk::CONTRACT,
        &crate::traversal::CONTRACT,
        &crate::greedy_tourist::CONTRACT,
        &crate::election::CONTRACT,
        &crate::firing_squad::CONTRACT,
        &crate::parity::CONTRACT,
        &crate::unison::CONTRACT,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = all().iter().map(|c| c.name).collect();
        assert!(names.iter().all(|n| !n.is_empty()));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn order_independence_implies_async_scheduling() {
        for c in all() {
            if c.order_independent {
                assert_eq!(
                    c.scheduling,
                    Scheduling::Any,
                    "{}: order-independence is a claim about async runs",
                    c.name
                );
            }
            if c.semilattice {
                assert!(
                    c.order_independent,
                    "{}: a semilattice diffusion is in particular confluent",
                    c.name
                );
            }
        }
    }

    #[test]
    fn budgets_are_sane() {
        for c in all() {
            assert!((2..=6).contains(&c.max_nodes), "{}", c.name);
            assert!(c.config_budget >= 1_000, "{}", c.name);
        }
    }

    #[test]
    fn declared_classes_match_sensitive_impls() {
        use fssga_engine::SensitiveProtocol;
        // Protocol-level declarations (PR 2) and contracts must agree.
        assert_eq!(
            crate::census::CONTRACT.sensitivity,
            <crate::census::Census<4> as SensitiveProtocol>::declared_class()
        );
        assert_eq!(
            crate::shortest_paths::CONTRACT.sensitivity,
            <crate::shortest_paths::ShortestPaths<8> as SensitiveProtocol>::declared_class()
        );
        assert_eq!(
            crate::synchronizer::CONTRACT.sensitivity,
            <crate::synchronizer::Alpha<crate::two_coloring::TwoColoring> as SensitiveProtocol>::declared_class()
        );
    }
}
