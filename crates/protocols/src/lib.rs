//! The algorithm portfolio of *Symmetric Network Computation* (Pritchard &
//! Vempala, SPAA 2006).
//!
//! | Module | Paper section | Algorithm |
//! |--------|---------------|-----------|
//! | [`census`] | §1 | Flajolet–Martin probabilistic census (0-sensitive) |
//! | [`bridges`] | §2.1 | Random-walk bridge finding via edge counters (1-sensitive) |
//! | [`shortest_paths`] | §2.2 | Decentralized distance-to-sink labelling (0-sensitive) |
//! | [`two_coloring`] | §4.1 | Bipartiteness test by 2-colouring |
//! | [`synchronizer`] | §4.2 | The α synchronizer transform, plus a tree-based β baseline |
//! | [`bfs`] | §4.3 | Breadth-first search with mod-3 labels (Algorithm 4.1) |
//! | [`random_walk`] | §4.4 | Coin-flip-tournament random walk (Algorithm 4.2) |
//! | [`traversal`] | §4.5 | Milgram's arm/hand graph traversal (Algorithm 4.3) |
//! | [`greedy_tourist`] | §4.6 | The greedy tourist traversal (sensitivity 1) |
//! | [`election`] | §4.7 | Randomized leader election in O(n log n) (Algorithm 4.4) |
//! | [`parity`] | §4.3 (generalized) | k-parity: distance-mod-k labelling for any `K >= 3` |
//! | [`unison`] | §4.2 (companion) | k-unison: a mod-k phase clock that re-synchronises under churn |
//!
//! FSSGA algorithms (§4) are [`fssga_engine::Protocol`] implementations —
//! they read neighbours only through the symmetric, finite
//! [`fssga_engine::NeighborView`] API, so they satisfy the model's
//! properties S0–S2 by construction, and the test suites compile several
//! of them to formal mod-thresh automata via [`fssga_engine::compile`] as
//! a witness. The §2 algorithms predate the formal model in the paper
//! (agents and unbounded counters); they are implemented as dedicated
//! simulations with the same fault interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod bridges;
pub mod census;
pub mod contract;
pub mod election;
pub mod firing_squad;
pub mod greedy_tourist;
pub mod parity;
pub mod random_walk;
pub mod shortest_paths;
pub mod synchronizer;
pub mod traversal;
pub mod two_coloring;
pub mod unison;
