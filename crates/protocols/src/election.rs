//! Section 4.7: randomized leader election (Algorithm 4.4).
//!
//! Every node starts in the same state; at termination exactly one node
//! is in the `leader` state w.h.p., after `O(n log n)` synchronous rounds.
//! The algorithm composes most of the paper's machinery:
//!
//! * **Phases** (mod-3 counter, Awerbuch–Ostrovsky style): each phase,
//!   every *remaining* node picks a uniform label in `{0, 1}`.
//! * **BFS clusters** (Section 4.3 labels): every remaining node grows a
//!   cluster carrying its label; eliminated nodes join the first cluster
//!   to reach them.
//! * **Conflict detection**: adjacent nodes propagating different cluster
//!   labels, or inconsistent recolouring (below), prove ≥ 2 roots exist
//!   and trigger an `NP_i` broadcast (`i` = largest label known). On
//!   receiving `NP_1`, a remaining label-0 node is eliminated — Claim 4.1
//!   gives each non-unique remainer elimination probability ≥ 1/4 per
//!   phase, so Θ(log n) phases suffice w.h.p.
//! * **Dolev recolouring**: each root recolours itself randomly every
//!   round; colours flow along the BFS successor relation. In a
//!   single-root phase the waves are lockstep (no false alarms); merged
//!   same-label clusters produce colour disagreements w.h.p. (Claim 4.2).
//! * **Milgram agent timer** (Section 4.5): a root whose BFS looks
//!   complete releases an agent; the traversal's `2n - 2` moves let the
//!   root "wait ≈ n rounds" without being able to count to `n`, driving
//!   the failure probability to `2^{-Ω(n)}`. When the agent returns, the
//!   root declares itself leader.
//!
//! **Concretization choices** (the paper is prose here):
//!
//! 1. Recolouring runs from phase start rather than from BFS completion.
//!    This is a strict strengthening that guarantees per-phase liveness:
//!    merged same-label clusters can deadlock the BFS-completion wave
//!    (successor cycles), and continuous recolouring detects them anyway.
//! 2. Colour consistency is checked against predecessors *and*
//!    same-level neighbours. In a single-root synchronous phase both are
//!    provably lockstep-equal (no false positives); the same-level check
//!    is what catches two *adjacent same-label roots*, which have no
//!    common successors.
//! 3. Premature leaders (paper: "in a long enough path graph, multiple
//!    nodes will likely enter the leader state prematurely") are demoted
//!    when the next `NP` wave advances their phase.

use fssga_engine::{NeighborView, Network, Protocol, Sensitive, SensitivityClass, StateSpace};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{Graph, NodeId};

use crate::traversal::Elect as TravElect;
use crate::traversal::{self, HandPhase, Hood, TStatus, TravState};

/// `NP_i` broadcast state.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Np {
    /// Not currently propagating a new-phase order.
    None,
    /// New phase; largest label known is 0.
    Np0,
    /// New phase; largest label known is 1.
    Np1,
}

/// BFS status within a cluster (Found is unused: clusters have no
/// targets, completion is the all-failed wave reaching the root).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BStat {
    /// Subtree still growing.
    Waiting,
    /// Subtree exhausted.
    Failed,
}

/// A recolouring colour.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Colour {
    /// Not yet coloured this phase.
    Blank,
    /// "Red".
    C0,
    /// "Blue".
    C1,
}

/// Cluster membership.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Member {
    /// Not yet absorbed by any cluster this phase.
    Out,
    /// Member of a cluster.
    In {
        /// The root's label bit, flooded with the cluster.
        clabel: u8,
        /// BFS distance to the root, mod 3.
        dist: u8,
        /// Completion status.
        status: BStat,
        /// Current recolouring wave value.
        colour: Colour,
        /// True for exactly one round after joining. Neighbours may only
        /// join through *mature* members; this halves the growth speed,
        /// so the (speed-1) phase wave always outruns the cluster and
        /// distance layers never overlap — the residues an unjoined node
        /// sees are provably unambiguous in a single-root phase.
        fresh: bool,
    },
}

/// The full election state.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ElectState {
    /// Phase counter mod 3.
    pub phase: u8,
    /// Still a candidate?
    pub remain: bool,
    /// This phase's label (valid iff `remain`).
    pub label: u8,
    /// NP broadcast state.
    pub np: Np,
    /// Declared leadership (may be premature; see module docs).
    pub leader: bool,
    /// Cluster membership.
    pub member: Member,
    /// Milgram-agent sub-state (Section 4.5 automaton).
    pub trav: TravState,
}

impl ElectState {
    /// The uniform initial state: everyone remaining, `NP_0` pending so
    /// the very first round performs the paper's "at start of algorithm,
    /// pick a label and begin BFS" uniformly.
    pub fn init() -> Self {
        ElectState {
            phase: 0,
            remain: true,
            label: 0,
            np: Np::Np0,
            leader: false,
            member: Member::Out,
            trav: TravState {
                originator: false,
                status: TStatus::Blank(TravElect::Idle),
            },
        }
    }
}

const MEMBER_COUNT: usize = 1 + 2 * 3 * 2 * 3 * 2; // Out + clabel×dist×status×colour×fresh

fn member_index(m: Member) -> usize {
    match m {
        Member::Out => 0,
        Member::In {
            clabel,
            dist,
            status,
            colour,
            fresh,
        } => {
            let s = match status {
                BStat::Waiting => 0,
                BStat::Failed => 1,
            };
            let c = match colour {
                Colour::Blank => 0,
                Colour::C0 => 1,
                Colour::C1 => 2,
            };
            1 + (((clabel as usize * 3 + dist as usize) * 2 + s) * 3 + c) * 2 + usize::from(fresh)
        }
    }
}

fn member_from_index(i: usize) -> Member {
    if i == 0 {
        return Member::Out;
    }
    let i = i - 1;
    let fresh = i % 2 == 1;
    let i = i / 2;
    let colour = match i % 3 {
        0 => Colour::Blank,
        1 => Colour::C0,
        _ => Colour::C1,
    };
    let rest = i / 3;
    let status = if rest.is_multiple_of(2) {
        BStat::Waiting
    } else {
        BStat::Failed
    };
    let rest = rest / 2;
    Member::In {
        clabel: (rest / 3) as u8,
        dist: (rest % 3) as u8,
        status,
        colour,
        fresh,
    }
}

impl StateSpace for ElectState {
    // phase(3) × remain(2) × label(2) × np(3) × leader(2) × member × trav
    const COUNT: usize = 3 * 2 * 2 * 3 * 2 * MEMBER_COUNT * TravState::COUNT;

    fn index(self) -> usize {
        let np = match self.np {
            Np::None => 0,
            Np::Np0 => 1,
            Np::Np1 => 2,
        };
        let mut i = self.phase as usize;
        i = i * 2 + usize::from(self.remain);
        i = i * 2 + self.label as usize;
        i = i * 3 + np;
        i = i * 2 + usize::from(self.leader);
        i = i * MEMBER_COUNT + member_index(self.member);
        i = i * TravState::COUNT + self.trav.index();
        i
    }

    fn from_index(i: usize) -> Self {
        assert!(i < Self::COUNT);
        let trav = TravState::from_index(i % TravState::COUNT);
        let i = i / TravState::COUNT;
        let member = member_from_index(i % MEMBER_COUNT);
        let i = i / MEMBER_COUNT;
        let leader = i % 2 == 1;
        let i = i / 2;
        let np = match i % 3 {
            0 => Np::None,
            1 => Np::Np0,
            _ => Np::Np1,
        };
        let i = i / 3;
        let label = (i % 2) as u8;
        let i = i / 2;
        let remain = i % 2 == 1;
        let phase = (i / 2) as u8;
        ElectState {
            phase,
            remain,
            label,
            np,
            leader,
            member,
            trav,
        }
    }
}

/// What one pass over the (same-phase) neighbourhood reveals.
struct Scan {
    any_behind: bool,
    any_ahead: bool,
    np_seen: Np,
    /// Cluster labels present among member neighbours.
    clabels: [bool; 2],
    /// Any label-1 evidence (member clabel 1 or remaining neighbour label 1).
    label1_known: bool,
    /// Per (clabel, dist-residue): which colours are present.
    colours: [[[bool; 2]; 3]; 2], // [clabel][dist][C0/C1]
    /// Per (clabel, dist-residue): any Waiting member.
    waiting: [[bool; 3]; 2],
    /// Per (clabel, dist-residue): any *mature* member (join sources).
    mature: [[bool; 3]; 2],
    /// Any same-phase unclustered neighbour.
    any_out: bool,
    /// Projected traversal neighbourhood.
    hood: Hood,
}

fn scan(own: &ElectState, nbrs: &NeighborView<'_, ElectState>) -> Scan {
    let p = own.phase;
    let behind = (p + 2) % 3;
    let ahead = (p + 1) % 3;
    let mut s = Scan {
        any_behind: false,
        any_ahead: false,
        np_seen: Np::None,
        clabels: [false; 2],
        label1_known: false,
        colours: [[[false; 2]; 3]; 2],
        waiting: [[false; 3]; 2],
        mature: [[false; 3]; 2],
        any_out: false,
        hood: Hood {
            any_arm: false,
            arm_or_hand: 0,
            any_blank: false,
            hand_phase: None,
            tails: 0,
        },
    };
    let mut hand_key: Option<usize> = None;
    for ps in nbrs.present_states() {
        if ps.phase == behind {
            s.any_behind = true;
            continue;
        }
        if ps.phase == ahead {
            s.any_ahead = true;
            continue;
        }
        // Same phase.
        match ps.np {
            Np::Np1 => s.np_seen = Np::Np1,
            Np::Np0 => {
                if s.np_seen == Np::None {
                    s.np_seen = Np::Np0;
                }
            }
            Np::None => {}
        }
        if ps.remain && ps.label == 1 {
            s.label1_known = true;
        }
        match ps.member {
            Member::Out => s.any_out = true,
            Member::In {
                clabel,
                dist,
                status,
                colour,
                fresh,
            } => {
                let cl = clabel as usize;
                s.clabels[cl] = true;
                if clabel == 1 {
                    s.label1_known = true;
                }
                match colour {
                    Colour::C0 => s.colours[cl][dist as usize][0] = true,
                    Colour::C1 => s.colours[cl][dist as usize][1] = true,
                    Colour::Blank => {}
                }
                if status == BStat::Waiting {
                    s.waiting[cl][dist as usize] = true;
                }
                if !fresh {
                    s.mature[cl][dist as usize] = true;
                }
            }
        }
        // Traversal projection (same-phase only).
        match ps.trav.status {
            TStatus::Arm => {
                s.hood.any_arm = true;
                s.hood.arm_or_hand = (s.hood.arm_or_hand + nbrs.count_capped(ps, 2)).min(2);
            }
            TStatus::Hand(hp) => {
                // Same max-index tie-break as `traversal::scan`: two
                // hands only coexist post-fault, and the summary must be
                // a pure function of the neighbour multiset.
                let k = ps.index();
                if hand_key.is_none_or(|best| k > best) {
                    hand_key = Some(k);
                    s.hood.hand_phase = Some(hp);
                }
                s.hood.arm_or_hand = (s.hood.arm_or_hand + nbrs.count_capped(ps, 2)).min(2);
            }
            TStatus::Blank(e) => {
                s.hood.any_blank = true;
                if e == TravElect::Tails {
                    s.hood.tails = (s.hood.tails + nbrs.count_capped(ps, 2)).min(2);
                }
            }
            _ => {}
        }
    }
    s
}

/// The checked semantic contract. Election composes phases, clustering
/// and Milgram agents; early on every node is a remaining candidate, so
/// the critical set is Θ(n). Its product state space is by far the
/// largest in the portfolio (~69k states), so the checker's instance
/// family stops at n = 3 with a generous configuration budget.
pub const CONTRACT: crate::contract::SemanticContract = crate::contract::SemanticContract {
    name: "leader-election",
    order_independent: false,
    semilattice: false,
    scheduling: crate::contract::Scheduling::SyncOnly,
    sensitivity: SensitivityClass::Linear,
    max_nodes: 3,
    config_budget: 30_000,
};

/// The election protocol.
pub struct Election;

impl Protocol for Election {
    type State = ElectState;
    const COMPILED: bool = true;
    /// Two independent bits per activation: bit 0 drives label picks and
    /// the agent tournament, bit 1 drives recolouring.
    const RANDOMNESS: u32 = 4;

    fn transition(
        &self,
        own: ElectState,
        nbrs: &NeighborView<'_, ElectState>,
        coin: u32,
    ) -> ElectState {
        let coin_a = coin & 1;
        let coin_b = (coin >> 1) & 1;
        let s = scan(&own, nbrs);

        // 1. A neighbour is a phase behind: hold everything.
        if s.any_behind {
            return own;
        }

        // 2. Advance the phase (own NP set, or a neighbour already ahead).
        if own.np != Np::None || s.any_ahead {
            let remain = if own.np == Np::Np1 && own.remain && own.label == 0 {
                false
            } else {
                own.remain
            };
            let label = if remain { coin_a as u8 } else { 0 };
            let member = if remain {
                Member::In {
                    clabel: label,
                    dist: 0,
                    status: BStat::Waiting,
                    colour: if coin_b == 0 { Colour::C0 } else { Colour::C1 },
                    fresh: true,
                }
            } else {
                Member::Out
            };
            return ElectState {
                phase: (own.phase + 1) % 3,
                remain,
                label,
                np: Np::None,
                leader: false,
                member,
                trav: TravState {
                    originator: remain,
                    status: TStatus::Blank(TravElect::Idle),
                },
            };
        }

        // 3. Conflict detection / NP join.
        let mut conflict = false;
        let mut np_label1 =
            s.np_seen == Np::Np1 || (own.remain && own.label == 1) || s.label1_known;
        if let Member::In { clabel, .. } = own.member {
            // Another cluster label adjacent to mine.
            if s.clabels[1 - clabel as usize] {
                conflict = true;
            }
            if clabel == 1 {
                np_label1 = true;
            }
        } else if s.clabels[0] && s.clabels[1] {
            // Two clusters meeting over an unclustered node.
            conflict = true;
        }
        if let Member::Out = own.member {
            // An unjoined node seeing two distinct mature residues of the
            // same cluster label: impossible in a single-root phase (the
            // maturity rule keeps distance layers two rounds apart), so
            // it proves a second root.
            for cl in 0..2 {
                let layers = (0..3).filter(|&d| s.mature[cl][d]).count();
                if layers >= 2 {
                    conflict = true;
                }
            }
        }
        if let Member::In {
            clabel,
            dist,
            colour,
            ..
        } = own.member
        {
            let cl = clabel as usize;
            let pred = ((dist + 2) % 3) as usize;
            // Predecessor colours disagree.
            if s.colours[cl][pred][0] && s.colours[cl][pred][1] {
                conflict = true;
            }
            // Same-level colours disagree (with each other or with mine).
            let lvl = dist as usize;
            let mut c0 = s.colours[cl][lvl][0];
            let mut c1 = s.colours[cl][lvl][1];
            match colour {
                Colour::C0 => c0 = true,
                Colour::C1 => c1 = true,
                Colour::Blank => {}
            }
            if c0 && c1 {
                conflict = true;
            }
        }
        if conflict || s.np_seen != Np::None {
            return ElectState {
                np: if np_label1 { Np::Np1 } else { Np::Np0 },
                ..own
            };
        }

        // 4. Normal in-phase activity: cluster growth, recolouring,
        //    completion, and the agent sub-automaton.
        let mut next = own;
        match own.member {
            Member::Out => {
                // Join the (single) adjacent cluster, through a mature
                // member; its residue is unambiguous (see conflict rule).
                let joined = match (s.clabels[0], s.clabels[1]) {
                    (true, false) => Some(0u8),
                    (false, true) => Some(1u8),
                    _ => None, // both-labels case was a conflict above
                };
                if let Some(cl) = joined {
                    let d = (0..3u8).find(|&d| s.mature[cl as usize][d as usize]);
                    if let Some(d) = d {
                        next.member = Member::In {
                            clabel: cl,
                            dist: (d + 1) % 3,
                            status: BStat::Waiting,
                            colour: Colour::Blank,
                            fresh: true,
                        };
                    }
                }
            }
            Member::In {
                clabel,
                dist,
                status,
                colour,
                ..
            } => {
                let cl = clabel as usize;
                // Recolouring.
                let new_colour = if own.remain {
                    // Roots recolour randomly every round.
                    if coin_b == 0 {
                        Colour::C0
                    } else {
                        Colour::C1
                    }
                } else {
                    let pred = ((dist + 2) % 3) as usize;
                    match (s.colours[cl][pred][0], s.colours[cl][pred][1]) {
                        (true, false) => Colour::C0,
                        (false, true) => Colour::C1,
                        _ => colour, // none coloured yet (both = conflict above)
                    }
                };
                // Completion wave.
                let succ = ((dist + 1) % 3) as usize;
                let new_status = if status == BStat::Waiting && !s.any_out && !s.waiting[cl][succ] {
                    BStat::Failed
                } else {
                    status
                };
                next.member = Member::In {
                    clabel,
                    dist,
                    status: new_status,
                    colour: new_colour,
                    fresh: false, // mature after one round
                };
                // Agent release: a root whose BFS looks complete and who
                // has not yet released an agent starts the Milgram timer.
                if own.remain
                    && status == BStat::Failed
                    && own.trav.status == TStatus::Blank(TravElect::Idle)
                    && own.trav.originator
                {
                    next.trav = TravState {
                        originator: true,
                        status: TStatus::Hand(HandPhase::Settle1),
                    };
                    return next;
                }
            }
        }
        // Agent sub-automaton (everyone participates).
        next.trav = traversal::step(own.trav, &s.hood, coin_a);
        // Leader declaration: the agent returned and retracted fully.
        if own.remain && own.trav.originator && next.trav.status == TStatus::Visited {
            next.leader = true;
        }
        if own.leader {
            next.leader = true; // sticky within the phase
        }
        next
    }
}

/// Per-round aggregate snapshot, for instrumentation and the experiments.
#[derive(Clone, Debug)]
pub struct ElectionStats {
    /// Synchronous rounds executed.
    pub rounds: u64,
    /// Remaining candidates.
    pub remaining: usize,
    /// Current leaders (should be 1 at termination).
    pub leaders: Vec<NodeId>,
    /// Maximum phase advances observed at any node.
    pub max_phase_advances: u64,
}

/// The outcome of an election run.
#[derive(Clone, Debug)]
pub struct ElectionRun {
    /// Rounds until termination (single remaining candidate who declared
    /// leadership), or the budget if not reached.
    pub rounds: u64,
    /// The elected leader, if termination was reached.
    pub leader: Option<NodeId>,
    /// Per-phase count of remaining candidates (phase advance moments of
    /// node 0, used by the Claim 4.1 experiment).
    pub remaining_per_phase: Vec<usize>,
    /// Total phase advances of node 0 (≈ number of phases).
    pub phases: u64,
    /// Rounds spent in each completed phase (node-0 advance to advance) —
    /// Claim 4.2 predicts O(n) per non-final phase.
    pub phase_durations: Vec<u64>,
}

/// Drives [`Election`] to termination.
pub struct ElectionHarness {
    net: Network<Election>,
    phase_advances: Vec<u64>,
}

impl ElectionHarness {
    /// All nodes start in the identical [`ElectState::init`] state.
    pub fn new(g: &Graph) -> Self {
        let net = Network::new(g, Election, |_| ElectState::init());
        let n = g.n();
        Self {
            net,
            phase_advances: vec![0; n],
        }
    }

    /// Access to the network.
    pub fn network_mut(&mut self) -> &mut Network<Election> {
        &mut self.net
    }

    /// Current aggregate stats.
    pub fn stats(&self) -> ElectionStats {
        ElectionStats {
            rounds: self.net.metrics.rounds,
            remaining: self.net.states().iter().filter(|s| s.remain).count(),
            leaders: (0..self.net.n() as NodeId)
                .filter(|&v| self.net.state(v).leader)
                .collect(),
            max_phase_advances: self.phase_advances.iter().copied().max().unwrap_or(0),
        }
    }

    /// Runs until a unique remaining candidate has declared leadership,
    /// or `max_rounds`.
    pub fn run(&mut self, max_rounds: u64, rng: &mut Xoshiro256) -> ElectionRun {
        let mut remaining_per_phase = vec![self.net.states().iter().filter(|s| s.remain).count()];
        let mut phase_durations = Vec::new();
        let mut last_advance_round = 0u64;
        let mut rounds = 0;
        while rounds < max_rounds {
            let before: Vec<u8> = self.net.states().iter().map(|s| s.phase).collect();
            self.net.sync_step(rng);
            rounds += 1;
            for (v, &ph) in before.iter().enumerate() {
                if self.net.states()[v].phase != ph {
                    self.phase_advances[v] += 1;
                    if v == 0 {
                        remaining_per_phase
                            .push(self.net.states().iter().filter(|s| s.remain).count());
                        phase_durations.push(rounds - last_advance_round);
                        last_advance_round = rounds;
                    }
                }
            }
            let stats = self.stats();
            if stats.remaining == 1 && stats.leaders.len() == 1 {
                let leader = stats.leaders[0];
                if self.net.state(leader).remain {
                    return ElectionRun {
                        rounds,
                        leader: Some(leader),
                        remaining_per_phase,
                        phases: self.phase_advances[0],
                        phase_durations,
                    };
                }
            }
        }
        ElectionRun {
            rounds,
            leader: None,
            remaining_per_phase,
            phases: self.phase_advances[0],
            phase_durations,
        }
    }
}

/// Election composes phases, clustering and agent traversals; losing any
/// remaining candidate (or a declared leader, or a node currently holding
/// a Milgram agent) can change the elected outcome, and early on *every*
/// node is a remaining candidate — a Θ(n) critical set.
impl Sensitive for ElectionHarness {
    fn algorithm(&self) -> &'static str {
        "leader-election"
    }

    fn sensitivity_class(&self) -> SensitivityClass {
        SensitivityClass::Linear
    }

    fn critical_set(&self) -> Vec<NodeId> {
        (0..self.net.n() as NodeId)
            .filter(|&v| {
                let s = self.net.state(v);
                s.remain || s.leader || s.trav.is_hand()
            })
            .collect()
    }
}

/// Diagnostic: replays the conflict-detection logic of the transition for
/// every node and reports which condition (if any) fires. Used by tests
/// and the experiment harness to explain phase churn.
pub fn find_conflicts(net: &Network<Election>) -> Vec<(NodeId, String)> {
    let mut out = Vec::new();
    for v in 0..net.n() as NodeId {
        let own = net.state(v);
        if !net.can_activate(v) {
            continue;
        }
        let behind = (own.phase + 2) % 3;
        let ahead = (own.phase + 1) % 3;
        let mut clabels = [false; 2];
        let mut colours = [[[false; 2]; 3]; 2];
        let mut np_seen = false;
        let mut skip = false;
        for &w in net.graph().neighbors(v) {
            let ns = net.state(w);
            if ns.phase == behind || ns.phase == ahead {
                skip = true;
                continue;
            }
            if ns.np != Np::None {
                np_seen = true;
            }
            if let Member::In {
                clabel,
                dist,
                colour,
                ..
            } = ns.member
            {
                clabels[clabel as usize] = true;
                match colour {
                    Colour::C0 => colours[clabel as usize][dist as usize][0] = true,
                    Colour::C1 => colours[clabel as usize][dist as usize][1] = true,
                    Colour::Blank => {}
                }
            }
        }
        if skip {
            continue;
        }
        if np_seen {
            out.push((v, "np-neighbor".into()));
        }
        match own.member {
            Member::In {
                clabel,
                dist,
                colour,
                ..
            } => {
                if clabels[1 - clabel as usize] {
                    out.push((v, "label-mismatch".into()));
                }
                let cl = clabel as usize;
                let pred = ((dist + 2) % 3) as usize;
                if colours[cl][pred][0] && colours[cl][pred][1] {
                    out.push((v, format!("pred-colour d={dist}")));
                }
                let lvl = dist as usize;
                let mut c0 = colours[cl][lvl][0];
                let mut c1 = colours[cl][lvl][1];
                match colour {
                    Colour::C0 => c0 = true,
                    Colour::C1 => c1 = true,
                    Colour::Blank => {}
                }
                if c0 && c1 {
                    out.push((v, format!("level-colour d={dist} own={colour:?}")));
                }
            }
            Member::Out => {
                if clabels[0] && clabels[1] {
                    out.push((v, "join-two-labels".into()));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_graph::generators;

    #[test]
    fn state_space_roundtrip() {
        // COUNT is ~34k; check a stride of indices plus the init state.
        for i in (0..ElectState::COUNT).step_by(97) {
            assert_eq!(ElectState::from_index(i).index(), i);
        }
        let s = ElectState::init();
        assert_eq!(ElectState::from_index(s.index()), s);
    }

    fn elect(g: &Graph, seed: u64, budget: u64) -> ElectionRun {
        let mut h = ElectionHarness::new(g);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let run = h.run(budget, &mut rng);
        assert!(
            run.leader.is_some(),
            "no leader within {budget} rounds on n={} (phases: {})",
            g.n(),
            run.phases
        );
        run
    }

    #[test]
    fn two_nodes_elect_one_leader() {
        let run = elect(&generators::path(2), 101, 200_000);
        assert!(run.leader.is_some());
    }

    #[test]
    fn path_graph_elects() {
        let run = elect(&generators::path(8), 102, 400_000);
        assert!(run.leader.unwrap() < 8);
    }

    #[test]
    fn cycle_elects() {
        elect(&generators::cycle(9), 103, 400_000);
    }

    #[test]
    fn grid_elects() {
        elect(&generators::grid(4, 4), 104, 400_000);
    }

    #[test]
    fn complete_graph_elects() {
        elect(&generators::complete(8), 105, 400_000);
    }

    #[test]
    fn star_elects() {
        elect(&generators::star(9), 106, 400_000);
    }

    #[test]
    fn random_graphs_elect_unique_leader() {
        let mut rng = Xoshiro256::seed_from_u64(107);
        for trial in 0..5u64 {
            let g = generators::connected_gnp(12, 0.2, &mut rng);
            let run = elect(&g, 1070 + trial, 500_000);
            assert!(run.leader.is_some(), "trial {trial}");
        }
    }

    #[test]
    fn leaders_are_uniformly_spread_over_symmetric_graphs() {
        // On a vertex-transitive graph every node should win sometimes.
        let g = generators::cycle(5);
        let mut winners = std::collections::HashSet::new();
        for seed in 0..25u64 {
            let run = elect(&g, 200 + seed, 300_000);
            winners.insert(run.leader.unwrap());
        }
        assert!(
            winners.len() >= 3,
            "symmetry breaking should spread winners: {winners:?}"
        );
    }

    #[test]
    fn eliminations_make_progress() {
        // Claim 4.1 in aggregate: with several candidates, the remaining
        // count strictly drops across phases until 1.
        let g = generators::grid(3, 3);
        let run = elect(&g, 108, 500_000);
        let first = run.remaining_per_phase[0];
        assert_eq!(first, 9, "everyone starts remaining");
        assert_eq!(*run.remaining_per_phase.last().unwrap(), 1);
    }

    #[test]
    fn phases_scale_logarithmically() {
        // Θ(log n) phases w.h.p.: n=16 should finish in a modest number
        // of phases.
        let g = generators::connected_gnp(16, 0.25, &mut Xoshiro256::seed_from_u64(9));
        let run = elect(&g, 109, 1_000_000);
        assert!(
            run.phases <= 60,
            "Θ(log n) phases expected, got {}",
            run.phases
        );
    }

    #[test]
    fn termination_is_stable() {
        // After the leader is declared with a single remainer, extra
        // rounds never create a second leader or un-elect the first.
        let g = generators::cycle(6);
        let mut h = ElectionHarness::new(&g);
        let mut rng = Xoshiro256::seed_from_u64(110);
        let run = h.run(300_000, &mut rng);
        let leader = run.leader.expect("elects");
        for _ in 0..500 {
            h.network_mut().sync_step(&mut rng);
            let stats = h.stats();
            assert_eq!(stats.leaders, vec![leader]);
            assert_eq!(stats.remaining, 1);
        }
    }
}
