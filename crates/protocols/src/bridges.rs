//! Section 2.1: biconnectivity (bridge finding) via a random walk.
//!
//! Fix an orientation on every edge and keep an integer counter:
//! traversing with the orientation adds 1, against subtracts 1. For a
//! *bridge* the counter provably stays in `{-1, 0, 1}` (the walk must
//! return across the bridge before re-crossing it the same way); for a
//! non-bridge, a suitable cycle pumps the counter, and Claim 2.1 shows a
//! random walk does so within `O(mn)` expected steps — proven by lifting
//! the walk to the `3n + 1`-node counter-tracking graph built by
//! [`lifted_graph`]. Edges whose counter ever hits `±2` are flagged
//! non-bridges; after `O(c · mn · log n)` steps the unflagged edges are
//! exactly the bridges with probability `1 - n^{1-c}`.
//!
//! This is a Section 2 *agent* algorithm (it predates the FSSGA
//! formalism in the paper): the only critical node is the agent's
//! position, so the algorithm is 1-sensitive.

use std::collections::HashMap;

use fssga_engine::{Sensitive, SensitivityClass};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{DynGraph, Edge, Graph, NodeId};

/// The bridge-finding walk state.
pub struct BridgeWalk {
    graph: DynGraph,
    /// Counter per canonical edge `(min, max)`; traversing min→max is +1.
    counters: HashMap<Edge, i32>,
    /// Edges whose counter has ever left `{-1, 0, 1}`.
    flagged: HashMap<Edge, bool>,
    agent: NodeId,
    steps: u64,
}

impl BridgeWalk {
    /// Starts the agent at `start` with all counters zero.
    pub fn new(g: &Graph, start: NodeId) -> Self {
        let mut counters = HashMap::with_capacity(g.m());
        let mut flagged = HashMap::with_capacity(g.m());
        for e in g.edges() {
            counters.insert(e, 0);
            flagged.insert(e, false);
        }
        Self {
            graph: DynGraph::from_graph(g),
            counters,
            flagged,
            agent: start,
            steps: 0,
        }
    }

    /// The agent's position — the algorithm's critical set χ(σ).
    pub fn agent(&self) -> NodeId {
        self.agent
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The live topology (for fault injection).
    pub fn graph_mut(&mut self) -> &mut DynGraph {
        &mut self.graph
    }

    /// The counter of edge `{u, v}` (0 if the edge never existed).
    pub fn counter(&self, u: NodeId, v: NodeId) -> i32 {
        *self.counters.get(&(u.min(v), u.max(v))).unwrap_or(&0)
    }

    /// One random-walk step. Returns the edge traversed, or `None` if the
    /// agent is stuck (isolated by faults).
    pub fn step(&mut self, rng: &mut Xoshiro256) -> Option<Edge> {
        let nbrs = self.graph.neighbors(self.agent);
        if nbrs.is_empty() {
            return None;
        }
        let next = nbrs[rng.gen_index(nbrs.len())];
        let key = (self.agent.min(next), self.agent.max(next));
        let delta = if self.agent == key.0 { 1 } else { -1 };
        let c = self.counters.entry(key).or_insert(0);
        *c += delta;
        if c.abs() >= 2 {
            self.flagged.insert(key, true);
        }
        self.agent = next;
        self.steps += 1;
        Some(key)
    }

    /// Runs `steps` random-walk steps (stops early if stuck).
    pub fn run(&mut self, steps: u64, rng: &mut Xoshiro256) {
        for _ in 0..steps {
            if self.step(rng).is_none() {
                return;
            }
        }
    }

    /// The number of steps recommended by the paper for confidence
    /// `1 - n^{1-c}`: `c · m · n · ln n` (rounded up, floor 1).
    pub fn recommended_steps(g: &Graph, c: f64) -> u64 {
        let n = g.n() as f64;
        let m = g.m() as f64;
        (c * m * n * n.ln()).ceil().max(1.0) as u64
    }

    /// Edges never flagged — the bridge candidates (sorted).
    pub fn candidate_bridges(&self) -> Vec<Edge> {
        let mut out: Vec<Edge> = self
            .flagged
            .iter()
            .filter(|&(_, &f)| !f)
            .map(|(&e, _)| e)
            .collect();
        out.sort_unstable();
        out
    }

    /// Edges flagged as non-bridges (sorted).
    pub fn flagged_non_bridges(&self) -> Vec<Edge> {
        let mut out: Vec<Edge> = self
            .flagged
            .iter()
            .filter(|&(_, &f)| f)
            .map(|(&e, _)| e)
            .collect();
        out.sort_unstable();
        out
    }
}

impl BridgeWalk {
    /// The biconnectivity readout: 2-edge-connected components implied by
    /// the current flags (components of the graph after deleting the
    /// candidate bridges). After `O(c·mn·log n)` steps this matches the
    /// true decomposition with probability `1 - n^{1-c}` — the payoff the
    /// section's title ("Biconnectivity via a Random Walk") promises.
    pub fn two_edge_connected_estimate(&self, g: &Graph) -> (usize, Vec<u32>) {
        let cand: std::collections::HashSet<Edge> = self.candidate_bridges().into_iter().collect();
        let mut comp = vec![u32::MAX; g.n()];
        let mut count = 0u32;
        let mut stack = Vec::new();
        for s in g.nodes() {
            if comp[s as usize] != u32::MAX {
                continue;
            }
            comp[s as usize] = count;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &w in g.neighbors(v) {
                    let e = (v.min(w), v.max(w));
                    if comp[w as usize] == u32::MAX && !cand.contains(&e) {
                        comp[w as usize] = count;
                        stack.push(w);
                    }
                }
            }
            count += 1;
        }
        (count as usize, comp)
    }
}

/// Like every agent algorithm of Section 2, the bridge walk carries its
/// entire computation in one token: kill the agent's node and the walk is
/// gone, kill anything else and the walk keeps mixing on what survives —
/// `χ(σ)` is the agent's position, `|χ| = 1`.
impl Sensitive for BridgeWalk {
    fn algorithm(&self) -> &'static str {
        "bridge-walk"
    }

    fn sensitivity_class(&self) -> SensitivityClass {
        SensitivityClass::Constant(1)
    }

    fn critical_set(&self) -> Vec<NodeId> {
        vec![self.agent]
    }
}

/// The Claim 2.1 lifting: given `g` and a non-self-loop edge
/// `e = (v1, v2)` (oriented toward `v2`), builds the `3n + 1`-node graph
/// whose random walk tracks `(agent position, e's counter)`; node
/// `EXCEEDED` (the last id, `3n`) corresponds to the counter hitting
/// `±2`. Returns `(lifted graph, exceeded node id)`.
///
/// Layout: `v_i^r` has id `3 * i + (r + 1)` for `r ∈ {-1, 0, 1}`.
pub fn lifted_graph(g: &Graph, e: Edge) -> (Graph, NodeId) {
    let n = g.n();
    let (v1, v2) = e;
    assert!(g.has_edge(v1, v2), "e must be an edge of g");
    let id = |i: NodeId, r: i32| -> NodeId { 3 * i + (r + 1) as NodeId };
    let exceeded = (3 * n) as NodeId;
    let mut edges: Vec<Edge> = Vec::with_capacity(3 * g.m() + 1);
    for (a, b) in g.edges() {
        if (a, b) == (v1.min(v2), v1.max(v2)) {
            continue;
        }
        for r in -1..=1 {
            edges.push((id(a, r), id(b, r)));
        }
    }
    // Crossing e toward v2 increments the counter; backward decrements.
    edges.push((id(v1, -1), id(v2, 0)));
    edges.push((id(v1, 0), id(v2, 1)));
    edges.push((id(v1, 1), exceeded));
    edges.push((exceeded, id(v2, -1)));
    (Graph::from_edges(3 * n + 1, &edges), exceeded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_graph::{exact, generators};

    #[test]
    fn bridges_never_flagged_on_trees() {
        let mut rng = Xoshiro256::seed_from_u64(51);
        let g = generators::random_tree(30, &mut rng);
        let mut walk = BridgeWalk::new(&g, 0);
        walk.run(50_000, &mut rng);
        assert!(walk.flagged_non_bridges().is_empty());
        // Invariant from the paper: bridge counters stay in {-1, 0, 1}.
        for (u, v) in g.edges() {
            assert!(walk.counter(u, v).abs() <= 1, "bridge ({u},{v}) counter");
        }
        // And every edge is a candidate bridge.
        assert_eq!(walk.candidate_bridges().len(), g.m());
    }

    #[test]
    fn all_edges_flagged_on_bridgeless_graphs() {
        let mut rng = Xoshiro256::seed_from_u64(52);
        for g in [
            generators::cycle(10),
            generators::complete(6),
            generators::petersen(),
        ] {
            let steps = BridgeWalk::recommended_steps(&g, 2.0);
            let mut walk = BridgeWalk::new(&g, 0);
            walk.run(steps, &mut rng);
            assert!(
                walk.candidate_bridges().is_empty(),
                "bridgeless graph should have every edge flagged"
            );
        }
    }

    #[test]
    fn detection_matches_tarjan_on_mixed_graphs() {
        let mut rng = Xoshiro256::seed_from_u64(53);
        for trial in 0..10 {
            let g = generators::connected_gnp(16, 0.13, &mut rng);
            let truth = exact::bridges(&g);
            let steps = BridgeWalk::recommended_steps(&g, 2.0);
            let mut walk = BridgeWalk::new(&g, 0);
            walk.run(steps, &mut rng);
            assert_eq!(walk.candidate_bridges(), truth, "trial {trial}");
        }
    }

    #[test]
    fn barbell_bridges_detected() {
        let g = generators::barbell(5, 3);
        let mut rng = Xoshiro256::seed_from_u64(54);
        let mut walk = BridgeWalk::new(&g, 0);
        walk.run(BridgeWalk::recommended_steps(&g, 2.0), &mut rng);
        assert_eq!(walk.candidate_bridges(), exact::bridges(&g));
    }

    #[test]
    fn lifted_graph_shape() {
        let g = generators::cycle(5);
        let (lifted, exceeded) = lifted_graph(&g, (0, 1));
        assert_eq!(lifted.n(), 3 * 5 + 1);
        assert_eq!(lifted.m(), 3 * 5 + 1, "3m + 1 undirected edges");
        assert_eq!(exceeded, 15);
        // e = (0,1) is not a bridge of C5, so the lifted graph is connected
        // (the proof's key step).
        assert!(exact::is_connected(&lifted));
    }

    #[test]
    fn lifted_graph_disconnected_for_bridges() {
        // For a bridge, EXCEEDED is unreachable from v1^0 — the lifted
        // construction "proves" the counter invariant.
        let g = generators::path(4);
        let (lifted, exceeded) = lifted_graph(&g, (1, 2));
        let dist = exact::bfs_distances(&lifted, &[3 + 1]); // v1^0
        assert_eq!(dist[exceeded as usize], exact::UNREACHABLE);
    }

    #[test]
    fn lifted_walk_couples_with_counter_process() {
        // Drive the flat walk and replay its exact moves on the lifted
        // graph: positions must track (agent, counter) until EXCEEDED.
        let g = generators::cycle_with_chords(8, 2, &mut Xoshiro256::seed_from_u64(1));
        let e = g.edges().next().unwrap();
        let (lifted, exceeded) = lifted_graph(&g, e);
        let mut rng = Xoshiro256::seed_from_u64(55);
        let mut walk = BridgeWalk::new(&g, e.0);
        let mut lifted_pos = 3 * e.0 + 1; // v1^0
        for _ in 0..10_000 {
            let before = walk.agent();
            let crossed = walk.step(&mut rng).unwrap();
            let after = walk.agent();
            let c = walk.counter(e.0, e.1);
            let _ = (before, crossed);
            if c.abs() >= 2 {
                // The lifted walk would now be at EXCEEDED.
                assert!(lifted.has_edge(lifted_pos, exceeded));
                break;
            }
            let expect = 3 * after + (c + 1) as NodeId;
            assert!(
                lifted.has_edge(lifted_pos, expect),
                "lifted move {lifted_pos} -> {expect} must be an edge"
            );
            lifted_pos = expect;
        }
    }

    #[test]
    fn one_sensitivity_faults_off_the_agent_are_safe() {
        // Kill nodes away from the agent mid-run; the flags accumulated
        // are still only non-bridges of the graphs they were observed in.
        let g = generators::two_cliques_shared_vertex(5);
        let mut rng = Xoshiro256::seed_from_u64(56);
        let mut walk = BridgeWalk::new(&g, 0);
        walk.run(2_000, &mut rng);
        // Remove a node from the far clique (agent may be anywhere; pick a
        // node that is not the agent and not the cut vertex).
        let victim = (0..g.n() as NodeId)
            .find(|&v| v != walk.agent() && v != 4)
            .unwrap();
        walk.graph_mut().remove_node(victim);
        walk.run(20_000, &mut rng);
        // No flagged edge may be a bridge of the ORIGINAL graph (flags
        // only ever fire on cycles that existed when walked).
        let orig_bridges = exact::bridges(&g);
        for e in walk.flagged_non_bridges() {
            assert!(!orig_bridges.contains(&e));
        }
    }

    #[test]
    fn biconnectivity_readout_matches_oracle() {
        let mut rng = Xoshiro256::seed_from_u64(58);
        for trial in 0..8 {
            let g = generators::connected_gnp(16, 0.14, &mut rng);
            let mut walk = BridgeWalk::new(&g, 0);
            walk.run(BridgeWalk::recommended_steps(&g, 2.0), &mut rng);
            let (k, comp) = walk.two_edge_connected_estimate(&g);
            let (k_true, comp_true) = exact::two_edge_connected_components(&g);
            assert_eq!(k, k_true, "trial {trial}");
            // Same partition (up to renaming): compare pairwise relations.
            for u in 0..g.n() {
                for v in (u + 1)..g.n() {
                    assert_eq!(
                        comp[u] == comp[v],
                        comp_true[u] == comp_true[v],
                        "trial {trial}: pair ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn stuck_agent_stops_cleanly() {
        let g = generators::star(4);
        let mut rng = Xoshiro256::seed_from_u64(57);
        let mut walk = BridgeWalk::new(&g, 1);
        // Cut the leaf's only edge: the agent is stranded.
        walk.graph_mut().remove_edge(0, 1);
        assert!(walk.step(&mut rng).is_none());
        assert_eq!(walk.steps(), 0);
    }
}
