//! k-parity: distance-mod-k labelling, generalizing Algorithm 4.1's
//! mod-3 BFS labels to an arbitrary modulus `K >= 3`.
//!
//! The source labels itself 0; an unlabelled node adopts `(x + 1) mod K`
//! on seeing a labelled neighbour `x`. Adjacent distances differ by at
//! most 1, so any `K >= 3` residues distinguish predecessors, peers and
//! successors — the same finite-state trick as [`crate::bfs`], exposed as
//! a reusable labelling layer (mod-3 is the smallest legal instance; a
//! larger `K` buys slack for layered constructions on top). Labels are
//! sticky and laid down by the synchronous wavefront, which is exactly
//! why the protocol sits in the Θ(n) fragility class of Section 2: a
//! mid-run fault strands stale residues that can never self-correct.

use fssga_engine::{NeighborView, Protocol, StateSpace};

/// Node state of [`KParity`]: a fixed source bit plus a mod-`K` distance
/// label (`None` = not yet reached, the `⋆` of Algorithm 4.1).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ParityState<const K: usize> {
    /// The unique labelling source.
    pub source: bool,
    /// Distance label in `0..K`, once reached.
    pub label: Option<u8>,
}

impl<const K: usize> ParityState<K> {
    /// Initial (unlabelled) state for a node with the given role.
    pub fn init(source: bool) -> Self {
        ParityState {
            source,
            label: None,
        }
    }
}

impl<const K: usize> StateSpace for ParityState<K> {
    const COUNT: usize = 2 * (K + 1);

    fn index(self) -> usize {
        let l = match self.label {
            None => 0,
            Some(r) => r as usize + 1,
        };
        usize::from(self.source) * (K + 1) + l
    }

    fn from_index(i: usize) -> Self {
        assert!(i < Self::COUNT);
        let l = i % (K + 1);
        ParityState {
            source: i / (K + 1) == 1,
            label: if l == 0 { None } else { Some((l - 1) as u8) },
        }
    }
}

/// The synchronous distance-mod-`K` labelling protocol. `K` must be in
/// `3..=128`: two residues cannot separate predecessors from successors,
/// and labels are stored in a `u8`.
pub struct KParity<const K: usize>;

impl<const K: usize> Protocol for KParity<K> {
    type State = ParityState<K>;
    const COMPILED: bool = true;

    fn transition(
        &self,
        own: ParityState<K>,
        nbrs: &NeighborView<'_, ParityState<K>>,
        _coin: u32,
    ) -> ParityState<K> {
        const {
            assert!(K >= 3 && K <= 128, "K must be in 3..=128");
        }
        if own.label.is_some() {
            return own;
        }
        if own.source {
            return ParityState {
                label: Some(0),
                ..own
            };
        }
        // Adopt from the labelled frontier. Under synchronous rounds
        // every labelled neighbour of an unlabelled node is at the same
        // distance; taking the minimum residue keeps the choice
        // deterministic and symmetric.
        let mut seen: Option<u8> = None;
        for nb in nbrs.present_states() {
            if let Some(r) = nb.label {
                seen = Some(match seen {
                    None => r,
                    Some(x) => x.min(r),
                });
            }
        }
        match seen {
            Some(x) => ParityState {
                label: Some(((x as usize + 1) % K) as u8),
                ..own
            },
            None => own,
        }
    }
}

/// The checked semantic contract (for the `K = 4` instance the verifier
/// explores). Same shape as [`crate::bfs`]'s: correct under synchronous
/// rounds only, and Θ(n)-sensitive because stale labels are sticky.
pub const CONTRACT: crate::contract::SemanticContract = crate::contract::SemanticContract {
    name: "k-parity",
    order_independent: false,
    semilattice: false,
    scheduling: crate::contract::Scheduling::SyncOnly,
    sensitivity: fssga_engine::SensitivityClass::Linear,
    max_nodes: 6,
    config_budget: 50_000,
};

/// Convenience: run the labelling to a fixpoint from `source` and return
/// the rounds taken plus the final states.
pub fn run_kparity<const K: usize>(
    g: &fssga_graph::Graph,
    source: fssga_graph::NodeId,
    max_rounds: usize,
) -> Option<(usize, Vec<ParityState<K>>)> {
    let mut net = fssga_engine::Network::new(g, KParity::<K>, |v| ParityState::init(v == source));
    let rounds = fssga_engine::Runner::new(&mut net)
        .budget(fssga_engine::Budget::Fixpoint(max_rounds))
        .run()
        .fixpoint?;
    Some((rounds, net.states().to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_graph::rng::Xoshiro256;
    use fssga_graph::{exact, generators};

    #[test]
    fn state_space_roundtrip() {
        for i in 0..ParityState::<4>::COUNT {
            assert_eq!(ParityState::<4>::from_index(i).index(), i);
        }
        for i in 0..ParityState::<7>::COUNT {
            assert_eq!(ParityState::<7>::from_index(i).index(), i);
        }
        assert_eq!(ParityState::<4>::COUNT, 10);
    }

    #[test]
    fn labels_match_distance_mod_k() {
        let g = generators::grid(5, 6);
        let dist = exact::bfs_distances(&g, &[0]);
        let (_, states4) = run_kparity::<4>(&g, 0, 200).expect("stabilizes");
        let (_, states5) = run_kparity::<5>(&g, 0, 200).expect("stabilizes");
        for v in g.nodes() {
            assert_eq!(
                states4[v as usize].label,
                Some((dist[v as usize] % 4) as u8)
            );
            assert_eq!(
                states5[v as usize].label,
                Some((dist[v as usize] % 5) as u8)
            );
        }
    }

    #[test]
    fn k3_reproduces_bfs_labels() {
        let g = generators::grid(4, 5);
        let (_, states) = run_kparity::<3>(&g, 0, 200).expect("stabilizes");
        let (_, _, bfs_states) = crate::bfs::run_bfs(&g, 0, &[], 200).expect("stabilizes");
        for v in g.nodes() {
            assert_eq!(
                states[v as usize].label.map(u32::from),
                bfs_states[v as usize].label.residue(),
                "node {v}"
            );
        }
    }

    #[test]
    fn stabilizes_on_random_graphs() {
        let mut rng = Xoshiro256::seed_from_u64(61);
        for _ in 0..10 {
            let g = generators::connected_gnp(20, 0.15, &mut rng);
            let (rounds, states) = run_kparity::<6>(&g, 0, 10 * g.n()).expect("stabilizes");
            assert!(rounds <= g.n() + 2, "wavefront takes at most diameter+1");
            assert!(states.iter().all(|s| s.label.is_some()));
        }
    }
}
