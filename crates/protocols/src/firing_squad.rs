//! Section 5.2: the firing squad synchronization problem on path graphs.
//!
//! The paper lists FSSP as an open problem for general FSSGA networks:
//! the usual non-path solution routes a virtual path through a spanning
//! structure, which needs permanent neighbour identification — impossible
//! in the model. On *paths*, however, the model suffices: the mod-3 BFS
//! labels of Section 4.3 give every node a stable local orientation
//! (the label-minus-one neighbour is "toward the general"), and on an
//! oriented path the classic two-speed construction works.
//!
//! **The construction** (3n-time divide and conquer): the general emits a
//! fast signal `A` (speed 1) and a slow signal `B` (speed 1/3). `A`
//! reflects off the far wall and meets `B` near the midpoint. A same-cell
//! meeting (odd segment) creates one new wall; a *crossing* between
//! adjacent cells (even segment) creates two adjacent walls — either way
//! the two sub-segments have **equal length**, so the recursion stays in
//! lockstep everywhere, every cell becomes a wall at the same final round,
//! and the local rule "a wall whose every neighbour is a wall fires"
//! fires every node simultaneously. A cell walled between two walls is a
//! length-1 base case and walls itself directly.
//!
//! The module has two layers: a pure oriented cellular automaton
//! ([`fssp_step`], exhaustively validated for n = 2..120), and the FSSGA
//! protocol [`FiringSquad`] that bootstraps orientation from labels and
//! then runs the same rules through symmetric neighbour queries.

use fssga_engine::{NeighborView, Network, Protocol, StateSpace};
use fssga_graph::{Graph, NodeId};

/// Wall status of a cell.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Wall {
    /// Ordinary cell.
    None,
    /// Became a wall last round: emits fresh `A`/`B` both ways this round.
    Fresh,
    /// Settled wall.
    Old,
}

/// One FSSP cell.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Cell {
    /// Wall status.
    pub wall: Wall,
    /// Fired!
    pub fire: bool,
    /// Fast signal moving right / moving left.
    pub a_r: bool,
    /// Fast signal moving left.
    pub a_l: bool,
    /// Slow right-moving signal phase: 0 = absent, 1..=3 = present
    /// (moves on phase 3).
    pub b_r: u8,
    /// Slow left-moving signal phase.
    pub b_l: u8,
}

impl Cell {
    /// A quiescent cell.
    pub fn quiescent() -> Cell {
        Cell {
            wall: Wall::None,
            fire: false,
            a_r: false,
            a_l: false,
            b_r: 0,
            b_l: 0,
        }
    }

    /// The initial general.
    pub fn general() -> Cell {
        Cell {
            wall: Wall::Fresh,
            ..Cell::quiescent()
        }
    }

    fn is_wall(&self) -> bool {
        self.wall != Wall::None
    }
}

/// One synchronous step of the oriented FSSP automaton. `cells[0]` is the
/// left end; missing neighbours count as walls (the path ends are
/// reflective, like the general's own back).
pub fn fssp_step(cells: &[Cell]) -> Vec<Cell> {
    let n = cells.len();
    let get = |i: isize| -> Option<Cell> {
        if i < 0 || i as usize >= n {
            None
        } else {
            Some(cells[i as usize])
        }
    };
    (0..n)
        .map(|i| step_cell(cells[i], get(i as isize - 1), get(i as isize + 1)))
        .collect()
}

/// The per-cell rule, written against (left, right) neighbours so the
/// FSSGA wrapper can reuse it verbatim. `None` = path end (reflective).
pub fn step_cell(cur: Cell, left: Option<Cell>, right: Option<Cell>) -> Cell {
    let wallish = |c: Option<Cell>| c.map(|c| c.is_wall()).unwrap_or(true);

    // Fire: a wall whose every (existing) neighbour is a wall.
    if cur.is_wall() {
        let fire = cur.fire || (wallish(left) && wallish(right));
        return Cell {
            wall: Wall::Old,
            fire,
            ..Cell::quiescent()
        };
    }

    // Base case: a non-wall cell fenced in on both sides is a length-1
    // segment; wall it.
    if wallish(left) && wallish(right) {
        return Cell {
            wall: Wall::Fresh,
            ..Cell::quiescent()
        };
    }

    // --- Incoming signals -------------------------------------------
    let mut a_r = false;
    let mut a_l = false;
    let mut b_r = 0u8;
    let mut b_l = 0u8;

    if let Some(l) = left {
        // Fast signal arriving from the left.
        if l.a_r && !l.is_wall() {
            a_r = true;
        }
        // Fresh wall on the left emits A and B rightward.
        if l.wall == Wall::Fresh {
            a_r = true;
            b_r = 1;
        }
        // Slow right-mover steps in (phase 3 moves).
        if l.b_r == 3 && !l.is_wall() {
            b_r = 1;
        }
    }
    if let Some(r) = right {
        if r.a_l && !r.is_wall() {
            a_l = true;
        }
        if r.wall == Wall::Fresh {
            a_l = true;
            b_l = 1;
        }
        if r.b_l == 3 && !r.is_wall() {
            b_l = 1;
        }
    }

    // Reflection: my own fast signal bounces if its next cell is a wall
    // or the path end.
    if cur.a_r && wallish(right) {
        a_l = true;
    }
    if cur.a_l && wallish(left) {
        a_r = true;
    }

    // Slow signals that stay put advance their phase.
    if cur.b_r > 0 && cur.b_r < 3 {
        b_r = cur.b_r + 1;
    }
    if cur.b_l > 0 && cur.b_l < 3 {
        b_l = cur.b_l + 1;
    }

    // --- Meetings: a new wall is born --------------------------------
    // Same-cell meeting: after movement, a fast signal shares my cell
    // with an opposing slow signal (evaluate on the *new* occupancy).
    let same_cell = (a_l && (b_r > 0 || cur.b_r > 0)) || (a_r && (b_l > 0 || cur.b_l > 0));
    // Crossing: my slow signal moves out exactly as the opposing fast
    // signal moves in past it (both cells wall; this is the even-length
    // double midpoint).
    let crossing_right = cur.b_r == 3 && right.map(|r| r.a_l && !r.is_wall()).unwrap_or(false);
    let crossing_left = cur.b_l == 3 && left.map(|l| l.a_r && !l.is_wall()).unwrap_or(false);
    // The partner cell of a crossing also walls: a fast signal moving out
    // toward a slow signal that is moving in.
    let partner_right = cur.a_l && left.map(|l| l.b_r == 3 && !l.is_wall()).unwrap_or(false);
    let partner_left = cur.a_r && right.map(|r| r.b_l == 3 && !r.is_wall()).unwrap_or(false);

    if same_cell || crossing_right || crossing_left || partner_right || partner_left {
        return Cell {
            wall: Wall::Fresh,
            ..Cell::quiescent()
        };
    }

    Cell {
        wall: Wall::None,
        fire: false,
        a_r,
        a_l,
        b_r,
        b_l,
    }
}

/// Runs the oriented CA until every cell fires (or `max_steps`); returns
/// `Some(firing round)` iff all cells fire for the first time in the same
/// round and no cell ever fires earlier.
pub fn run_oriented(n: usize, max_steps: usize) -> Option<usize> {
    let mut cells = vec![Cell::quiescent(); n];
    cells[0] = Cell::general();
    for t in 1..=max_steps {
        cells = fssp_step(&cells);
        let fired = cells.iter().filter(|c| c.fire).count();
        if fired == n {
            return Some(t);
        }
        if fired > 0 {
            return None; // partial firing = synchronization failure
        }
    }
    None
}

// ---------------------------------------------------------------------
// The FSSGA wrapper: orientation from mod-3 labels.
// ---------------------------------------------------------------------

/// FSSGA node state: an orientation label (⋆ until the wave arrives) plus
/// the FSSP cell.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FsspState {
    /// Whether this node is the general (fixed role).
    pub general: bool,
    /// mod-3 distance label; 3 = ⋆ (unlabelled).
    pub label: u8,
    /// The FSSP cell contents.
    pub cell: Cell,
}

impl FsspState {
    /// Initial state. The general must be a path *endpoint*: the mod-3
    /// labels orient every node away from it, which is only a consistent
    /// left-to-right orientation when the label wave has a single
    /// direction of travel ([`run_on_path`] places it at node 0).
    pub fn init(general: bool) -> Self {
        FsspState {
            general,
            label: if general { 0 } else { 3 },
            cell: if general {
                Cell::general()
            } else {
                Cell::quiescent()
            },
        }
    }
}

fn cell_index(c: Cell) -> usize {
    let w = match c.wall {
        Wall::None => 0,
        Wall::Fresh => 1,
        Wall::Old => 2,
    };
    ((((w * 2 + usize::from(c.fire)) * 2 + usize::from(c.a_r)) * 2 + usize::from(c.a_l)) * 4
        + c.b_r as usize)
        * 4
        + c.b_l as usize
}

fn cell_from_index(i: usize) -> Cell {
    let b_l = (i % 4) as u8;
    let i = i / 4;
    let b_r = (i % 4) as u8;
    let i = i / 4;
    let a_l = i % 2 == 1;
    let i = i / 2;
    let a_r = i % 2 == 1;
    let i = i / 2;
    let fire = i % 2 == 1;
    let w = i / 2;
    Cell {
        wall: match w {
            0 => Wall::None,
            1 => Wall::Fresh,
            _ => Wall::Old,
        },
        fire,
        a_r,
        a_l,
        b_r,
        b_l,
    }
}

const CELL_COUNT: usize = 3 * 2 * 2 * 2 * 4 * 4;

impl StateSpace for FsspState {
    const COUNT: usize = 2 * 4 * CELL_COUNT;

    fn index(self) -> usize {
        (usize::from(self.general) * 4 + self.label as usize) * CELL_COUNT + cell_index(self.cell)
    }

    fn from_index(i: usize) -> Self {
        assert!(i < Self::COUNT);
        let cell = cell_from_index(i % CELL_COUNT);
        let rest = i / CELL_COUNT;
        FsspState {
            general: rest / 4 == 1,
            label: (rest % 4) as u8,
            cell,
        }
    }
}

/// The checked semantic contract. FSSP is the extreme synchronous
/// algorithm: simultaneity *is* the specification, so it is meaningful
/// only under synchronous rounds, and any mid-run fault can desynchronize
/// the firing — every cell is critical (Θ(n)).
pub const CONTRACT: crate::contract::SemanticContract = crate::contract::SemanticContract {
    name: "firing-squad",
    order_independent: false,
    semilattice: false,
    scheduling: crate::contract::Scheduling::SyncOnly,
    sensitivity: fssga_engine::SensitivityClass::Linear,
    max_nodes: 6,
    config_budget: 50_000,
};

/// The FSSGA firing-squad protocol for path graphs.
pub struct FiringSquad;

impl Protocol for FiringSquad {
    type State = FsspState;
    const COMPILED: bool = true;

    fn transition(
        &self,
        own: FsspState,
        nbrs: &NeighborView<'_, FsspState>,
        _coin: u32,
    ) -> FsspState {
        // Gather the (at most two, on a path) neighbour states by label.
        // Off the contract topology a node can see several same-label
        // neighbours in distinct states; tie-break on the full state
        // index so the pick is a pure function of the multiset.
        let mut toward: Option<FsspState> = None; // label = mine - 1
        let mut away: Option<FsspState> = None; // label = mine + 1
        let mut any_labelled: Option<u8> = None;
        for ps in nbrs.present_states() {
            if ps.label < 3 {
                any_labelled = Some(match any_labelled {
                    None => ps.label,
                    Some(x) => x.min(ps.label),
                });
                if own.label < 3 {
                    if ps.label == (own.label + 2) % 3 {
                        if toward.is_none_or(|best| ps.index() > best.index()) {
                            toward = Some(ps);
                        }
                    } else if ps.label == (own.label + 1) % 3
                        && away.is_none_or(|best| ps.index() > best.index())
                    {
                        away = Some(ps);
                    }
                }
            }
        }
        // Orientation bootstrap.
        if own.label == 3 {
            return match any_labelled {
                Some(x) => FsspState {
                    label: (x + 1) % 3,
                    ..own
                },
                None => own,
            };
        }
        let unlabelled_nbr = nbrs.present_states().any(|ps| ps.label == 3);
        // The general must not burn its one Fresh (emitting) round before
        // its neighbour is labelled and able to receive the signals.
        if own.general && own.cell.wall == Wall::Fresh && unlabelled_nbr {
            return own;
        }
        // The cell rule needs both sides settled: an unlabelled "away"
        // neighbour behaves as quiescent (the signal wave never outruns
        // the label wave, so this is safe); a missing neighbour is a
        // path end.
        let left = toward.map(|s| s.cell);
        let right = away.map(|s| s.cell);
        // A node that has an unlabelled neighbour treats it as a
        // quiescent (non-wall) cell so it does not look like a path end.
        let right = match (right, unlabelled_nbr) {
            (None, true) => Some(Cell::quiescent()),
            (r, _) => r,
        };
        let left = if own.general { None } else { left };
        let cell = step_cell(own.cell, left, right);
        FsspState { cell, ..own }
    }
}

/// Runs the firing squad on a path of `n` nodes with the general at node
/// `0`; returns `Some(round)` iff every node fires for the first time in
/// the same round, with no early firing.
pub fn run_on_path(n: usize, max_rounds: usize) -> Option<usize> {
    let g: Graph = fssga_graph::generators::path(n);
    let mut net = Network::new(&g, FiringSquad, |v: NodeId| FsspState::init(v == 0));
    let mut rng = fssga_graph::rng::Xoshiro256::seed_from_u64(0);
    for t in 1..=max_rounds {
        net.sync_step(&mut rng);
        let fired = net.states().iter().filter(|s| s.cell.fire).count();
        if fired == n {
            return Some(t);
        }
        if fired > 0 {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oriented_ca_synchronizes_all_sizes() {
        for n in 2..=120 {
            let t = run_oriented(n, 20 * n + 40);
            assert!(t.is_some(), "n = {n}: no simultaneous firing");
            let t = t.unwrap();
            assert!(t <= 4 * n + 10, "n = {n}: fired at {t}, want <= 4n + 10");
        }
    }

    #[test]
    fn oriented_ca_time_is_linear() {
        let t40 = run_oriented(40, 1000).unwrap();
        let t80 = run_oriented(80, 2000).unwrap();
        let ratio = t80 as f64 / t40 as f64;
        assert!(
            (1.6..=2.4).contains(&ratio),
            "doubling n should double the time: {t40} -> {t80}"
        );
    }

    #[test]
    fn cell_index_roundtrip() {
        for i in 0..CELL_COUNT {
            assert_eq!(cell_index(cell_from_index(i)), i);
        }
        for i in (0..FsspState::COUNT).step_by(7) {
            assert_eq!(FsspState::from_index(i).index(), i);
        }
    }

    #[test]
    fn fssga_wrapper_synchronizes_paths() {
        for n in [2usize, 3, 5, 8, 13, 21, 34] {
            let t = run_on_path(n, 30 * n + 60);
            assert!(t.is_some(), "n = {n}: FSSGA firing squad failed");
        }
    }

    #[test]
    fn fssga_matches_oriented_ca_up_to_label_delay() {
        // The label wave costs the wrapper a bounded extra delay; firing
        // stays simultaneous and linear-time.
        for n in [4usize, 9, 16, 30] {
            let ca = run_oriented(n, 1000).unwrap();
            let net = run_on_path(n, 2000).unwrap();
            assert!(net >= ca, "labels cannot speed things up");
            assert!(
                net <= ca + 2 * n + 10,
                "n = {n}: wrapper delay too large ({ca} vs {net})"
            );
        }
    }
}
