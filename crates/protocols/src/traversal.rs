//! Section 4.5: Milgram's graph traversal (Algorithm 4.3).
//!
//! A single agent — a *hand* at the end of an *arm* — walks the graph.
//! The arm `v_0, ..., v_k` starts at the originator, never touches or
//! crosses itself (`v_i ~ v_j` iff `|i - j| = 1`), and unvisited nodes
//! adjacent to it are marked `by-arm` so extension never creates a
//! chord. The hand extends onto an elected *blank* neighbour when one
//! exists, else retracts, marking its node visited. The arm traces a
//! scan-first-search spanning tree: the hand moves `2(n-1)` times and,
//! with the Θ(log Δ) elections, the traversal takes O(n log n) rounds.
//!
//! **Timing concretization.** The paper alternates even rounds
//! (by-arm maintenance) and odd rounds (agent logic) and "calls" the
//! Section 4.4 tournament as a subroutine. We flatten this into a single
//! synchronous automaton: maintenance runs every round, and a
//! freshly-created hand idles through two `Settle` rounds so the by-arm
//! flags around the new arm tip are current before it reads them — the
//! same hazard the paper's parity trick prevents. The election is the
//! Algorithm 4.2 tournament restricted to blank neighbours.

use fssga_engine::{NeighborView, Network, Protocol, StateSpace};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{Graph, NodeId};

/// Election substate of a blank node.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Elect {
    /// Not participating.
    Idle,
    /// Flipped heads.
    Heads,
    /// Flipped tails.
    Tails,
    /// Eliminated from the current tournament.
    Eliminated,
}

/// Phase of the hand's decision cycle.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HandPhase {
    /// First settling round after becoming the hand.
    Settle1,
    /// Second settling round; decides extend-vs-retract next.
    Settle2,
    /// Asking blank neighbours to flip.
    Flip,
    /// Waiting for the flips to land.
    Wait,
    /// Nobody flipped tails: re-run.
    NoTails,
    /// Exactly one tails: hand over.
    OneTails,
}

/// The traversal status of a node.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TStatus {
    /// Unvisited, not adjacent to the arm.
    Blank(Elect),
    /// Unvisited but adjacent to the arm (ineligible for extension).
    ByArm,
    /// Part of the arm path.
    Arm,
    /// The agent.
    Hand(HandPhase),
    /// Traversed and released.
    Visited,
}

/// Full node state: the originator flag is part of the state because the
/// originator's retraction rule differs (Algorithm 4.3).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TravState {
    /// Whether this node is the traversal originator `v_0`.
    pub originator: bool,
    /// Traversal status.
    pub status: TStatus,
}

impl TravState {
    /// Initial state: the originator starts as the hand.
    pub fn init(originator: bool) -> Self {
        TravState {
            originator,
            status: if originator {
                TStatus::Hand(HandPhase::Settle1)
            } else {
                TStatus::Blank(Elect::Idle)
            },
        }
    }

    /// Whether the node currently holds the agent.
    pub fn is_hand(self) -> bool {
        matches!(self.status, TStatus::Hand(_))
    }
}

const STATUS_COUNT: usize = 4 + 1 + 1 + 6 + 1; // Blank×4, ByArm, Arm, Hand×6, Visited

fn status_index(s: TStatus) -> usize {
    match s {
        TStatus::Blank(e) => e as usize,
        TStatus::ByArm => 4,
        TStatus::Arm => 5,
        TStatus::Hand(p) => 6 + p as usize,
        TStatus::Visited => 12,
    }
}

fn status_from_index(i: usize) -> TStatus {
    match i {
        0 => TStatus::Blank(Elect::Idle),
        1 => TStatus::Blank(Elect::Heads),
        2 => TStatus::Blank(Elect::Tails),
        3 => TStatus::Blank(Elect::Eliminated),
        4 => TStatus::ByArm,
        5 => TStatus::Arm,
        6 => TStatus::Hand(HandPhase::Settle1),
        7 => TStatus::Hand(HandPhase::Settle2),
        8 => TStatus::Hand(HandPhase::Flip),
        9 => TStatus::Hand(HandPhase::Wait),
        10 => TStatus::Hand(HandPhase::NoTails),
        11 => TStatus::Hand(HandPhase::OneTails),
        _ => TStatus::Visited,
    }
}

impl StateSpace for TravState {
    const COUNT: usize = 2 * STATUS_COUNT;

    fn index(self) -> usize {
        usize::from(self.originator) * STATUS_COUNT + status_index(self.status)
    }

    fn from_index(i: usize) -> Self {
        assert!(i < Self::COUNT);
        TravState {
            originator: i / STATUS_COUNT == 1,
            status: status_from_index(i % STATUS_COUNT),
        }
    }
}

/// Summary of the neighbourhood, gathered through present-state and
/// capped-count queries only. Public so the leader election (Section 4.7)
/// can reuse the agent as a sub-automaton over its product state.
pub struct Hood {
    /// Any neighbour with status `Arm`.
    pub any_arm: bool,
    /// Count of `Arm` + `Hand` neighbours, capped at 2.
    pub arm_or_hand: u32,
    /// Any neighbour with a `Blank` status.
    pub any_blank: bool,
    /// The phase of an adjacent hand, if one is present.
    pub hand_phase: Option<HandPhase>,
    /// Count of neighbours showing `Tails`, capped at 2.
    pub tails: u32,
}

/// Gathers a [`Hood`] from a full neighbour view.
pub fn scan(nbrs: &NeighborView<'_, TravState>) -> Hood {
    let mut h = Hood {
        any_arm: false,
        arm_or_hand: 0,
        any_blank: false,
        hand_phase: None,
        tails: 0,
    };
    // Two hands with distinct phases can be adjacent only in the
    // corrupted (post-fault) regime; tie-break on the full state index so
    // the summary stays a pure function of the neighbour multiset.
    let mut hand_key: Option<usize> = None;
    for ps in nbrs.present_states() {
        match ps.status {
            TStatus::Arm => {
                h.any_arm = true;
                h.arm_or_hand = (h.arm_or_hand + nbrs.count_capped(ps, 2)).min(2);
            }
            TStatus::Hand(p) => {
                let k = ps.index();
                if hand_key.is_none_or(|best| k > best) {
                    hand_key = Some(k);
                    h.hand_phase = Some(p);
                }
                h.arm_or_hand = (h.arm_or_hand + nbrs.count_capped(ps, 2)).min(2);
            }
            TStatus::Blank(e) => {
                h.any_blank = true;
                if e == Elect::Tails {
                    h.tails = (h.tails + nbrs.count_capped(ps, 2)).min(2);
                }
            }
            _ => {}
        }
    }
    h
}

/// The checked semantic contract. Milgram's traversal keeps its entire
/// arm alive as routing state: severing any arm node re-grows hands on
/// both fragments (the `corrupted` failure mode), so the critical set is
/// the whole arm — Θ(n) in the worst case.
pub const CONTRACT: crate::contract::SemanticContract = crate::contract::SemanticContract {
    name: "traversal",
    order_independent: false,
    semilattice: false,
    scheduling: crate::contract::Scheduling::SyncOnly,
    sensitivity: fssga_engine::SensitivityClass::Linear,
    max_nodes: 3,
    config_budget: 150_000,
};

/// The synchronous traversal protocol.
pub struct Traversal;

impl Protocol for Traversal {
    type State = TravState;
    const COMPILED: bool = true;
    const RANDOMNESS: u32 = 2;

    fn transition(
        &self,
        own: TravState,
        nbrs: &NeighborView<'_, TravState>,
        coin: u32,
    ) -> TravState {
        step(own, &scan(nbrs), coin)
    }
}

/// The traversal transition as a pure function of `(own, hood, coin)` —
/// reused verbatim by the election automaton.
pub fn step(own: TravState, h: &Hood, coin: u32) -> TravState {
    {
        let with = |status: TStatus| TravState {
            originator: own.originator,
            status,
        };
        let flip = || {
            if coin == 0 {
                Elect::Heads
            } else {
                Elect::Tails
            }
        };
        match own.status {
            TStatus::Visited => own,
            TStatus::ByArm => {
                if h.any_arm {
                    own
                } else {
                    with(TStatus::Blank(Elect::Idle))
                }
            }
            TStatus::Blank(e) => {
                // Arm adjacency dominates: an arm-adjacent node is
                // ineligible and withdraws from any election.
                if h.any_arm {
                    return with(TStatus::ByArm);
                }
                match (h.hand_phase, e) {
                    (Some(HandPhase::Flip), Elect::Heads) => {
                        with(TStatus::Blank(Elect::Eliminated))
                    }
                    (Some(HandPhase::Flip), Elect::Eliminated) => own,
                    (Some(HandPhase::Flip), _) => with(TStatus::Blank(flip())),
                    (Some(HandPhase::NoTails), Elect::Heads) => with(TStatus::Blank(flip())),
                    (Some(HandPhase::OneTails), Elect::Tails) => {
                        with(TStatus::Hand(HandPhase::Settle1)) // receive the agent
                    }
                    (Some(HandPhase::OneTails), _) => with(TStatus::Blank(Elect::Idle)),
                    (Some(_), _) => own, // hand settling or waiting: hold
                    (None, Elect::Idle) => own,
                    // Election orphaned (hand died to a fault): reset.
                    (None, _) => with(TStatus::Blank(Elect::Idle)),
                }
            }
            TStatus::Arm => {
                let retract = if own.originator {
                    h.arm_or_hand == 0
                } else {
                    h.arm_or_hand <= 1
                };
                if retract {
                    with(TStatus::Hand(HandPhase::Settle1))
                } else {
                    own
                }
            }
            TStatus::Hand(phase) => match phase {
                HandPhase::Settle1 => with(TStatus::Hand(HandPhase::Settle2)),
                HandPhase::Settle2 => {
                    if h.any_blank {
                        with(TStatus::Hand(HandPhase::Flip))
                    } else {
                        with(TStatus::Visited) // retract: the arm tip takes over
                    }
                }
                HandPhase::Flip => with(TStatus::Hand(HandPhase::Wait)),
                HandPhase::Wait => {
                    if h.tails == 0 {
                        with(TStatus::Hand(HandPhase::NoTails))
                    } else if h.tails == 1 {
                        with(TStatus::Hand(HandPhase::OneTails))
                    } else {
                        with(TStatus::Hand(HandPhase::Flip))
                    }
                }
                HandPhase::NoTails => with(TStatus::Hand(HandPhase::Wait)),
                HandPhase::OneTails => with(TStatus::Arm), // extension committed
            },
        }
    }
}

/// A completed (or aborted) traversal record.
#[derive(Clone, Debug)]
pub struct TraversalRun {
    /// Rounds executed.
    pub rounds: u64,
    /// Number of times the hand appeared at a node (agent moves).
    pub hand_moves: u64,
    /// Whether the originator finished (became `Visited`).
    pub complete: bool,
    /// Whether the single-hand invariant broke (this happens exactly when
    /// a fault hits the arm — the Θ(n)-sensitivity failure mode: the
    /// severed arm re-grows hands on both sides).
    pub corrupted: bool,
    /// Final per-node "was visited" flags.
    pub visited: Vec<bool>,
    /// The sequence of nodes the hand occupied.
    pub hand_history: Vec<NodeId>,
}

/// Drives [`Traversal`] to completion (or a round budget).
pub struct TraversalHarness {
    net: Network<Traversal>,
    origin: NodeId,
}

impl TraversalHarness {
    /// Sets up the traversal from `origin`.
    pub fn new(g: &Graph, origin: NodeId) -> Self {
        let net = Network::new(g, Traversal, |v| TravState::init(v == origin));
        Self { net, origin }
    }

    /// Access to the network (fault injection, inspection).
    pub fn network_mut(&mut self) -> &mut Network<Traversal> {
        &mut self.net
    }

    /// Nodes currently in the arm-or-hand path (for invariant checks).
    pub fn arm_path_nodes(&self) -> Vec<NodeId> {
        (0..self.net.n() as NodeId)
            .filter(|&v| matches!(self.net.state(v).status, TStatus::Arm | TStatus::Hand(_)))
            .collect()
    }

    /// Runs until the originator is `Visited` or `max_rounds` pass.
    /// `check_invariants` additionally asserts the arm-path property
    /// every round (slow; for tests).
    pub fn run(
        &mut self,
        max_rounds: u64,
        rng: &mut Xoshiro256,
        check_invariants: bool,
    ) -> TraversalRun {
        let mut hand_history = vec![self.origin];
        let mut rounds = 0;
        let mut complete = false;
        let mut corrupted = false;
        while rounds < max_rounds {
            self.net.sync_step(rng);
            rounds += 1;
            let hands: Vec<NodeId> = (0..self.net.n() as NodeId)
                .filter(|&v| self.net.state(v).is_hand())
                .collect();
            if hands.len() > 1 {
                // A fault severed the arm; both fragments grew a hand.
                // In a fault-free run this cannot happen.
                if check_invariants {
                    panic!("at most one hand in a fault-free run: {hands:?}");
                }
                corrupted = true;
                break;
            }
            if let Some(&hp) = hands.first() {
                if *hand_history.last().unwrap() != hp {
                    hand_history.push(hp);
                }
            }
            if check_invariants {
                self.assert_arm_is_a_path();
            }
            if self.net.state(self.origin).status == TStatus::Visited {
                complete = true;
                break;
            }
        }
        let visited = (0..self.net.n() as NodeId)
            .map(|v| self.net.state(v).status == TStatus::Visited)
            .collect();
        TraversalRun {
            rounds,
            hand_moves: hand_history.len() as u64 - 1,
            complete,
            corrupted,
            visited,
            hand_history,
        }
    }

    /// Asserts that the arm ∪ hand nodes induce a simple path anchored at
    /// the originator (property 3 of Section 4.5).
    fn assert_arm_is_a_path(&self) {
        let nodes = self.arm_path_nodes();
        if nodes.len() <= 1 {
            return;
        }
        let set: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        let mut endpoints = 0;
        for &v in &nodes {
            let deg = self
                .net
                .graph()
                .neighbors(v)
                .iter()
                .filter(|w| set.contains(w))
                .count();
            assert!(deg <= 2, "arm touches itself at node {v}");
            assert!(deg >= 1, "arm disconnected at node {v}");
            if deg == 1 {
                endpoints += 1;
            }
        }
        assert_eq!(endpoints, 2, "arm must be a simple path: {nodes:?}");
        assert!(set.contains(&self.origin), "arm anchored at the originator");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_graph::generators;

    #[test]
    fn state_space_roundtrip() {
        for i in 0..TravState::COUNT {
            assert_eq!(TravState::from_index(i).index(), i);
        }
    }

    fn run_complete(g: &Graph, seed: u64) -> TraversalRun {
        let mut h = TraversalHarness::new(g, 0);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let budget = 3000 * g.n() as u64 + 10_000;
        let run = h.run(budget, &mut rng, true);
        assert!(run.complete, "traversal must finish within {budget} rounds");
        run
    }

    #[test]
    fn visits_every_node_on_path_graph() {
        let run = run_complete(&generators::path(10), 71);
        assert!(run.visited.iter().all(|&v| v));
    }

    #[test]
    fn visits_every_node_on_cycle() {
        let run = run_complete(&generators::cycle(9), 72);
        assert!(run.visited.iter().all(|&v| v));
    }

    #[test]
    fn visits_every_node_on_grid_and_moves_2n_minus_2() {
        let g = generators::grid(4, 5);
        let run = run_complete(&g, 73);
        assert!(run.visited.iter().all(|&v| v));
        // The arm traces a spanning tree: the hand moves exactly twice
        // per tree edge.
        assert_eq!(run.hand_moves, 2 * (g.n() as u64 - 1));
    }

    #[test]
    fn hand_moves_exactly_2n_minus_2_on_many_graphs() {
        let mut rng = Xoshiro256::seed_from_u64(74);
        for trial in 0..8u64 {
            let g = generators::connected_gnp(14, 0.2, &mut rng);
            let run = run_complete(&g, 740 + trial);
            assert!(run.visited.iter().all(|&v| v), "trial {trial}");
            assert_eq!(run.hand_moves, 2 * (g.n() as u64 - 1), "trial {trial}");
        }
    }

    #[test]
    fn traversal_on_star_from_hub_and_leaf() {
        let g = generators::star(8);
        for (origin, seed) in [(0u32, 75u64), (3, 76)] {
            let mut h = TraversalHarness::new(&g, origin);
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let run = h.run(200_000, &mut rng, true);
            assert!(run.complete, "origin {origin}");
            assert!(run.visited.iter().all(|&v| v));
        }
    }

    #[test]
    fn consecutive_hand_positions_are_adjacent() {
        let g = generators::grid(3, 4);
        let run = run_complete(&g, 77);
        for w in run.hand_history.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "hand jumped {w:?}");
        }
    }

    #[test]
    fn hand_trace_is_a_tree_walk() {
        // The union of hand edges is a spanning tree (scan-first search):
        // distinct edges used = n - 1.
        let g = generators::connected_gnp(12, 0.25, &mut Xoshiro256::seed_from_u64(8));
        let run = run_complete(&g, 78);
        let mut edges = std::collections::HashSet::new();
        for w in run.hand_history.windows(2) {
            edges.insert((w[0].min(w[1]), w[0].max(w[1])));
        }
        assert_eq!(edges.len(), g.n() - 1, "hand edges form a spanning tree");
    }

    #[test]
    fn single_edge_graph() {
        let run = run_complete(&generators::path(2), 79);
        assert!(run.visited.iter().all(|&v| v));
        assert_eq!(run.hand_moves, 2);
    }

    #[test]
    fn rounds_scale_near_linearithmic() {
        // O(n log n): rounds per node should grow slowly with n.
        let mut per_node = Vec::new();
        for (n, seed) in [(8usize, 80u64), (32, 81), (128, 82)] {
            let g = generators::cycle(n);
            let mut h = TraversalHarness::new(&g, 0);
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let run = h.run(4000 * n as u64, &mut rng, false);
            assert!(run.complete);
            per_node.push(run.rounds as f64 / n as f64);
        }
        assert!(
            per_node[2] < per_node[0] * 6.0,
            "rounds/node should stay near-constant: {per_node:?}"
        );
    }
}
