//! Section 2.2: decentralized shortest paths and clustering.
//!
//! Every node keeps one label `ℓ(v)`; sinks (the set `T`) pin theirs to 0
//! and everyone else repeatedly applies `ℓ(v) := 1 + min ℓ(neighbours)`,
//! capped at a maximum (the paper caps at `n` in case a component has no
//! sink). A node at distance `d` stabilizes at `d` within `d` rounds, and
//! the labels implicitly route packets along shortest paths to the
//! nearest sink ("data sinks" in the sensor-network motivation).
//!
//! The label cap is the const parameter `CAP`; the state space is
//! `{Sink} ∪ {0..=CAP}`, so this is finite-state for a fixed cap (the
//! paper's Section 2 algorithms allow integer state; in the FSSGA model
//! the same idea reappears mod 3 as the Section 4.3 BFS).

use fssga_engine::{NeighborView, Protocol, SensitiveProtocol, SensitivityClass, StateSpace};
use fssga_graph::exact::UNREACHABLE;
use fssga_graph::{Graph, NodeId};

/// Node state: a sink, or a tentative distance label in `0..=CAP`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SpState<const CAP: usize> {
    /// A member of the sink set `T` (label fixed at 0).
    Sink,
    /// A non-sink node with the given tentative label.
    Label(u16),
}

impl<const CAP: usize> SpState<CAP> {
    /// The effective label value (sinks are 0).
    pub fn label(self) -> u16 {
        match self {
            SpState::Sink => 0,
            SpState::Label(d) => d,
        }
    }
}

impl<const CAP: usize> StateSpace for SpState<CAP> {
    const COUNT: usize = CAP + 2;

    fn index(self) -> usize {
        match self {
            SpState::Sink => 0,
            SpState::Label(d) => 1 + d as usize,
        }
    }

    fn from_index(i: usize) -> Self {
        assert!(i < Self::COUNT);
        if i == 0 {
            SpState::Sink
        } else {
            SpState::Label((i - 1) as u16)
        }
    }
}

/// The `ℓ(v) := 1 + min` relaxation protocol.
pub struct ShortestPaths<const CAP: usize>;

impl<const CAP: usize> ShortestPaths<CAP> {
    /// Initial state: sinks are `Sink`, others start at the cap (the
    /// algorithm is monotone decreasing from above, which is also what
    /// makes re-convergence after faults work).
    pub fn init(is_sink: bool) -> SpState<CAP> {
        if is_sink {
            SpState::Sink
        } else {
            SpState::Label(CAP as u16)
        }
    }
}

impl<const CAP: usize> Protocol for ShortestPaths<CAP> {
    type State = SpState<CAP>;
    const COMPILED: bool = true;

    fn transition(
        &self,
        own: SpState<CAP>,
        nbrs: &NeighborView<'_, SpState<CAP>>,
        _coin: u32,
    ) -> SpState<CAP> {
        match own {
            SpState::Sink => SpState::Sink,
            SpState::Label(_) => {
                // min over present neighbour labels, via present_states
                // (a chain of μ >= 1 queries — symmetric and finite).
                let mut best = CAP as u16;
                for s in nbrs.present_states() {
                    best = best.min(s.label());
                }
                SpState::Label((best + 1).min(CAP as u16))
            }
        }
    }
}

/// The relaxation recomputes every label from the *current* neighbour
/// minimum on each activation (it is self-stabilizing, not merely
/// monotone), so like census it is 0-sensitive: after any benign fault the
/// surviving component's labels re-converge to that component's true
/// distances.
impl<const CAP: usize> SensitiveProtocol for ShortestPaths<CAP> {
    fn algorithm_name() -> &'static str {
        "shortest-paths"
    }

    fn declared_class() -> SensitivityClass {
        SensitivityClass::Zero
    }
}

/// The checked semantic contract. The `1 + min` relaxation from the
/// all-`CAP` initial configuration is confluent: every label stays
/// `>= ` its true distance along any run, the unique fixed point is the
/// capped distance vector, and the checker verifies the changing-step
/// relation is acyclic on every family instance. It is *not* a
/// semilattice join (`a ∘ b = min(b)+1` is not idempotent).
pub const CONTRACT: crate::contract::SemanticContract = crate::contract::SemanticContract {
    name: "shortest-paths",
    order_independent: true,
    semilattice: false,
    scheduling: crate::contract::Scheduling::Any,
    sensitivity: SensitivityClass::Zero,
    max_nodes: 6,
    config_budget: 50_000,
};

/// Extracts all labels as distances (`UNREACHABLE` for nodes still at the
/// cap, which after convergence means "no sink in my component within CAP
/// hops").
pub fn labels_as_distances<const CAP: usize>(states: &[SpState<CAP>]) -> Vec<u32> {
    states
        .iter()
        .map(|s| match s {
            SpState::Sink => 0,
            SpState::Label(d) if (*d as usize) >= CAP => UNREACHABLE,
            SpState::Label(d) => *d as u32,
        })
        .collect()
}

/// Greedy sink routing: from `start`, repeatedly step to a minimum-label
/// neighbour; returns the path if it reaches a sink within `n` hops.
/// (The paper: "If each node routes packets to a minimum-label neighbour,
/// then every packet traverses a shortest path to the nearest sink.")
pub fn route_to_sink<const CAP: usize>(
    g: &Graph,
    states: &[SpState<CAP>],
    start: NodeId,
) -> Option<Vec<NodeId>> {
    let mut path = vec![start];
    let mut cur = start;
    for _ in 0..g.n() {
        if states[cur as usize] == SpState::Sink {
            return Some(path);
        }
        let next = g
            .neighbors(cur)
            .iter()
            .copied()
            .min_by_key(|&w| states[w as usize].label())?;
        if states[next as usize].label() >= states[cur as usize].label() {
            return None; // stuck in an unconverged or sink-free region
        }
        path.push(next);
        cur = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_engine::Network;
    use fssga_engine::{AsyncPolicy, Budget, Policy, Runner};
    use fssga_graph::rng::Xoshiro256;
    use fssga_graph::{exact, generators};

    const CAP: usize = 64;

    fn run<const C: usize>(
        g: &fssga_graph::Graph,
        sinks: &[NodeId],
    ) -> (Network<ShortestPaths<C>>, usize) {
        let mut net = Network::new(g, ShortestPaths::<C>, |v| {
            ShortestPaths::<C>::init(sinks.contains(&v))
        });
        let rounds = Runner::new(&mut net)
            .budget(Budget::Fixpoint(10 * C + 10))
            .run()
            .fixpoint
            .expect("must converge");
        (net, rounds)
    }

    #[test]
    fn labels_match_bfs_on_grid() {
        let g = generators::grid(5, 8);
        let sinks = [0u32];
        let (net, _) = run::<CAP>(&g, &sinks);
        let truth = exact::bfs_distances(&g, &sinks);
        assert_eq!(labels_as_distances(net.states()), truth);
    }

    #[test]
    fn multi_sink_labels_match_multi_source_bfs() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..10 {
            let g = generators::connected_gnp(40, 0.08, &mut rng);
            let sinks = [3u32, 17, 31];
            let (net, _) = run::<CAP>(&g, &sinks);
            assert_eq!(
                labels_as_distances(net.states()),
                exact::bfs_distances(&g, &sinks)
            );
        }
    }

    #[test]
    fn converges_within_distance_rounds() {
        // "a node v at distance d from T will have its label stabilize at
        // d, within d rounds" — synchronous rounds; +1 for the quiescent
        // detection round.
        let g = generators::path(30);
        let (_, rounds) = run::<CAP>(&g, &[0]);
        assert!(rounds <= 30 + 1, "rounds = {rounds}");
    }

    #[test]
    fn cap_applies_in_sinkless_component() {
        let g = generators::path(6);
        let mut net = Network::new(&g, ShortestPaths::<8>, |v| ShortestPaths::<8>::init(v == 0));
        net.remove_edge(2, 3); // nodes 3..5 lose their sink
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(100))
            .run()
            .fixpoint
            .unwrap();
        let d = labels_as_distances(net.states());
        assert_eq!(&d[..3], &[0, 1, 2]);
        assert!(d[3..].iter().all(|&x| x == UNREACHABLE));
    }

    #[test]
    fn async_adversarial_sweeps_still_converge() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let g = generators::connected_gnp(30, 0.1, &mut rng);
        let sinks = [5u32];
        let mut net = Network::new(&g, ShortestPaths::<CAP>, |v| {
            ShortestPaths::<CAP>::init(sinks.contains(&v))
        });
        Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::RandomPermutation))
            .budget(Budget::Fixpoint(50 * CAP))
            .rng(&mut rng)
            .run()
            .fixpoint
            .expect("converges");
        assert_eq!(
            labels_as_distances(net.states()),
            exact::bfs_distances(&g, &sinks)
        );
    }

    #[test]
    fn zero_sensitive_recovery_after_fault() {
        // Remove an edge mid-run; labels re-converge to the new graph's
        // distances (0-sensitivity: no critical nodes at all)...
        let g = generators::grid(4, 6);
        let sinks = [0u32];
        let mut net = Network::new(&g, ShortestPaths::<CAP>, |v| {
            ShortestPaths::<CAP>::init(sinks.contains(&v))
        });
        let _rng = Xoshiro256::seed_from_u64(9);
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(1000))
            .run()
            .fixpoint
            .unwrap();
        net.remove_edge(0, 1); // distances through node 6 now longer
                               // ...but note: after deletion some labels must INCREASE, and the
                               // 1+min rule only creeps up by one per round — still converges.
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(10 * CAP))
            .run()
            .fixpoint
            .expect("re-converges");
        let snapshot = net.graph().snapshot();
        assert_eq!(
            labels_as_distances(net.states()),
            exact::bfs_distances(&snapshot, &sinks)
        );
    }

    #[test]
    fn routing_follows_shortest_paths() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let g = generators::connected_gnp(25, 0.15, &mut rng);
        let sinks = [0u32, 12];
        let (net, _) = run::<CAP>(&g, &sinks);
        let dist = exact::bfs_distances(&g, &sinks);
        for start in g.nodes() {
            let path = route_to_sink(&g, net.states(), start).expect("reaches a sink");
            assert_eq!(
                path.len() as u32 - 1,
                dist[start as usize],
                "path from {start} not shortest"
            );
            assert_eq!(path[0], start);
            assert!(sinks.contains(path.last().unwrap()));
            for w in path.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn compiled_protocol_matches_native() {
        // Small cap keeps the compiled alphabet tiny (CAP=3 -> 5 states).
        let auto = fssga_engine::compile::compile_protocol(&ShortestPaths::<3>, 1 << 20).unwrap();
        let g = generators::path(5);
        let mut native = Network::new(&g, ShortestPaths::<3>, |v| ShortestPaths::<3>::init(v == 0));
        let mut interp = fssga_engine::interp::InterpNetwork::new(&g, &auto, |v| {
            ShortestPaths::<3>::init(v == 0).index()
        });
        for round in 0..12 {
            native.sync_step_seeded(round);
            interp.sync_step_seeded(round);
            let ids: Vec<usize> = native.states().iter().map(|s| s.index()).collect();
            assert_eq!(&ids, interp.states());
        }
    }
}
