//! Section 4.4: a random walk in the synchronous FSSGA model
//! (Algorithm 4.2).
//!
//! A finite-state node cannot pick uniformly among an unbounded number of
//! neighbours, so the walker runs a coin-flip *elimination tournament*:
//! it asks its neighbours to flip; while two or more show tails, the
//! heads are eliminated and the tails re-flip; if nobody shows tails the
//! round is re-run (else no one would win); when exactly one tails
//! remains, that neighbour receives the walker. At a degree-`d` node the
//! expected number of flip rounds is Θ(log d), and the winner is uniform
//! among the neighbours by symmetry.
//!
//! The network must contain exactly one walker (a node whose state lies
//! in `Q_w = {Flip, Waiting, NoTails, OneTails}`) and walkers must never
//! become adjacent — both invariants hold for the single-agent uses in
//! the paper and are asserted by [`WalkHarness`].

use fssga_engine::{
    impl_state_space, NeighborView, Network, Protocol, Sensitive, SensitivityClass,
};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{Graph, NodeId};

/// Node states: the four walker states `Q_w` plus the four participant
/// states (Equation (6) of the paper).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WalkState {
    /// Not involved.
    Blank,
    /// Flipped heads this round.
    Heads,
    /// Flipped tails this round.
    Tails,
    /// Eliminated from the current tournament.
    Eliminated,
    /// Walker: "flip!" — neighbours, flip your coins (heads from the
    /// previous round are eliminated).
    Flip,
    /// Walker: waiting for the flips to land.
    WaitingForFlips,
    /// Walker: nobody showed tails — re-run the round.
    NoTails,
    /// Walker: exactly one tails — hand the walker over.
    OneTails,
}
impl_state_space!(WalkState {
    Blank,
    Heads,
    Tails,
    Eliminated,
    Flip,
    WaitingForFlips,
    NoTails,
    OneTails
});

impl WalkState {
    /// Whether this is a walker state (`Q_w`).
    pub fn is_walker(self) -> bool {
        matches!(
            self,
            WalkState::Flip | WalkState::WaitingForFlips | WalkState::NoTails | WalkState::OneTails
        )
    }
}

/// The checked semantic contract. The elimination tournament assumes
/// synchronous rounds (flip/decide phases interlock); the walker token is
/// the only persistent structure, so the critical set is the walker node
/// plus — transiently, during a hand-over — the unique `Tails` receiver:
/// `Constant(2)`.
pub const CONTRACT: crate::contract::SemanticContract = crate::contract::SemanticContract {
    name: "random-walk",
    order_independent: false,
    semilattice: false,
    scheduling: crate::contract::Scheduling::SyncOnly,
    sensitivity: SensitivityClass::Constant(2),
    max_nodes: 4,
    config_budget: 100_000,
};

/// The synchronous random-walk protocol.
pub struct RandomWalk;

impl Protocol for RandomWalk {
    type State = WalkState;
    const COMPILED: bool = true;
    const RANDOMNESS: u32 = 2;

    fn transition(
        &self,
        own: WalkState,
        nbrs: &NeighborView<'_, WalkState>,
        coin: u32,
    ) -> WalkState {
        let flip = || {
            if coin == 0 {
                WalkState::Heads
            } else {
                WalkState::Tails
            }
        };
        // Which walker state (if any) is adjacent? With a single walker,
        // at most one of these is present.
        let walker_nbr = [
            WalkState::Flip,
            WalkState::WaitingForFlips,
            WalkState::NoTails,
            WalkState::OneTails,
        ]
        .into_iter()
        .find(|&q| nbrs.some(q));

        if let Some(qw) = walker_nbr {
            match (qw, own) {
                (WalkState::Flip, WalkState::Heads) => WalkState::Eliminated,
                (WalkState::Flip, WalkState::Eliminated) => WalkState::Eliminated,
                (WalkState::Flip, _) => flip(),
                (WalkState::NoTails, WalkState::Heads) => flip(),
                (WalkState::OneTails, WalkState::Tails) => WalkState::Flip, // receive walker
                (WalkState::OneTails, s) if !s.is_walker() => WalkState::Blank,
                _ => own, // WaitingForFlips pause, or own is itself a walker
            }
        } else {
            match own {
                WalkState::WaitingForFlips => {
                    if nbrs.none(WalkState::Tails) {
                        WalkState::NoTails
                    } else if nbrs.exactly_one(WalkState::Tails) {
                        WalkState::OneTails // send the walker
                    } else {
                        WalkState::Flip
                    }
                }
                WalkState::Flip | WalkState::NoTails => WalkState::WaitingForFlips,
                WalkState::OneTails => WalkState::Blank, // clear the walker's remains
                other => other,
            }
        }
    }
}

/// A recorded walk: the sequence of nodes visited and the number of
/// synchronous rounds each move took.
#[derive(Clone, Debug)]
pub struct WalkRun {
    /// Visited nodes, starting with the initial position.
    pub positions: Vec<NodeId>,
    /// Rounds consumed by each move (`positions.len() - 1` entries).
    pub rounds_per_move: Vec<u32>,
}

/// Drives [`RandomWalk`] and tracks the walker.
pub struct WalkHarness {
    net: Network<RandomWalk>,
    position: NodeId,
}

impl WalkHarness {
    /// Places the walker at `start` (state `Flip`), everyone else blank.
    pub fn new(g: &Graph, start: NodeId) -> Self {
        let net = Network::new(g, RandomWalk, |v| {
            if v == start {
                WalkState::Flip
            } else {
                WalkState::Blank
            }
        });
        Self {
            net,
            position: start,
        }
    }

    /// Current walker position.
    pub fn position(&self) -> NodeId {
        self.position
    }

    /// Access to the underlying network (fault injection, inspection).
    pub fn network_mut(&mut self) -> &mut Network<RandomWalk> {
        &mut self.net
    }

    /// Asserts the single-walker invariant and returns the walker node.
    pub fn find_walker(&self) -> NodeId {
        let walkers: Vec<NodeId> = (0..self.net.n() as NodeId)
            .filter(|&v| self.net.state(v).is_walker())
            .collect();
        assert_eq!(walkers.len(), 1, "exactly one walker expected: {walkers:?}");
        walkers[0]
    }

    /// Runs until the walker has moved `moves` times or `max_rounds`
    /// rounds elapse; returns the recorded walk.
    pub fn run(&mut self, moves: usize, max_rounds: u32, rng: &mut Xoshiro256) -> WalkRun {
        let mut run = WalkRun {
            positions: vec![self.position],
            rounds_per_move: Vec::new(),
        };
        let mut rounds_this_move = 0u32;
        for _ in 0..max_rounds {
            if run.rounds_per_move.len() >= moves {
                break;
            }
            self.net.sync_step(rng);
            rounds_this_move += 1;
            let w = self.find_walker();
            if w != self.position {
                self.position = w;
                run.positions.push(w);
                run.rounds_per_move.push(rounds_this_move);
                rounds_this_move = 0;
            }
        }
        run
    }
}

/// The tournament walker is 1-sensitive *almost* everywhere: the token
/// lives in one node's walker state. During a hand-over round the unique
/// `Tails` neighbour is about to receive the token, so `χ(σ)` transiently
/// contains two nodes — hence the declared bound of 2.
impl Sensitive for WalkHarness {
    fn algorithm(&self) -> &'static str {
        "random-walk"
    }

    fn sensitivity_class(&self) -> SensitivityClass {
        SensitivityClass::Constant(2)
    }

    fn critical_set(&self) -> Vec<NodeId> {
        let mut crit: Vec<NodeId> = (0..self.net.n() as NodeId)
            .filter(|&v| self.net.state(v).is_walker())
            .collect();
        if crit
            .iter()
            .any(|&v| self.net.state(v) == WalkState::OneTails)
        {
            crit.extend(
                (0..self.net.n() as NodeId).filter(|&v| self.net.state(v) == WalkState::Tails),
            );
        }
        crit.sort_unstable();
        crit.dedup();
        crit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_graph::generators;

    #[test]
    fn walker_moves_and_stays_unique() {
        let g = generators::cycle(8);
        let mut h = WalkHarness::new(&g, 0);
        let mut rng = Xoshiro256::seed_from_u64(31);
        let run = h.run(20, 10_000, &mut rng);
        assert_eq!(run.rounds_per_move.len(), 20, "walker must keep moving");
        for w in run.positions.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "non-adjacent move {w:?}");
        }
    }

    #[test]
    fn degree_one_move_is_forced() {
        let g = generators::path(2);
        let mut h = WalkHarness::new(&g, 0);
        let mut rng = Xoshiro256::seed_from_u64(32);
        let run = h.run(4, 1000, &mut rng);
        assert_eq!(run.positions, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn star_moves_are_roughly_uniform() {
        // Walker at the hub of K_{1,8}: each leaf should win ~1/8 of the
        // time, by the symmetry of the tournament.
        let d = 8usize;
        let g = generators::star(d + 1);
        let mut rng = Xoshiro256::seed_from_u64(33);
        let trials = 1600;
        let mut wins = vec![0u32; d + 1];
        for _ in 0..trials {
            let mut h = WalkHarness::new(&g, 0);
            let run = h.run(1, 10_000, &mut rng);
            assert_eq!(run.positions.len(), 2);
            wins[run.positions[1] as usize] += 1;
        }
        let expected = trials as f64 / d as f64;
        for (leaf, &win) in wins.iter().enumerate().skip(1) {
            let got = f64::from(win);
            assert!(
                (got - expected).abs() < 0.35 * expected,
                "leaf {leaf}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn rounds_per_move_grow_slowly_with_degree() {
        // Θ(log d): average rounds per move at a star hub should increase
        // from d = 2 to d = 64 but stay far below linear growth.
        let mut rng = Xoshiro256::seed_from_u64(34);
        let avg = |d: usize, rng: &mut Xoshiro256| -> f64 {
            let g = generators::star(d + 1);
            let mut total = 0u32;
            let trials = 120;
            for _ in 0..trials {
                let mut h = WalkHarness::new(&g, 0);
                let run = h.run(1, 100_000, rng);
                total += run.rounds_per_move[0];
            }
            f64::from(total) / trials as f64
        };
        let a2 = avg(2, &mut rng);
        let a64 = avg(64, &mut rng);
        assert!(a64 > a2, "more neighbours, more elimination rounds");
        assert!(
            a64 < a2 * 12.0,
            "growth should be logarithmic, not linear: {a2} -> {a64}"
        );
    }

    #[test]
    fn visit_frequencies_approach_degree_stationary_distribution() {
        // A long walk visits nodes proportionally to degree (the
        // stationary distribution of a simple random walk).
        let g = generators::lollipop(4, 2);
        let mut h = WalkHarness::new(&g, 0);
        let mut rng = Xoshiro256::seed_from_u64(35);
        let run = h.run(4000, 1_000_000, &mut rng);
        assert_eq!(run.rounds_per_move.len(), 4000);
        let mut visits = vec![0u32; g.n()];
        for &p in &run.positions {
            visits[p as usize] += 1;
        }
        let total_deg: usize = g.nodes().map(|v| g.degree(v)).sum();
        for v in g.nodes() {
            let expected = run.positions.len() as f64 * g.degree(v) as f64 / total_deg as f64;
            let got = f64::from(visits[v as usize]);
            assert!(
                (got - expected).abs() < 0.25 * expected + 15.0,
                "node {v}: got {got}, expected {expected:.1}"
            );
        }
    }

    #[test]
    fn tournament_states_clean_up_between_moves() {
        // After each completed move, no node is stuck in Eliminated: the
        // OneTails round resets the old neighbourhood to Blank.
        let g = generators::complete(6);
        let mut h = WalkHarness::new(&g, 0);
        let mut rng = Xoshiro256::seed_from_u64(36);
        for _ in 0..8 {
            let before = h.position();
            let run = h.run(1, 10_000, &mut rng);
            let after = *run.positions.last().unwrap();
            assert_ne!(before, after);
            let stale = (0..h.net.n() as NodeId)
                .filter(|&v| h.net.state(v) == WalkState::Eliminated)
                .count();
            assert_eq!(stale, 0, "eliminated nodes must be cleaned after a move");
        }
    }

    #[test]
    fn compiled_random_walk_matches_native() {
        // 8 states with small thresholds: compilable. Lock-step the
        // compiled tables against the native protocol, coins included.
        let auto = fssga_engine::compile::compile_protocol(&RandomWalk, 1 << 22).unwrap();
        assert_eq!(auto.randomness(), 2);
        let g = generators::complete(5);
        use fssga_engine::StateSpace as _;
        let init = |v: NodeId| {
            if v == 0 {
                WalkState::Flip
            } else {
                WalkState::Blank
            }
        };
        let mut native = Network::new(&g, RandomWalk, init);
        let mut interp = fssga_engine::interp::InterpNetwork::new(&g, &auto, |v| init(v).index());
        for round in 0..60 {
            native.sync_step_seeded(round * 77 + 5);
            interp.sync_step_seeded(round * 77 + 5);
            let ids: Vec<usize> = native.states().iter().map(|s| s.index()).collect();
            assert_eq!(&ids, interp.states(), "round {round}");
        }
    }
}
