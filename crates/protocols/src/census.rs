//! Section 1: the Flajolet–Martin census.
//!
//! Each node initializes a `K`-bit sketch by setting bit `i` (1-indexed)
//! with probability `2^-i` (and with probability `2^-K` setting nothing),
//! then the network repeatedly ORs sketches across edges — an iterated
//! semi-lattice operation, which is why the algorithm is 0-sensitive:
//! whatever stays connected keeps converging to the union of its own
//! sketches. After stabilization every node estimates
//! `n ≈ 1.3 · 2^ℓ`, where `ℓ` is the least index of a 0 bit.

use fssga_engine::{NeighborView, Protocol, SensitiveProtocol, SensitivityClass, StateSpace};
use fssga_graph::rng::Xoshiro256;

/// A `K`-bit Flajolet–Martin sketch (`K <= 16`). Bit `i-1` of the word
/// corresponds to the paper's `m_i`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct FmSketch<const K: usize>(pub u16);

impl<const K: usize> FmSketch<K> {
    /// The all-zero sketch.
    pub fn empty() -> Self {
        FmSketch(0)
    }

    /// The probabilistic initialization: with probability `2^-i` set bit
    /// `i` (for `1 <= i <= K`), with probability `2^-K` set nothing.
    /// Implemented by counting consecutive heads: `h` heads then a tail
    /// has probability `2^-(h+1)`, which is exactly the weight of bit
    /// `h + 1`.
    pub fn random_init(rng: &mut Xoshiro256) -> Self {
        let mut h = 0usize;
        while h < K && rng.coin() {
            h += 1;
        }
        if h < K {
            FmSketch(1 << h)
        } else {
            FmSketch(0)
        }
    }

    /// Bitwise union (the semi-lattice join).
    pub fn union(self, other: Self) -> Self {
        FmSketch(self.0 | other.0)
    }

    /// `ℓ`: the least 1-indexed position holding a 0 bit (`K + 1` if all
    /// `K` bits are set).
    pub fn lowest_zero(self) -> u32 {
        let masked = self.0 | !(((1u32 << K) - 1) as u16);
        (!masked).trailing_zeros().min(K as u32) + 1
    }

    /// The paper's estimate `1.3 · 2^ℓ`.
    pub fn estimate(self) -> f64 {
        1.3 * f64::from(1u32 << self.lowest_zero())
    }
}

impl<const K: usize> StateSpace for FmSketch<K> {
    const COUNT: usize = 1 << K;

    fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(i: usize) -> Self {
        assert!(i < (1 << K));
        FmSketch(i as u16)
    }
}

/// The census protocol: repeatedly OR the neighbourhood's sketches into
/// your own (deterministic once sketches are drawn).
pub struct Census<const K: usize>;

impl<const K: usize> Protocol for Census<K> {
    type State = FmSketch<K>;
    const COMPILED: bool = true;

    fn transition(
        &self,
        own: FmSketch<K>,
        nbrs: &NeighborView<'_, FmSketch<K>>,
        _coin: u32,
    ) -> FmSketch<K> {
        let mut acc = own;
        for s in nbrs.present_states() {
            acc = acc.union(s);
        }
        acc
    }
}

/// Census is the paper's flagship 0-sensitive algorithm: an iterated
/// semi-lattice (OR) diffusion has an empty critical set — any benign
/// fault leaves each surviving component converging to the union of its
/// own sketches, which is the fault-free answer on that component.
impl<const K: usize> SensitiveProtocol for Census<K> {
    fn algorithm_name() -> &'static str {
        "census"
    }

    fn declared_class() -> SensitivityClass {
        SensitivityClass::Zero
    }
}

/// The checked semantic contract: OR-diffusion of sketches is the
/// workspace's canonical semilattice protocol — confluent under any
/// activation order, and 0-sensitive (Section 2).
pub const CONTRACT: crate::contract::SemanticContract = crate::contract::SemanticContract {
    name: "census",
    order_independent: true,
    semilattice: true,
    scheduling: crate::contract::Scheduling::Any,
    sensitivity: SensitivityClass::Zero,
    max_nodes: 6,
    config_budget: 50_000,
};

/// Draws `n` independent sketches and returns their union — the value
/// every node converges to in a connected fault-free network. Exposed for
/// statistical testing and the E1 experiment.
pub fn union_of_fresh_sketches<const K: usize>(n: usize, rng: &mut Xoshiro256) -> FmSketch<K> {
    let mut acc = FmSketch::<K>::empty();
    for _ in 0..n {
        acc = acc.union(FmSketch::random_init(rng));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_engine::{Budget, Network, Runner};
    use fssga_graph::{exact, generators};

    #[test]
    fn lowest_zero_examples() {
        assert_eq!(FmSketch::<8>(0b0000_0000).lowest_zero(), 1);
        assert_eq!(FmSketch::<8>(0b0000_0001).lowest_zero(), 2);
        assert_eq!(FmSketch::<8>(0b0000_0111).lowest_zero(), 4);
        assert_eq!(FmSketch::<8>(0b0000_0101).lowest_zero(), 2);
        assert_eq!(FmSketch::<8>(0b1111_1111).lowest_zero(), 9);
    }

    #[test]
    fn estimate_monotone_in_bits() {
        assert!(FmSketch::<8>(0b111).estimate() > FmSketch::<8>(0b1).estimate());
    }

    #[test]
    fn random_init_sets_at_most_one_bit() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..1000 {
            let s = FmSketch::<10>::random_init(&mut rng);
            assert!(s.0.count_ones() <= 1);
        }
    }

    #[test]
    fn random_init_bit_frequencies_are_geometric() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let trials = 200_000;
        let mut counts = [0u64; 11];
        for _ in 0..trials {
            let s = FmSketch::<10>::random_init(&mut rng);
            if s.0 == 0 {
                counts[10] += 1;
            } else {
                counts[s.0.trailing_zeros() as usize] += 1;
            }
        }
        // Bit i (0-indexed) should appear with probability 2^-(i+1).
        for (i, &count) in counts.iter().enumerate().take(5) {
            let expected = trials as f64 * 0.5f64.powi(i as i32 + 1);
            let got = count as f64;
            assert!(
                (got - expected).abs() < 0.05 * expected + 50.0,
                "bit {i}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn union_is_join() {
        let a = FmSketch::<8>(0b0011);
        let b = FmSketch::<8>(0b0101);
        assert_eq!(a.union(b).0, 0b0111);
        assert_eq!(a.union(a), a);
        assert_eq!(a.union(FmSketch::empty()), a);
    }

    #[test]
    fn estimate_within_factor_four_most_of_the_time() {
        // The paper claims factor 2 w.h.p. for a single sketch family;
        // a lone FM bitmap actually has constant-probability outliers, so
        // we assert the median-of-trials behaviour with generous slack.
        let mut rng = Xoshiro256::seed_from_u64(3);
        for &n in &[64usize, 256, 1024] {
            let mut within = 0;
            let trials = 200;
            for _ in 0..trials {
                let est = union_of_fresh_sketches::<16>(n, &mut rng).estimate();
                let ratio = est / n as f64;
                if (0.25..=4.0).contains(&ratio) {
                    within += 1;
                }
            }
            assert!(
                within >= trials * 6 / 10,
                "n = {n}: only {within}/{trials} within factor 4"
            );
        }
    }

    #[test]
    fn diffusion_converges_to_union_in_diameter_rounds() {
        let g = generators::grid(6, 6);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let sketches: Vec<FmSketch<8>> = (0..g.n())
            .map(|_| FmSketch::random_init(&mut rng))
            .collect();
        let expected = sketches
            .iter()
            .fold(FmSketch::<8>::empty(), |a, &b| a.union(b));
        let mut net = Network::new(&g, Census::<8>, |v| sketches[v as usize]);
        let rounds = Runner::new(&mut net)
            .budget(Budget::Fixpoint(100))
            .run()
            .fixpoint
            .unwrap();
        assert!(net.states().iter().all(|&s| s == expected));
        let diam = exact::diameter(&g).unwrap() as usize;
        assert!(rounds <= diam + 2, "rounds {rounds} > diam {diam} + 2");
    }

    #[test]
    fn zero_sensitivity_component_estimates_survive_partition() {
        // Cut the network mid-run: each component converges to the union
        // of ITS OWN sketches — between |component| lower-bound behaviour
        // and the full-graph upper bound, which is the paper's
        // "reasonably correct" window.
        let g = generators::path(20);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let sketches: Vec<FmSketch<8>> = (0..g.n())
            .map(|_| FmSketch::random_init(&mut rng))
            .collect();
        let mut net = Network::new(&g, Census::<8>, |v| sketches[v as usize]);
        net.sync_step(&mut rng);
        net.remove_edge(9, 10);
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(100))
            .run()
            .fixpoint
            .unwrap();
        // Left component: union of sketches 0..=9 possibly plus early
        // diffusion — but after one round, node 9 knows at most nodes
        // 8..=10's bits... final state must be >= union(own half) and
        // <= union(all).
        let left_union = sketches[..10]
            .iter()
            .fold(FmSketch::<8>::empty(), |a, &b| a.union(b));
        let all_union = sketches
            .iter()
            .fold(FmSketch::<8>::empty(), |a, &b| a.union(b));
        for v in 0..10usize {
            let s = net.states()[v];
            assert_eq!(s.0 & left_union.0, left_union.0, "missing own-side bits");
            assert_eq!(s.0 & !all_union.0, 0, "invented bits");
        }
    }

    #[test]
    fn compiled_census_matches_native() {
        // K = 3 keeps the compiled table small (8 states).
        let auto = fssga_engine::compile::compile_protocol(&Census::<3>, 1 << 20).unwrap();
        let g = generators::cycle(8);
        let mut rng = Xoshiro256::seed_from_u64(6);
        let sketches: Vec<FmSketch<3>> = (0..g.n())
            .map(|_| FmSketch::random_init(&mut rng))
            .collect();
        let mut native = Network::new(&g, Census::<3>, |v| sketches[v as usize]);
        let mut interp =
            fssga_engine::interp::InterpNetwork::new(&g, &auto, |v| sketches[v as usize].index());
        for round in 0..10 {
            native.sync_step_seeded(round);
            interp.sync_step_seeded(round);
            let ids: Vec<usize> = native.states().iter().map(|s| s.index()).collect();
            assert_eq!(&ids, interp.states());
        }
    }
}

/// PCSA-style averaging over `R` independent sketch families (the
/// Flajolet–Martin paper's variance-reduction technique): estimate
/// `n ≈ 2^{mean ℓ - 1} / φ` with the original FM correction
/// `φ = 0.77351` (our `ℓ` is 1-indexed, as in the SPAA paper; the SPAA
/// paper's quick `1.3 · 2^ℓ` constant is kept verbatim in
/// [`FmSketch::estimate`] and carries a ~2x bias that averaging cannot
/// remove — see experiment E1). In the FSSGA model the `R` fields form a
/// single automaton over `{0,1}^{K·R}`; since the fields never interact,
/// running `R` copies of [`Census`] is an exact factorization and keeps
/// the engine's scratch arrays small.
pub fn averaged_estimate<const K: usize>(sketches: &[FmSketch<K>]) -> f64 {
    assert!(!sketches.is_empty());
    const PHI: f64 = 0.77351;
    let mean_l: f64 = sketches
        .iter()
        .map(|s| f64::from(s.lowest_zero()))
        .sum::<f64>()
        / sketches.len() as f64;
    2f64.powf(mean_l - 1.0) / PHI
}

/// Runs `R` independent OR-diffusions over `g` to fixpoint and returns
/// node 0's averaged estimate (all nodes agree after convergence).
pub fn run_averaged_census<const K: usize>(
    g: &fssga_graph::Graph,
    r: usize,
    rng: &mut Xoshiro256,
) -> f64 {
    use fssga_engine::{Budget, Network, Runner};
    let mut finals = Vec::with_capacity(r);
    for _ in 0..r {
        let sketches: Vec<FmSketch<K>> = (0..g.n()).map(|_| FmSketch::random_init(rng)).collect();
        let mut net = Network::new(g, Census::<K>, |v| sketches[v as usize]);
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(10 * g.n() + 20))
            .run()
            .fixpoint
            .expect("converges");
        finals.push(net.state(0));
    }
    averaged_estimate(&finals)
}

#[cfg(test)]
mod averaging_tests {
    use super::*;
    use fssga_graph::generators;

    #[test]
    fn averaging_reduces_spread() {
        // Relative log-error of R=8 averaged estimates is tighter than
        // single sketches, across repeated trials.
        let mut rng = Xoshiro256::seed_from_u64(71);
        let n = 512usize;
        let trials = 60;
        let spread = |r: usize, rng: &mut Xoshiro256| -> f64 {
            let mut errs = Vec::with_capacity(trials);
            for _ in 0..trials {
                let sketches: Vec<FmSketch<16>> = (0..r)
                    .map(|_| union_of_fresh_sketches::<16>(n, rng))
                    .collect();
                let est = averaged_estimate(&sketches);
                errs.push((est / n as f64).log2().abs());
            }
            errs.iter().sum::<f64>() / trials as f64
        };
        let single = spread(1, &mut rng);
        let eight = spread(8, &mut rng);
        assert!(
            eight < single * 0.7,
            "averaging should tighten the estimate: {single:.3} -> {eight:.3}"
        );
    }

    #[test]
    fn averaged_network_census_is_accurate() {
        let mut rng = Xoshiro256::seed_from_u64(72);
        let g = generators::connected_gnp(300, 0.03, &mut rng);
        let est = run_averaged_census::<16>(&g, 8, &mut rng);
        let ratio = est / 300.0;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "averaged estimate {est:.0} for n=300"
        );
    }

    #[test]
    fn averaged_estimate_is_monotone_and_repeatable() {
        let lo = FmSketch::<8>(0b0000_0001);
        let hi = FmSketch::<8>(0b0001_0111);
        assert!(averaged_estimate(&[hi]) > averaged_estimate(&[lo]));
        // Identical sketches: the average equals the single-family value.
        assert!((averaged_estimate(&[hi, hi, hi]) - averaged_estimate(&[hi])).abs() < 1e-9);
    }
}
