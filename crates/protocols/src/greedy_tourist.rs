//! Section 4.6: the greedy tourist traversal.
//!
//! Let `T` be the unvisited set (initially everything). The agent always
//! follows a shortest path to `T`, visiting (and removing) the nearest
//! unvisited node; by the nearest-neighbour tour analysis of Rosenkrantz,
//! Stearns & Lewis, the whole graph is traversed in `O(n log n)` agent
//! steps. Shortest paths come from the Section 4.3 BFS run *from* `T`
//! (every unvisited node labels itself 0, mod-3 labels flood outward);
//! each agent step then needs a Θ(log Δ) tournament to pick one
//! predecessor, giving `O(n log² n)` total time.
//!
//! Unlike Milgram's traversal (sensitivity Θ(n) — the whole arm is
//! critical), the greedy tourist's only critical node is the agent
//! itself: labels are 0-sensitive and recompute after any fault, so the
//! algorithm has sensitivity 1 (2 while in transit, asynchronously).
//!
//! **Concretization.** The epoch structure (relabel after every visit) is
//! driven by a harness; the paper likewise layers BFS "as a subroutine"
//! without specifying the in-model epoch plumbing. The label protocol is
//! a bona fide FSSGA protocol; election costs are accounted by simulating
//! the Algorithm 4.2 tournament round by round.

use fssga_engine::{
    impl_state_space, NeighborView, Network, Protocol, Sensitive, SensitivityClass,
};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{Graph, NodeId};

/// Labels for the tourist's multi-source BFS. `Target` doubles as
/// "unvisited" and "label 0".
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TourLabel {
    /// Unvisited: a BFS source, label 0.
    Target,
    /// Visited, not yet labelled this epoch.
    Star,
    /// Distance ≡ 0 (mod 3) — only for visited nodes at distance 3k > 0.
    L0,
    /// Distance ≡ 1 (mod 3).
    L1,
    /// Distance ≡ 2 (mod 3).
    L2,
}
impl_state_space!(TourLabel {
    Target,
    Star,
    L0,
    L1,
    L2
});

impl TourLabel {
    /// The mod-3 residue this label carries (None for `Star`).
    pub fn residue(self) -> Option<u32> {
        match self {
            TourLabel::Target | TourLabel::L0 => Some(0),
            TourLabel::L1 => Some(1),
            TourLabel::L2 => Some(2),
            TourLabel::Star => None,
        }
    }

    fn from_residue(r: u32) -> TourLabel {
        match r % 3 {
            0 => TourLabel::L0,
            1 => TourLabel::L1,
            _ => TourLabel::L2,
        }
    }
}

/// The checked semantic contract (the harness view: labelling epochs plus
/// the agent). Relabelling from scratch every epoch is what buys the
/// 1-sensitivity — stale labels never survive an epoch boundary, so only
/// the agent's own node is load-bearing. The labelling subroutine itself
/// is synchronous (asynchronous adoption can skip a wavefront and adopt a
/// wrong residue).
pub const CONTRACT: crate::contract::SemanticContract = crate::contract::SemanticContract {
    name: "greedy-tourist",
    order_independent: false,
    semilattice: false,
    scheduling: crate::contract::Scheduling::SyncOnly,
    sensitivity: SensitivityClass::Constant(1),
    max_nodes: 6,
    config_budget: 50_000,
};

/// The multi-source mod-3 labelling protocol (synchronous).
pub struct TouristBfs;

impl Protocol for TouristBfs {
    type State = TourLabel;
    const COMPILED: bool = true;

    fn transition(
        &self,
        own: TourLabel,
        nbrs: &NeighborView<'_, TourLabel>,
        _coin: u32,
    ) -> TourLabel {
        match own {
            TourLabel::Star => {
                // Adopt (r + 1) mod 3 from any labelled neighbour; all
                // labelled neighbours of a star node share one residue.
                let mut adopt = None;
                for s in nbrs.present_states() {
                    if let Some(r) = s.residue() {
                        adopt = Some(match adopt {
                            None => r,
                            Some(x) => r.min(x),
                        });
                    }
                }
                match adopt {
                    Some(r) => TourLabel::from_residue(r + 1),
                    None => TourLabel::Star,
                }
            }
            fixed => fixed,
        }
    }
}

/// The result of a greedy-tourist run.
#[derive(Clone, Debug)]
pub struct TouristRun {
    /// Agent edge-traversals.
    pub agent_steps: u64,
    /// Total synchronous rounds (labelling + elections + moves).
    pub total_rounds: u64,
    /// Nodes in visit order (starts with the origin).
    pub visit_order: Vec<NodeId>,
    /// Whether every node reachable from the agent was visited.
    pub complete: bool,
}

/// The greedy-tourist driver.
pub struct GreedyTourist {
    net: Network<TouristBfs>,
    visited: Vec<bool>,
    agent: NodeId,
}

impl GreedyTourist {
    /// Starts the tourist at `origin` with every node unvisited.
    pub fn new(g: &Graph, origin: NodeId) -> Self {
        let net = Network::new(g, TouristBfs, |_| TourLabel::Target);
        let mut s = Self {
            net,
            visited: vec![false; g.n()],
            agent: origin,
        };
        s.visit(origin);
        s
    }

    /// The agent's position — the critical set χ(σ).
    pub fn agent(&self) -> NodeId {
        self.agent
    }

    /// Which nodes have been visited.
    pub fn visited(&self) -> &[bool] {
        &self.visited
    }

    /// Access to the network (fault injection).
    pub fn network_mut(&mut self) -> &mut Network<TouristBfs> {
        &mut self.net
    }

    /// Read-only network access (inspection, sensitivity estimation).
    pub fn network(&self) -> &Network<TouristBfs> {
        &self.net
    }

    fn visit(&mut self, v: NodeId) {
        self.visited[v as usize] = true;
    }

    /// Resets labels for a fresh epoch: unvisited nodes become sources.
    fn reset_labels(&mut self) {
        for v in 0..self.net.n() as NodeId {
            let s = if self.visited[v as usize] {
                TourLabel::Star
            } else {
                TourLabel::Target
            };
            self.net.set_state(v, s);
        }
    }

    /// Simulates one Algorithm 4.2 tournament among `k` candidates;
    /// returns (rounds consumed, winner index in `0..k`).
    fn tournament(k: usize, rng: &mut Xoshiro256) -> (u64, usize) {
        assert!(k >= 1);
        let mut active: Vec<usize> = (0..k).collect();
        let mut rounds = 0;
        while active.len() > 1 {
            rounds += 2; // flip! round + decision round
            let tails: Vec<usize> = active.iter().copied().filter(|_| rng.coin()).collect();
            match tails.len() {
                0 => {} // notails: re-run with the same set
                1 => return (rounds, tails[0]),
                _ => active = tails, // heads eliminated
            }
        }
        (rounds, active[0])
    }

    /// Runs to completion (all reachable nodes visited) or until
    /// `max_rounds`. The round budget covers labelling, elections and
    /// moves.
    pub fn run(&mut self, max_rounds: u64, rng: &mut Xoshiro256) -> TouristRun {
        let mut run = TouristRun {
            agent_steps: 0,
            total_rounds: 0,
            visit_order: vec![self.agent],
            complete: false,
        };
        'epochs: loop {
            // Epoch: relabel from the current unvisited set.
            self.reset_labels();
            run.total_rounds += 1; // the reset broadcast
                                   // Flood labels until the agent's node is labelled.
            while self.net.state(self.agent).residue().is_none() {
                if run.total_rounds >= max_rounds {
                    break 'epochs;
                }
                let changed = self.net.sync_step(rng);
                run.total_rounds += 1;
                if changed == 0 {
                    // No unvisited node reachable from the agent.
                    break 'epochs;
                }
            }
            // Descend along decreasing labels to the nearest target.
            loop {
                if run.total_rounds >= max_rounds {
                    break 'epochs;
                }
                let own = self.net.state(self.agent);
                if own == TourLabel::Target {
                    self.visit(self.agent);
                    run.visit_order.push(self.agent);
                    break; // epoch done; relabel
                }
                let x = own.residue().expect("agent is labelled");
                let want = (x + 2) % 3;
                let candidates: Vec<NodeId> = self
                    .net
                    .graph()
                    .neighbors(self.agent)
                    .iter()
                    .copied()
                    .filter(|&w| self.net.state(w).residue() == Some(want))
                    .collect();
                if candidates.is_empty() {
                    // A fault invalidated the labels mid-descent: restart
                    // the epoch.
                    break;
                }
                let (rounds, idx) = Self::tournament(candidates.len(), rng);
                run.total_rounds += rounds + 1; // election + the move itself
                self.agent = candidates[idx];
                run.agent_steps += 1;
            }
            if self.visited.iter().all(|&v| v) {
                run.complete = true;
                break;
            }
        }
        // Completeness relative to reachability (faults may strand nodes).
        if !run.complete {
            let reachable = self.net.graph().component_of(self.agent);
            run.complete = reachable.iter().all(|&v| self.visited[v as usize]);
        }
        run
    }
}

/// The tourist is the paper's canonical 1-sensitive algorithm: the lone
/// agent *is* the computation, so `χ(σ)` is exactly its current position.
impl Sensitive for GreedyTourist {
    fn algorithm(&self) -> &'static str {
        "greedy-tourist"
    }

    fn sensitivity_class(&self) -> SensitivityClass {
        SensitivityClass::Constant(1)
    }

    fn critical_set(&self) -> Vec<NodeId> {
        vec![self.agent]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_engine::{Budget, Network, Runner};
    use fssga_graph::generators;

    fn run_tourist(g: &Graph, seed: u64) -> TouristRun {
        let mut t = GreedyTourist::new(g, 0);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let run = t.run(2_000_000, &mut rng);
        assert!(run.complete, "tourist must finish");
        run
    }

    #[test]
    fn visits_all_on_path() {
        let run = run_tourist(&generators::path(12), 91);
        assert_eq!(run.visit_order.len(), 12);
        // On a path from an end, the tour is exactly n - 1 steps.
        assert_eq!(run.agent_steps, 11);
    }

    #[test]
    fn visits_all_on_grid() {
        let g = generators::grid(5, 5);
        let run = run_tourist(&g, 92);
        assert_eq!(run.visit_order.len(), g.n());
        let set: std::collections::HashSet<NodeId> = run.visit_order.iter().copied().collect();
        assert_eq!(set.len(), g.n(), "no node visited twice in the order");
    }

    #[test]
    fn each_leg_is_a_shortest_path_to_nearest_target() {
        // Between consecutive visits, the agent walks exactly
        // dist(current, nearest unvisited) edges.
        let g = generators::connected_gnp(20, 0.15, &mut Xoshiro256::seed_from_u64(3));
        let mut t = GreedyTourist::new(&g, 0);
        let mut rng = Xoshiro256::seed_from_u64(93);
        let run = t.run(2_000_000, &mut rng);
        assert!(run.complete);
        // Replay: simulate the greedy process with exact BFS and check
        // the step count telescopes to the same total.
        let mut visited = vec![false; g.n()];
        visited[0] = true;
        let mut cur = 0u32;
        let mut exact_steps = 0u64;
        for &next in &run.visit_order[1..] {
            let targets: Vec<NodeId> = (0..g.n() as NodeId)
                .filter(|&v| !visited[v as usize])
                .collect();
            let dist = fssga_graph::exact::bfs_distances(&g, &targets);
            // The recorded next visit must be at the agent's nearest-
            // target distance.
            let d_next = fssga_graph::exact::bfs_distances(&g, &[next])[cur as usize];
            assert_eq!(
                d_next, dist[cur as usize],
                "visit of {next} was not a nearest target from {cur}"
            );
            exact_steps += u64::from(dist[cur as usize]);
            visited[next as usize] = true;
            cur = next;
        }
        assert_eq!(run.agent_steps, exact_steps);
    }

    #[test]
    fn steps_are_near_linear() {
        // O(n log n) agent steps; on a cycle it is exactly n - 1.
        let g = generators::cycle(40);
        let run = run_tourist(&g, 94);
        assert_eq!(run.agent_steps, 39);
        // Random graph: steps within n * log2(n) * constant.
        let g = generators::connected_gnp(60, 0.08, &mut Xoshiro256::seed_from_u64(4));
        let run = run_tourist(&g, 95);
        let bound = (60.0 * 60f64.log2() * 3.0) as u64;
        assert!(run.agent_steps <= bound, "{} > {bound}", run.agent_steps);
    }

    #[test]
    fn sensitivity_one_survives_non_agent_faults() {
        // Kill nodes (never the agent) partway through; the tourist still
        // visits everything that remains reachable.
        let g = generators::grid(4, 6);
        let mut t = GreedyTourist::new(&g, 0);
        let mut rng = Xoshiro256::seed_from_u64(96);
        // Run a short budget, inject a fault, continue.
        let _ = t.run(60, &mut rng);
        let victim = (0..g.n() as NodeId)
            .rev()
            .find(|&v| v != t.agent() && !t.visited()[v as usize])
            .unwrap();
        t.network_mut().remove_node(victim);
        let run = t.run(2_000_000, &mut rng);
        assert!(run.complete, "reachable remainder fully visited");
        let agent = t.agent();
        let reachable = t.network_mut().graph().component_of(agent);
        for v in reachable {
            assert!(t.visited()[v as usize], "node {v} reachable but unvisited");
        }
    }

    #[test]
    fn label_protocol_is_correct_bfs() {
        // Sanity: the labelling protocol alone matches exact distances
        // mod 3 from the target set.
        let g = generators::grid(4, 4);
        let targets = [5u32, 10];
        let mut net = Network::new(&g, TouristBfs, |v| {
            if targets.contains(&v) {
                TourLabel::Target
            } else {
                TourLabel::Star
            }
        });
        Runner::new(&mut net)
            .budget(Budget::Fixpoint(100))
            .run()
            .fixpoint
            .unwrap();
        let dist = fssga_graph::exact::bfs_distances(&g, &targets);
        for v in g.nodes() {
            assert_eq!(
                net.state(v).residue(),
                Some(dist[v as usize] % 3),
                "node {v}"
            );
        }
    }
}
