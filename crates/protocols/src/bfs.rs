//! Section 4.3: breadth-first search with mod-3 distance labels
//! (Algorithm 4.1).
//!
//! The originator labels itself 0; an unlabelled node adopts
//! `(x + 1) mod 3` on seeing a labelled neighbour `x`. Since adjacent
//! distances differ by at most 1, the three residues unambiguously
//! distinguish *predecessors* (label − 1), *peers* (same label) and
//! *successors* (label + 1) — finite state despite unbounded depth.
//! Target nodes set `status = found` when labelled; `found` flows back
//! along predecessor links, `failed` flows back from childless nodes, and
//! the originator ends `found` iff a target is reachable.
//!
//! **Reading note.** The printed clause "all successors have status
//! failed" must also require that no neighbour is still unlabelled —
//! otherwise a freshly-labelled frontier node (zero successors so far)
//! would fail vacuously before the search below it even starts. We add
//! that guard; it is forced by the algorithm's own invariant.

use fssga_engine::{NeighborView, Protocol, StateSpace};

/// mod-3 distance label, or unlabelled (`⋆`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Label {
    /// `⋆` — not yet reached.
    Star,
    /// Distance ≡ 0 (mod 3).
    L0,
    /// Distance ≡ 1 (mod 3).
    L1,
    /// Distance ≡ 2 (mod 3).
    L2,
}

impl Label {
    /// The label for residue `r`.
    pub fn from_residue(r: u32) -> Label {
        match r % 3 {
            0 => Label::L0,
            1 => Label::L1,
            _ => Label::L2,
        }
    }

    /// The residue of a labelled node.
    pub fn residue(self) -> Option<u32> {
        match self {
            Label::Star => None,
            Label::L0 => Some(0),
            Label::L1 => Some(1),
            Label::L2 => Some(2),
        }
    }

    fn succ(self) -> Label {
        Label::from_residue(self.residue().expect("labelled") + 1)
    }

    fn pred(self) -> Label {
        Label::from_residue(self.residue().expect("labelled") + 2)
    }
}

/// Search status.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Status {
    /// Still searching below this node.
    Waiting,
    /// A target was found at or below this node (on a shortest path).
    Found,
    /// No target exists below this node.
    Failed,
}

/// The full node state: fixed role bits × label × status.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BfsState {
    /// The unique search originator.
    pub originator: bool,
    /// A search target.
    pub target: bool,
    /// mod-3 BFS label.
    pub label: Label,
    /// Propagated search status.
    pub status: Status,
}

impl BfsState {
    /// Initial state for a node with the given roles.
    pub fn init(originator: bool, target: bool) -> Self {
        BfsState {
            originator,
            target,
            label: Label::Star,
            status: Status::Waiting,
        }
    }
}

impl StateSpace for BfsState {
    const COUNT: usize = 2 * 2 * 4 * 3;

    fn index(self) -> usize {
        let label = match self.label {
            Label::Star => 0,
            Label::L0 => 1,
            Label::L1 => 2,
            Label::L2 => 3,
        };
        let status = match self.status {
            Status::Waiting => 0,
            Status::Found => 1,
            Status::Failed => 2,
        };
        ((usize::from(self.originator) * 2 + usize::from(self.target)) * 4 + label) * 3 + status
    }

    fn from_index(i: usize) -> Self {
        assert!(i < Self::COUNT);
        let status = match i % 3 {
            0 => Status::Waiting,
            1 => Status::Found,
            _ => Status::Failed,
        };
        let rest = i / 3;
        let label = match rest % 4 {
            0 => Label::Star,
            1 => Label::L0,
            2 => Label::L1,
            _ => Label::L2,
        };
        let roles = rest / 4;
        BfsState {
            originator: roles / 2 == 1,
            target: roles % 2 == 1,
            label,
            status,
        }
    }
}

/// The checked semantic contract. Algorithm 4.1 is stated for synchronous
/// rounds (adjacent labels must differ by exactly one hop of wavefront);
/// mod-3 labels are sticky and cannot self-correct, so a mid-run fault can
/// strand stale labels — the tree-like Θ(n) fragility class of Section 2
/// (the greedy tourist recovers 1-sensitivity from the same labelling by
/// relabelling every epoch).
pub const CONTRACT: crate::contract::SemanticContract = crate::contract::SemanticContract {
    name: "bfs",
    order_independent: false,
    semilattice: false,
    scheduling: crate::contract::Scheduling::SyncOnly,
    sensitivity: fssga_engine::SensitivityClass::Linear,
    max_nodes: 6,
    config_budget: 50_000,
};

/// The synchronous BFS protocol of Algorithm 4.1.
pub struct Bfs;

impl Protocol for Bfs {
    type State = BfsState;
    const COMPILED: bool = true;

    fn transition(&self, own: BfsState, nbrs: &NeighborView<'_, BfsState>, _coin: u32) -> BfsState {
        let mut s = own;
        // Aggregate what the neighbourhood looks like, via present-state
        // queries only.
        let mut labelled_residue: Option<u32> = None;
        let mut any_star = false;
        let mut pred_found = false;
        let mut succ_found = false;
        let mut succ_waiting = false;
        let mut any_succ = false;
        for nb in nbrs.present_states() {
            match nb.label {
                Label::Star => any_star = true,
                l => {
                    let r = l.residue().unwrap();
                    // Track the smallest residue seen for adoption (any
                    // labelled neighbour of a ⋆ node is at the same
                    // distance, so the choice is immaterial; min keeps it
                    // deterministic and symmetric).
                    labelled_residue = Some(match labelled_residue {
                        None => r,
                        Some(x) => x.min(r),
                    });
                    if own.label != Label::Star {
                        if l == own.label.pred() && nb.status == Status::Found {
                            pred_found = true;
                        }
                        if l == own.label.succ() {
                            any_succ = true;
                            match nb.status {
                                Status::Found => succ_found = true,
                                Status::Waiting => succ_waiting = true,
                                Status::Failed => {}
                            }
                        }
                    }
                }
            }
        }
        let _ = any_succ;

        if own.originator && own.label == Label::Star {
            s.label = Label::L0;
            if own.target {
                s.status = Status::Found;
            }
        } else if own.label == Label::Star {
            if let Some(x) = labelled_residue {
                s.label = Label::from_residue(x + 1);
                if own.target {
                    s.status = Status::Found;
                }
            }
        } else if own.status == Status::Waiting && pred_found {
            // Avoid reporting non-shortest paths: a found predecessor
            // means this node's report is redundant.
        } else if own.status == Status::Waiting && succ_found {
            s.status = Status::Found;
        } else if own.status == Status::Waiting
            && !own.target
            && !any_star
            && !succ_waiting
            && !succ_found
        {
            // All successors (possibly none) have failed, and no
            // neighbour can still become one.
            s.status = Status::Failed;
        }
        s
    }
}

/// Convenience: run the synchronous search to a fixpoint and report
/// whether the originator found a target, plus the rounds taken.
pub fn run_bfs(
    g: &fssga_graph::Graph,
    originator: fssga_graph::NodeId,
    targets: &[fssga_graph::NodeId],
    max_rounds: usize,
) -> Option<(Status, usize, Vec<BfsState>)> {
    let mut net = fssga_engine::Network::new(g, Bfs, |v| {
        BfsState::init(v == originator, targets.contains(&v))
    });
    let rounds = fssga_engine::Runner::new(&mut net)
        .budget(fssga_engine::Budget::Fixpoint(max_rounds))
        .run()
        .fixpoint?;
    let status = net.state(originator).status;
    Some((status, rounds, net.states().to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_engine::{Budget, Network, Runner};
    use fssga_graph::rng::Xoshiro256;
    use fssga_graph::{exact, generators};

    #[test]
    fn state_space_roundtrip() {
        for i in 0..BfsState::COUNT {
            assert_eq!(BfsState::from_index(i).index(), i);
        }
    }

    #[test]
    fn labels_match_distance_mod3() {
        let g = generators::grid(5, 6);
        let (_, _, states) = run_bfs(&g, 0, &[], 200).expect("stabilizes");
        let dist = exact::bfs_distances(&g, &[0]);
        for v in g.nodes() {
            assert_eq!(
                states[v as usize].label.residue(),
                Some(dist[v as usize] % 3),
                "node {v}"
            );
        }
    }

    #[test]
    fn target_found_on_path() {
        let g = generators::path(12);
        let (status, rounds, _) = run_bfs(&g, 0, &[11], 200).unwrap();
        assert_eq!(status, Status::Found);
        // Label wave out (11 rounds) + found wave back (11 rounds) + slack.
        assert!(rounds <= 2 * 11 + 4, "rounds = {rounds}");
    }

    #[test]
    fn no_target_reports_failed() {
        let g = generators::grid(4, 4);
        let (status, _, states) = run_bfs(&g, 5, &[], 300).unwrap();
        assert_eq!(status, Status::Failed);
        assert!(states.iter().all(|s| s.status == Status::Failed));
    }

    #[test]
    fn found_nodes_lie_on_shortest_paths() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        for trial in 0..15 {
            let g = generators::connected_gnp(24, 0.12, &mut rng);
            let target = 17u32;
            let (status, _, states) = run_bfs(&g, 0, &[target], 500).unwrap();
            assert_eq!(status, Status::Found, "trial {trial}");
            let d_from_origin = exact::bfs_distances(&g, &[0]);
            let d_to_target = exact::bfs_distances(&g, &[target]);
            let shortest = d_from_origin[target as usize];
            for v in g.nodes() {
                if states[v as usize].status == Status::Found {
                    assert_eq!(
                        d_from_origin[v as usize] + d_to_target[v as usize],
                        shortest,
                        "trial {trial}: found node {v} is off every shortest path"
                    );
                }
            }
        }
    }

    #[test]
    fn originator_found_within_2d_rounds() {
        let mut rng = Xoshiro256::seed_from_u64(22);
        for _ in 0..10 {
            let g = generators::connected_gnp(30, 0.1, &mut rng);
            let target = 29u32;
            let d = exact::bfs_distances(&g, &[0])[29] as usize;
            let mut net = Network::new(&g, Bfs, |v| BfsState::init(v == 0, v == target));
            let mut found_at = None;
            for round in 1..=4 * d + 8 {
                net.sync_step(&mut Xoshiro256::seed_from_u64(0));
                if net.state(0).status == Status::Found {
                    found_at = Some(round);
                    break;
                }
            }
            let round = found_at.expect("originator learns of the target");
            assert!(round <= 2 * d + 3, "found at {round}, distance {d}");
        }
    }

    #[test]
    fn multiple_targets_report_nearest() {
        let g = generators::path(20);
        // Targets at both ends; originator at 5 -> nearest is node 0.
        let (status, _, states) = run_bfs(&g, 5, &[0, 19], 300).unwrap();
        assert_eq!(status, Status::Found);
        // Node 0 (distance 5) is found; node 19 (distance 14) must have
        // been found too (it is a target), but intermediate nodes toward
        // 19 beyond the shortest distance report... found as well, since
        // both ends are targets. Check at least the near side chain:
        for v in 0..=5u32 {
            assert_eq!(states[v as usize].status, Status::Found, "node {v}");
        }
    }

    #[test]
    fn originator_is_target_trivially_found() {
        let g = generators::cycle(6);
        let (status, _, _) = run_bfs(&g, 2, &[2], 100).unwrap();
        assert_eq!(status, Status::Found);
    }

    #[test]
    fn compilation_blowup_is_exponential_in_alphabet() {
        // The dense mod-thresh decision list over the 48-state product
        // alphabet has 2^48 count classes — the "exponential increase in
        // program complexity" the paper warns about after Theorem 3.7.
        // The compiler detects this and refuses instead of thrashing.
        let err = fssga_engine::compile::compile_protocol(&Bfs, 1 << 22).unwrap_err();
        assert!(matches!(
            err,
            fssga_core::SmError::TooLarge { needed, .. } if needed == 1 << 48
        ));
    }

    #[test]
    fn fixpoint_reached_eventually_on_random_graphs() {
        let mut rng = Xoshiro256::seed_from_u64(23);
        for _ in 0..10 {
            let g = generators::connected_gnp(20, 0.15, &mut rng);
            let mut net = Network::new(&g, Bfs, |v| BfsState::init(v == 0, false));
            assert!(
                Runner::new(&mut net)
                    .budget(Budget::Fixpoint(10 * g.n()))
                    .run()
                    .fixpoint
                    .is_some(),
                "BFS must stabilize"
            );
        }
    }
}
