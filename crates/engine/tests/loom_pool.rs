//! Loom model checking for [`fssga_engine::ShardPool`].
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` with the `loom` crate
//! added as a dev-dependency — the CI `loom` job does both:
//!
//! ```sh
//! cargo add loom --dev -p fssga-engine
//! RUSTFLAGS="--cfg loom" cargo test -p fssga-engine --test loom_pool --release
//! ```
//!
//! Under `--cfg loom` the pool's mutex/condvar/atomics are loom's
//! permutation-exploring versions (see `src/pool.rs`), so each
//! `loom::model` block below exhaustively checks every thread
//! interleaving of the scenario: the lifetime-erased job pointer is
//! never dereferenced outside its epoch, every shard runs exactly once,
//! epochs never bleed into each other, and shutdown always terminates.
//!
//! Scenarios are deliberately tiny (2 threads, a handful of shards):
//! loom's state space is exponential in preemption points, and the
//! pool's interesting races — job publication vs. worker wakeup, epoch
//! completion vs. caller return, shutdown vs. parked worker — all
//! manifest with a single spawned worker.

#![cfg(loom)]

use fssga_engine::ShardPool;
use loom::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn every_shard_runs_exactly_once() {
    loom::model(|| {
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        let mut pool = ShardPool::new(2);
        pool.run(3, &|k| {
            hits[k].fetch_add(1, Ordering::Relaxed);
        });
        for (k, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "shard {k}");
        }
    });
}

#[test]
fn epochs_do_not_bleed() {
    loom::model(|| {
        let total = AtomicUsize::new(0);
        let mut pool = ShardPool::new(2);
        // Two back-to-back epochs through the same pool: the second must
        // start only after the first fully drained, on every
        // interleaving of worker wakeup and caller return.
        pool.run(2, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 2, "first epoch drained");
        pool.run(3, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5, "second epoch drained");
    });
}

#[test]
fn drop_terminates_parked_workers() {
    loom::model(|| {
        // Dropping a pool that never ran an epoch must still wake and
        // join the parked worker (shutdown vs. wait race).
        let pool = ShardPool::new(2);
        drop(pool);
    });
}

#[test]
fn inline_pool_needs_no_synchronization() {
    loom::model(|| {
        let total = AtomicUsize::new(0);
        let mut pool = ShardPool::new(1);
        pool.run(4, &|k| {
            total.fetch_add(k + 1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
    });
}
