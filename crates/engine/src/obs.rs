//! Observability: zero-cost-when-disabled tracing of engine execution.
//!
//! The paper's claims are quantitative — O(n log n) expected activations
//! for leader election (§4), the 0/1/Θ(n) sensitivity ranking (§2),
//! synchronizer overhead (§4.2) — so the engine must be able to *report*
//! what it did, per round, without slowing down runs that do not ask.
//!
//! The design is a single [`Tracer`] trait threaded generically through
//! every stepper ([`crate::Runner`], [`crate::CompiledKernel`], the
//! interpreter paths, and [`crate::Campaign`]):
//!
//! * **Disabled is free.** [`NullTracer::enabled`] returns a constant
//!   `false`; every traced stepper hoists `tracer.enabled()` out of its
//!   hot loop, so the `NullTracer` monomorphization compiles to exactly
//!   the untraced code. The recorded engine baseline
//!   (`BENCH_engine.json`) is the regression guard: medians with
//!   `NullTracer` must stay within noise of the pre-tracing kernels.
//! * **One event per round.** Steppers emit a [`RoundMetrics`] after each
//!   synchronous round (or asynchronous sweep); fault surgeries between
//!   rounds surface both as [`RoundMetrics::faults`] counts and — from
//!   the campaign engine — as discrete [`FaultSurgery`] events.
//! * **Sinks compose.** [`Counters`] aggregates rounds into a
//!   [`RunMetrics`] summary (what [`crate::RunReport::metrics`] carries),
//!   [`RoundLog`] keeps every event for tests, [`JsonlTrace`] streams a
//!   replayable JSON-lines log (the `fssga-bench` / `fssga-chaos` CI
//!   artifact), and [`Tee`] fans one event stream into two sinks.
//!
//! The per-round counters double as a cross-engine correctness oracle:
//! the interpreter and the compiled kernel must agree bit-for-bit on the
//! engine-invariant projection ([`RoundMetrics::invariant`]), which
//! `tests/kernel_equivalence.rs` checks for every protocol in the
//! workspace.

use std::io::Write;
use std::sync::mpsc::{SyncSender, TrySendError};
use std::time::Duration;

use crate::faults::FaultKind;
use crate::runner::CancelToken;

/// A sink for per-round engine events.
///
/// Implementations should keep [`Tracer::round`] cheap — it is called
/// once per synchronous round, never per node. The per-node cost of
/// tracing (neighbour-read and dispatch counting) is paid only when
/// [`Tracer::enabled`] returns `true`; steppers hoist that call out of
/// their hot loops, so a tracer whose `enabled` is a constant `false`
/// (like [`NullTracer`]) costs nothing at all.
///
/// The trait is dyn-compatible: `&mut dyn Tracer` works wherever a
/// concrete sink type would be awkward (CLI plumbing), at the price of a
/// virtual call per round.
pub trait Tracer {
    /// Whether this sink wants events. Steppers consult this once per
    /// round and skip all metric bookkeeping when it is `false`.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// One synchronous round (or asynchronous sweep) completed.
    fn round(&mut self, metrics: &RoundMetrics);

    /// A fault surgery was applied (emitted by the campaign engine at the
    /// tick a fault fires; plain [`crate::Network`] fault injection is
    /// reported via [`RoundMetrics::faults`] instead).
    #[inline]
    fn fault(&mut self, surgery: &FaultSurgery) {
        let _ = surgery;
    }

    /// One shard's share of a sharded synchronous round (emitted by the
    /// sharded kernel only, *before* the round's [`Tracer::round`] event).
    ///
    /// Workers never call this. Per-shard counters are buffered in each
    /// shard's arena during the evaluation phase and the committing
    /// thread emits them in ascending shard order once the round's
    /// barrier has passed — so sinks (including line-oriented ones like
    /// [`JsonlTrace`]) see a deterministic, thread-count-independent
    /// event stream. Defaults to a no-op: sinks that only care about
    /// whole rounds ignore shards entirely.
    #[inline]
    fn shard_round(&mut self, metrics: &ShardRoundMetrics) {
        let _ = metrics;
    }

    /// One round of a streaming churn run completed (emitted by the
    /// [`crate::churn`] harness *after* the round's [`Tracer::round`]
    /// event). Carries the churn-specific view of the round: events
    /// applied, population counts, recovery completions, and the
    /// continuous-oracle verdict when one was taken. Defaults to a no-op
    /// so existing sinks are unaffected.
    #[inline]
    fn churn_round(&mut self, metrics: &ChurnRoundMetrics) {
        let _ = metrics;
    }
}

/// The do-nothing sink: [`Tracer::enabled`] is a constant `false`, so
/// every traced stepper monomorphized with `NullTracer` compiles to the
/// untraced code.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn round(&mut self, _metrics: &RoundMetrics) {}
}

/// Mutable references to tracers are tracers (lets callers keep ownership
/// of a sink while threading it through a [`crate::Runner`] or a
/// [`crate::Campaign`]). Also covers `&mut dyn Tracer`.
impl<T: Tracer + ?Sized> Tracer for &mut T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn round(&mut self, metrics: &RoundMetrics) {
        (**self).round(metrics);
    }

    #[inline]
    fn fault(&mut self, surgery: &FaultSurgery) {
        (**self).fault(surgery);
    }

    #[inline]
    fn shard_round(&mut self, metrics: &ShardRoundMetrics) {
        (**self).shard_round(metrics);
    }

    #[inline]
    fn churn_round(&mut self, metrics: &ChurnRoundMetrics) {
        (**self).churn_round(metrics);
    }
}

/// What one synchronous round (or asynchronous sweep) did.
///
/// Engine-invariant fields — identical between the interpreter and the
/// compiled kernel for the same trajectory — are `round`, `eligible`,
/// `changes`, and `faults` (see [`Self::invariant`]). Scheduling fields
/// (`scheduled`, `activations`, `neighbor_reads`) legitimately differ:
/// the kernel's dirty-set scheduler skips provably-quiescent nodes, which
/// is the optimisation the metrics exist to measure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Cumulative round counter of the network after this round (sweep
    /// index within the run, for asynchronous sweeps).
    pub round: u64,
    /// Nodes that *could* activate: alive with at least one live
    /// neighbour. Purely topology-determined, hence engine-invariant.
    pub eligible: u64,
    /// Nodes submitted to the evaluator this round: the dirty-set
    /// occupancy on the kernel's dirty path, `eligible` otherwise.
    pub scheduled: u64,
    /// Nodes actually evaluated (transition computed). The interpreter
    /// evaluates every eligible node; the kernel may evaluate fewer.
    pub activations: u64,
    /// Activations that changed a node's state. Engine-invariant.
    pub changes: u64,
    /// Neighbour states read while tallying multisets (= the sum of
    /// degrees over evaluated nodes).
    pub neighbor_reads: u64,
    /// Activations dispatched through the kernel's dense fold/trans
    /// tables ([`crate::KernelPlan::Tabular`]).
    pub tabular: u64,
    /// Activations dispatched through a native `transition` call (the
    /// kernel's direct plan, or any interpreter activation).
    pub direct: u64,
    /// Fault surgeries (edge/node removals) applied to the network since
    /// the previous traced round.
    pub faults: u64,
}

impl RoundMetrics {
    /// The engine-invariant projection: `(round, eligible, changes,
    /// faults)`. Bit-identical between the interpreter and the compiled
    /// kernel on the same trajectory — the lockstep oracle in
    /// `tests/kernel_equivalence.rs` asserts exactly this.
    pub fn invariant(&self) -> (u64, u64, u64, u64) {
        (self.round, self.eligible, self.changes, self.faults)
    }

    /// One JSON-lines record (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"t\":\"round\",\"round\":{},\"eligible\":{},\"scheduled\":{},\
             \"activations\":{},\"changes\":{},\"neighbor_reads\":{},\
             \"tabular\":{},\"direct\":{},\"faults\":{}}}",
            self.round,
            self.eligible,
            self.scheduled,
            self.activations,
            self.changes,
            self.neighbor_reads,
            self.tabular,
            self.direct,
            self.faults
        )
    }
}

/// One shard's share of a sharded synchronous round.
///
/// The sharded kernel buffers these per-arena while workers evaluate and
/// emits them from the committing thread in ascending shard order, so the
/// event stream is deterministic regardless of thread count or scheduling
/// (see [`Tracer::shard_round`]). Summed over `0..shards`, the counters
/// equal the corresponding fields of the round's [`RoundMetrics`] —
/// `tests/shard_equivalence.rs` asserts exactly that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRoundMetrics {
    /// Cumulative round counter of the network after this round.
    pub round: u64,
    /// This shard's index (`0..shards`).
    pub shard: u32,
    /// Total shard count of the round, so a single event is
    /// self-describing in a streamed trace.
    pub shards: u32,
    /// Dirty nodes this shard submitted to the evaluator.
    pub scheduled: u64,
    /// Nodes this shard actually evaluated.
    pub activations: u64,
    /// Evaluations that proposed a state change.
    pub changes: u64,
    /// Neighbour states this shard read while tallying multisets. The
    /// per-shard spread of this field is the load-imbalance signal the
    /// degree-aware partitioner exists to flatten.
    pub neighbor_reads: u64,
}

impl ShardRoundMetrics {
    /// One JSON-lines record (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"t\":\"shard\",\"round\":{},\"shard\":{},\"shards\":{},\
             \"scheduled\":{},\"activations\":{},\"changes\":{},\
             \"neighbor_reads\":{}}}",
            self.round,
            self.shard,
            self.shards,
            self.scheduled,
            self.activations,
            self.changes,
            self.neighbor_reads
        )
    }
}

/// What one round of a streaming churn run did (emitted by the
/// [`crate::churn`] harness alongside the round's [`RoundMetrics`]).
///
/// `activations` and `changes` duplicate the corresponding
/// [`RoundMetrics`] fields so a churn trace is self-contained: the
/// recompute-work-per-event ratio (`BENCH_churn.json`) divides summed
/// `activations` by summed `arrivals + departures` without re-joining
/// two event streams.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnRoundMetrics {
    /// Cumulative round counter of the network after this round.
    pub round: u64,
    /// Arrival events (`add-node` / `add-edge`) applied before this
    /// round's step.
    pub arrivals: u64,
    /// Departure events (`node` / `edge` removals) applied before this
    /// round's step.
    pub departures: u64,
    /// Alive nodes after this round's events and step.
    pub alive: u64,
    /// Live edges after this round's events and step.
    pub edges: u64,
    /// Nodes the engine actually evaluated this round (the bounded
    /// recompute work the dirty-set scheduler admits).
    pub activations: u64,
    /// Activations that changed a node's state.
    pub changes: u64,
    /// If a churn burst finished reconverging this round: the number of
    /// rounds from the burst's round to quiescence (the recovery-time
    /// sample). `None` while converging or when nothing was pending.
    pub recovered_in: Option<u64>,
    /// Continuous-oracle verdict, when this round took one: whether the
    /// sliding window of recent snapshots was reasonably correct.
    /// `None` on rounds where the oracle was not consulted.
    pub oracle: Option<bool>,
}

impl ChurnRoundMetrics {
    /// One JSON-lines record (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let recovered = match self.recovered_in {
            Some(r) => r.to_string(),
            None => "null".to_owned(),
        };
        let oracle = match self.oracle {
            Some(true) => "true",
            Some(false) => "false",
            None => "null",
        };
        format!(
            "{{\"t\":\"churn\",\"round\":{},\"arrivals\":{},\"departures\":{},\
             \"alive\":{},\"edges\":{},\"activations\":{},\"changes\":{},\
             \"recovered_in\":{},\"oracle\":{}}}",
            self.round,
            self.arrivals,
            self.departures,
            self.alive,
            self.edges,
            self.activations,
            self.changes,
            recovered,
            oracle
        )
    }
}

/// A discrete fault-surgery event (campaign engine only; the tick the
/// fault fired at plus what died).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSurgery {
    /// The campaign tick (or round) at which the fault was applied.
    pub round: u64,
    /// What died.
    pub kind: FaultKind,
}

impl FaultSurgery {
    /// One JSON-lines record (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        match self.kind {
            FaultKind::Edge(u, v) => format!(
                "{{\"t\":\"fault\",\"round\":{},\"kind\":\"edge\",\"u\":{u},\"v\":{v}}}",
                self.round
            ),
            FaultKind::Node(v) => format!(
                "{{\"t\":\"fault\",\"round\":{},\"kind\":\"node\",\"v\":{v}}}",
                self.round
            ),
            FaultKind::AddNode(v) => format!(
                "{{\"t\":\"fault\",\"round\":{},\"kind\":\"add-node\",\"v\":{v}}}",
                self.round
            ),
            FaultKind::AddEdge(u, v) => format!(
                "{{\"t\":\"fault\",\"round\":{},\"kind\":\"add-edge\",\"u\":{u},\"v\":{v}}}",
                self.round
            ),
        }
    }
}

/// Whole-run aggregate of [`RoundMetrics`] — what an observed
/// [`crate::Runner`] run attaches to its [`crate::RunReport`].
///
/// All counter fields are sums over the run's rounds; `eligible` and
/// `scheduled` sum *per-round* values, so they count node-rounds, not
/// nodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Rounds (or sweeps) aggregated.
    pub rounds: u64,
    /// Total eligible node-rounds.
    pub eligible: u64,
    /// Total scheduled node-rounds (dirty-set occupancy summed).
    pub scheduled: u64,
    /// Total activations.
    pub activations: u64,
    /// Total state changes.
    pub changes: u64,
    /// Total neighbour states read.
    pub neighbor_reads: u64,
    /// Total tabular-plan dispatches.
    pub tabular: u64,
    /// Total direct/native dispatches.
    pub direct: u64,
    /// Total fault surgeries applied.
    pub faults: u64,
    /// Largest single-round `scheduled` value (peak dirty-set occupancy).
    pub max_scheduled: u64,
}

impl RunMetrics {
    /// Folds one round event into the aggregate.
    pub fn absorb(&mut self, r: &RoundMetrics) {
        self.rounds += 1;
        self.eligible += r.eligible;
        self.scheduled += r.scheduled;
        self.activations += r.activations;
        self.changes += r.changes;
        self.neighbor_reads += r.neighbor_reads;
        self.tabular += r.tabular;
        self.direct += r.direct;
        self.faults += r.faults;
        self.max_scheduled = self.max_scheduled.max(r.scheduled);
    }

    /// Mean activations per round (0.0 for an empty run).
    pub fn activations_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.activations as f64 / self.rounds as f64
        }
    }

    /// Fraction of eligible node-rounds the scheduler *skipped*:
    /// `1 − activations / eligible`. On the interpreter this is 0; on the
    /// kernel's dirty path it measures how much work the dirty set saved
    /// (the "dirty-set hit rate" column of `BENCH_engine.json`).
    pub fn dirty_hit_rate(&self) -> f64 {
        if self.eligible == 0 {
            0.0
        } else {
            1.0 - self.activations as f64 / self.eligible as f64
        }
    }
}

/// The aggregating sink: folds every round into a [`RunMetrics`].
/// [`crate::Runner`] tees one of these alongside any user tracer to
/// enrich its report.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counters {
    /// The aggregate so far.
    pub run: RunMetrics,
}

impl Tracer for Counters {
    fn round(&mut self, metrics: &RoundMetrics) {
        self.run.absorb(metrics);
    }
}

/// A keep-everything sink for tests and offline analysis.
#[derive(Clone, Debug, Default)]
pub struct RoundLog {
    /// Every round event, in order.
    pub rounds: Vec<RoundMetrics>,
    /// Every fault-surgery event, in order.
    pub faults: Vec<FaultSurgery>,
    /// Every per-shard event, in order (round-major, then shard-ascending
    /// — the order the sharded kernel guarantees).
    pub shards: Vec<ShardRoundMetrics>,
    /// Every churn-round event, in order.
    pub churns: Vec<ChurnRoundMetrics>,
}

impl Tracer for RoundLog {
    fn round(&mut self, metrics: &RoundMetrics) {
        self.rounds.push(*metrics);
    }

    fn fault(&mut self, surgery: &FaultSurgery) {
        self.faults.push(*surgery);
    }

    fn shard_round(&mut self, metrics: &ShardRoundMetrics) {
        self.shards.push(*metrics);
    }

    fn churn_round(&mut self, metrics: &ChurnRoundMetrics) {
        self.churns.push(*metrics);
    }
}

/// A streaming JSON-lines sink: one `{"t":"round",...}` object per round
/// and one `{"t":"fault",...}` per surgery, in event order — the
/// replayable trace artifact `fssga-bench --trace-out` and
/// `fssga-chaos --trace-out` upload from CI.
#[derive(Debug)]
pub struct JsonlTrace<W: Write> {
    out: W,
}

impl<W: Write> JsonlTrace<W> {
    /// A sink writing to `out` (wrap files in a `BufWriter`).
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        self.out.flush().expect("flush jsonl trace");
        self.out
    }
}

impl<W: Write> Tracer for JsonlTrace<W> {
    fn round(&mut self, metrics: &RoundMetrics) {
        writeln!(self.out, "{}", metrics.to_jsonl()).expect("write jsonl trace");
    }

    fn fault(&mut self, surgery: &FaultSurgery) {
        writeln!(self.out, "{}", surgery.to_jsonl()).expect("write jsonl trace");
    }

    fn shard_round(&mut self, metrics: &ShardRoundMetrics) {
        writeln!(self.out, "{}", metrics.to_jsonl()).expect("write jsonl trace");
    }

    fn churn_round(&mut self, metrics: &ChurnRoundMetrics) {
        writeln!(self.out, "{}", metrics.to_jsonl()).expect("write jsonl trace");
    }
}

/// A tracer that streams each event's JSONL line into a bounded
/// [`SyncSender`] channel — the sink behind `fssga-serve`'s incremental
/// per-round streaming: a worker thread runs the simulation with a
/// `ChannelTrace` while a connection thread drains the receiver and
/// writes frames to the client socket.
///
/// Flow control is cooperative, not blocking-forever:
///
/// * **Channel full** (slow consumer): the sink retries `try_send` with
///   a short sleep, re-checking the attached [`CancelToken`] between
///   attempts — so a wall-clock watchdog can still cancel a run whose
///   tracer is wedged on a stalled client. Once the token has fired,
///   further events are dropped (counted in [`ChannelTrace::lost`]).
/// * **Receiver dropped** (client gone): the sink fires the token
///   itself, turning a disconnect into a prompt cooperative
///   cancellation, and drops subsequent events.
///
/// Without a token the full-channel retry spins until the consumer
/// drains (pure backpressure), and a disconnect silently drops events.
#[derive(Debug)]
pub struct ChannelTrace {
    tx: SyncSender<String>,
    cancel: Option<CancelToken>,
    lost: u64,
}

impl ChannelTrace {
    /// A sink sending every event line into `tx`.
    pub fn new(tx: SyncSender<String>) -> Self {
        Self {
            tx,
            cancel: None,
            lost: 0,
        }
    }

    /// As [`Self::new`], with a [`CancelToken`] that is both *consulted*
    /// (stop retrying once cancelled) and *fired* (when the receiver
    /// hangs up).
    pub fn with_cancel(tx: SyncSender<String>, cancel: CancelToken) -> Self {
        Self {
            tx,
            cancel: Some(cancel),
            lost: 0,
        }
    }

    /// Events dropped because the run was cancelled or the receiver
    /// disappeared.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    fn push(&mut self, mut line: String) {
        loop {
            match self.tx.try_send(line) {
                Ok(()) => return,
                Err(TrySendError::Full(l)) => {
                    if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                        self.lost += 1;
                        return;
                    }
                    line = l;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(TrySendError::Disconnected(_)) => {
                    if let Some(c) = &self.cancel {
                        c.cancel();
                    }
                    self.lost += 1;
                    return;
                }
            }
        }
    }
}

impl Tracer for ChannelTrace {
    fn round(&mut self, metrics: &RoundMetrics) {
        self.push(metrics.to_jsonl());
    }

    fn fault(&mut self, surgery: &FaultSurgery) {
        self.push(surgery.to_jsonl());
    }

    fn shard_round(&mut self, metrics: &ShardRoundMetrics) {
        self.push(metrics.to_jsonl());
    }

    fn churn_round(&mut self, metrics: &ChurnRoundMetrics) {
        self.push(metrics.to_jsonl());
    }
}

/// Fans one event stream into two sinks (`Tee(a, b)` forwards to `a`
/// then `b`). Enabled iff either side is, so tracing work is done once
/// even when only one side listens.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Tracer, B: Tracer> Tracer for Tee<A, B> {
    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    #[inline]
    fn round(&mut self, metrics: &RoundMetrics) {
        self.0.round(metrics);
        self.1.round(metrics);
    }

    #[inline]
    fn fault(&mut self, surgery: &FaultSurgery) {
        self.0.fault(surgery);
        self.1.fault(surgery);
    }

    #[inline]
    fn shard_round(&mut self, metrics: &ShardRoundMetrics) {
        self.0.shard_round(metrics);
        self.1.shard_round(metrics);
    }

    #[inline]
    fn churn_round(&mut self, metrics: &ChurnRoundMetrics) {
        self.0.churn_round(metrics);
        self.1.churn_round(metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(round: u64) -> RoundMetrics {
        RoundMetrics {
            round,
            eligible: 10,
            scheduled: 4,
            activations: 3,
            changes: 2,
            neighbor_reads: 12,
            tabular: 3,
            direct: 0,
            faults: 1,
        }
    }

    #[test]
    fn null_tracer_is_disabled() {
        assert!(!NullTracer.enabled());
        let mut n = NullTracer;
        let r = &mut n;
        assert!(
            !<&mut NullTracer as Tracer>::enabled(&r),
            "blanket impl preserves it"
        );
    }

    #[test]
    fn counters_aggregate_rounds() {
        let mut c = Counters::default();
        c.round(&sample(1));
        c.round(&RoundMetrics {
            scheduled: 9,
            ..sample(2)
        });
        assert_eq!(c.run.rounds, 2);
        assert_eq!(c.run.eligible, 20);
        assert_eq!(c.run.activations, 6);
        assert_eq!(c.run.changes, 4);
        assert_eq!(c.run.faults, 2);
        assert_eq!(c.run.max_scheduled, 9);
        assert_eq!(c.run.activations_per_round(), 3.0);
        let hit = c.run.dirty_hit_rate();
        assert!((hit - 0.7).abs() < 1e-12, "1 - 6/20 = 0.7, got {hit}");
    }

    #[test]
    fn empty_run_metrics_are_finite() {
        let m = RunMetrics::default();
        assert_eq!(m.activations_per_round(), 0.0);
        assert_eq!(m.dirty_hit_rate(), 0.0);
    }

    #[test]
    fn jsonl_round_format_is_stable() {
        assert_eq!(
            sample(7).to_jsonl(),
            "{\"t\":\"round\",\"round\":7,\"eligible\":10,\"scheduled\":4,\
             \"activations\":3,\"changes\":2,\"neighbor_reads\":12,\
             \"tabular\":3,\"direct\":0,\"faults\":1}"
        );
    }

    #[test]
    fn jsonl_fault_format_is_stable() {
        let e = FaultSurgery {
            round: 3,
            kind: FaultKind::Edge(1, 2),
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"t\":\"fault\",\"round\":3,\"kind\":\"edge\",\"u\":1,\"v\":2}"
        );
        let n = FaultSurgery {
            round: 4,
            kind: FaultKind::Node(9),
        };
        assert_eq!(
            n.to_jsonl(),
            "{\"t\":\"fault\",\"round\":4,\"kind\":\"node\",\"v\":9}"
        );
    }

    #[test]
    fn jsonl_sink_streams_events_in_order() {
        let mut sink = JsonlTrace::new(Vec::new());
        sink.round(&sample(1));
        sink.fault(&FaultSurgery {
            round: 1,
            kind: FaultKind::Node(5),
        });
        sink.round(&sample(2));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"t\":\"round\"") && lines[0].contains("\"round\":1"));
        assert!(lines[1].contains("\"t\":\"fault\""));
        assert!(lines[2].contains("\"round\":2"));
    }

    #[test]
    fn tee_forwards_to_both_and_ors_enablement() {
        let mut tee = Tee(NullTracer, Counters::default());
        assert!(tee.enabled(), "counters side is live");
        tee.round(&sample(1));
        assert_eq!(tee.1.run.rounds, 1);
        let off = Tee(NullTracer, NullTracer);
        assert!(!off.enabled());
    }

    #[test]
    fn jsonl_shard_format_is_stable() {
        let s = ShardRoundMetrics {
            round: 2,
            shard: 1,
            shards: 4,
            scheduled: 8,
            activations: 7,
            changes: 3,
            neighbor_reads: 21,
        };
        assert_eq!(
            s.to_jsonl(),
            "{\"t\":\"shard\",\"round\":2,\"shard\":1,\"shards\":4,\
             \"scheduled\":8,\"activations\":7,\"changes\":3,\
             \"neighbor_reads\":21}"
        );
    }

    #[test]
    fn shard_events_route_to_logs_and_jsonl_but_not_counters() {
        let s = ShardRoundMetrics {
            round: 1,
            shard: 0,
            shards: 2,
            ..Default::default()
        };
        let mut log = RoundLog::default();
        log.shard_round(&s);
        assert_eq!(log.shards, vec![s]);

        let mut sink = JsonlTrace::new(Vec::new());
        sink.shard_round(&s);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with("{\"t\":\"shard\""));

        // Counters aggregate whole rounds only: shard events are the
        // per-shard *decomposition* of a round, so folding them in too
        // would double-count.
        let mut tee = Tee(Counters::default(), RoundLog::default());
        tee.shard_round(&s);
        assert_eq!(tee.0.run, RunMetrics::default());
        assert_eq!(tee.1.shards.len(), 1);
    }

    #[test]
    fn invariant_projection_picks_engine_invariant_fields() {
        let m = sample(5);
        assert_eq!(m.invariant(), (5, 10, 2, 1));
    }

    #[test]
    fn jsonl_churn_format_is_stable() {
        let c = ChurnRoundMetrics {
            round: 9,
            arrivals: 2,
            departures: 1,
            alive: 40,
            edges: 77,
            activations: 6,
            changes: 3,
            recovered_in: Some(4),
            oracle: Some(true),
        };
        assert_eq!(
            c.to_jsonl(),
            "{\"t\":\"churn\",\"round\":9,\"arrivals\":2,\"departures\":1,\
             \"alive\":40,\"edges\":77,\"activations\":6,\"changes\":3,\
             \"recovered_in\":4,\"oracle\":true}"
        );
        let quiet = ChurnRoundMetrics {
            round: 10,
            alive: 40,
            edges: 77,
            ..Default::default()
        };
        assert_eq!(
            quiet.to_jsonl(),
            "{\"t\":\"churn\",\"round\":10,\"arrivals\":0,\"departures\":0,\
             \"alive\":40,\"edges\":77,\"activations\":0,\"changes\":0,\
             \"recovered_in\":null,\"oracle\":null}"
        );
    }

    #[test]
    fn channel_trace_streams_lines_and_cancels_on_disconnect() {
        let (tx, rx) = std::sync::mpsc::sync_channel(4);
        let token = CancelToken::new();
        let mut sink = ChannelTrace::with_cancel(tx, token.clone());
        sink.round(&sample(1));
        assert_eq!(rx.recv().unwrap(), sample(1).to_jsonl());
        drop(rx);
        sink.round(&sample(2));
        assert!(token.is_cancelled(), "receiver hangup fires the token");
        assert_eq!(sink.lost(), 1);
    }

    #[test]
    fn channel_trace_drops_instead_of_blocking_once_cancelled() {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let token = CancelToken::new();
        let mut sink = ChannelTrace::with_cancel(tx, token.clone());
        sink.round(&sample(1)); // fills the only slot
        token.cancel();
        sink.round(&sample(2)); // full + cancelled: dropped, no deadlock
        assert_eq!(sink.lost(), 1);
        assert_eq!(rx.try_iter().count(), 1, "only the first event landed");
    }

    #[test]
    fn churn_events_route_to_logs_and_jsonl() {
        let c = ChurnRoundMetrics {
            round: 1,
            arrivals: 1,
            ..Default::default()
        };
        let mut log = RoundLog::default();
        log.churn_round(&c);
        assert_eq!(log.churns, vec![c]);

        let mut sink = JsonlTrace::new(Vec::new());
        sink.churn_round(&c);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with("{\"t\":\"churn\""));

        // Tee fans churn events into both sides; a &mut reference
        // forwards them through the blanket impl.
        let mut tee = Tee(RoundLog::default(), RoundLog::default());
        let mut by_ref: &mut Tee<RoundLog, RoundLog> = &mut tee;
        Tracer::churn_round(&mut by_ref, &c);
        assert_eq!(tee.0.churns.len(), 1);
        assert_eq!(tee.1.churns.len(), 1);
    }
}
