//! Multi-threaded synchronous rounds.
//!
//! A synchronous FSSGA round is embarrassingly parallel: every node's new
//! state depends only on the *old* network state. The stepper partitions
//! the node range into contiguous chunks, gives each worker its own
//! scratch counter, and writes results into disjoint slices of the `next`
//! buffer (`split_at_mut` — no locks, no atomics on the hot path; see the
//! data-race-freedom discipline the workspace guides recommend).
//!
//! Determinism: per-node coins are derived from `(round_seed, node id)`
//! exactly as in [`Network::sync_step_seeded`], so the parallel step is
//! **bit-identical** to the sequential one for every thread count — an
//! invariant the tests and the `engine_ablation` bench both exercise.

use fssga_graph::rng::Xoshiro256;
use fssga_graph::{DynGraph, NodeId};

use crate::network::Network;
use crate::obs::{NullTracer, RoundMetrics, Tracer};
use crate::protocol::{Protocol, StateSpace};
use crate::view::NeighborView;

/// One synchronous round computed on `threads` worker threads. Returns
/// the number of changed nodes. Falls back to the sequential path when
/// `threads <= 1` or the network is tiny.
///
/// Panics if query recording is enabled (the recorder is intentionally
/// not shared across threads; record on the sequential path instead).
pub fn sync_step_parallel<P>(net: &mut Network<P>, rng: &mut Xoshiro256, threads: usize) -> usize
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    let round_seed = if P::RANDOMNESS > 1 { rng.next_u64() } else { 0 };
    sync_step_parallel_seeded(net, round_seed, threads)
}

/// As [`sync_step_parallel`], with an explicit round seed (the form
/// [`crate::Runner`] drives, mirroring
/// [`Network::sync_step_seeded`]).
pub fn sync_step_parallel_seeded<P>(net: &mut Network<P>, round_seed: u64, threads: usize) -> usize
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    sync_step_parallel_seeded_traced(net, round_seed, threads, &mut NullTracer)
}

/// Traced variant of [`sync_step_parallel_seeded`]: emits one
/// [`RoundMetrics`] event after the round. The traced/untraced decision
/// is made *before* workers spawn (a const-generic split), so the
/// disabled path monomorphizes to exactly the untraced round.
pub fn sync_step_parallel_seeded_traced<P, T>(
    net: &mut Network<P>,
    round_seed: u64,
    threads: usize,
    tracer: &mut T,
) -> usize
where
    P: Protocol + Sync,
    P::State: Send + Sync,
    T: Tracer,
{
    assert!(
        !net.recording_enabled(),
        "query recording requires the sequential stepper"
    );
    let trace = tracer.enabled();
    let n = net.n();
    if threads <= 1 || n < 256 {
        return net.sync_step_seeded_traced(round_seed, tracer);
    }

    let chunk = n.div_ceil(threads);
    let (changed_total, activations_total, reads_total) = {
        let (protocol, graph, states, next, _) = net.parallel_parts();
        if trace {
            run_chunks::<P, true>(protocol, graph, states, next, chunk, round_seed)
        } else {
            run_chunks::<P, false>(protocol, graph, states, next, chunk, round_seed)
        }
    };

    net.metrics.rounds += 1;
    net.metrics.activations += activations_total;
    net.metrics.changes += changed_total as u64;
    net.swap_buffers();
    if trace {
        let faults = net.take_pending_faults();
        tracer.round(&RoundMetrics {
            round: net.metrics.rounds,
            eligible: activations_total,
            scheduled: activations_total,
            activations: activations_total,
            changes: changed_total as u64,
            neighbor_reads: reads_total,
            tabular: 0,
            direct: activations_total,
            faults,
        });
    }
    changed_total
}

/// The scoped-thread fan-out, monomorphized per `TRACE` value so the
/// read counting inside workers is a compile-time constant. Returns
/// `(changed, activations, neighbor reads)` totals.
fn run_chunks<P, const TRACE: bool>(
    protocol: &P,
    graph: &DynGraph,
    states: &[P::State],
    next: &mut [P::State],
    chunk: usize,
    round_seed: u64,
) -> (usize, u64, u64)
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    let mut changed_total = 0usize;
    let mut activations_total = 0u64;
    let mut reads_total = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut rest = next;
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let lo = start;
            start += take;
            handles.push(scope.spawn(move || {
                let mut scratch = vec![0u32; P::State::COUNT];
                let mut touched: Vec<u32> = Vec::with_capacity(64);
                let mut changed = 0usize;
                let mut activations = 0u64;
                let mut reads = 0u64;
                for (off, slot) in mine.iter_mut().enumerate() {
                    let v = (lo + off) as NodeId;
                    let old = states[v as usize];
                    if !graph.is_alive(v) || graph.degree(v) == 0 {
                        *slot = old;
                        continue;
                    }
                    if TRACE {
                        reads += graph.degree(v) as u64;
                    }
                    for &w in graph.neighbors(v) {
                        let idx = states[w as usize].index();
                        if scratch[idx] == 0 {
                            touched.push(idx as u32);
                        }
                        scratch[idx] += 1;
                    }
                    // Canonical presence order — see `Network::tally`.
                    touched.sort_unstable();
                    let view: NeighborView<'_, P::State> =
                        NeighborView::new_with_presence(&scratch, Some(&touched), None);
                    let coin = Network::<P>::coin_for(round_seed, v);
                    let new = protocol.transition(old, &view, coin);
                    for &idx in &touched {
                        scratch[idx as usize] = 0;
                    }
                    touched.clear();
                    *slot = new;
                    activations += 1;
                    if new != old {
                        changed += 1;
                    }
                }
                (changed, activations, reads)
            }));
        }
        for h in handles {
            let (c, a, r) = h.join().expect("worker panicked");
            changed_total += c;
            activations_total += a;
            reads_total += r;
        }
    });
    (changed_total, activations_total, reads_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use fssga_graph::generators;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Mod3 {
        Zero,
        One,
        Two,
    }
    impl_state_space!(Mod3 { Zero, One, Two });

    /// A state-rich deterministic protocol: become (sum of neighbour
    /// indices + own) mod 3, computed through mod queries only.
    struct Rotate;
    impl Protocol for Rotate {
        type State = Mod3;
        fn transition(&self, own: Mod3, nbrs: &NeighborView<'_, Mod3>, _c: u32) -> Mod3 {
            let s = (nbrs.count_mod(Mod3::One, 3)
                + 2 * nbrs.count_mod(Mod3::Two, 3)
                + own.index() as u32)
                % 3;
            Mod3::from_index(s as usize)
        }
    }

    /// A probabilistic protocol to exercise coin derivation.
    struct CoinFlip;
    impl Protocol for CoinFlip {
        type State = Mod3;
        const RANDOMNESS: u32 = 3;
        fn transition(&self, own: Mod3, nbrs: &NeighborView<'_, Mod3>, coin: u32) -> Mod3 {
            let bump = if nbrs.some(Mod3::Two) { 1 } else { 0 };
            Mod3::from_index(((own.index() as u32 + coin + bump) % 3) as usize)
        }
    }

    fn init(v: NodeId) -> Mod3 {
        Mod3::from_index((v as usize * 7 + 3) % 3)
    }

    #[test]
    fn parallel_matches_sequential_deterministic() {
        let g = generators::grid(20, 20);
        let mut seq_net = Network::new(&g, Rotate, init);
        let mut par_net = Network::new(&g, Rotate, init);
        let mut rng1 = Xoshiro256::seed_from_u64(1);
        let mut rng2 = Xoshiro256::seed_from_u64(1);
        for _ in 0..10 {
            let a = seq_net.sync_step(&mut rng1);
            let b = sync_step_parallel(&mut par_net, &mut rng2, 4);
            assert_eq!(a, b);
            assert_eq!(seq_net.states(), par_net.states());
        }
    }

    #[test]
    fn parallel_matches_sequential_probabilistic() {
        let g = generators::connected_gnp(400, 0.02, &mut Xoshiro256::seed_from_u64(5));
        let mut seq_net = Network::new(&g, CoinFlip, init);
        let mut par2 = Network::new(&g, CoinFlip, init);
        let mut par8 = Network::new(&g, CoinFlip, init);
        let mut r1 = Xoshiro256::seed_from_u64(2);
        let mut r2 = Xoshiro256::seed_from_u64(2);
        let mut r3 = Xoshiro256::seed_from_u64(2);
        for _ in 0..8 {
            seq_net.sync_step(&mut r1);
            sync_step_parallel(&mut par2, &mut r2, 2);
            sync_step_parallel(&mut par8, &mut r3, 8);
            assert_eq!(seq_net.states(), par2.states());
            assert_eq!(seq_net.states(), par8.states());
        }
    }

    #[test]
    fn parallel_respects_faults() {
        let g = generators::grid(16, 16);
        let mut seq_net = Network::new(&g, Rotate, init);
        let mut par_net = Network::new(&g, Rotate, init);
        for net in [&mut seq_net, &mut par_net] {
            net.remove_edge(0, 1);
            net.remove_node(100);
        }
        let mut r1 = Xoshiro256::seed_from_u64(3);
        let mut r2 = Xoshiro256::seed_from_u64(3);
        for _ in 0..5 {
            seq_net.sync_step(&mut r1);
            sync_step_parallel(&mut par_net, &mut r2, 3);
        }
        assert_eq!(seq_net.states(), par_net.states());
    }

    #[test]
    fn small_networks_fall_back() {
        let g = generators::path(10);
        let mut net = Network::new(&g, Rotate, init);
        let mut rng = Xoshiro256::seed_from_u64(4);
        // Should not spawn threads (n < 256) and still work.
        let _ = sync_step_parallel(&mut net, &mut rng, 8);
        assert_eq!(net.metrics.rounds, 1);
    }
}
