//! The Section 2 k-sensitivity harness.
//!
//! A protocol exposes its *critical set* `χ(σ)` — the nodes whose failure
//! (or mutual disconnection) may break the run. The harness injects
//! benign faults that respect the critical set, runs the algorithm, and
//! asks the caller's oracle whether the final answer was "reasonably
//! correct": equal to the fault-free answer on some graph `G'` with
//! `G_0 ⊇ G' ⊇ G_f`. The experiments of E13 use this to reproduce the
//! paper's sensitivity ranking (0-sensitive diffusion < 1-sensitive
//! agents < Θ(n)-sensitive tree algorithms).

use fssga_graph::rng::Xoshiro256;
use fssga_graph::NodeId;

use crate::faults::FaultKind;
use crate::network::Network;
use crate::protocol::Protocol;

/// How a faulted run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The answer matches a fault-free execution on some admissible
    /// subgraph (Section 2's "reasonably correct").
    ReasonablyCorrect,
    /// The answer is wrong even though no critical failure occurred.
    Incorrect,
    /// The run did not produce an answer within the budget.
    Inconclusive,
}

/// Identifies the critical nodes `χ(σ)` from the current network state.
/// The closure form keeps protocol crates free to define χ per algorithm
/// (the agent's position, the spanning-tree interior, the empty set...).
pub type CriticalFn<'a, P> = dyn Fn(&Network<P>) -> Vec<NodeId> + 'a;

/// A randomized injector of *non-critical* benign faults.
///
/// Each call to [`FaultInjector::try_inject`] flips a biased coin; on
/// success it picks a uniformly random fault among those that (a) do not
/// kill a critical node, and (b) if `keep_critical_connected` is set, do
/// not split the critical set across components — the two clauses of the
/// paper's critical-failure definition.
pub struct FaultInjector {
    /// Probability of attempting a fault per call.
    pub rate: f64,
    /// Probability that an attempted fault is an edge fault.
    pub edge_bias: f64,
    /// Enforce clause (b) of the critical-failure definition.
    pub keep_critical_connected: bool,
    /// Upper bound on total faults injected.
    pub budget: usize,
    injected: usize,
}

impl FaultInjector {
    /// A new injector with the given attempt rate and fault budget.
    pub fn new(rate: f64, edge_bias: f64, budget: usize) -> Self {
        Self {
            rate,
            edge_bias,
            keep_critical_connected: true,
            budget,
            injected: 0,
        }
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> usize {
        self.injected
    }

    /// Possibly injects one fault that is non-critical with respect to
    /// `critical`. Returns the fault if one was applied.
    pub fn try_inject<P: Protocol>(
        &mut self,
        net: &mut Network<P>,
        critical: &CriticalFn<'_, P>,
        rng: &mut Xoshiro256,
    ) -> Option<FaultKind> {
        if self.injected >= self.budget || !rng.gen_bool(self.rate) {
            return None;
        }
        let crit = critical(net);
        // Gather candidates from the live topology.
        let kind = if rng.gen_bool(self.edge_bias) {
            let edges: Vec<(NodeId, NodeId)> = net.graph().edges().collect();
            if edges.is_empty() {
                return None;
            }
            // Try a bounded number of random candidates.
            let mut pick = None;
            for _ in 0..24 {
                let &(u, v) = rng.choose(&edges);
                if self.edge_ok(net, &crit, u, v) {
                    pick = Some(FaultKind::Edge(u, v));
                    break;
                }
            }
            pick?
        } else {
            let nodes: Vec<NodeId> = net
                .graph()
                .alive_nodes()
                .filter(|v| !crit.contains(v))
                .collect();
            if nodes.is_empty() {
                return None;
            }
            let mut pick = None;
            for _ in 0..24 {
                let v = *rng.choose(&nodes);
                if self.node_ok(net, &crit, v) {
                    pick = Some(FaultKind::Node(v));
                    break;
                }
            }
            pick?
        };
        match kind {
            FaultKind::Edge(u, v) => {
                net.remove_edge(u, v);
            }
            FaultKind::Node(v) => {
                net.remove_node(v);
            }
        }
        self.injected += 1;
        Some(kind)
    }

    fn edge_ok<P: Protocol>(
        &self,
        net: &Network<P>,
        crit: &[NodeId],
        u: NodeId,
        v: NodeId,
    ) -> bool {
        if !self.keep_critical_connected || crit.len() <= 1 {
            return true;
        }
        // Tentatively remove on a clone and check the critical set stays
        // in one component. Experiment graphs are small; clarity wins.
        let mut g = net.graph().clone();
        g.remove_edge(u, v);
        let comp = g.component_of(crit[0]);
        crit.iter().all(|c| comp.binary_search(c).is_ok())
    }

    fn node_ok<P: Protocol>(&self, net: &Network<P>, crit: &[NodeId], v: NodeId) -> bool {
        if crit.contains(&v) {
            return false;
        }
        if !self.keep_critical_connected || crit.len() <= 1 {
            return true;
        }
        let mut g = net.graph().clone();
        g.remove_node(v);
        let comp = g.component_of(crit[0]);
        crit.iter().all(|c| comp.binary_search(c).is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use crate::view::NeighborView;
    use fssga_graph::generators;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Unit {
        Only,
    }
    impl_state_space!(Unit { Only });

    struct Idle;
    impl Protocol for Idle {
        type State = Unit;
        fn transition(&self, own: Unit, _n: &NeighborView<'_, Unit>, _c: u32) -> Unit {
            own
        }
    }

    #[test]
    fn injector_never_kills_critical_nodes() {
        let g = generators::complete(10);
        let mut net = Network::new(&g, Idle, |_| Unit::Only);
        let critical = |_: &Network<Idle>| vec![0, 1];
        let mut inj = FaultInjector::new(1.0, 0.0, 6);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..50 {
            inj.try_inject(&mut net, &critical, &mut rng);
        }
        assert!(net.graph().is_alive(0));
        assert!(net.graph().is_alive(1));
        assert!(inj.injected() <= 6);
        assert!(inj.injected() >= 1);
    }

    #[test]
    fn injector_keeps_critical_set_connected() {
        // Path: criticals at the two ends; every interior fault would
        // disconnect them, so no node faults can fire and no interior
        // edge faults either.
        let g = generators::path(6);
        let mut net = Network::new(&g, Idle, |_| Unit::Only);
        let critical = |_: &Network<Idle>| vec![0, 5];
        let mut inj = FaultInjector::new(1.0, 0.5, 100);
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..200 {
            inj.try_inject(&mut net, &critical, &mut rng);
        }
        let comp = net.graph().component_of(0);
        assert!(comp.contains(&5), "criticals must remain co-located");
    }

    #[test]
    fn budget_is_respected() {
        let g = generators::complete(12);
        let mut net = Network::new(&g, Idle, |_| Unit::Only);
        let critical = |_: &Network<Idle>| Vec::new();
        let mut inj = FaultInjector::new(1.0, 1.0, 3);
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..100 {
            inj.try_inject(&mut net, &critical, &mut rng);
        }
        assert_eq!(inj.injected(), 3);
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let g = generators::complete(5);
        let mut net = Network::new(&g, Idle, |_| Unit::Only);
        let critical = |_: &Network<Idle>| Vec::new();
        let mut inj = FaultInjector::new(0.0, 0.5, 10);
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..100 {
            assert!(inj.try_inject(&mut net, &critical, &mut rng).is_none());
        }
        assert_eq!(net.graph().m(), 10);
    }
}

/// The paper's "reasonably correct" predicate (Section 2), made
/// executable over the *realized* graph chain: an execution with answer
/// `answer` is reasonably correct if some graph `G'` with
/// `G0 ⊇ G' ⊇ G_f` yields the same answer in a fault-free run. Checking
/// every graph between the endpoints is exponential; the chain of graphs
/// that actually occurred (snapshot after each fault) is the natural
/// witness set, so this check is *sound* (a `true` is a genuine witness)
/// though not complete.
pub fn reasonably_correct<A: PartialEq>(
    snapshots: &[fssga_graph::Graph],
    answer: &A,
    mut fault_free_oracle: impl FnMut(&fssga_graph::Graph) -> A,
) -> bool {
    snapshots.iter().any(|g| fault_free_oracle(g) == *answer)
}

#[cfg(test)]
mod reasonable_tests {
    use super::*;
    use fssga_graph::{exact, generators, DynGraph};

    #[test]
    fn matching_any_chain_member_suffices() {
        // Oracle: number of connected components. Chain: path, then cut.
        let g0 = generators::path(6);
        let mut d = DynGraph::from_graph(&g0);
        let s0 = d.snapshot();
        d.remove_edge(2, 3);
        let s1 = d.snapshot();
        let oracle = |g: &fssga_graph::Graph| exact::connected_components(g).0;
        // An execution that answered "2 components" is reasonable w.r.t.
        // the post-fault graph...
        assert!(reasonably_correct(&[s0.clone(), s1.clone()], &2, oracle));
        // ...and one that answered "1" w.r.t. the initial graph.
        assert!(reasonably_correct(&[s0.clone(), s1.clone()], &1, oracle));
        // "3" matches nothing in the chain.
        assert!(!reasonably_correct(&[s0, s1], &3, oracle));
    }

    #[test]
    fn census_outcome_is_reasonable_under_partition() {
        use fssga_graph::rng::Xoshiro256;
        // End-to-end: a faulted census run's answer must equal a fault-free
        // run on SOME chain member — here, the post-cut graph.
        let mut rng = Xoshiro256::seed_from_u64(99);
        let g0 = generators::path(16);
        let sketches: Vec<u16> = (0..16).map(|_| 1u16 << rng.gen_index(6)).collect();
        // "Algorithm": OR of sketches over the component of node 0.
        let run = |g: &fssga_graph::Graph| -> u16 {
            let mut acc = 0u16;
            let comp = {
                let d = DynGraph::from_graph(g);
                d.component_of(0)
            };
            for v in comp {
                acc |= sketches[v as usize];
            }
            acc
        };
        let mut d = DynGraph::from_graph(&g0);
        let s0 = d.snapshot();
        d.remove_edge(7, 8);
        let s1 = d.snapshot();
        let faulted_answer = run(&s1); // diffusion converged after the cut
        assert!(reasonably_correct(&[s0, s1], &faulted_answer, run));
    }
}
