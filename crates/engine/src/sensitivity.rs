//! The Section 2 k-sensitivity harness.
//!
//! A protocol exposes its *critical set* `χ(σ)` — the nodes whose failure
//! (or mutual disconnection) may break the run. The harness injects
//! benign faults that respect the critical set, runs the algorithm, and
//! asks the caller's oracle whether the final answer was "reasonably
//! correct": equal to the fault-free answer on some graph `G'` with
//! `G_0 ⊇ G' ⊇ G_f`. The experiments of E13 use this to reproduce the
//! paper's sensitivity ranking (0-sensitive diffusion < 1-sensitive
//! agents < Θ(n)-sensitive tree algorithms).

use fssga_graph::rng::Xoshiro256;
use fssga_graph::NodeId;

use crate::faults::FaultKind;
use crate::network::Network;
use crate::protocol::Protocol;

/// How a faulted run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The answer matches a fault-free execution on some admissible
    /// subgraph (Section 2's "reasonably correct").
    ReasonablyCorrect,
    /// The answer is wrong even though no critical failure occurred.
    Incorrect,
    /// The run did not produce an answer within the budget.
    Inconclusive,
}

/// Identifies the critical nodes `χ(σ)` from the current network state.
/// The closure form keeps protocol crates free to define χ per algorithm
/// (the agent's position, the spanning-tree interior, the empty set...).
pub type CriticalFn<'a, P> = dyn Fn(&Network<P>) -> Vec<NodeId> + 'a;

/// A randomized injector of *non-critical* benign faults.
///
/// Each call to [`FaultInjector::try_inject`] flips a biased coin; on
/// success it picks a uniformly random fault among those that (a) do not
/// kill a critical node, and (b) if `keep_critical_connected` is set, do
/// not split the critical set across components — the two clauses of the
/// paper's critical-failure definition.
pub struct FaultInjector {
    /// Probability of attempting a fault per call.
    pub rate: f64,
    /// Probability that an attempted fault is an edge fault.
    pub edge_bias: f64,
    /// Enforce clause (b) of the critical-failure definition.
    pub keep_critical_connected: bool,
    /// Upper bound on total faults injected.
    pub budget: usize,
    injected: usize,
}

impl FaultInjector {
    /// A new injector with the given attempt rate and fault budget.
    pub fn new(rate: f64, edge_bias: f64, budget: usize) -> Self {
        Self {
            rate,
            edge_bias,
            keep_critical_connected: true,
            budget,
            injected: 0,
        }
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> usize {
        self.injected
    }

    /// Possibly injects one fault that is non-critical with respect to
    /// `critical`. Returns the fault if one was applied.
    ///
    /// A bounded number of uniformly random candidates is tried first (the
    /// common case on permissive topologies); if none of them is
    /// admissible, every candidate is scanned from a random offset, so an
    /// admissible fault is found whenever one *exists* — rejection
    /// sampling alone used to miss rare valid faults and made campaigns
    /// flaky.
    pub fn try_inject<P: Protocol>(
        &mut self,
        net: &mut Network<P>,
        critical: &CriticalFn<'_, P>,
        rng: &mut Xoshiro256,
    ) -> Option<FaultKind> {
        if self.injected >= self.budget || !rng.gen_bool(self.rate) {
            return None;
        }
        let crit = critical(net);
        // Gather candidates from the live topology.
        let kind = if rng.gen_bool(self.edge_bias) {
            let edges: Vec<(NodeId, NodeId)> = net.graph().edges().collect();
            if edges.is_empty() {
                return None;
            }
            // Fast path: a bounded number of random candidates.
            let mut pick = None;
            for _ in 0..24 {
                let &(u, v) = rng.choose(&edges);
                if self.edge_ok(net, &crit, u, v) {
                    pick = Some(FaultKind::Edge(u, v));
                    break;
                }
            }
            // Slow path: exhaustive scan from a random offset.
            if pick.is_none() {
                let start = rng.gen_index(edges.len());
                pick = (0..edges.len())
                    .map(|i| edges[(start + i) % edges.len()])
                    .find(|&(u, v)| self.edge_ok(net, &crit, u, v))
                    .map(|(u, v)| FaultKind::Edge(u, v));
            }
            pick?
        } else {
            let nodes: Vec<NodeId> = net
                .graph()
                .alive_nodes()
                .filter(|v| !crit.contains(v))
                .collect();
            if nodes.is_empty() {
                return None;
            }
            let mut pick = None;
            for _ in 0..24 {
                let v = *rng.choose(&nodes);
                if self.node_ok(net, &crit, v) {
                    pick = Some(FaultKind::Node(v));
                    break;
                }
            }
            if pick.is_none() {
                let start = rng.gen_index(nodes.len());
                pick = (0..nodes.len())
                    .map(|i| nodes[(start + i) % nodes.len()])
                    .find(|&v| self.node_ok(net, &crit, v))
                    .map(FaultKind::Node);
            }
            pick?
        };
        match kind {
            FaultKind::Edge(u, v) => {
                net.remove_edge(u, v);
            }
            FaultKind::Node(v) => {
                net.remove_node(v);
            }
            // The injector models the paper's decreasing faults; it never
            // picks arrivals (`pick` above only constructs removals).
            FaultKind::AddNode(_) | FaultKind::AddEdge(_, _) => {
                unreachable!("fault injector generates removals only")
            }
        }
        self.injected += 1;
        Some(kind)
    }

    fn edge_ok<P: Protocol>(
        &self,
        net: &Network<P>,
        crit: &[NodeId],
        u: NodeId,
        v: NodeId,
    ) -> bool {
        if !self.keep_critical_connected || crit.len() <= 1 {
            return true;
        }
        critical_connected_without(net.graph(), crit, Some((u, v)), None)
    }

    fn node_ok<P: Protocol>(&self, net: &Network<P>, crit: &[NodeId], v: NodeId) -> bool {
        if crit.contains(&v) {
            return false;
        }
        if !self.keep_critical_connected || crit.len() <= 1 {
            return true;
        }
        critical_connected_without(net.graph(), crit, None, Some(v))
    }
}

/// Whether every node of `crit` stays in one connected component after
/// hypothetically removing `skip_edge` and/or `skip_node` — a direct BFS
/// over the live adjacency, with no graph clone (the injector calls this
/// once per candidate, so the old clone-per-probe was the hot allocation
/// of every campaign).
fn critical_connected_without(
    g: &fssga_graph::DynGraph,
    crit: &[NodeId],
    skip_edge: Option<(NodeId, NodeId)>,
    skip_node: Option<NodeId>,
) -> bool {
    let Some(&start) = crit.first() else {
        return true;
    };
    if Some(start) == skip_node || !g.is_alive(start) {
        return false;
    }
    let skipped = |a: NodeId, b: NodeId| -> bool {
        matches!(skip_edge, Some((u, v)) if (a, b) == (u, v) || (a, b) == (v, u))
    };
    let mut seen = vec![false; g.n_slots()];
    let mut stack = vec![start];
    seen[start as usize] = true;
    let mut reached = 1usize;
    let in_crit = |x: NodeId| crit.contains(&x);
    while let Some(v) = stack.pop() {
        for &w in g.neighbors(v) {
            if Some(w) == skip_node || seen[w as usize] || skipped(v, w) {
                continue;
            }
            seen[w as usize] = true;
            if in_crit(w) {
                reached += 1;
                if reached == crit.len() {
                    return true;
                }
            }
            stack.push(w);
        }
    }
    reached == crit.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use crate::view::NeighborView;
    use fssga_graph::generators;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Unit {
        Only,
    }
    impl_state_space!(Unit { Only });

    struct Idle;
    impl Protocol for Idle {
        type State = Unit;
        fn transition(&self, own: Unit, _n: &NeighborView<'_, Unit>, _c: u32) -> Unit {
            own
        }
    }

    #[test]
    fn injector_never_kills_critical_nodes() {
        let g = generators::complete(10);
        let mut net = Network::new(&g, Idle, |_| Unit::Only);
        let critical = |_: &Network<Idle>| vec![0, 1];
        let mut inj = FaultInjector::new(1.0, 0.0, 6);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..50 {
            inj.try_inject(&mut net, &critical, &mut rng);
        }
        assert!(net.graph().is_alive(0));
        assert!(net.graph().is_alive(1));
        assert!(inj.injected() <= 6);
        assert!(inj.injected() >= 1);
    }

    #[test]
    fn injector_keeps_critical_set_connected() {
        // Path: criticals at the two ends; every interior fault would
        // disconnect them, so no node faults can fire and no interior
        // edge faults either.
        let g = generators::path(6);
        let mut net = Network::new(&g, Idle, |_| Unit::Only);
        let critical = |_: &Network<Idle>| vec![0, 5];
        let mut inj = FaultInjector::new(1.0, 0.5, 100);
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..200 {
            inj.try_inject(&mut net, &critical, &mut rng);
        }
        let comp = net.graph().component_of(0);
        assert!(comp.contains(&5), "criticals must remain co-located");
    }

    #[test]
    fn rare_valid_fault_is_always_found() {
        // A long path between the two criticals (every path edge is
        // inadmissible) with two pendant leaves in the middle (the only
        // admissible edge faults). Bounded rejection sampling alone missed
        // them for many seeds; the exhaustive fallback must find one every
        // time.
        let mut edges: Vec<(u32, u32)> = (0..50).map(|i| (i, i + 1)).collect();
        edges.push((25, 51));
        edges.push((25, 52));
        let g = fssga_graph::Graph::from_edges(53, &edges);
        let critical = |_: &Network<Idle>| vec![0, 50];
        for seed in 0..20u64 {
            let mut net = Network::new(&g, Idle, |_| Unit::Only);
            let mut inj = FaultInjector::new(1.0, 1.0, 1);
            let mut rng = Xoshiro256::seed_from_u64(1000 + seed);
            let got = inj.try_inject(&mut net, &critical, &mut rng);
            assert!(
                matches!(got, Some(FaultKind::Edge(u, v)) if (u == 25 && v > 50) || (v == 25 && u > 50)),
                "seed {seed}: expected a pendant edge fault, got {got:?}"
            );
        }
    }

    #[test]
    fn budget_is_respected() {
        let g = generators::complete(12);
        let mut net = Network::new(&g, Idle, |_| Unit::Only);
        let critical = |_: &Network<Idle>| Vec::new();
        let mut inj = FaultInjector::new(1.0, 1.0, 3);
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..100 {
            inj.try_inject(&mut net, &critical, &mut rng);
        }
        assert_eq!(inj.injected(), 3);
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let g = generators::complete(5);
        let mut net = Network::new(&g, Idle, |_| Unit::Only);
        let critical = |_: &Network<Idle>| Vec::new();
        let mut inj = FaultInjector::new(0.0, 0.5, 10);
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..100 {
            assert!(inj.try_inject(&mut net, &critical, &mut rng).is_none());
        }
        assert_eq!(net.graph().m(), 10);
    }
}

/// The declared asymptotic size of an algorithm's critical set `χ(σ)` —
/// the paper's sensitivity ranking (Section 2): iterated-function
/// diffusions are 0-sensitive, agent algorithms are O(1)-sensitive, and
/// tree-based algorithms are Θ(n)-sensitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SensitivityClass {
    /// `χ = ∅`: any benign fault leaves the algorithm reasonably correct.
    Zero,
    /// `|χ| ≤ k` at every instant, independent of `n`.
    Constant(usize),
    /// `|χ| = Θ(n)` on typical topologies.
    Linear,
}

impl SensitivityClass {
    /// The concrete bound on `|χ(σ)|` this class admits on an `n`-node
    /// instance.
    pub fn bound(self, n: usize) -> usize {
        match self {
            SensitivityClass::Zero => 0,
            SensitivityClass::Constant(k) => k,
            SensitivityClass::Linear => n,
        }
    }
}

/// A running algorithm instance that knows its own critical set.
///
/// Implemented by each protocol's harness (or `Network<P>` directly for
/// pure diffusion protocols), so campaigns and the empirical sensitivity
/// estimator can query `χ(σ)` without per-algorithm plumbing. The
/// *declared* class and set are cross-checked empirically by
/// [`sweep_single_faults`]: every single kill that breaks the run must
/// name a declared critical node.
pub trait Sensitive {
    /// Human-readable algorithm name (diagnostics, `fssga-chaos` output).
    fn algorithm(&self) -> &'static str;

    /// The declared asymptotic sensitivity class.
    fn sensitivity_class(&self) -> SensitivityClass;

    /// The critical nodes `χ(σ)` of the *current* configuration.
    fn critical_set(&self) -> Vec<NodeId>;
}

/// Sensitivity declaration for a bare protocol whose critical set is a
/// function of the network configuration alone (no driving harness) —
/// census, shortest paths, the α synchronizer. The orphan rule stops
/// protocol crates from implementing [`Sensitive`] on `Network<P>`
/// directly (both the trait and `Network` live here), so they implement
/// this on their local protocol type and the blanket impl below lifts it.
pub trait SensitiveProtocol: Protocol + Sized {
    /// Human-readable algorithm name.
    fn algorithm_name() -> &'static str;

    /// The declared asymptotic sensitivity class.
    fn declared_class() -> SensitivityClass;

    /// The critical nodes `χ(σ)` of `net`'s current configuration.
    /// Defaults to the empty set (the 0-sensitive case).
    fn critical_of(net: &Network<Self>) -> Vec<NodeId> {
        let _ = net;
        Vec::new()
    }
}

impl<P: SensitiveProtocol> Sensitive for Network<P> {
    fn algorithm(&self) -> &'static str {
        P::algorithm_name()
    }

    fn sensitivity_class(&self) -> SensitivityClass {
        P::declared_class()
    }

    fn critical_set(&self) -> Vec<NodeId> {
        P::critical_of(self)
    }
}

/// One probe of the empirical sensitivity sweep: a lone fault injected at
/// one instant of an otherwise fault-free run, and the verdict it caused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SingleFaultProbe {
    /// When the fault was injected.
    pub time: u64,
    /// The injected fault.
    pub kind: FaultKind,
    /// How the probed run ended.
    pub verdict: Verdict,
}

/// The result of a [`sweep_single_faults`] campaign: one verdict per
/// `(time, fault)` pair.
#[derive(Clone, Debug, Default)]
pub struct SensitivityReport {
    /// All probes, in sweep order.
    pub probes: Vec<SingleFaultProbe>,
}

impl SensitivityReport {
    /// Probes whose verdict was [`Verdict::Incorrect`].
    pub fn harmful(&self) -> impl Iterator<Item = &SingleFaultProbe> {
        self.probes
            .iter()
            .filter(|p| p.verdict == Verdict::Incorrect)
    }

    /// Nodes whose lone kill at `time` broke the run.
    pub fn harmful_nodes_at(&self, time: u64) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .harmful()
            .filter(|p| p.time == time)
            .filter_map(|p| match p.kind {
                FaultKind::Node(v) => Some(v),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The empirical lower bound on `max_t |χ(σ_t)|`: the largest number
    /// of distinct harmful node kills observed at any single instant.
    pub fn empirical_sensitivity(&self) -> usize {
        let mut times: Vec<u64> = self.probes.iter().map(|p| p.time).collect();
        times.sort_unstable();
        times.dedup();
        times
            .into_iter()
            .map(|t| self.harmful_nodes_at(t).len())
            .max()
            .unwrap_or(0)
    }

    /// Cross-checks the declared critical sets: every harmful node kill at
    /// instant `t` must name a node of `critical_at(t)` (the declared
    /// `χ(σ_t)` of the fault-free run). Returns the violations — empty
    /// means the declaration *covers* every empirically observed breakage.
    pub fn uncovered_by(
        &self,
        mut critical_at: impl FnMut(u64) -> Vec<NodeId>,
    ) -> Vec<(u64, NodeId)> {
        let mut times: Vec<u64> = self.probes.iter().map(|p| p.time).collect();
        times.sort_unstable();
        times.dedup();
        let mut out = Vec::new();
        for t in times {
            let declared = critical_at(t);
            for v in self.harmful_nodes_at(t) {
                if !declared.contains(&v) {
                    out.push((t, v));
                }
            }
        }
        out
    }
}

/// The empirical k-sensitivity estimator: for every `(time, fault)` pair
/// in `times × kinds`, runs one deterministic campaign with exactly that
/// lone fault injected and records the verdict. `run` receives the full
/// (single-event) schedule and must be a pure function of it — rebuild the
/// algorithm and reseed the RNG inside. The count of distinct node kills
/// that yield `Incorrect` at an instant lower-bounds `|χ(σ)|` there, which
/// is what certifies the paper's 0 / 1 / Θ(n) ranking.
pub fn sweep_single_faults(
    kinds: &[FaultKind],
    times: &[u64],
    mut run: impl FnMut(&[crate::faults::FaultEvent]) -> Verdict,
) -> SensitivityReport {
    let mut report = SensitivityReport::default();
    for &time in times {
        for &kind in kinds {
            let schedule = [crate::faults::FaultEvent { time, kind }];
            let verdict = run(&schedule);
            report.probes.push(SingleFaultProbe {
                time,
                kind,
                verdict,
            });
        }
    }
    report
}

/// Parallel [`sweep_single_faults`]: the `times × kinds` probes are
/// independent deterministic campaigns (each rebuilds its network and
/// reseeds its RNG from the schedule alone), so they fan out over a
/// [`crate::ShardPool`] with one probe per pool job. The report is
/// assembled in sweep order regardless of which thread ran which probe,
/// so the result is bit-identical to the sequential sweep for every
/// thread count.
///
/// `run` must be a *pure* function of the schedule (the same contract
/// [`sweep_single_faults`] states), and additionally `Sync` because
/// several probes call it concurrently.
#[cfg(feature = "parallel")]
pub fn sweep_single_faults_parallel(
    kinds: &[FaultKind],
    times: &[u64],
    threads: usize,
    run: impl Fn(&[crate::faults::FaultEvent]) -> Verdict + Sync,
) -> SensitivityReport {
    let pairs: Vec<(u64, FaultKind)> = times
        .iter()
        .flat_map(|&t| kinds.iter().map(move |&k| (t, k)))
        .collect();
    if threads <= 1 || pairs.len() < 2 {
        return sweep_single_faults(kinds, times, run);
    }
    // One slot per probe; each pool job writes only its own index, and
    // the merge below walks the slots in sweep order.
    let slots: Vec<std::sync::Mutex<Option<Verdict>>> =
        pairs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let mut pool = crate::pool::ShardPool::new(threads);
    pool.run(pairs.len(), &|i| {
        let (time, kind) = pairs[i];
        let schedule = [crate::faults::FaultEvent { time, kind }];
        *slots[i].lock().unwrap() = Some(run(&schedule));
    });
    let mut report = SensitivityReport::default();
    for ((time, kind), slot) in pairs.into_iter().zip(slots) {
        let verdict = slot
            .into_inner()
            .unwrap()
            .expect("ShardPool::run visits every probe exactly once");
        report.probes.push(SingleFaultProbe {
            time,
            kind,
            verdict,
        });
    }
    report
}

/// The paper's "reasonably correct" predicate (Section 2), made
/// executable over the *realized* graph chain: an execution with answer
/// `answer` is reasonably correct if some graph `G'` with
/// `G0 ⊇ G' ⊇ G_f` yields the same answer in a fault-free run. Checking
/// every graph between the endpoints is exponential; the chain of graphs
/// that actually occurred (snapshot after each fault) is the natural
/// witness set, so this check is *sound* (a `true` is a genuine witness)
/// though not complete.
pub fn reasonably_correct<A: PartialEq>(
    snapshots: &[fssga_graph::Graph],
    answer: &A,
    mut fault_free_oracle: impl FnMut(&fssga_graph::Graph) -> A,
) -> bool {
    snapshots.iter().any(|g| fault_free_oracle(g) == *answer)
}

#[cfg(test)]
mod reasonable_tests {
    use super::*;
    use fssga_graph::{exact, generators, DynGraph};

    #[test]
    fn matching_any_chain_member_suffices() {
        // Oracle: number of connected components. Chain: path, then cut.
        let g0 = generators::path(6);
        let mut d = DynGraph::from_graph(&g0);
        let s0 = d.snapshot();
        d.remove_edge(2, 3);
        let s1 = d.snapshot();
        let oracle = |g: &fssga_graph::Graph| exact::connected_components(g).0;
        // An execution that answered "2 components" is reasonable w.r.t.
        // the post-fault graph...
        assert!(reasonably_correct(&[s0.clone(), s1.clone()], &2, oracle));
        // ...and one that answered "1" w.r.t. the initial graph.
        assert!(reasonably_correct(&[s0.clone(), s1.clone()], &1, oracle));
        // "3" matches nothing in the chain.
        assert!(!reasonably_correct(&[s0, s1], &3, oracle));
    }

    #[test]
    fn census_outcome_is_reasonable_under_partition() {
        use fssga_graph::rng::Xoshiro256;
        // End-to-end: a faulted census run's answer must equal a fault-free
        // run on SOME chain member — here, the post-cut graph.
        let mut rng = Xoshiro256::seed_from_u64(99);
        let g0 = generators::path(16);
        let sketches: Vec<u16> = (0..16).map(|_| 1u16 << rng.gen_index(6)).collect();
        // "Algorithm": OR of sketches over the component of node 0.
        let run = |g: &fssga_graph::Graph| -> u16 {
            let mut acc = 0u16;
            let comp = {
                let d = DynGraph::from_graph(g);
                d.component_of(0)
            };
            for v in comp {
                acc |= sketches[v as usize];
            }
            acc
        };
        let mut d = DynGraph::from_graph(&g0);
        let s0 = d.snapshot();
        d.remove_edge(7, 8);
        let s1 = d.snapshot();
        let faulted_answer = run(&s1); // diffusion converged after the cut
        assert!(reasonably_correct(&[s0, s1], &faulted_answer, run));
    }
}
