//! Compiling a typed [`Protocol`] into a formal [`ProbFssga`].
//!
//! Because a protocol can only read its neighbours through
//! [`crate::NeighborView`], its transition function for a fixed own-state
//! and coin *is* a function of `(min(μ_j, T_j), μ_j mod M_j)_j` for the
//! largest thresholds `T_j` and moduli lcms `M_j` it ever queries. This
//! module discovers those bounds with the query recorder and materializes
//! the function as a [`ModThreshProgram`] — one clause per reachable
//! per-state count-class combination, exactly the shape of Lemma 3.9's
//! construction.
//!
//! The resulting tables are the *witness* that our algorithm
//! implementations really are FSSGA automata (S0–S2): the `fssga-protocols`
//! test suites compile each protocol and step the compiled tables and the
//! native code side by side.

use std::cell::RefCell;

use fssga_core::modthresh::{ModThreshProgram, Prop};
use fssga_core::{FsmProgram, ProbFssga, SmError};

use crate::protocol::{Protocol, StateSpace};
use crate::view::{NeighborView, QueryRecorder};

/// Compiles `protocol` to a probabilistic FSSGA. `clause_limit` bounds the
/// number of clauses per (state, coin) program.
///
/// The query bounds are found by fixpoint iteration: evaluate the
/// transition on one representative per count-class combination while
/// recording queries; if the recorder reports larger thresholds or moduli
/// than assumed, re-run with the enlarged bounds. Protocols whose query
/// sizes depend on the input converge in a few iterations; a protocol
/// that queries unboundedly (impossible through the view API with
/// constant arguments, but conceivable with computed ones) hits
/// `clause_limit` and errors out.
pub fn compile_protocol<P: Protocol>(
    protocol: &P,
    clause_limit: u128,
) -> Result<ProbFssga, SmError> {
    let s = P::State::COUNT;
    let r = P::RANDOMNESS.max(1) as usize;
    let mut programs: Vec<FsmProgram> = Vec::with_capacity(s * r);
    // Bounds are discovered globally (max over all own-states and coins):
    // the automaton family shares one alphabet, and a single bound vector
    // keeps the clause structure uniform.
    let mut thresholds = vec![1u64; s];
    let mut moduli = vec![1u64; s];
    'grow: loop {
        programs.clear();
        let recorder = RefCell::new(QueryRecorder::new(s));
        for own in 0..s {
            for coin in 0..r {
                let prog = build_program::<P>(
                    protocol,
                    own,
                    coin as u32,
                    &thresholds,
                    &moduli,
                    &recorder,
                    clause_limit,
                )?;
                programs.push(prog);
            }
        }
        let rec = recorder.borrow();
        let mut grew = false;
        for j in 0..s {
            if rec.thresholds[j] > thresholds[j] {
                thresholds[j] = rec.thresholds[j];
                grew = true;
            }
            if !rec.moduli[j].is_multiple_of(moduli[j]) || rec.moduli[j] > moduli[j] {
                moduli[j] = fssga_core::modthresh::lcm(moduli[j], rec.moduli[j]);
                grew = true;
            }
        }
        if !grew {
            break 'grow;
        }
    }
    ProbFssga::new(s, r, programs)
}

/// Builds the mod-thresh program for one (own state, coin) pair under the
/// assumed bounds, recording any queries that exceed them.
fn build_program<P: Protocol>(
    protocol: &P,
    own: usize,
    coin: u32,
    thresholds: &[u64],
    moduli: &[u64],
    recorder: &RefCell<QueryRecorder>,
    clause_limit: u128,
) -> Result<FsmProgram, SmError> {
    let s = P::State::COUNT;
    // Count classes per state j: singletons {0..T_j-1} plus residues
    // {>= T_j, ≡ i (mod M_j)} — tail T_j, period M_j.
    let class_counts: Vec<u64> = (0..s).map(|j| thresholds[j] + moduli[j]).collect();
    let total: u128 = class_counts.iter().map(|&c| c as u128).product();
    if total > clause_limit {
        return Err(SmError::TooLarge {
            needed: total,
            limit: clause_limit,
        });
    }
    let mut clauses: Vec<(Prop, usize)> = Vec::with_capacity(total as usize);
    let mut combo = vec![0u64; s];
    loop {
        let mut counts = vec![0u32; s];
        let mut guard = Prop::True;
        for j in 0..s {
            let (t_j, m_j) = (thresholds[j], moduli[j]);
            let c = combo[j];
            if c < t_j {
                counts[j] = c as u32;
                let mut p = Prop::below(j, c + 1);
                if c > 0 {
                    p = p.and(Prop::below(j, c).not());
                }
                guard = guard.and(p);
            } else {
                let i = c - t_j;
                let z = t_j + (i + m_j - (t_j % m_j)) % m_j;
                counts[j] = z as u32;
                let mut p = Prop::mod_count(j, i % m_j, m_j);
                if t_j > 0 {
                    p = Prop::below(j, t_j).not().and(p);
                }
                guard = guard.and(p);
            }
        }
        // Bump an all-zero representative into Q^+ via a periodic class.
        if counts.iter().all(|&c| c == 0) {
            if let Some(j) = (0..s).find(|&j| combo[j] >= thresholds[j]) {
                counts[j] += moduli[j] as u32;
            }
        }
        if counts.iter().any(|&c| c > 0) {
            let view: NeighborView<'_, P::State> = NeighborView::new(&counts, Some(recorder));
            let new = protocol.transition(P::State::from_index(own), &view, coin);
            clauses.push((guard, new.index()));
        }
        let mut j = 0;
        loop {
            if j == s {
                let default = clauses.last().map(|&(_, r)| r).unwrap_or(own);
                if !clauses.is_empty() {
                    clauses.pop();
                }
                let prog = ModThreshProgram::new(s, s, clauses, default)?;
                return Ok(FsmProgram::ModThresh(prog));
            }
            combo[j] += 1;
            if combo[j] < class_counts[j] {
                break;
            }
            combo[j] = 0;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use crate::interp::InterpNetwork;
    use crate::network::Network;
    use fssga_core::multiset::Multiset;
    use fssga_graph::generators;
    use fssga_graph::rng::Xoshiro256;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Tri {
        A,
        B,
        C,
    }
    impl_state_space!(Tri { A, B, C });

    /// Uses a threshold of 3 on B and parity of C.
    struct Mixed;
    impl Protocol for Mixed {
        type State = Tri;
        fn transition(&self, own: Tri, nbrs: &NeighborView<'_, Tri>, _c: u32) -> Tri {
            if nbrs.at_least(Tri::B, 3) {
                Tri::C
            } else if nbrs.congruent(Tri::C, 1, 2) {
                Tri::B
            } else {
                own
            }
        }
    }

    #[test]
    fn compiled_tables_match_native_on_all_small_multisets() {
        let auto = compile_protocol(&Mixed, 1 << 20).unwrap();
        assert_eq!(auto.num_states(), 3);
        assert_eq!(auto.randomness(), 1);
        for own in 0..3 {
            for ms in Multiset::enumerate_up_to(3, 6) {
                let counts: Vec<u32> = ms.counts().iter().map(|&c| c as u32).collect();
                let view: NeighborView<'_, Tri> = NeighborView::over(&counts);
                let native = Mixed.transition(Tri::from_index(own), &view, 0).index();
                let compiled = auto.transition(own, 0, &ms);
                assert_eq!(native, compiled, "own={own}, ms={:?}", ms.counts());
            }
        }
    }

    #[test]
    fn compiled_network_steps_identically() {
        let auto = compile_protocol(&Mixed, 1 << 20).unwrap();
        let g = generators::connected_gnp(40, 0.1, &mut Xoshiro256::seed_from_u64(5));
        let init = |v: u32| Tri::from_index((v as usize) % 3);
        let mut native = Network::new(&g, Mixed, init);
        let mut interp = InterpNetwork::new(&g, &auto, |v| (v as usize) % 3);
        for round in 0..20 {
            native.sync_step_seeded(round);
            interp.sync_step_seeded(round);
            let native_ids: Vec<usize> = native.states().iter().map(|s| s.index()).collect();
            assert_eq!(native_ids, interp.states(), "round {round}");
        }
    }

    /// Probabilistic protocol: coin chooses between two behaviours.
    struct Flip;
    impl Protocol for Flip {
        type State = Tri;
        const RANDOMNESS: u32 = 2;
        fn transition(&self, own: Tri, nbrs: &NeighborView<'_, Tri>, coin: u32) -> Tri {
            match coin {
                0 if nbrs.some(Tri::A) => Tri::A,
                1 if nbrs.some(Tri::C) => Tri::C,
                _ => own,
            }
        }
    }

    #[test]
    fn probabilistic_compile_and_lockstep() {
        let auto = compile_protocol(&Flip, 1 << 20).unwrap();
        assert_eq!(auto.randomness(), 2);
        let g = generators::grid(6, 6);
        let init_t = |v: u32| Tri::from_index((v as usize * 5 + 1) % 3);
        let mut native = Network::new(&g, Flip, init_t);
        let mut interp = InterpNetwork::new(&g, &auto, |v| (v as usize * 5 + 1) % 3);
        for round in 0..30 {
            native.sync_step_seeded(round * 31 + 7);
            interp.sync_step_seeded(round * 31 + 7);
            let native_ids: Vec<usize> = native.states().iter().map(|s| s.index()).collect();
            assert_eq!(native_ids, interp.states(), "round {round}");
        }
    }

    #[test]
    fn clause_limit_respected() {
        struct Wide;
        impl Protocol for Wide {
            type State = Tri;
            fn transition(&self, own: Tri, nbrs: &NeighborView<'_, Tri>, _c: u32) -> Tri {
                // Thresholds of 50 on every state: 51^3 clause classes.
                if nbrs.at_least(Tri::A, 50)
                    && nbrs.at_least(Tri::B, 50)
                    && nbrs.at_least(Tri::C, 50)
                {
                    Tri::A
                } else {
                    own
                }
            }
        }
        assert!(matches!(
            compile_protocol(&Wide, 100),
            Err(SmError::TooLarge { .. })
        ));
        assert!(compile_protocol(&Wide, 1 << 20).is_ok());
    }
}
