//! Round-by-round execution recording.
//!
//! Protocol debugging and the examples want to *see* a network evolve:
//! [`History`] snapshots the state vector each round and renders compact
//! ASCII timelines (one row per round, one column per node), which is how
//! the repository's figures of merit (firing-squad synchrony, colour
//! flood fronts, arm growth) were eyeballed during development.

use crate::network::Network;
use crate::protocol::Protocol;

/// A recorded sequence of network state vectors.
#[derive(Clone, Debug, Default)]
pub struct History<S> {
    rounds: Vec<Vec<S>>,
}

impl<S: Copy + PartialEq> History<S> {
    /// An empty history.
    pub fn new() -> Self {
        History { rounds: Vec::new() }
    }

    /// Snapshots the network's current states.
    pub fn record<P: Protocol<State = S>>(&mut self, net: &Network<P>) {
        self.rounds.push(net.states().to_vec());
    }

    /// Number of recorded snapshots.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The snapshot at `round` (0-based).
    pub fn at(&self, round: usize) -> &[S] {
        &self.rounds[round]
    }

    /// How many nodes changed state between consecutive snapshots
    /// (`changes()[i]` compares snapshot `i` to `i+1`).
    pub fn changes(&self) -> Vec<usize> {
        self.rounds
            .windows(2)
            .map(|w| w[0].iter().zip(&w[1]).filter(|(a, b)| a != b).count())
            .collect()
    }

    /// The first snapshot index from which nothing ever changes again,
    /// if the recording reached quiescence.
    pub fn quiescent_from(&self) -> Option<usize> {
        let last = self.rounds.last()?;
        let mut idx = self.rounds.len() - 1;
        while idx > 0 && self.rounds[idx - 1] == *last {
            idx -= 1;
        }
        if idx + 1 < self.rounds.len() || self.rounds.len() == 1 {
            Some(idx)
        } else {
            None // never saw two equal consecutive snapshots
        }
    }

    /// Renders the history as an ASCII timeline: one line per round, one
    /// glyph per node.
    pub fn timeline(&self, mut glyph: impl FnMut(S) -> char) -> String {
        self.rounds
            .iter()
            .enumerate()
            .map(|(t, row)| {
                let cells: String = row.iter().map(|&s| glyph(s)).collect();
                format!("t={t:4}  {cells}")
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use crate::view::NeighborView;
    use fssga_graph::generators;
    use fssga_graph::rng::Xoshiro256;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Bit {
        Off,
        On,
    }
    impl_state_space!(Bit { Off, On });

    struct Spread;
    impl Protocol for Spread {
        type State = Bit;
        fn transition(&self, own: Bit, nbrs: &NeighborView<'_, Bit>, _c: u32) -> Bit {
            if own == Bit::On || nbrs.some(Bit::On) {
                Bit::On
            } else {
                Bit::Off
            }
        }
    }

    fn run_recorded(rounds: usize) -> History<Bit> {
        let g = generators::path(5);
        let mut net = Network::new(&g, Spread, |v| if v == 0 { Bit::On } else { Bit::Off });
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut h = History::new();
        h.record(&net);
        for _ in 0..rounds {
            net.sync_step(&mut rng);
            h.record(&net);
        }
        h
    }

    #[test]
    fn records_every_round() {
        let h = run_recorded(6);
        assert_eq!(h.len(), 7);
        assert_eq!(h.at(0)[0], Bit::On);
        assert_eq!(h.at(0)[4], Bit::Off);
        assert_eq!(h.at(6)[4], Bit::On);
    }

    #[test]
    fn change_counts_track_the_front() {
        let h = run_recorded(6);
        // One new node per round until saturation, then zero.
        assert_eq!(h.changes(), vec![1, 1, 1, 1, 0, 0]);
    }

    #[test]
    fn quiescence_detection() {
        let h = run_recorded(6);
        assert_eq!(h.quiescent_from(), Some(4));
        let early = run_recorded(2);
        assert_eq!(early.quiescent_from(), None, "still spreading");
    }

    #[test]
    fn timeline_renders_rows() {
        let h = run_recorded(4);
        let s = h.timeline(|b| if b == Bit::On { '#' } else { '.' });
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].ends_with("#...."));
        assert!(lines[4].ends_with("#####"));
    }
}
