//! Round-by-round execution recording.
//!
//! Protocol debugging and the examples want to *see* a network evolve:
//! [`History`] snapshots the state vector each round and renders compact
//! ASCII timelines (one row per round, one column per node), which is how
//! the repository's figures of merit (firing-squad synchrony, colour
//! flood fronts, arm growth) were eyeballed during development.
//!
//! Unbounded recording is O(n · rounds) memory — a large torus driven for
//! thousands of rounds will happily eat gigabytes. Two knobs bound it:
//!
//! * a **stride** ([`History::with_stride`]) records every k-th offered
//!   snapshot;
//! * a **cap** ([`History::capped`]) bounds the number of retained
//!   snapshots by *decimation*: when the cap would be exceeded, the
//!   stride doubles and every snapshot at an odd multiple of the old
//!   stride is dropped. The recording always spans the whole run at
//!   uniform (power-of-two × stride) spacing, using at most `cap`
//!   snapshots — the classic halving trick for streaming sparklines.
//!
//! [`History::round_id`] maps a retained snapshot back to the 0-based
//! round it was taken at, and [`History::timeline`] labels rows with it.

use crate::network::Network;
use crate::protocol::Protocol;

/// A recorded sequence of network state vectors, optionally decimated
/// (see the [module docs](self)).
#[derive(Clone, Debug)]
pub struct History<S> {
    rounds: Vec<Vec<S>>,
    /// The 0-based offered-snapshot index each retained row was taken at.
    round_ids: Vec<u64>,
    /// Record every `stride`-th offered snapshot (doubles on decimation).
    stride: u64,
    /// Retain at most this many snapshots, decimating to stay under.
    cap: Option<usize>,
    /// Snapshots offered via [`Self::record`] so far (retained or not).
    seen: u64,
}

impl<S> Default for History<S> {
    fn default() -> Self {
        History {
            rounds: Vec::new(),
            round_ids: Vec::new(),
            stride: 1,
            cap: None,
            seen: 0,
        }
    }
}

impl<S: Copy + PartialEq> History<S> {
    /// An empty history recording every offered snapshot, unbounded.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty history recording every `stride`-th offered snapshot
    /// (stride 1 = every one). Panics if `stride` is 0.
    pub fn with_stride(stride: u64) -> Self {
        Self::with_limits(stride, None)
    }

    /// An empty history retaining at most `cap` snapshots, decimating
    /// (doubling the stride, dropping every other retained row) whenever
    /// the cap would be exceeded. Panics if `cap < 2` — decimation needs
    /// room for both endpoints.
    pub fn capped(cap: usize) -> Self {
        Self::with_limits(1, Some(cap))
    }

    /// An empty history with both knobs (see [`Self::with_stride`] and
    /// [`Self::capped`]).
    pub fn with_limits(stride: u64, cap: Option<usize>) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        if let Some(c) = cap {
            assert!(c >= 2, "cap must be at least 2");
        }
        History {
            stride,
            cap,
            ..Self::default()
        }
    }

    /// Offers the network's current states for recording. Retained iff
    /// the offer index is a multiple of the current stride; may trigger
    /// decimation when a cap is set.
    pub fn record<P: Protocol<State = S>>(&mut self, net: &Network<P>) {
        let id = self.seen;
        self.seen += 1;
        if !id.is_multiple_of(self.stride) {
            return;
        }
        self.rounds.push(net.states().to_vec());
        self.round_ids.push(id);
        if let Some(cap) = self.cap {
            while self.rounds.len() > cap {
                self.decimate();
            }
        }
    }

    /// Doubles the stride and drops every retained row whose id is an
    /// odd multiple of the old stride.
    fn decimate(&mut self) {
        self.stride *= 2;
        let stride = self.stride;
        let mut keep = self.round_ids.iter().map(|&id| id % stride == 0);
        self.rounds
            .retain(|_| keep.next().expect("ids parallel rounds"));
        self.round_ids.retain(|&id| id % stride == 0);
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The retained snapshot at index `i` (0-based, recording order).
    pub fn at(&self, i: usize) -> &[S] {
        &self.rounds[i]
    }

    /// The 0-based offer (round) index the retained snapshot `i` was
    /// taken at — equal to `i` while no stride/decimation is in play.
    pub fn round_id(&self, i: usize) -> u64 {
        self.round_ids[i]
    }

    /// The current stride between retained snapshots (grows by doubling
    /// under a cap).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// How many nodes changed state between consecutive *retained*
    /// snapshots (`changes()[i]` compares snapshot `i` to `i+1`; under a
    /// stride or cap these may be several rounds apart — see
    /// [`Self::round_id`]).
    pub fn changes(&self) -> Vec<usize> {
        self.rounds
            .windows(2)
            .map(|w| w[0].iter().zip(&w[1]).filter(|(a, b)| a != b).count())
            .collect()
    }

    /// The first retained-snapshot index from which nothing ever changes
    /// again, if the recording reached quiescence.
    pub fn quiescent_from(&self) -> Option<usize> {
        let last = self.rounds.last()?;
        let mut idx = self.rounds.len() - 1;
        while idx > 0 && self.rounds[idx - 1] == *last {
            idx -= 1;
        }
        if idx + 1 < self.rounds.len() || self.rounds.len() == 1 {
            Some(idx)
        } else {
            None // never saw two equal consecutive snapshots
        }
    }

    /// Renders the history as an ASCII timeline: one line per retained
    /// snapshot (labelled with its round id), one glyph per node.
    pub fn timeline(&self, mut glyph: impl FnMut(S) -> char) -> String {
        self.rounds
            .iter()
            .zip(&self.round_ids)
            .map(|(row, &t)| {
                let cells: String = row.iter().map(|&s| glyph(s)).collect();
                format!("t={t:4}  {cells}")
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use crate::view::NeighborView;
    use fssga_graph::generators;
    use fssga_graph::rng::Xoshiro256;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Bit {
        Off,
        On,
    }
    impl_state_space!(Bit { Off, On });

    struct Spread;
    impl Protocol for Spread {
        type State = Bit;
        fn transition(&self, own: Bit, nbrs: &NeighborView<'_, Bit>, _c: u32) -> Bit {
            if own == Bit::On || nbrs.some(Bit::On) {
                Bit::On
            } else {
                Bit::Off
            }
        }
    }

    fn run_into(mut h: History<Bit>, rounds: usize) -> History<Bit> {
        let g = generators::path(5);
        let mut net = Network::new(&g, Spread, |v| if v == 0 { Bit::On } else { Bit::Off });
        let mut rng = Xoshiro256::seed_from_u64(1);
        h.record(&net);
        for _ in 0..rounds {
            net.sync_step(&mut rng);
            h.record(&net);
        }
        h
    }

    fn run_recorded(rounds: usize) -> History<Bit> {
        run_into(History::new(), rounds)
    }

    #[test]
    fn records_every_round() {
        let h = run_recorded(6);
        assert_eq!(h.len(), 7);
        assert_eq!(h.at(0)[0], Bit::On);
        assert_eq!(h.at(0)[4], Bit::Off);
        assert_eq!(h.at(6)[4], Bit::On);
    }

    #[test]
    fn change_counts_track_the_front() {
        let h = run_recorded(6);
        // One new node per round until saturation, then zero.
        assert_eq!(h.changes(), vec![1, 1, 1, 1, 0, 0]);
    }

    #[test]
    fn quiescence_detection() {
        let h = run_recorded(6);
        assert_eq!(h.quiescent_from(), Some(4));
        let early = run_recorded(2);
        assert_eq!(early.quiescent_from(), None, "still spreading");
    }

    #[test]
    fn timeline_renders_rows() {
        let h = run_recorded(4);
        let s = h.timeline(|b| if b == Bit::On { '#' } else { '.' });
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].ends_with("#...."));
        assert!(lines[4].ends_with("#####"));
    }

    #[test]
    fn stride_skips_intermediate_rounds() {
        let h = run_into(History::with_stride(3), 7);
        // Offers 0..=7; retained: 0, 3, 6.
        assert_eq!(h.len(), 3);
        assert_eq!(
            (0..h.len()).map(|i| h.round_id(i)).collect::<Vec<_>>(),
            vec![0, 3, 6]
        );
        let s = h.timeline(|b| if b == Bit::On { '#' } else { '.' });
        assert!(s.lines().next().unwrap().starts_with("t=   0"));
        assert!(s.lines().last().unwrap().starts_with("t=   6"));
    }

    #[test]
    fn cap_decimates_but_spans_the_run() {
        let h = run_into(History::capped(4), 20);
        // 21 offers under a cap of 4: stride doubles to 8.
        assert!(h.len() <= 4, "cap respected, got {}", h.len());
        assert_eq!(h.round_id(0), 0, "start of run always retained");
        assert_eq!(h.stride(), 8);
        for i in 0..h.len() {
            assert_eq!(h.round_id(i) % h.stride(), 0, "uniform spacing");
        }
        assert!(
            h.round_id(h.len() - 1) >= 16,
            "recording spans the late run"
        );
        // Decimated rows still carry real states: the last retained
        // snapshot of a 20-round spread on path(5) is fully on.
        assert!(h.at(h.len() - 1).iter().all(|&b| b == Bit::On));
    }

    #[test]
    fn bounded_memory_for_long_runs() {
        let h = run_into(History::capped(8), 1000);
        assert!(h.len() <= 8);
        assert_eq!(h.round_id(0), 0);
        assert!(h.round_id(h.len() - 1) >= 1001 - h.stride());
    }

    #[test]
    #[should_panic(expected = "cap must be at least 2")]
    fn tiny_cap_rejected() {
        let _ = History::<Bit>::capped(1);
    }
}
