//! The restricted neighbour view.
//!
//! A finite-state node with unbounded degree "cannot even count its
//! neighbours" (Section 1). Everything it *can* learn about the neighbour
//! multiset is captured by mod atoms and thresh atoms (Theorem 3.7), so
//! this is exactly — and only — what [`NeighborView`] exposes. Protocols
//! written against this API are SM functions of the neighbour multiset by
//! construction.
//!
//! The engine itself holds the true multiplicity vector (it is a
//! simulator, not a node), and an optional [`QueryRecorder`] notes the
//! largest threshold and the lcm of moduli used per state — the data
//! needed to compile the protocol into a mod-thresh program
//! (see [`crate::compile`]).

use std::cell::RefCell;
use std::marker::PhantomData;

use crate::protocol::StateSpace;

/// Records which finite-state queries a protocol performs, per state id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRecorder {
    /// Per-state max `t` over all `μ >= t` / `μ < t` queries (at least 1).
    pub thresholds: Vec<u64>,
    /// Per-state lcm of all moduli queried (at least 1).
    pub moduli: Vec<u64>,
}

impl QueryRecorder {
    /// A fresh recorder for an alphabet of `s` states.
    pub fn new(s: usize) -> Self {
        Self {
            thresholds: vec![1; s],
            moduli: vec![1; s],
        }
    }

    fn record_thresh(&mut self, q: usize, t: u64) {
        self.thresholds[q] = self.thresholds[q].max(t);
    }

    fn record_mod(&mut self, q: usize, m: u64) {
        self.moduli[q] = fssga_core::modthresh::lcm(self.moduli[q], m);
    }

    /// Merges another recorder's observations into this one.
    pub fn merge(&mut self, other: &QueryRecorder) {
        for q in 0..self.thresholds.len() {
            self.thresholds[q] = self.thresholds[q].max(other.thresholds[q]);
            self.moduli[q] = fssga_core::modthresh::lcm(self.moduli[q], other.moduli[q]);
        }
    }

    /// Whether this recorder's observations are all covered by `other`:
    /// every threshold is no larger and every modulus divides. This is the
    /// fixed-point test abstract interpreters need ("did this probe learn
    /// anything new?").
    pub fn subsumed_by(&self, other: &QueryRecorder) -> bool {
        self.thresholds.len() == other.thresholds.len()
            && (0..self.thresholds.len()).all(|q| {
                self.thresholds[q] <= other.thresholds[q]
                    && other.moduli[q].is_multiple_of(self.moduli[q])
            })
    }
}

/// How the multiplicity vector is stored behind a view.
///
/// The dense form is the classic length-`|Q|` vector (with an optional
/// list of its nonzero indices). The sparse form stores only the nonzero
/// entries as parallel `(index, count)` arrays in ascending index order —
/// the run-length encoding the packed kernel produces per CSR row, where
/// materializing a `|Q|`-length scratch vector per activation would undo
/// the cache win of packing states in the first place.
enum CountsRepr<'a> {
    Dense {
        counts: &'a [u32],
        /// Indices with nonzero count, when the engine already knows them
        /// (the activation tally's touched-list). Lets
        /// [`NeighborView::present_states`] run in O(distinct states)
        /// instead of O(|Q|) — essential for product-state protocols with
        /// tens of thousands of states.
        presence: Option<&'a [u32]>,
    },
    Sparse {
        /// Nonzero state indices, strictly ascending.
        idx: &'a [u32],
        /// `cnt[i]` is the multiplicity of state `idx[i]`; all nonzero.
        cnt: &'a [u32],
    },
}

/// A symmetric, finite-state view of a neighbour multiset.
///
/// All methods are functions of the multiplicity vector only, and each is
/// realizable by a finite boolean combination of mod/thresh atoms — the
/// doc comment of every method names the realization.
pub struct NeighborView<'a, S: StateSpace> {
    repr: CountsRepr<'a>,
    recorder: Option<&'a RefCell<QueryRecorder>>,
    _ph: PhantomData<S>,
}

impl<'a, S: StateSpace> NeighborView<'a, S> {
    /// Engine-internal constructor. `counts` has length `S::COUNT`;
    /// `presence`, if given, lists exactly the indices with nonzero count
    /// in ascending order — the canonical [`Self::present_states`]
    /// iteration order.
    pub(crate) fn new_with_presence(
        counts: &'a [u32],
        presence: Option<&'a [u32]>,
        recorder: Option<&'a RefCell<QueryRecorder>>,
    ) -> Self {
        debug_assert_eq!(counts.len(), S::COUNT);
        debug_assert!(
            presence.is_none_or(|p| p.windows(2).all(|w| w[0] < w[1])),
            "presence list must be strictly ascending"
        );
        Self {
            repr: CountsRepr::Dense { counts, presence },
            recorder,
            _ph: PhantomData,
        }
    }

    /// Engine-internal constructor over a run-length-encoded multiset:
    /// `idx` lists the nonzero state indices in strictly ascending order
    /// and `cnt` the matching multiplicities. This is what the packed
    /// kernel builds per CSR row — no `|Q|`-length scratch involved.
    pub(crate) fn new_sparse(
        idx: &'a [u32],
        cnt: &'a [u32],
        recorder: Option<&'a RefCell<QueryRecorder>>,
    ) -> Self {
        debug_assert_eq!(idx.len(), cnt.len());
        debug_assert!(
            idx.windows(2).all(|w| w[0] < w[1]),
            "sparse indices must be strictly ascending"
        );
        debug_assert!(
            idx.iter().all(|&i| (i as usize) < S::COUNT),
            "sparse index out of alphabet range"
        );
        debug_assert!(
            cnt.iter().all(|&c| c > 0),
            "sparse entries must have nonzero multiplicity"
        );
        Self {
            repr: CountsRepr::Sparse { idx, cnt },
            recorder,
            _ph: PhantomData,
        }
    }

    /// The multiplicity of state index `i`, under either representation.
    /// Sparse lookup is a binary search over the (tiny, degree-bounded)
    /// nonzero list.
    #[inline]
    fn count_of(&self, i: usize) -> u32 {
        match &self.repr {
            CountsRepr::Dense { counts, .. } => counts[i],
            CountsRepr::Sparse { idx, cnt } => match idx.binary_search(&(i as u32)) {
                Ok(p) => cnt[p],
                Err(_) => 0,
            },
        }
    }

    /// Engine-internal constructor. `counts` has length `S::COUNT`.
    pub(crate) fn new(counts: &'a [u32], recorder: Option<&'a RefCell<QueryRecorder>>) -> Self {
        Self::new_with_presence(counts, None, recorder)
    }

    /// Builds a view over an explicit multiplicity vector — useful in
    /// protocol unit tests, which can then exercise a transition function
    /// without a graph.
    pub fn over(counts: &'a [u32]) -> Self {
        assert_eq!(counts.len(), S::COUNT);
        Self {
            repr: CountsRepr::Dense {
                counts,
                presence: None,
            },
            recorder: None,
            _ph: PhantomData,
        }
    }

    /// Like [`Self::over`], but with an attached [`QueryRecorder`] —
    /// the hook external analyses (`fssga-analysis`) use to observe which
    /// mod/thresh atoms a transition function touches on a given
    /// multiplicity vector, without driving a whole network.
    pub fn over_recorded(counts: &'a [u32], recorder: &'a RefCell<QueryRecorder>) -> Self {
        assert_eq!(counts.len(), S::COUNT);
        assert_eq!(recorder.borrow().thresholds.len(), S::COUNT);
        Self {
            repr: CountsRepr::Dense {
                counts,
                presence: None,
            },
            recorder: Some(recorder),
            _ph: PhantomData,
        }
    }

    /// Like [`Self::over_recorded`], but the caller also supplies the
    /// nonzero-index list, so [`Self::present_states`] runs in O(distinct
    /// states) rather than O(`S::COUNT`). External exhaustive drivers
    /// (`fssga-verify`) need this for product-state protocols whose
    /// alphabet runs to tens of thousands of states.
    ///
    /// `presence` must list exactly the indices with nonzero count;
    /// this is debug-asserted.
    pub fn over_sparse(
        counts: &'a [u32],
        presence: &'a [u32],
        recorder: Option<&'a RefCell<QueryRecorder>>,
    ) -> Self {
        assert_eq!(counts.len(), S::COUNT);
        debug_assert!(
            presence.iter().all(|&i| counts[i as usize] > 0),
            "presence list may only name nonzero indices"
        );
        debug_assert!(
            presence.windows(2).all(|w| w[0] < w[1]),
            "presence list must be strictly ascending"
        );
        // The exhaustive (exactly-the-nonzero-set) check is O(|Q|) per
        // view; only affordable for small alphabets, and hot callers
        // construct one view per transition.
        debug_assert!(
            S::COUNT > 4096 || counts.iter().filter(|&&c| c > 0).count() == presence.len(),
            "presence list must be exactly the nonzero indices"
        );
        if let Some(rec) = recorder {
            assert_eq!(rec.borrow().thresholds.len(), S::COUNT);
        }
        Self {
            repr: CountsRepr::Dense {
                counts,
                presence: Some(presence),
            },
            recorder,
            _ph: PhantomData,
        }
    }

    /// `μ_q >= t` — the negated thresh atom `¬(μ_q < t)`. `t >= 1`.
    pub fn at_least(&self, q: S, t: u32) -> bool {
        assert!(t >= 1, "thresh atoms need t >= 1");
        if let Some(rec) = self.recorder {
            rec.borrow_mut().record_thresh(q.index(), t as u64);
        }
        self.count_of(q.index()) >= t
    }

    /// `μ_q < t` — a thresh atom. `t >= 1`.
    pub fn fewer_than(&self, q: S, t: u32) -> bool {
        !self.at_least(q, t)
    }

    /// Some neighbour is in state `q`: `μ_q >= 1`.
    pub fn some(&self, q: S) -> bool {
        self.at_least(q, 1)
    }

    /// No neighbour is in state `q`: `μ_q < 1`.
    pub fn none(&self, q: S) -> bool {
        !self.some(q)
    }

    /// Exactly one neighbour is in state `q`: `μ_q >= 1 ∧ ¬(μ_q >= 2)`.
    pub fn exactly_one(&self, q: S) -> bool {
        self.at_least(q, 1) && !self.at_least(q, 2)
    }

    /// `min(μ_q, cap)` — realizable from the thresh atoms `μ_q < t` for
    /// `t = 1..=cap`.
    pub fn count_capped(&self, q: S, cap: u32) -> u32 {
        assert!(cap >= 1);
        if let Some(rec) = self.recorder {
            rec.borrow_mut().record_thresh(q.index(), cap as u64);
        }
        self.count_of(q.index()).min(cap)
    }

    /// `μ_q mod m` — realizable from the mod atoms `μ_q ≡ r (mod m)`,
    /// `r = 0..m`. `m >= 1`.
    pub fn count_mod(&self, q: S, m: u32) -> u32 {
        assert!(m >= 1, "mod atoms need m >= 1");
        if let Some(rec) = self.recorder {
            rec.borrow_mut().record_mod(q.index(), m as u64);
        }
        self.count_of(q.index()) % m
    }

    /// `μ_q ≡ r (mod m)` — a mod atom.
    pub fn congruent(&self, q: S, r: u32, m: u32) -> bool {
        self.count_mod(q, m) == r
    }

    /// Whether the total degree is at least `t`. Realizable as a finite
    /// disjunction over compositions: e.g. `deg >= 2` is
    /// `∨_q (μ_q >= 2) ∨ ∨_{q<q'} (μ_q >= 1 ∧ μ_{q'} >= 1)`. Since the
    /// realization touches every state, the recorder notes threshold `t`
    /// on all of them.
    pub fn degree_at_least(&self, t: u32) -> bool {
        assert!(t >= 1);
        if let Some(rec) = self.recorder {
            let mut rec = rec.borrow_mut();
            for q in 0..S::COUNT {
                rec.record_thresh(q, t as u64);
            }
        }
        let multiplicities: &[u32] = match &self.repr {
            CountsRepr::Dense { counts, .. } => counts,
            CountsRepr::Sparse { cnt, .. } => cnt,
        };
        let mut total = 0u64;
        for &c in multiplicities {
            total += c as u64;
            if total >= t as u64 {
                return true;
            }
        }
        false
    }

    /// Iterates over the states that occur at least once among the
    /// neighbours (a sequence of `μ_q >= 1` queries — still symmetric).
    ///
    /// Every engine-internal constructor supplies the presence list in
    /// ascending state-index order, so iteration order is canonical and
    /// identical across the interpreter, the compiled kernel (fresh or
    /// incrementally repaired), the sharded backend and the verifier.
    /// Protocols must still treat the result as an unordered set
    /// (aggregate with min/max/any, never "first wins") — the canonical
    /// order is a determinism backstop, not a licence.
    pub fn present_states(&self) -> impl Iterator<Item = S> + '_ {
        // No recorder traffic: this is a `μ_q >= 1` query on every state,
        // and threshold 1 is the recorder's baseline — recording it can
        // never change an entry. (Walking all of `S::COUNT` here used to
        // dominate exhaustive exploration of product-state protocols.)
        //
        // Both the sparse index list and a dense presence list are already
        // the ascending nonzero indices, so they share an iterator arm;
        // only a presence-less dense view must scan the full vector.
        let (listed, scan): (Option<&[u32]>, Option<&[u32]>) = match &self.repr {
            CountsRepr::Sparse { idx, .. } => (Some(idx), None),
            CountsRepr::Dense {
                presence: Some(p), ..
            } => (Some(p), None),
            CountsRepr::Dense {
                counts,
                presence: None,
            } => (None, Some(counts)),
        };
        let from_list = listed.map(|p| p.iter().map(|&i| S::from_index(i as usize)));
        let from_scan = scan.map(|counts| {
            counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, _)| S::from_index(i))
        });
        from_list
            .into_iter()
            .flatten()
            .chain(from_scan.into_iter().flatten())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum S3 {
        X,
        Y,
        Z,
    }
    impl_state_space!(S3 { X, Y, Z });

    #[test]
    fn thresh_queries() {
        let counts = [0u32, 2, 5];
        let v: NeighborView<'_, S3> = NeighborView::over(&counts);
        assert!(v.none(S3::X));
        assert!(v.some(S3::Y));
        assert!(!v.exactly_one(S3::Y));
        assert!(v.at_least(S3::Z, 5));
        assert!(!v.at_least(S3::Z, 6));
        assert!(v.fewer_than(S3::X, 1));
    }

    #[test]
    fn mod_queries() {
        let counts = [0u32, 2, 5];
        let v: NeighborView<'_, S3> = NeighborView::over(&counts);
        assert_eq!(v.count_mod(S3::Z, 3), 2);
        assert!(v.congruent(S3::Y, 0, 2));
        assert!(v.congruent(S3::Z, 0, 5));
        assert!(!v.congruent(S3::Z, 0, 4));
        assert!(v.congruent(S3::Z, 0, 1));
    }

    #[test]
    fn capped_count() {
        let counts = [0u32, 2, 5];
        let v: NeighborView<'_, S3> = NeighborView::over(&counts);
        assert_eq!(v.count_capped(S3::Z, 3), 3);
        assert_eq!(v.count_capped(S3::Y, 3), 2);
        assert_eq!(v.count_capped(S3::X, 3), 0);
    }

    #[test]
    fn degree_queries() {
        let counts = [1u32, 0, 2];
        let v: NeighborView<'_, S3> = NeighborView::over(&counts);
        assert!(v.degree_at_least(1));
        assert!(v.degree_at_least(3));
        assert!(!v.degree_at_least(4));
    }

    #[test]
    fn present_states_lists_nonzero() {
        let counts = [1u32, 0, 2];
        let v: NeighborView<'_, S3> = NeighborView::over(&counts);
        let present: Vec<S3> = v.present_states().collect();
        assert_eq!(present, vec![S3::X, S3::Z]);
    }

    #[test]
    fn recorder_captures_queries() {
        let counts = [1u32, 0, 2];
        let rec = RefCell::new(QueryRecorder::new(3));
        let v: NeighborView<'_, S3> = NeighborView::new(&counts, Some(&rec));
        let _ = v.at_least(S3::Y, 4);
        let _ = v.count_mod(S3::Z, 6);
        let _ = v.count_mod(S3::Z, 4);
        let _ = v.count_capped(S3::X, 2);
        let r = rec.borrow();
        assert_eq!(r.thresholds, vec![2, 4, 1]);
        assert_eq!(r.moduli, vec![1, 1, 12]);
    }

    #[test]
    fn recorder_merge() {
        let mut a = QueryRecorder::new(2);
        a.record_thresh(0, 3);
        a.record_mod(1, 4);
        let mut b = QueryRecorder::new(2);
        b.record_thresh(0, 2);
        b.record_mod(1, 6);
        a.merge(&b);
        assert_eq!(a.thresholds, vec![3, 1]);
        assert_eq!(a.moduli, vec![1, 12]);
    }

    #[test]
    fn sparse_view_matches_dense() {
        // The run-length form the packed kernel builds per row must
        // answer every query exactly like the dense vector it encodes.
        let counts = [0u32, 2, 5];
        let idx = [1u32, 2];
        let cnt = [2u32, 5];
        let dense: NeighborView<'_, S3> = NeighborView::over(&counts);
        let sparse: NeighborView<'_, S3> = NeighborView::new_sparse(&idx, &cnt, None);
        for q in [S3::X, S3::Y, S3::Z] {
            for t in 1..=6 {
                assert_eq!(sparse.at_least(q, t), dense.at_least(q, t));
            }
            for m in 1..=5 {
                assert_eq!(sparse.count_mod(q, m), dense.count_mod(q, m));
            }
            assert_eq!(sparse.count_capped(q, 3), dense.count_capped(q, 3));
        }
        for t in 1..=8 {
            assert_eq!(sparse.degree_at_least(t), dense.degree_at_least(t));
        }
        let a: Vec<S3> = sparse.present_states().collect();
        let b: Vec<S3> = dense.present_states().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_view_records_queries() {
        let idx = [2u32];
        let cnt = [3u32];
        let rec = RefCell::new(QueryRecorder::new(3));
        let v: NeighborView<'_, S3> = NeighborView::new_sparse(&idx, &cnt, Some(&rec));
        let _ = v.at_least(S3::Z, 4);
        let _ = v.count_mod(S3::Y, 6);
        let r = rec.borrow();
        assert_eq!(r.thresholds, vec![1, 1, 4]);
        assert_eq!(r.moduli, vec![1, 6, 1]);
    }

    #[test]
    #[should_panic(expected = "t >= 1")]
    fn zero_threshold_rejected() {
        let counts = [0u32, 0, 0];
        let v: NeighborView<'_, S3> = NeighborView::over(&counts);
        let _ = v.at_least(S3::X, 0);
    }
}
