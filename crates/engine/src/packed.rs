//! Packed per-node state mirrors for the compiled kernel.
//!
//! FSSGA protocols are *finite-state* by construction (paper §2–3): a
//! node's state is an index in `0..|Q|`, and `|Q|` is a compile-time
//! constant of the protocol. Storing one full `P::State` word per node is
//! therefore pure slack — the kernel only ever needs the *index* of a
//! neighbour's state to tally a multiset. [`PackedStates`] is that dense
//! index array at the narrowest width that fits `|Q|`:
//!
//! | `|Q|`        | representation       | bits/node |
//! |--------------|----------------------|-----------|
//! | `<= 16`      | nibble-packed `u8`   | 4         |
//! | `<= 256`     | `u8`                 | 8         |
//! | `<= 65536`   | `u16`                | 16        |
//! | otherwise    | `u32`                | 32        |
//!
//! The kernel's hot loop is a segmented CSR reduction: for each
//! evaluated node, gather the packed indices of its CSR row into a small
//! contiguous buffer, then reduce that buffer (sort + run-length tally,
//! or a tiny histogram for tabular plans). Pritchard's divide-and-conquer
//! treatment of symmetric FSAs licenses *any* regrouping of the SM
//! reduction, so batching per row is faithful by construction — and the
//! gather touches 2–8x less memory than reading full state words, which
//! is the entire win on a single-core host. [`PackedStates::gather`] is
//! written as one branchless `extend` per representation so the width
//! dispatch happens once per row, never per element, and the widening
//! loop autovectorizes.
//!
//! The mirror is maintained exactly like the kernel's CSR topology
//! mirror: encoded once at kernel construction, dual-written on every
//! commit, grown on node arrival, and re-encoded wholesale when states
//! were written out-of-band (the same `kernel_stale` events that
//! invalidate the dirty set).

use fssga_graph::NodeId;

use crate::protocol::StateSpace;

/// The width-specialized storage (see the module table).
enum Repr {
    /// Two states per byte, low nibble first. `|Q| <= 16`.
    Nibble(Vec<u8>),
    /// `|Q| <= 256`.
    Byte(Vec<u8>),
    /// `|Q| <= 65536`.
    Wide(Vec<u16>),
    /// Fallback for huge product alphabets.
    Word(Vec<u32>),
}

/// A dense array of state *indices*, one per node slot, stored at the
/// narrowest width that fits the protocol's `|Q|`.
pub struct PackedStates {
    repr: Repr,
    len: usize,
}

impl PackedStates {
    /// Packs `states[i].index()` for every slot, choosing the width from
    /// `S::COUNT`.
    pub fn encode<S: StateSpace>(states: &[S]) -> Self {
        let mut p = Self::with_width(S::COUNT);
        p.extend_from(states);
        p
    }

    /// An empty packed array sized for an alphabet of `count` states.
    fn with_width(count: usize) -> Self {
        let repr = if count <= 16 {
            Repr::Nibble(Vec::new())
        } else if count <= 1 << 8 {
            Repr::Byte(Vec::new())
        } else if count <= 1 << 16 {
            Repr::Wide(Vec::new())
        } else {
            Repr::Word(Vec::new())
        };
        Self { repr, len: 0 }
    }

    /// Re-packs every slot from `states`, keeping the allocation. Used
    /// when states were written outside the kernel (interpreter rounds,
    /// [`crate::Network::set_state`]) and the mirror must be rebuilt.
    pub fn reencode<S: StateSpace>(&mut self, states: &[S]) {
        match &mut self.repr {
            Repr::Nibble(d) => d.clear(),
            Repr::Byte(d) => d.clear(),
            Repr::Wide(d) => d.clear(),
            Repr::Word(d) => d.clear(),
        }
        self.len = 0;
        self.extend_from(states);
    }

    fn extend_from<S: StateSpace>(&mut self, states: &[S]) {
        for &s in states {
            self.push(s.index() as u32);
        }
    }

    /// Bits per node slot (4, 8, 16, or 32) — the compression the mirror
    /// achieves over full state words.
    pub fn width_bits(&self) -> u32 {
        match self.repr {
            Repr::Nibble(_) => 4,
            Repr::Byte(_) => 8,
            Repr::Wide(_) => 16,
            Repr::Word(_) => 32,
        }
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slots are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The state index of slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        debug_assert!(i < self.len);
        match &self.repr {
            Repr::Nibble(d) => ((d[i >> 1] >> ((i & 1) * 4)) & 0xF) as u32,
            Repr::Byte(d) => d[i] as u32,
            Repr::Wide(d) => d[i] as u32,
            Repr::Word(d) => d[i],
        }
    }

    /// Overwrites the state index of slot `i`.
    #[inline]
    pub fn set(&mut self, i: usize, idx: u32) {
        debug_assert!(i < self.len);
        match &mut self.repr {
            Repr::Nibble(d) => {
                debug_assert!(idx < 16);
                let shift = (i & 1) * 4;
                let b = &mut d[i >> 1];
                *b = (*b & !(0xF << shift)) | ((idx as u8) << shift);
            }
            Repr::Byte(d) => d[i] = idx as u8,
            Repr::Wide(d) => d[i] = idx as u16,
            Repr::Word(d) => d[i] = idx,
        }
    }

    /// Appends one slot (a node arrival).
    pub fn push(&mut self, idx: u32) {
        match &mut self.repr {
            Repr::Nibble(d) => {
                debug_assert!(idx < 16);
                if self.len & 1 == 0 {
                    d.push(idx as u8);
                } else {
                    let b = d.last_mut().expect("odd length implies a last byte");
                    *b |= (idx as u8) << 4;
                }
            }
            Repr::Byte(d) => d.push(idx as u8),
            Repr::Wide(d) => d.push(idx as u16),
            Repr::Word(d) => d.push(idx),
        }
        self.len += 1;
    }

    /// Gathers the state indices of `targets` (a CSR row) into `out`,
    /// widened to `u32`. One width dispatch per call; the per-element
    /// loop is branch-free.
    #[inline]
    pub fn gather(&self, targets: &[NodeId], out: &mut Vec<u32>) {
        out.clear();
        match &self.repr {
            Repr::Nibble(d) => out.extend(targets.iter().map(|&w| {
                let i = w as usize;
                ((d[i >> 1] >> ((i & 1) * 4)) & 0xF) as u32
            })),
            Repr::Byte(d) => out.extend(targets.iter().map(|&w| d[w as usize] as u32)),
            Repr::Wide(d) => out.extend(targets.iter().map(|&w| d[w as usize] as u32)),
            Repr::Word(d) => out.extend(targets.iter().map(|&w| d[w as usize])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::StateSpace;

    /// A fake alphabet of `N` states over plain indices.
    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    struct Ix<const N: usize>(u32);
    impl<const N: usize> StateSpace for Ix<N> {
        const COUNT: usize = N;
        fn index(self) -> usize {
            self.0 as usize
        }
        fn from_index(i: usize) -> Self {
            Ix(i as u32)
        }
    }

    fn roundtrip<const N: usize>(expect_bits: u32) {
        let states: Vec<Ix<N>> = (0..37u32).map(|i| Ix(i % N as u32)).collect();
        let mut p = PackedStates::encode(&states);
        assert_eq!(p.width_bits(), expect_bits);
        assert_eq!(p.len(), 37);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(p.get(i), s.0, "width {expect_bits}, slot {i}");
        }
        // Overwrite every slot with a different value and read back.
        for i in 0..p.len() {
            p.set(i, (i as u32 * 7 + 1) % N as u32);
        }
        for i in 0..p.len() {
            assert_eq!(p.get(i), (i as u32 * 7 + 1) % N as u32);
        }
        // Push growth (odd and even parity for the nibble case).
        p.push(3 % N as u32);
        p.push(5 % N as u32);
        assert_eq!(p.len(), 39);
        assert_eq!(p.get(37), 3 % N as u32);
        assert_eq!(p.get(38), 5 % N as u32);
        // Gather arbitrary targets.
        let targets: Vec<NodeId> = vec![38, 0, 7, 7, 37];
        let mut out = Vec::new();
        p.gather(&targets, &mut out);
        let want: Vec<u32> = targets.iter().map(|&t| p.get(t as usize)).collect();
        assert_eq!(out, want);
        // Re-encode restores the original mapping.
        p.reencode(&states);
        assert_eq!(p.len(), 37);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(p.get(i), s.0);
        }
    }

    #[test]
    fn widths_roundtrip() {
        roundtrip::<16>(4);
        roundtrip::<17>(8);
        roundtrip::<256>(8);
        roundtrip::<257>(16);
        roundtrip::<65536>(16);
        roundtrip::<65537>(32);
    }

    #[test]
    fn empty_is_empty() {
        let p = PackedStates::encode::<Ix<4>>(&[]);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }
}
