//! A persistent worker pool for sharded synchronous rounds.
//!
//! The sharded kernel runs one job per round: "evaluate shard `k`" for
//! `k` in `0..shards`. Spawning scoped threads per round (what the old
//! `step_parallel` did) costs tens of microseconds per round — on sparse
//! late rounds that dwarfs the evaluation itself. [`ShardPool`] instead
//! parks `threads - 1` workers on a condvar between rounds and reuses
//! them for the lifetime of the [`crate::Network`]; the calling thread
//! is always the remaining worker, so a pool of 1 runs everything
//! inline with no synchronization at all.
//!
//! Shard indices are handed out through a single shared atomic counter
//! (work stealing at shard granularity): a slow shard never blocks the
//! others, and `shards > threads` degrades gracefully. Determinism is
//! unaffected — *which* thread evaluates a shard is irrelevant because
//! shards write only to their own arenas and the caller merges arenas in
//! shard order after [`ShardPool::run`] returns.
//!
//! # Safety model
//!
//! The job closure is published to workers as a lifetime-erased raw
//! pointer. This is sound because [`ShardPool::run`] does not return
//! until every worker has finished the epoch (`active == 0`) and the
//! job slot is cleared while still under the lock — no worker can
//! observe the pointer after the borrow it was created from ends. A
//! panic inside the job on any thread is caught, the epoch still runs
//! to completion (remaining shards are drained), and the first payload
//! is re-thrown on the calling thread.

use std::any::Any;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

// Under `--cfg loom` (the CI model-checking job) every synchronization
// primitive is swapped for loom's permutation-exploring equivalent; the
// algorithm itself is identical. See `tests/loom_pool.rs`.
#[cfg(loom)]
use loom::{
    sync::{
        atomic::{AtomicUsize, Ordering},
        Arc, Condvar, Mutex,
    },
    thread::{self, JoinHandle},
};
#[cfg(not(loom))]
use std::{
    sync::{
        atomic::{AtomicUsize, Ordering},
        Arc, Condvar, Mutex,
    },
    thread::{self, JoinHandle},
};

/// The published job: a borrowed `Fn(usize) + Sync` with its lifetime
/// erased (see the module-level safety model).
#[derive(Copy, Clone)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: `Send` here really stands in for "a `&` to the pointee may be
// shared across threads": `Job` is `Copy`, so after one worker takes it
// out of the mutex-guarded slot, *every* worker (and the caller) holds a
// copy and dereferences the same pointee concurrently. That is sound on
// two conditions. (1) The pointee is `Sync` — guaranteed by the erased
// type itself and re-checked by `job_pointee_is_shareable` below, so a
// shared `&` to it is `Send`. (2) The pointee is still alive — `run`
// blocks until `active == 0` and clears the slot under the lock before
// returning, so no worker can observe the pointer after the borrow it
// was created from ends (module-level safety model).
unsafe impl Send for Job {}

/// Compile-time witness for the `Send` impl above: a shared reference to
/// the job pointee crosses threads, which is exactly `&T: Send`, i.e.
/// `T: Sync`. If the pointee type ever loses its `Sync` bound, this stops
/// compiling instead of the pool becoming silently unsound.
const _: () = {
    const fn job_pointee_is_shareable<T: ?Sized>()
    where
        for<'a> &'a T: Send,
    {
    }
    job_pointee_is_shareable::<dyn Fn(usize) + Sync>();
};

/// Coordination state guarded by the pool mutex.
struct State {
    /// Bumped once per `run`; workers use it to tell a fresh job from a
    /// spurious wakeup.
    epoch: u64,
    /// The current job, present only while an epoch is in flight.
    job: Option<Job>,
    /// Shard count of the current epoch.
    shards: usize,
    /// Workers still executing the current epoch.
    active: usize,
    /// Tells workers to exit (set by `Drop`).
    shutdown: bool,
    /// First panic payload caught during the epoch, re-thrown by `run`.
    panic: Option<Box<dyn Any + Send>>,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes parked workers when a new epoch (or shutdown) is posted.
    start: Condvar,
    /// Wakes the caller when the last worker finishes the epoch.
    done: Condvar,
    /// Next shard index to claim; reset to 0 each epoch.
    next_shard: AtomicUsize,
}

impl Shared {
    /// Claims shards off the counter and runs `f` on each until the
    /// epoch's shard supply is exhausted. Panics are caught and parked
    /// in the state so the epoch always drains.
    fn drain(&self, shards: usize, f: &(dyn Fn(usize) + Sync)) {
        loop {
            let k = self.next_shard.fetch_add(1, Ordering::Relaxed);
            if k >= shards {
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(k))) {
                let mut st = self.state.lock().unwrap();
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
        }
    }
}

fn worker(shared: Arc<Shared>) {
    let mut seen = 0u64;
    loop {
        let (job, shards) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen {
                    seen = st.epoch;
                    break (st.job.expect("live epoch always has a job"), st.shards);
                }
                st = shared.start.wait(st).unwrap();
            }
        };
        // SAFETY: `run` blocks until this worker decrements `active`,
        // so the pointee outlives this use (module-level safety model).
        let f = unsafe { &*job.0 };
        shared.drain(shards, f);
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// A fixed-size pool of parked workers executing one shard-indexed job
/// at a time (see the module docs for the design and safety model).
pub struct ShardPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ShardPool {
    /// A pool executing jobs on `threads` threads total — `threads - 1`
    /// spawned workers plus the thread that calls [`Self::run`]. A
    /// `threads` of 0 is clamped to 1 (purely inline execution).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                shards: 0,
                active: 0,
                shutdown: false,
                panic: None,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            next_shard: AtomicUsize::new(0),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker(shared))
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// Total threads participating in [`Self::run`] (spawned workers plus
    /// the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(k)` once for every `k` in `0..shards`, spread over the
    /// pool, and returns when all calls have completed. The calling
    /// thread participates, so a 1-thread pool executes every shard
    /// inline in ascending order. If any call panics, the first payload
    /// is re-thrown here after the epoch drains.
    ///
    /// Takes `&mut self`: one epoch at a time, by construction.
    pub fn run(&mut self, shards: usize, f: &(dyn Fn(usize) + Sync)) {
        if shards == 0 {
            return;
        }
        if self.workers.is_empty() {
            // Inline fast path: no epoch bookkeeping, no fences.
            self.shared.next_shard.store(0, Ordering::Relaxed);
            self.shared.drain(shards, f);
            let mut st = self.shared.state.lock().unwrap();
            if let Some(payload) = st.panic.take() {
                drop(st);
                resume_unwind(payload);
            }
            return;
        }
        // SAFETY: same fat-pointer layout; the erased borrow outlives the
        // epoch because this function blocks until `active == 0` and
        // clears the job slot before returning.
        let job = Job(unsafe {
            mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            self.shared.next_shard.store(0, Ordering::Relaxed);
            st.job = Some(job);
            st.shards = shards;
            st.active = self.workers.len();
            st.epoch += 1;
            self.shared.start.notify_all();
        }
        self.shared.drain(shards, f);
        let mut st = self.shared.state.lock().unwrap();
        while st.active > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        if let Some(payload) = st.panic.take() {
            drop(st);
            resume_unwind(payload);
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

// The unit tests drive real std primitives; under `--cfg loom` they are
// compiled out (loom primitives panic outside `loom::model`) and the
// model-checking suite in `tests/loom_pool.rs` takes over.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_shard_runs_exactly_once() {
        for threads in [1, 2, 4, 8] {
            let mut pool = ShardPool::new(threads);
            let hits: Vec<AtomicU64> = (0..13).map(|_| AtomicU64::new(0)).collect();
            pool.run(13, &|k| {
                hits[k].fetch_add(1, Ordering::Relaxed);
            });
            for (k, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "shard {k}, {threads} threads");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_epochs() {
        let mut pool = ShardPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(4, &|k| {
                total.fetch_add(k as u64 + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn zero_shards_is_a_noop() {
        let mut pool = ShardPool::new(2);
        pool.run(0, &|_| panic!("must not run"));
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let mut pool = ShardPool::new(4);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|k| {
                if k == 5 {
                    panic!("shard 5 exploded");
                }
            });
        }))
        .expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "shard 5 exploded");
        // The pool survives the panic and keeps working.
        let ran = AtomicU64::new(0);
        pool.run(4, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn zero_threads_clamps_to_inline() {
        let mut pool = ShardPool::new(0);
        assert_eq!(pool.threads(), 1);
        let order = Mutex::new(Vec::new());
        pool.run(5, &|k| order.lock().unwrap().push(k));
        // Inline execution is ascending, by construction.
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
