//! Delta-debugging minimization of failing fault schedules.
//!
//! When a campaign ends [`crate::Verdict::Incorrect`], the interesting
//! artifact is not the (possibly large, random) fault schedule that was
//! run but the smallest schedule that still breaks the protocol — usually
//! the lone critical kill the paper's sensitivity analysis predicts.
//! [`shrink_schedule`] takes the failing schedule and the deterministic
//! campaign re-run as its test function and minimizes along three axes:
//!
//! 1. **Drop events** — classic ddmin down to a 1-minimal subsequence
//!    (removing any single remaining event makes the failure vanish);
//! 2. **Advance times** — pull events earlier (`0`, `t/2`, `t-1`), since
//!    an early fault is simpler to reason about than a late one;
//! 3. **Weaken node kills** — replace `Node(v)` with a single incident
//!    `Edge(v, w)` cut at a nearby time (`t`, `t-1`, `t+1`), isolating
//!    *which* adjacency actually carried the computation.
//!
//! Candidates are adopted only when they strictly reduce the
//! lexicographic cost `(#events, #node-events, Σ times)`, so the loop
//! terminates; retarding a time by one (`t+1`, tried only inside a
//! weakening step) is paid for by the node-count drop one level up.

use fssga_graph::Graph;

use crate::faults::{FaultEvent, FaultKind};

/// The outcome of [`shrink_schedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShrinkResult {
    /// The minimized failing schedule (1-minimal under event removal).
    pub schedule: Vec<FaultEvent>,
    /// How many candidate schedules were tested.
    pub tests: usize,
}

/// Lexicographic cost: fewer events ≺ fewer node kills ≺ earlier times.
fn cost(schedule: &[FaultEvent]) -> (usize, usize, u64) {
    let nodes = schedule
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::Node(_)))
        .count();
    let times: u64 = schedule.iter().map(|e| e.time).sum();
    (schedule.len(), nodes, times)
}

/// Minimizes `initial` — a schedule for which `fails` returns `true` — to
/// a 1-minimal counterexample, using `fails` (typically a deterministic
/// [`crate::Campaign`] re-run) as the test function. `graph` supplies the
/// initial-topology adjacency for node→edge weakening and `horizon` caps
/// retarded times.
///
/// `fails(initial)` must hold; the returned schedule also satisfies
/// `fails`, and dropping any single event from it does not.
pub fn shrink_schedule(
    initial: &[FaultEvent],
    graph: &Graph,
    horizon: u64,
    mut fails: impl FnMut(&[FaultEvent]) -> bool,
) -> ShrinkResult {
    let mut tests = 0usize;
    let mut check = |s: &[FaultEvent]| {
        tests += 1;
        fails(s)
    };
    debug_assert!(check(initial), "shrink_schedule needs a failing input");
    let mut best = initial.to_vec();
    loop {
        let before = cost(&best);
        best = ddmin(best, &mut check);
        advance_times(&mut best, &mut check);
        weaken_nodes(&mut best, graph, horizon, &mut check);
        if cost(&best) >= before {
            break;
        }
    }
    ShrinkResult {
        schedule: best,
        tests,
    }
}

/// Classic ddmin: try ever-finer chunk removals until no single event can
/// be dropped. The returned schedule still fails and is 1-minimal under
/// event removal.
fn ddmin(
    mut schedule: Vec<FaultEvent>,
    check: &mut impl FnMut(&[FaultEvent]) -> bool,
) -> Vec<FaultEvent> {
    let mut chunks = 2usize;
    while schedule.len() >= 2 {
        let len = schedule.len();
        chunks = chunks.min(len);
        let chunk_size = len.div_ceil(chunks);
        let mut reduced = false;
        // Try each complement (schedule minus one chunk); reducing to a
        // bare chunk is the complement case at granularity `len`.
        for c in 0..chunks {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(len);
            if lo >= hi {
                continue;
            }
            let candidate: Vec<FaultEvent> = schedule[..lo]
                .iter()
                .chain(&schedule[hi..])
                .copied()
                .collect();
            if !candidate.is_empty() && check(&candidate) {
                schedule = candidate;
                reduced = true;
                break;
            }
        }
        if reduced {
            chunks = chunks.saturating_sub(1).max(2);
            continue;
        }
        if chunks < len {
            chunks = (chunks * 2).min(len);
        } else {
            break; // every single-event removal passed: 1-minimal
        }
    }
    schedule
}

/// Greedily pulls event times earlier (`0`, then `t/2`, then `t-1`); each
/// adoption strictly decreases the time sum.
fn advance_times(schedule: &mut Vec<FaultEvent>, check: &mut impl FnMut(&[FaultEvent]) -> bool) {
    loop {
        let mut improved = false;
        for i in 0..schedule.len() {
            let t = schedule[i].time;
            for cand in [0, t / 2, t.saturating_sub(1)] {
                if cand >= t {
                    continue;
                }
                let mut candidate = schedule.clone();
                candidate[i].time = cand;
                if check(&candidate) {
                    *schedule = candidate;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return;
        }
    }
}

/// Tries to weaken each `Node(v)` kill into a single incident edge cut at
/// a nearby time; each adoption strictly decreases the node-event count.
fn weaken_nodes(
    schedule: &mut Vec<FaultEvent>,
    graph: &Graph,
    horizon: u64,
    check: &mut impl FnMut(&[FaultEvent]) -> bool,
) {
    for i in 0..schedule.len() {
        let FaultKind::Node(v) = schedule[i].kind else {
            continue;
        };
        let t = schedule[i].time;
        let mut times = vec![t, t.saturating_sub(1)];
        if t + 1 < horizon {
            times.push(t + 1);
        }
        times.dedup();
        'weaken: for &w in graph.neighbors(v) {
            for &cand_t in &times {
                let mut candidate = schedule.clone();
                candidate[i] = FaultEvent {
                    time: cand_t,
                    kind: FaultKind::Edge(v, w),
                };
                if check(&candidate) {
                    *schedule = candidate;
                    break 'weaken;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_graph::{generators, NodeId};

    fn ev(time: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent { time, kind }
    }

    #[test]
    fn drops_irrelevant_events() {
        // Failure iff the schedule kills node 3 (any time).
        let g = generators::path(8);
        let initial: Vec<FaultEvent> = vec![
            ev(1, FaultKind::Edge(0, 1)),
            ev(2, FaultKind::Node(3)),
            ev(3, FaultKind::Edge(5, 6)),
            ev(4, FaultKind::Node(6)),
            ev(9, FaultKind::Edge(1, 2)),
        ];
        let fails = |s: &[FaultEvent]| {
            s.iter()
                .any(|e| matches!(e.kind, FaultKind::Node(3) | FaultKind::Edge(2, 3)))
        };
        let r = shrink_schedule(&initial, &g, 10, fails);
        assert_eq!(r.schedule.len(), 1);
        // Weakening emits Edge(3, w), which this predicate (matching the
        // literal Edge(2, 3) only) rejects, so the node form survives;
        // the time still advances to 0.
        assert_eq!(r.schedule[0], ev(0, FaultKind::Node(3)));
    }

    #[test]
    fn weakens_node_kill_to_edge_cut() {
        let g = generators::path(8);
        let initial = vec![ev(5, FaultKind::Node(3))];
        // Failure iff node 3's link toward 4 is severed in either form.
        let fails = |s: &[FaultEvent]| {
            s.iter().any(|e| {
                matches!(
                    e.kind,
                    FaultKind::Node(3) | FaultKind::Edge(3, 4) | FaultKind::Edge(4, 3)
                )
            })
        };
        let r = shrink_schedule(&initial, &g, 10, fails);
        assert_eq!(r.schedule.len(), 1);
        assert!(
            matches!(r.schedule[0].kind, FaultKind::Edge(3, 4)),
            "node kill should weaken to the decisive edge: {:?}",
            r.schedule
        );
        assert_eq!(r.schedule[0].time, 0, "time advanced to 0");
    }

    #[test]
    fn needs_two_events_keeps_two() {
        // Failure needs BOTH cuts (a 2-minimal counterexample).
        let g = generators::cycle(6);
        let initial = vec![
            ev(1, FaultKind::Edge(0, 1)),
            ev(2, FaultKind::Edge(2, 3)),
            ev(3, FaultKind::Edge(4, 5)),
        ];
        let fails = |s: &[FaultEvent]| {
            let a = s.iter().any(|e| e.kind == FaultKind::Edge(0, 1));
            let b = s.iter().any(|e| e.kind == FaultKind::Edge(2, 3));
            a && b
        };
        let r = shrink_schedule(&initial, &g, 10, fails);
        assert_eq!(r.schedule.len(), 2);
        for i in 0..r.schedule.len() {
            let mut dropped: Vec<FaultEvent> = r.schedule.clone();
            dropped.remove(i);
            assert!(!fails(&dropped), "1-minimality violated at {i}");
        }
    }

    #[test]
    fn large_schedule_shrinks_fast() {
        // 40 events, one decisive: ddmin's chunking must not blow up.
        let g = generators::complete(10);
        let mut initial: Vec<FaultEvent> = (0..40)
            .map(|i| {
                ev(
                    i % 7,
                    FaultKind::Edge((i % 9) as NodeId, ((i % 9) + 1) as NodeId),
                )
            })
            .collect();
        initial[23] = ev(6, FaultKind::Node(9));
        let fails = |s: &[FaultEvent]| s.iter().any(|e| matches!(e.kind, FaultKind::Node(9)));
        let r = shrink_schedule(&initial, &g, 10, fails);
        assert_eq!(r.schedule.len(), 1);
        assert!(
            r.tests < 600,
            "ddmin should need far fewer tests than brute force: {}",
            r.tests
        );
    }
}
