//! Streaming churn: long-running workloads where nodes and edges arrive
//! *and* depart while the protocol keeps executing.
//!
//! The paper's fault model (Section 1) only removes structure, and the
//! [`crate::campaign`] engine checks "reasonably correct" once, at the
//! horizon. Real deployments of self-stabilizing protocols face the
//! opposite regime: a stream of small topology events with the network
//! expected to *reconverge* after each burst. This module supplies that
//! regime in three deterministic, replayable pieces:
//!
//! * [`ChurnStream`] — a seeded, rate-configurable schedule of
//!   [`FaultEvent`]s (arrivals and departures) generated against an
//!   evolving mirror of the topology, with a line-oriented text format
//!   (`churn-stream v1`) like [`crate::CampaignTrace`]'s so streams can
//!   be archived and replayed byte-identically.
//! * The churn harness ([`run_churn_traced`] /
//!   [`run_churn_oracle_traced`]) — interleaves due events into the
//!   kernel's round loop. Arrivals flow through [`crate::Network::add_node`]
//!   / [`crate::Network::add_edge`] into the kernel's slack-growth CSR
//!   mirror, so per-event recompute work is bounded by the dirty-set
//!   scheduler instead of a from-scratch rebuild.
//! * Continuous oracle mode — a sliding window of topology snapshots
//!   checked with [`crate::reasonably_correct`] every `check_every`
//!   rounds (not only at the horizon), plus a recovery-time metric: the
//!   number of rounds from a churn burst's first event until the network
//!   is quiescent again (no state change and an empty dirty set). Both
//!   surface per round through [`Tracer::churn_round`] as
//!   [`ChurnRoundMetrics`] and aggregate into a [`ChurnReport`].
//!
//! Replay tolerance: like [`crate::FaultPlan`], events that name stale
//! structure (a dead endpoint, an already-present edge, an `add-node` id
//! that is not the next slot) are skipped silently, so a stream generated
//! against one evolution prefix stays safe to apply against another.

use fssga_graph::rng::Xoshiro256;
use fssga_graph::{DynGraph, Graph, NodeId};

use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::network::Network;
use crate::obs::{ChurnRoundMetrics, FaultSurgery, Tracer};
use crate::protocol::Protocol;
use crate::runner::CancelToken;
use crate::sensitivity::reasonably_correct;

/// Parameters for [`ChurnStream::generate`].
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// RNG seed; the stream is a pure function of `(initial topology,
    /// config)`.
    pub seed: u64,
    /// Rounds the stream spans; events carry times in `0..horizon`.
    pub horizon: u64,
    /// Mean events per round. Realized by a deterministic accumulator
    /// (`budget += rate` each round, one event drawn per whole unit), so
    /// fractional rates spread events evenly instead of clustering.
    pub rate: f64,
    /// Probability an event is an arrival (else a departure). Departures
    /// with empty candidate pools fall back to arrivals, so the realized
    /// event count tracks `rate * horizon` regardless.
    pub arrival_bias: f64,
    /// Probability an event targets an edge rather than a node.
    pub edge_bias: f64,
    /// Edges each arriving node immediately attaches to random existing
    /// nodes (each attachment is its own `add-edge` event at the same
    /// round and counts against the rate budget).
    pub attach: usize,
    /// Nodes never removed directly (their edges may still churn) — how
    /// oracle-critical nodes survive a long stream.
    pub protected: Vec<NodeId>,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            horizon: 100,
            rate: 1.0,
            arrival_bias: 0.5,
            edge_bias: 0.7,
            attach: 2,
            protected: Vec::new(),
        }
    }
}

/// A seeded, replayable schedule of arrivals and departures.
///
/// Events are held sorted by `(time, kind, ids)` — the same replay
/// contract as [`FaultPlan::new`] — so a stream is a function of its
/// event *set* and shuffled construction orders replay bit-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnStream {
    seed: u64,
    horizon: u64,
    events: Vec<FaultEvent>,
}

impl ChurnStream {
    /// Builds a stream from explicit events (sorted on entry).
    pub fn from_events(seed: u64, horizon: u64, mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.time, e.kind));
        Self {
            seed,
            horizon,
            events,
        }
    }

    /// The seed the stream was generated from (also seeds the round-coin
    /// stream when the harness replays it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rounds the stream spans.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// All events, sorted by `(time, kind, ids)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream carries no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The stream as a [`FaultPlan`] (for the campaign engine or
    /// `fssga-chaos` replay).
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.events.clone())
    }

    /// Generates a stream against `graph`. Events are drawn
    /// chronologically against an evolving mirror of the topology, so
    /// departures may target earlier arrivals and `add-node` ids increase
    /// with time. Candidate pools use lazy deletion (stale entries are
    /// dropped when drawn), so generation is near-linear in the event
    /// count even on large graphs.
    pub fn generate(graph: &DynGraph, cfg: &ChurnConfig) -> Self {
        let mut mirror = graph.clone();
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        let mut alive: Vec<NodeId> = mirror.alive_nodes().collect();
        let mut edges: Vec<(NodeId, NodeId)> = mirror.edges().collect();
        let mut events = Vec::new();
        let mut budget = 0.0f64;
        for round in 0..cfg.horizon {
            budget += cfg.rate;
            while budget >= 1.0 {
                let emitted = Self::emit_one(
                    &mut mirror,
                    &mut alive,
                    &mut edges,
                    cfg,
                    round,
                    &mut events,
                    &mut rng,
                );
                budget -= emitted as f64;
            }
        }
        Self::from_events(cfg.seed, cfg.horizon, events)
    }

    /// Draws one event (arrival or departure) at `round`, applies it to
    /// the mirror, and appends it (plus any attachment edges) to
    /// `events`. Returns the number of events emitted (>= 1).
    fn emit_one(
        mirror: &mut DynGraph,
        alive: &mut Vec<NodeId>,
        edges: &mut Vec<(NodeId, NodeId)>,
        cfg: &ChurnConfig,
        round: u64,
        events: &mut Vec<FaultEvent>,
        rng: &mut Xoshiro256,
    ) -> usize {
        if !rng.gen_bool(cfg.arrival_bias) {
            if let Some(kind) = Self::draw_departure(mirror, alive, edges, cfg, rng) {
                events.push(FaultEvent { time: round, kind });
                return 1;
            }
            // Nothing left to remove: arrive instead so the realized
            // event count still tracks the configured rate.
        }
        Self::emit_arrival(mirror, alive, edges, cfg, round, events, rng)
    }

    /// One arrival: an `add-edge` between a random non-adjacent alive
    /// pair when the `edge_bias` coin says edge (and such a pair is found
    /// within a few tries), else a fresh node plus up to `attach`
    /// attachment edges.
    fn emit_arrival(
        mirror: &mut DynGraph,
        alive: &mut Vec<NodeId>,
        edges: &mut Vec<(NodeId, NodeId)>,
        cfg: &ChurnConfig,
        round: u64,
        events: &mut Vec<FaultEvent>,
        rng: &mut Xoshiro256,
    ) -> usize {
        if rng.gen_bool(cfg.edge_bias) && mirror.n_alive() >= 2 {
            for _ in 0..8 {
                let (Some(u), Some(v)) = (
                    Self::peek_alive(mirror, alive, rng),
                    Self::peek_alive(mirror, alive, rng),
                ) else {
                    break;
                };
                if u != v && !mirror.has_edge(u, v) {
                    let (u, v) = (u.min(v), u.max(v));
                    mirror.add_edge(u, v);
                    edges.push((u, v));
                    events.push(FaultEvent {
                        time: round,
                        kind: FaultKind::AddEdge(u, v),
                    });
                    return 1;
                }
            }
            // Dense neighbourhood — fall through to a node arrival.
        }
        let v = mirror.add_node();
        alive.push(v);
        events.push(FaultEvent {
            time: round,
            kind: FaultKind::AddNode(v),
        });
        let mut emitted = 1;
        for _ in 0..cfg.attach {
            for _ in 0..8 {
                let Some(w) = Self::peek_alive(mirror, alive, rng) else {
                    break;
                };
                if w != v && !mirror.has_edge(v, w) {
                    let (a, b) = (v.min(w), v.max(w));
                    mirror.add_edge(a, b);
                    edges.push((a, b));
                    events.push(FaultEvent {
                        time: round,
                        kind: FaultKind::AddEdge(a, b),
                    });
                    emitted += 1;
                    break;
                }
            }
        }
        emitted
    }

    /// One departure drawn from the lazy pools; `None` when both pools
    /// are exhausted (or every remaining node is protected).
    fn draw_departure(
        mirror: &mut DynGraph,
        alive: &mut Vec<NodeId>,
        edges: &mut Vec<(NodeId, NodeId)>,
        cfg: &ChurnConfig,
        rng: &mut Xoshiro256,
    ) -> Option<FaultKind> {
        let order: [bool; 2] = if rng.gen_bool(cfg.edge_bias) {
            [true, false]
        } else {
            [false, true]
        };
        for want_edge in order {
            if want_edge {
                if let Some((u, v)) = Self::take_edge(mirror, edges, rng) {
                    mirror.remove_edge(u, v);
                    return Some(FaultKind::Edge(u, v));
                }
            } else if let Some(v) = Self::take_node(mirror, alive, &cfg.protected, rng) {
                mirror.remove_node(v);
                return Some(FaultKind::Node(v));
            }
        }
        None
    }

    /// A random currently-live edge from the pool, dropping stale
    /// entries as they are drawn.
    fn take_edge(
        mirror: &DynGraph,
        edges: &mut Vec<(NodeId, NodeId)>,
        rng: &mut Xoshiro256,
    ) -> Option<(NodeId, NodeId)> {
        while !edges.is_empty() {
            let i = rng.gen_index(edges.len());
            let (u, v) = edges.swap_remove(i);
            if mirror.has_edge(u, v) {
                return Some((u, v));
            }
        }
        None
    }

    /// A random unprotected alive node, removed from the pool.
    fn take_node(
        mirror: &DynGraph,
        alive: &mut Vec<NodeId>,
        protected: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> Option<NodeId> {
        let mut protected_hits = 0;
        while !alive.is_empty() && protected_hits < 16 {
            let i = rng.gen_index(alive.len());
            let v = alive[i];
            if !mirror.is_alive(v) {
                alive.swap_remove(i);
                continue;
            }
            if protected.contains(&v) {
                protected_hits += 1;
                continue;
            }
            alive.swap_remove(i);
            return Some(v);
        }
        None
    }

    /// A random alive node, left in the pool (stale entries dropped).
    fn peek_alive(
        mirror: &DynGraph,
        alive: &mut Vec<NodeId>,
        rng: &mut Xoshiro256,
    ) -> Option<NodeId> {
        while !alive.is_empty() {
            let i = rng.gen_index(alive.len());
            let v = alive[i];
            if mirror.is_alive(v) {
                return Some(v);
            }
            alive.swap_remove(i);
        }
        None
    }

    /// Serializes to the stable `churn-stream v1` line format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("churn-stream v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("horizon {}\n", self.horizon));
        for e in &self.events {
            out.push_str(&format!("event {} {}\n", e.time, e.kind.to_trace_fields()));
        }
        out
    }

    /// Parses [`Self::to_text`] output.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("churn-stream v1") {
            return Err("missing 'churn-stream v1' header".into());
        }
        let mut seed = None;
        let mut horizon = None;
        let mut events = Vec::new();
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("seed") => {
                    seed = Some(
                        parts
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or("bad seed line")?,
                    );
                }
                Some("horizon") => {
                    horizon = Some(
                        parts
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or("bad horizon line")?,
                    );
                }
                Some("event") => {
                    let time: u64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("bad event time in {line:?}"))?;
                    let kind = FaultKind::from_trace_fields(&mut parts)
                        .ok_or_else(|| format!("bad event kind in {line:?}"))?;
                    events.push(FaultEvent { time, kind });
                }
                Some(other) => return Err(format!("unknown line {other:?}")),
                None => {}
            }
        }
        Ok(Self::from_events(
            seed.ok_or("missing seed")?,
            horizon.ok_or("missing horizon")?,
            events,
        ))
    }
}

/// Harness knobs for [`run_churn_oracle_traced`].
#[derive(Clone, Debug)]
pub struct ChurnOptions {
    /// Sliding-window length: how many recent post-round topology
    /// snapshots the continuous oracle may match against (the streaming
    /// analogue of the campaign's snapshot chain).
    pub window: usize,
    /// Oracle cadence in rounds (`1` = every round). `0` disables the
    /// oracle and snapshotting entirely.
    pub check_every: u64,
    /// Cooperative cancellation: when the token fires, the harness stops
    /// before applying the next round's events (the same round-boundary
    /// contract as [`crate::Runner`]'s — see [`CancelToken`]). The
    /// report then covers only the rounds actually executed
    /// (`report.rounds < stream.horizon()`).
    pub cancel: Option<CancelToken>,
}

impl Default for ChurnOptions {
    fn default() -> Self {
        Self {
            window: 4,
            check_every: 1,
            cancel: None,
        }
    }
}

/// Aggregate outcome of a churn run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChurnReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Arrival events applied (`add-node` / `add-edge`).
    pub arrivals: u64,
    /// Departure events applied (`node` / `edge`).
    pub departures: u64,
    /// Scheduled events skipped as stale (dead endpoints, duplicate
    /// edges, non-fresh `add-node` ids).
    pub skipped: u64,
    /// Node evaluations performed across the run — the total recompute
    /// work.
    pub activations: u64,
    /// Evaluations that changed a state.
    pub changes: u64,
    /// One sample per reconverged burst: rounds from the burst's first
    /// event until quiescence (no change, empty dirty set).
    pub recoveries: Vec<u64>,
    /// Continuous-oracle checks taken.
    pub oracle_checks: u64,
    /// Checks where no window snapshot matched the extracted answer.
    pub oracle_failures: u64,
    /// Alive nodes at the end of the run.
    pub final_alive: usize,
    /// Live edges at the end of the run.
    pub final_edges: usize,
}

impl ChurnReport {
    /// Total events applied.
    pub fn events(&self) -> u64 {
        self.arrivals + self.departures
    }

    /// Mean node evaluations per applied event — the quantity
    /// `BENCH_churn.json` compares against a from-scratch rebuild (which
    /// costs ~n evaluations per event).
    pub fn work_per_event(&self) -> f64 {
        if self.events() == 0 {
            0.0
        } else {
            self.activations as f64 / self.events() as f64
        }
    }

    /// The `q`-quantile (0.0..=1.0) of the recovery-time samples, 0 when
    /// none were collected.
    pub fn recovery_quantile(&self, q: f64) -> u64 {
        if self.recoveries.is_empty() {
            return 0;
        }
        let mut sorted = self.recoveries.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }
}

/// Runs `stream` against `net` on the compiled kernel with no oracle:
/// due events are applied before each round, arriving nodes start in the
/// state `init` returns, and one [`ChurnRoundMetrics`] is emitted per
/// round. See [`run_churn_oracle_traced`] for the continuous-oracle
/// variant.
pub fn run_churn_traced<P: Protocol, T: Tracer>(
    net: &mut Network<P>,
    stream: &ChurnStream,
    init: impl FnMut(NodeId) -> P::State,
    tracer: &mut T,
) -> ChurnReport {
    let opts = ChurnOptions {
        window: 0,
        check_every: 0,
        cancel: None,
    };
    run_churn_oracle_traced(
        net,
        stream,
        &opts,
        init,
        |_| -> Option<()> { None },
        |_| (),
        tracer,
    )
}

/// [`run_churn_traced`] with continuous-oracle mode: every
/// `opts.check_every` rounds the harness extracts the network's current
/// `answer` and accepts it if it matches `oracle` on *any* snapshot in
/// the sliding window of recent topologies — the streaming form of the
/// paper's "reasonably correct" criterion ([`reasonably_correct`]).
/// `answer` may return `None` (no answer formed yet); such rounds are
/// not counted as checks.
///
/// Recovery times are measured per burst: when one or more events apply
/// in a round, a burst opens (if none is outstanding); it closes at the
/// first subsequent round that changes no state and leaves the dirty set
/// empty, recording `close_round - open_round + 1` rounds.
pub fn run_churn_oracle_traced<P: Protocol, A: PartialEq, T: Tracer>(
    net: &mut Network<P>,
    stream: &ChurnStream,
    opts: &ChurnOptions,
    mut init: impl FnMut(NodeId) -> P::State,
    mut answer: impl FnMut(&Network<P>) -> Option<A>,
    mut oracle: impl FnMut(&Graph) -> A,
    tracer: &mut T,
) -> ChurnReport {
    let mut rng = Xoshiro256::seed_from_u64(stream.seed);
    let mut report = ChurnReport::default();
    let mut window: Vec<Graph> = Vec::new();
    let mut cursor = 0usize;
    let mut burst: Option<u64> = None;
    let events = stream.events();
    let trace = tracer.enabled();

    for round in 0..stream.horizon {
        if opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            break;
        }
        let mut arrivals = 0u64;
        let mut departures = 0u64;
        while cursor < events.len() && events[cursor].time <= round {
            let e = events[cursor];
            cursor += 1;
            let applied = match e.kind {
                FaultKind::Edge(u, v) => {
                    let ok = net.remove_edge(u, v);
                    departures += ok as u64;
                    ok
                }
                FaultKind::Node(v) => {
                    let ok = net.remove_node(v);
                    departures += ok as u64;
                    ok
                }
                FaultKind::AddNode(v) => {
                    let fresh = v as usize == net.n();
                    if fresh {
                        net.add_node(init(v));
                        arrivals += 1;
                    }
                    fresh
                }
                FaultKind::AddEdge(u, v) => {
                    let ok = net.add_edge(u, v);
                    arrivals += ok as u64;
                    ok
                }
            };
            if !applied {
                report.skipped += 1;
            } else if trace {
                tracer.fault(&FaultSurgery {
                    round,
                    kind: e.kind,
                });
            }
        }
        if arrivals + departures > 0 && burst.is_none() {
            burst = Some(round);
        }

        let round_seed = if P::RANDOMNESS > 1 { rng.next_u64() } else { 0 };
        let before_activations = net.metrics.activations;
        let before_changes = net.metrics.changes;
        let changed = net.sync_step_kernel_seeded_traced(round_seed, tracer);
        let activations = net.metrics.activations - before_activations;
        let changes = net.metrics.changes - before_changes;

        let quiescent = changed == 0 && net.kernel().is_none_or(|k| k.dirty_count() == 0);
        let recovered_in = match burst {
            Some(opened) if quiescent => {
                burst = None;
                let dt = round - opened + 1;
                report.recoveries.push(dt);
                Some(dt)
            }
            _ => None,
        };

        let mut verdict = None;
        if opts.check_every > 0 {
            window.push(net.graph().snapshot());
            if window.len() > opts.window.max(1) {
                window.remove(0);
            }
            if (round + 1) % opts.check_every == 0 {
                if let Some(ans) = answer(net) {
                    let ok = reasonably_correct(&window, &ans, &mut oracle);
                    report.oracle_checks += 1;
                    report.oracle_failures += u64::from(!ok);
                    verdict = Some(ok);
                }
            }
        }

        report.rounds += 1;
        report.arrivals += arrivals;
        report.departures += departures;
        report.activations += activations;
        report.changes += changes;

        if trace {
            tracer.churn_round(&ChurnRoundMetrics {
                round: net.metrics.rounds,
                arrivals,
                departures,
                alive: net.graph().n_alive() as u64,
                edges: net.graph().m() as u64,
                activations,
                changes,
                recovered_in,
                oracle: verdict,
            });
        }
    }

    report.final_alive = net.graph().n_alive();
    report.final_edges = net.graph().m();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use crate::obs::RoundLog;
    use crate::view::NeighborView;
    use fssga_graph::generators;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Unit {
        Only,
    }
    impl_state_space!(Unit { Only });

    struct Idle;
    impl Protocol for Idle {
        type State = Unit;
        fn transition(&self, own: Unit, _n: &NeighborView<'_, Unit>, _c: u32) -> Unit {
            own
        }
    }

    fn cfg(seed: u64) -> ChurnConfig {
        ChurnConfig {
            seed,
            horizon: 60,
            rate: 1.5,
            ..ChurnConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let g = DynGraph::from_graph(&generators::grid(4, 4));
        let a = ChurnStream::generate(&g, &cfg(7));
        let b = ChurnStream::generate(&g, &cfg(7));
        assert_eq!(a, b);
        let c = ChurnStream::generate(&g, &cfg(8));
        assert_ne!(a.events(), c.events(), "seed must matter");
    }

    #[test]
    fn rate_accumulator_realizes_the_budget() {
        // horizon * rate = 200 units of budget; every draw consumes at
        // least one and at most 1 + attach (a node arrival plus its
        // attachment edges), so the overshoot is bounded by one draw.
        let g = DynGraph::from_graph(&generators::grid(5, 5));
        let attach = 2;
        let stream = ChurnStream::generate(
            &g,
            &ChurnConfig {
                seed: 3,
                horizon: 100,
                rate: 2.0,
                attach,
                ..ChurnConfig::default()
            },
        );
        let n = stream.len();
        assert!(
            (200..=200 + attach).contains(&n),
            "expected ~200 events, got {n}"
        );
        assert!(stream.events().iter().all(|e| e.time < 100));
    }

    #[test]
    fn protected_nodes_survive_generation() {
        let g = DynGraph::from_graph(&generators::cycle(8));
        let stream = ChurnStream::generate(
            &g,
            &ChurnConfig {
                seed: 11,
                horizon: 80,
                rate: 1.0,
                arrival_bias: 0.2,
                protected: vec![0, 1],
                ..ChurnConfig::default()
            },
        );
        for e in stream.events() {
            if let FaultKind::Node(v) = e.kind {
                assert!(v != 0 && v != 1, "protected node {v} scheduled to die");
            }
        }
    }

    #[test]
    fn text_round_trips() {
        let g = DynGraph::from_graph(&generators::grid(4, 4));
        let stream = ChurnStream::generate(&g, &cfg(19));
        assert!(!stream.is_empty());
        let text = stream.to_text();
        assert!(text.starts_with("churn-stream v1\nseed 19\nhorizon 60\n"));
        let parsed = ChurnStream::from_text(&text).unwrap();
        assert_eq!(parsed, stream);
        assert!(ChurnStream::from_text("nope").is_err());
        assert!(ChurnStream::from_text("churn-stream v1\nseed 1\n").is_err());
        assert!(
            ChurnStream::from_text("churn-stream v1\nseed 1\nhorizon 2\nevent 0 frob 3\n").is_err()
        );
    }

    #[test]
    fn harness_applies_stream_and_tracks_recovery() {
        let g = generators::grid(4, 4);
        let mut net = Network::new_compiled(&g, Idle, |_| Unit::Only);
        let stream = ChurnStream::generate(net.graph(), &cfg(23));
        let mut log = RoundLog::default();
        let report = run_churn_traced(&mut net, &stream, |_| Unit::Only, &mut log);
        assert_eq!(report.rounds, stream.horizon());
        assert_eq!(log.churns.len() as u64, report.rounds);
        assert!(report.events() > 0, "stream must apply events");
        assert_eq!(
            report.events() + report.skipped,
            stream.len() as u64,
            "every event is either applied or accounted as skipped"
        );
        // Idle never changes state, so every burst recovers (the dirty
        // set drains in one round) and the samples are all 1.
        assert!(!report.recoveries.is_empty());
        assert!(report.recoveries.iter().all(|&r| r == 1));
        assert_eq!(report.recovery_quantile(0.5), 1);
        assert_eq!(report.final_alive, net.graph().n_alive());
        // Surgery events mirror the applied arrivals and departures.
        assert_eq!(log.faults.len() as u64, report.events());
        // No oracle: every per-round verdict is absent.
        assert!(log.churns.iter().all(|c| c.oracle.is_none()));
        let applied: u64 = log.churns.iter().map(|c| c.arrivals + c.departures).sum();
        assert_eq!(applied, report.events());
    }

    #[test]
    fn continuous_oracle_checks_every_round() {
        let g = generators::grid(3, 3);
        let mut net = Network::new_compiled(&g, Idle, |_| Unit::Only);
        let stream = ChurnStream::generate(net.graph(), &cfg(31));
        let mut log = RoundLog::default();
        let opts = ChurnOptions::default();
        // An oracle that recomputes the current edge count: matches the
        // freshest window snapshot by construction (snapshots preserve
        // live edges exactly), so every check passes.
        let report = run_churn_oracle_traced(
            &mut net,
            &stream,
            &opts,
            |_| Unit::Only,
            |net| Some(net.graph().m()),
            |g| g.m(),
            &mut log,
        );
        assert_eq!(report.oracle_checks, report.rounds);
        assert_eq!(report.oracle_failures, 0);
        assert!(log.churns.iter().all(|c| c.oracle == Some(true)));

        // A constantly-wrong answer fails every check.
        let mut net = Network::new_compiled(&g, Idle, |_| Unit::Only);
        let report = run_churn_oracle_traced(
            &mut net,
            &stream,
            &opts,
            |_| Unit::Only,
            |_| Some(usize::MAX),
            |g| g.m(),
            &mut crate::obs::NullTracer,
        );
        assert_eq!(report.oracle_failures, report.oracle_checks);
        assert!(report.oracle_checks > 0);
    }

    #[test]
    fn cancellation_stops_at_a_round_boundary() {
        let g = generators::grid(4, 4);
        let mut net = Network::new_compiled(&g, Idle, |_| Unit::Only);
        let stream = ChurnStream::generate(net.graph(), &cfg(41));
        let token = CancelToken::new();
        token.cancel(); // fires before the first round
        let opts = ChurnOptions {
            window: 0,
            check_every: 0,
            cancel: Some(token),
        };
        let report = run_churn_oracle_traced(
            &mut net,
            &stream,
            &opts,
            |_| Unit::Only,
            |_| -> Option<()> { None },
            |_| (),
            &mut crate::obs::NullTracer,
        );
        assert_eq!(report.rounds, 0, "pre-fired token stops before round 0");
        assert_eq!(report.events(), 0, "no events applied after cancellation");
    }

    #[test]
    fn oracle_cadence_is_respected() {
        let g = generators::grid(3, 3);
        let mut net = Network::new_compiled(&g, Idle, |_| Unit::Only);
        let stream = ChurnStream::generate(net.graph(), &cfg(37));
        let opts = ChurnOptions {
            window: 4,
            check_every: 10,
            cancel: None,
        };
        let report = run_churn_oracle_traced(
            &mut net,
            &stream,
            &opts,
            |_| Unit::Only,
            |net| Some(net.graph().m()),
            |g| g.m(),
            &mut crate::obs::NullTracer,
        );
        assert_eq!(report.oracle_checks, stream.horizon() / 10);
    }
}
