//! Execution engine for FSSGA networks (Section 3.4: "running" an
//! algorithm).
//!
//! The engine's central design decision is that protocol code **cannot see
//! raw neighbour lists**. A node activation hands the protocol a
//! [`NeighborView`] that answers only the questions a mod-thresh program
//! could ask — `μ_q ≡ r (mod m)` and `μ_q >= t` — so any protocol written
//! against this crate is an SM function of its neighbour multiset *by
//! construction* (properties S0–S2 of the paper). A recording mode
//! captures which moduli and thresholds a protocol actually uses, and
//! [`compile`] turns a protocol into a bona fide
//! [`fssga_core::ProbFssga`] whose behaviour is cross-checked against the
//! native implementation.
//!
//! Components:
//!
//! * [`protocol`] — the [`Protocol`] and [`StateSpace`] traits.
//! * [`view`] — the restricted [`NeighborView`] and its recorder.
//! * [`network`] — graph + per-node states + O(deg) activation tally.
//! * [`runner`] — the unified [`Runner`] facade: one builder covering
//!   synchronous rounds, the asynchronous activation policies of Section
//!   3.4 (uniform-random, round-robin sweeps, random-permutation sweeps),
//!   fully adversarial orders, and engine selection (interpreter vs
//!   compiled kernel).
//! * [`kernel`] — the compiled execution path: a [`PackedStates`] index
//!   mirror gathered row-by-row over CSR adjacency (batched histogram /
//!   run-length reductions instead of per-neighbour fold chains), dense
//!   transition tables over `StateSpace::index`, and a dirty-set
//!   synchronous scheduler.
//! * [`packed`] — the width-specialized per-node state-index array (4,
//!   8, 16, or 32 bits per node, chosen from `|Q|`) behind the kernel's
//!   segmented reductions.
//! * [`scheduler`] — the deprecated pre-[`Runner`] entry points
//!   ([`SyncScheduler`], [`AsyncScheduler`]), kept as thin wrappers.
//! * [`parallel`] (feature `parallel`, default on) — a multi-threaded
//!   interpreter step that is bit-identical to the sequential one
//!   (per-round coin streams are derived from `(round seed, node id)`,
//!   not from thread interleaving).
//! * [`pool`] (feature `parallel`) — the persistent [`ShardPool`] behind
//!   the kernel's sharded rounds: workers parked between rounds, shard
//!   indices handed out through one atomic counter. Select the backend
//!   with [`Runner::threads`] / [`Engine::Sharded`]; per-shard load is
//!   observable through [`ShardRoundMetrics`] events.
//! * [`faults`] — timed decreasing-benign fault plans (Section 1).
//! * [`sensitivity`] — the Section 2 k-sensitivity harness: critical sets,
//!   the [`Sensitive`] trait, the empirical single-fault sweep, and
//!   "reasonably correct" verdicts.
//! * [`campaign`] — the deterministic fault-campaign engine: declarative
//!   [`Campaign`]s, replayable [`CampaignTrace`]s, automatic snapshot
//!   chains.
//! * [`churn`] — the streaming churn engine: seeded, rate-configurable
//!   [`ChurnStream`]s of arrivals *and* departures interleaved into the
//!   kernel's round loop, with a continuous sliding-window oracle and
//!   per-burst recovery-time metrics ([`ChurnRoundMetrics`]).
//! * [`shrink`] — delta-debugging minimization of failing fault schedules
//!   to 1-minimal counterexamples.
//! * [`obs`] — the zero-cost-when-disabled observability layer: the
//!   [`Tracer`] trait, per-round [`RoundMetrics`], and the built-in
//!   [`Counters`] / [`JsonlTrace`] sinks.
//! * [`interp`] — run a table-level [`fssga_core::ProbFssga`] directly.
//! * [`compile`] — protocol → mod-thresh FSSGA extraction.

// Unsafe policy: the engine is the only workspace crate allowed to
// contain `unsafe`, and only in the [`pool`] module (the lifetime-erased
// job pointer of the sharded kernel). Everything else is checked Rust;
// the clippy `undocumented_unsafe_blocks` workspace lint additionally
// requires a `// SAFETY:` comment on every block that remains.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod churn;
pub mod compile;
pub mod faults;
pub mod history;
pub mod interp;
pub mod kernel;
pub mod network;
pub mod obs;
pub mod packed;
#[cfg(feature = "parallel")]
pub mod parallel;
#[cfg(feature = "parallel")]
#[allow(unsafe_code)]
pub mod pool;
pub mod protocol;
pub mod runner;
pub mod scheduler;
pub mod sensitivity;
pub mod shrink;
pub mod view;

/// Deterministic RNG, re-exported from the graph substrate so that the
/// whole workspace draws from one generator family.
pub mod rng {
    pub use fssga_graph::rng::{SplitMix64, Xoshiro256};
}

pub use campaign::{Campaign, CampaignOutcome, CampaignTrace, RunPolicy};
pub use churn::{
    run_churn_oracle_traced, run_churn_traced, ChurnConfig, ChurnOptions, ChurnReport, ChurnStream,
};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use history::History;
pub use kernel::{CompiledKernel, DirtySchedule, KernelPlan};
pub use network::{Metrics, Network};
pub use obs::{
    ChannelTrace, ChurnRoundMetrics, Counters, FaultSurgery, JsonlTrace, NullTracer, RoundLog,
    RoundMetrics, RunMetrics, ShardRoundMetrics, Tee, Tracer,
};
pub use packed::PackedStates;
#[cfg(feature = "parallel")]
pub use pool::ShardPool;
pub use protocol::{Protocol, StateSpace};
pub use runner::{Budget, CancelToken, Engine, Policy, RunReport, Runner};
pub use scheduler::{AsyncPolicy, AsyncScheduler, SyncScheduler};
#[cfg(feature = "parallel")]
pub use sensitivity::sweep_single_faults_parallel;
pub use sensitivity::{
    reasonably_correct, sweep_single_faults, FaultInjector, Sensitive, SensitiveProtocol,
    SensitivityClass, SensitivityReport, Verdict,
};
pub use shrink::{shrink_schedule, ShrinkResult};
pub use view::NeighborView;
