//! The compiled execution path: packed-state batched reductions + CSR
//! adjacency + a dirty-set synchronous scheduler.
//!
//! The interpreter path ([`crate::network`]) re-tallies every
//! neighbourhood into a scratch multiplicity vector and calls the
//! protocol's `transition` closure per activation. Theorem 3.7 says that
//! closure is an SM function over a *finite* abstraction of the
//! multiset — each state's count only matters up to a threshold bound `B`
//! and modulo a period `M`. [`CompiledKernel`] exploits this twice:
//!
//! 1. **Tabular plan** — when the abstract count space is small
//!    (`(B + M)^|Q|` within budget), the whole round becomes a batched
//!    reduction: histogram the row's packed state indices into a tiny
//!    stack array, map each count to its class digit with `class_of`,
//!    and look the digit-vector accumulator up in a `trans` table
//!    (`(own state, coin, accumulator) → new state`). No branches, no
//!    protocol code, no serially-dependent table loads on the hot path.
//!    Count classes commute across states, so the histogram form equals
//!    the one-neighbour-at-a-time left fold by construction — this is
//!    the divide-and-conquer regrouping of symmetric-FSA reductions.
//! 2. **Direct plan** — when the state space is too large to tabulate
//!    (census sketches, distance labels), the kernel gathers the row's
//!    packed indices into a small contiguous buffer, sorts it, and
//!    run-length-encodes it into a *sparse* [`NeighborView`] — no
//!    `|Q|`-length scratch vector in the loop, no per-activation
//!    allocation, no `DynGraph` pointer chasing. Very long rows fall
//!    back to the dense scratch tally, where one O(len) scatter beats
//!    an O(len log len) sort.
//!
//! Both plans read neighbour states from a [`PackedStates`] mirror — a
//! 4/8/16/32-bit index array chosen from `|Q|` — so the inner gather
//! touches a fraction of the memory that full state words would, which
//! on a single-core host is where the round time goes.
//!
//! On top of either plan sits a **dirty-set scheduler** (deterministic
//! protocols only): a node is re-evaluated in round `t + 1` only if its
//! own state or a neighbour's state changed in round `t`, or a fault
//! touched its neighbourhood. The invariant is that every *clean* node is
//! at a local fixpoint — `transition(σ(v), μ(v), 0) == σ(v)` — which is
//! preserved because any event that could break it (a neighbour change, an
//! edge/node removal, an out-of-band state write) marks the node dirty.
//! Skipped nodes would not have changed, so per-round *change* counts are
//! bit-identical to the interpreter; per-round *activation* counts are
//! not (that is the point) and [`crate::network::Metrics`] documents the
//! difference.
//!
//! On top of both sits the **sharded round** (`parallel` feature): node
//! ids are split into contiguous, degree-weighted shards
//! ([`fssga_graph::Partition`]), each shard evaluates into its own
//! arena (pending buffer, scratch vector, counters — no contention on
//! any global structure), and the committing thread concatenates arenas
//! in ascending shard order. Because shards are contiguous and the
//! worklist is sorted, that concatenation *is* the sequential
//! evaluation order, and coins come from
//! [`round_coin`]`(round_seed, v, r)` — never from thread interleaving —
//! so results are bit-identical to the sequential kernel for any thread
//! count. Threads come from a persistent [`crate::ShardPool`], parked
//! between rounds.

use std::cell::RefCell;
use std::marker::PhantomData;

use fssga_graph::NodeId;

use crate::network::{round_coin, Metrics, Network};
use crate::obs::{NullTracer, RoundMetrics, Tracer};
use crate::packed::PackedStates;
use crate::protocol::{Protocol, StateSpace};
use crate::view::{NeighborView, QueryRecorder};

#[cfg(feature = "parallel")]
use std::sync::Mutex;

#[cfg(feature = "parallel")]
use fssga_graph::Partition;

#[cfg(feature = "parallel")]
use crate::obs::ShardRoundMetrics;
#[cfg(feature = "parallel")]
use crate::pool::ShardPool;

/// Largest abstract-count space `(B + M)^|Q|` the tabular plan will
/// enumerate. Beyond this the kernel falls back to the direct plan.
const ACC_BUDGET: u64 = 1 << 12;

/// Largest total table size the tabular plan will materialize (the
/// historical fold + trans budget; kept unchanged so plan selection is
/// stable even though the fold table itself gave way to per-row
/// histograms).
const ENTRY_BUDGET: u64 = 1 << 22;

/// How many times table construction re-runs bound discovery before
/// giving up on the tabular plan.
const DISCOVERY_ROUNDS: usize = 8;

/// Smallest worklist worth waking the shard pool for. Below this the
/// sharded step evaluates inline on the calling thread (same canonical
/// order, so the trajectory is unchanged — sparse late rounds just skip
/// the wakeup latency).
#[cfg(feature = "parallel")]
const SHARD_MIN_WORK: usize = 256;

/// Rows up to this length are reduced by insertion sort (branch-light,
/// no recursion) before run-length encoding; longer rows use
/// `sort_unstable`.
const SMALL_SORT: usize = 32;

/// Rows longer than this skip the sort+RLE path and tally into the dense
/// `|Q|`-length scratch vector instead: one O(len) scatter beats an
/// O(len log len) sort once a hub row is big enough.
const DENSE_MIN: usize = 128;

/// Which evaluation plan a [`CompiledKernel`] ended up with.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum KernelPlan {
    /// Dense fold/trans tables over the abstract count space.
    Tabular,
    /// CSR tally into a reusable scratch vector + native `transition`.
    Direct,
}

/// How [`CompiledKernel::with_schedule`] decides whether to run the
/// dirty-set scheduler.
///
/// The dirty set is sound only for deterministic protocols
/// (`P::RANDOMNESS <= 1`): a probabilistic node draws a fresh coin every
/// round, so a "clean" node is *not* at a local fixpoint and skipping it
/// would change the trajectory. That precondition is enforced with a
/// hard check at kernel construction, not by convention.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DirtySchedule {
    /// Use the dirty set iff the protocol is deterministic (the default).
    Auto,
    /// Require the dirty set; **panics** at construction if the protocol
    /// is probabilistic.
    Forced,
    /// Re-evaluate every node every round regardless of determinism.
    Disabled,
}

/// Per-evaluation-pass counters, folded into [`RoundMetrics`] by the
/// traced steppers. All-zero when tracing is disabled (the hot loops
/// skip the bookkeeping entirely).
#[derive(Copy, Clone, Debug, Default)]
struct EvalStats {
    /// Nodes evaluated (alive, degree > 0).
    evaluated: u64,
    /// Neighbour states read (sum of degrees over evaluated nodes).
    reads: u64,
    /// Evaluations dispatched through the dense tables.
    tabular: u64,
    /// Evaluations dispatched through a native `transition` call.
    direct: u64,
}

/// Dense tables for the tabular plan.
///
/// Counts per state are abstracted to *classes* `0..B+M`: class `c < B`
/// means "exactly `c` neighbours", class `c >= B` means "at least `B`
/// neighbours, congruent to `c - B` modulo `M` (offset from `B`)". An
/// accumulator is the base-`B+M` number whose digit `j` is state `j`'s
/// class; folding one neighbour increments one digit with saturation into
/// the modular tail. Both increments and queries (`μ >= t` for `t <= B`,
/// `μ mod m` for `m | M`) are well-defined on classes, which is exactly
/// what the recorder-driven bound discovery certifies.
struct Tables {
    /// Number of accumulator values `C^|Q|`, `C = B + M` (exact-count
    /// bound `B` = max threshold queried; period `M` = lcm of moduli).
    acc_count: usize,
    /// `trans[(own * R + coin) * acc_count + acc]` — new state index.
    trans: Vec<u32>,
    /// Coin range `R = max(1, RANDOMNESS)`.
    randomness: usize,
    /// Exact-count bound `B` (max threshold the protocol queries).
    bound: u64,
    /// Modular period `M` (lcm of the moduli the protocol queries).
    period: u64,
    /// Class radix `C = B + M`; the accumulator is the base-`C` number
    /// whose digit `j` is `class_of(count_j, B, M)`.
    classes: u64,
}

enum Plan {
    Tabular(Tables),
    Direct,
}

/// Reusable per-evaluator buffers for the packed hot loop: the gathered
/// row (`row`), its run-length encoding (`idx`/`cnt`), and the dense
/// fallback tally (`scratch`, lazily sized to `|Q|`; `touched` lists its
/// nonzero indices). One set lives on the kernel for sequential steps
/// and one in each shard arena — never shared, never reallocated on the
/// hot path.
#[derive(Default)]
struct EvalBufs {
    row: Vec<u32>,
    idx: Vec<u32>,
    cnt: Vec<u32>,
    scratch: Vec<u32>,
    touched: Vec<u32>,
}

/// Read-only slice view of the plan, shareable across worker threads.
enum PlanRef<'a> {
    Tabular(&'a Tables),
    /// Workers bring their own scratch.
    Direct,
}

/// One shard's private evaluation workspace. Shards write *only* here
/// during the parallel phase — the global worklist, pending buffer, and
/// dirty flags are touched exclusively by the committing thread.
#[cfg(feature = "parallel")]
struct ShardArena<P: Protocol> {
    /// This shard's proposed `(node, new state)` writes, in node order.
    out: Vec<(NodeId, P::State)>,
    /// This shard's private evaluation buffers.
    bufs: EvalBufs,
    /// This shard's evaluation counters for the round.
    stats: EvalStats,
}

/// The sharded-execution state: a degree-weighted contiguous partition
/// plus one arena per shard. Built lazily on the first sharded step and
/// rebuilt when the shard count changes. Fault surgeries do *not*
/// trigger a rebuild — a stale partition only costs balance, never
/// correctness, because dead nodes and shrunken rows are skipped by the
/// evaluator itself.
#[cfg(feature = "parallel")]
struct Sharding<P: Protocol> {
    partition: Partition,
    arenas: Vec<Mutex<ShardArena<P>>>,
}

/// The compiled execution engine for one [`Network`].
///
/// Holds a flat CSR mirror of the network's topology (kept in sync with
/// fault injection via [`Network::remove_edge`] / [`Network::remove_node`])
/// plus the evaluation plan and dirty-set bookkeeping. Constructed lazily
/// by [`Network::ensure_kernel`] or eagerly by [`Network::new_compiled`];
/// driven by [`crate::Runner`].
pub struct CompiledKernel<P: Protocol> {
    /// Row starts (slack layout). Removals shrink a row in place;
    /// additions fill the row's slack, and a full row is relocated to the
    /// end of `targets` with doubled capacity (amortized O(1) per
    /// insertion) — see [`Self::on_edge_added`].
    offsets: Vec<u32>,
    /// Live length of each row (`<= row_cap`).
    row_len: Vec<u32>,
    /// Allocated width of each row. Starts at the construction-time
    /// degree; removals leave `row_len < row_cap` slack that later
    /// additions reuse, and growth doubles it.
    row_cap: Vec<u32>,
    /// Mutable neighbour targets; removal swap-removes within the row.
    targets: Vec<NodeId>,
    /// `targets` slots abandoned by relocated rows. When more than half
    /// the arena is abandoned, [`Self::compact`] rebuilds it tight.
    dead_space: usize,
    /// Alive mirror.
    alive: Vec<bool>,
    /// Whether the dirty-set scheduler is sound (deterministic protocol).
    use_dirty: bool,
    dirty: Vec<bool>,
    /// Exactly the nodes with `dirty[v]` set, between steps.
    worklist: Vec<NodeId>,
    /// Two-phase commit buffer: `(node, new state)` for this round's
    /// changes only, so sparse late rounds do O(changes), not O(n).
    pending: Vec<(NodeId, P::State)>,
    /// Nodes currently able to activate (alive, degree > 0); maintained
    /// incrementally across fault surgeries so traced rounds report it
    /// for free.
    eligible: u64,
    plan: Plan,
    /// Width-minimal mirror of the state vector (`packed.get(v) ==
    /// states[v].index()` whenever `packed_stale` is false): encoded at
    /// construction, dual-written by [`Self::commit`], grown by
    /// [`Self::on_node_added`], re-encoded at the top of a step after
    /// out-of-band writes.
    packed: PackedStates,
    /// Set by [`Self::mark_all_dirty`] (out-of-band state writes); the
    /// next step re-encodes `packed` before evaluating.
    packed_stale: bool,
    /// Sequential-step evaluation buffers.
    bufs: EvalBufs,
    /// Sharded-execution state (partition + per-shard arenas), built on
    /// the first sharded step.
    #[cfg(feature = "parallel")]
    sharding: Option<Sharding<P>>,
    _protocol: PhantomData<fn() -> P>,
}

impl<P: Protocol> CompiledKernel<P> {
    /// Compiles a kernel for the network's current topology and protocol,
    /// with [`DirtySchedule::Auto`] scheduling.
    pub fn new(net: &Network<P>) -> Self {
        Self::with_schedule(net, DirtySchedule::Auto)
    }

    /// Compiles a kernel with an explicit scheduling policy. Panics if
    /// `schedule` demands the dirty set for a probabilistic protocol —
    /// the soundness precondition is `P::RANDOMNESS <= 1` (see
    /// [`DirtySchedule`]).
    pub fn with_schedule(net: &Network<P>, schedule: DirtySchedule) -> Self {
        let g = net.graph();
        let n = g.n_slots();
        let (full_offsets, targets) = g.csr_arrays();
        let row_len: Vec<u32> = (0..n)
            .map(|v| full_offsets[v + 1] - full_offsets[v])
            .collect();
        let mut offsets = full_offsets;
        offsets.truncate(n);
        let alive: Vec<bool> = (0..n as NodeId).map(|v| g.is_alive(v)).collect();
        let eligible = (0..n).filter(|&i| alive[i] && row_len[i] > 0).count() as u64;
        let deterministic = P::RANDOMNESS <= 1;
        let use_dirty = match schedule {
            DirtySchedule::Auto => deterministic,
            DirtySchedule::Forced => true,
            DirtySchedule::Disabled => false,
        };
        assert!(
            !use_dirty || deterministic,
            "dirty-set scheduling is unsound for probabilistic protocols \
             (RANDOMNESS = {} > 1): skipped nodes would miss fresh coin draws",
            P::RANDOMNESS
        );
        let plan = match build_tables::<P>(net.protocol()) {
            Some(t) => Plan::Tabular(t),
            None => Plan::Direct,
        };
        Self {
            offsets,
            row_cap: row_len.clone(),
            row_len,
            targets,
            dead_space: 0,
            alive,
            use_dirty,
            dirty: vec![true; n],
            worklist: (0..n as NodeId).collect(),
            pending: Vec::new(),
            eligible,
            plan,
            packed: PackedStates::encode(net.states()),
            packed_stale: false,
            bufs: EvalBufs::default(),
            #[cfg(feature = "parallel")]
            sharding: None,
            _protocol: PhantomData,
        }
    }

    /// Which plan compilation selected.
    pub fn plan(&self) -> KernelPlan {
        match self.plan {
            Plan::Tabular(_) => KernelPlan::Tabular,
            Plan::Direct => KernelPlan::Direct,
        }
    }

    /// Bits per node in the packed state mirror (4, 8, 16, or 32 —
    /// chosen from `|Q|`; see [`PackedStates`]).
    pub fn packed_width_bits(&self) -> u32 {
        self.packed.width_bits()
    }

    /// Whether the dirty-set scheduler is active (deterministic protocols
    /// only; probabilistic ones re-draw coins every round, so every node
    /// must be re-evaluated).
    pub fn uses_dirty_set(&self) -> bool {
        self.use_dirty
    }

    /// Nodes currently scheduled for re-evaluation (everything, for
    /// probabilistic protocols).
    pub fn dirty_count(&self) -> usize {
        if self.use_dirty {
            self.worklist.len()
        } else {
            self.alive.iter().filter(|&&a| a).count()
        }
    }

    #[inline]
    fn mark_dirty(&mut self, v: NodeId) {
        if self.use_dirty && !self.dirty[v as usize] {
            self.dirty[v as usize] = true;
            self.worklist.push(v);
        }
    }

    /// Re-schedules every node (out-of-band state writes, interpreter
    /// interleaving, recompilation).
    pub(crate) fn mark_all_dirty(&mut self) {
        // The packed mirror is invalidated by the same out-of-band writes
        // that invalidate the dirty set — and it must be flagged even
        // when there is no dirty set to invalidate (probabilistic
        // protocols), so this runs before the early return below.
        self.packed_stale = true;
        if !self.use_dirty {
            return;
        }
        self.dirty.iter_mut().for_each(|d| *d = true);
        self.worklist.clear();
        self.worklist.extend(0..self.dirty.len() as NodeId);
    }

    /// Removes `target` from `v`'s CSR row, if present. Returns whether a
    /// removal happened; an empty row or a missing target is a no-op
    /// (double-remove must not underflow `row_len` or corrupt the row).
    /// Maintains the incremental `eligible` count.
    fn remove_from_row(&mut self, v: NodeId, target: NodeId) -> bool {
        let vi = v as usize;
        let len = self.row_len[vi] as usize;
        if len == 0 {
            return false;
        }
        let start = self.offsets[vi] as usize;
        let row = &mut self.targets[start..start + len];
        match row.iter().position(|&w| w == target) {
            Some(i) => {
                row.swap(i, len - 1);
                self.row_len[vi] -= 1;
                if self.row_len[vi] == 0 && self.alive[vi] {
                    self.eligible -= 1;
                }
                true
            }
            None => false,
        }
    }

    /// Fault hook: edge `{u, v}` was removed from the live topology. Both
    /// endpoints must be re-evaluated — their neighbour multisets changed
    /// even though no *state* did, which is exactly the case the dirty-set
    /// invariant cannot see on its own. A repeated or phantom removal is
    /// a no-op: nothing changed, so nothing is rescheduled.
    pub(crate) fn on_edge_removed(&mut self, u: NodeId, v: NodeId) {
        let removed_u = self.remove_from_row(u, v);
        let removed_v = self.remove_from_row(v, u);
        if removed_u || removed_v {
            self.mark_dirty(u);
            self.mark_dirty(v);
        }
    }

    /// Fault hook: node `v` was removed; `former_neighbors` are its
    /// neighbours *before* removal. Every former neighbour lost a
    /// multiset entry and must be re-evaluated. Idempotent: removing an
    /// already-dead node is a no-op.
    pub(crate) fn on_node_removed(&mut self, v: NodeId, former_neighbors: &[NodeId]) {
        let vi = v as usize;
        if !self.alive[vi] {
            return;
        }
        for &w in former_neighbors {
            if self.remove_from_row(w, v) {
                self.mark_dirty(w);
            }
        }
        if self.row_len[vi] > 0 {
            self.eligible -= 1;
        }
        self.row_len[vi] = 0;
        self.alive[vi] = false;
        // The dead node's row capacity is abandoned for good — no future
        // insertion can reuse it (arrivals get fresh zero-capacity rows).
        // Account it as dead space so removal-heavy churn trips the
        // compaction threshold; before this, those slots were invisible
        // to the accounting and the arena grew without bound relative to
        // the live topology. (Slack *inside* live rows — `row_len <
        // row_cap` after edge removals — is different: later insertions
        // reuse it, so it is not dead.)
        self.dead_space += self.row_cap[vi] as usize;
        self.row_cap[vi] = 0;
        self.maybe_compact();
    }

    /// Churn hook: edge `{u, v}` was added to the live topology. Both
    /// endpoints' multisets grew, so both are rescheduled. Idempotent: a
    /// repeated or phantom addition (target already in the row, dead
    /// endpoint) is a no-op and reschedules nothing.
    pub(crate) fn on_edge_added(&mut self, u: NodeId, v: NodeId) {
        let added_u = self.push_to_row(u, v);
        let added_v = self.push_to_row(v, u);
        if added_u || added_v {
            self.mark_dirty(u);
            self.mark_dirty(v);
        }
    }

    /// Churn hook: a fresh node with id `v` joined, isolated and alive,
    /// in state `state`. `v` must be the next unused slot id (stale
    /// arrivals are skipped — the same contract as
    /// [`crate::FaultKind::AddNode`]). The new row starts with zero
    /// capacity; its first edge allocates via [`Self::grow_row`].
    /// Invalidates the sharded partition, which only covers the id space
    /// it was built over.
    pub(crate) fn on_node_added(&mut self, v: NodeId, state: P::State) {
        let vi = v as usize;
        if vi != self.row_len.len() {
            return;
        }
        self.offsets.push(self.targets.len() as u32);
        self.row_len.push(0);
        self.row_cap.push(0);
        self.alive.push(true);
        self.dirty.push(false);
        self.packed.push(state.index() as u32);
        // Degree 0: not eligible, nothing to schedule until an edge
        // arrives and on_edge_added marks it dirty.
        #[cfg(feature = "parallel")]
        {
            self.sharding = None;
        }
    }

    /// Appends `target` to `v`'s CSR row, if absent. Returns whether an
    /// insertion happened. Fills the row's slack when there is any;
    /// otherwise relocates the row to the end of the arena with doubled
    /// capacity. Maintains the incremental `eligible` count.
    fn push_to_row(&mut self, v: NodeId, target: NodeId) -> bool {
        let vi = v as usize;
        if !self.alive[vi] {
            return false;
        }
        let len = self.row_len[vi] as usize;
        let start = self.offsets[vi] as usize;
        if self.targets[start..start + len].contains(&target) {
            return false;
        }
        if len == self.row_cap[vi] as usize {
            self.grow_row(vi);
        }
        let start = self.offsets[vi] as usize;
        self.targets[start + len] = target;
        self.row_len[vi] += 1;
        if len == 0 {
            self.eligible += 1;
        }
        self.debug_check_row(vi);
        true
    }

    /// Relocates row `vi` to the end of the arena with capacity
    /// `max(2, 2 * cap)`. Doubling makes insertion amortized O(1) and
    /// bounds per-row capacity at twice its peak length; the abandoned
    /// slots are tracked in `dead_space` and reclaimed by
    /// [`Self::compact`] once they exceed half the arena.
    ///
    /// Compaction is considered *before* the relocation, against the
    /// prospective dead space `dead_space + cap` (the slots this
    /// relocation is about to abandon). Ordering is load-bearing:
    /// `compact()` repacks every row tight (`row_cap = row_len`), so if
    /// it ran *after* the relocation it would confiscate the slack just
    /// allocated here while the caller (`push_to_row`) still holds a
    /// pending write into it — `targets[start + len]` would then be the
    /// next row's first slot (silent adjacency corruption) or one past
    /// the arena end (panic), and `row_len += 1` would leave `row_len >
    /// row_cap` standing. Triggering on the prospective total first
    /// means the row is relocated into a freshly-compacted arena and its
    /// new slack survives until the caller's write lands.
    fn grow_row(&mut self, vi: usize) {
        let doomed = self.row_cap[vi] as usize;
        if (self.dead_space + doomed) * 2 > self.targets.len() && self.targets.len() > 64 {
            self.compact();
        }
        // Re-read after the possible compaction: it moved the row and
        // tightened its capacity.
        let len = self.row_len[vi] as usize;
        let old_cap = self.row_cap[vi] as usize;
        let old_start = self.offsets[vi] as usize;
        let new_cap = (old_cap * 2).max(2);
        let new_start = self.targets.len();
        self.targets.extend_from_within(old_start..old_start + len);
        self.targets.resize(new_start + new_cap, 0);
        self.offsets[vi] = new_start as u32;
        self.row_cap[vi] = new_cap as u32;
        self.dead_space += old_cap;
        self.debug_check_row(vi);
    }

    /// Compacts if dead slots exceed half the arena (the same threshold
    /// `grow_row` applies prospectively). Removal paths call this after
    /// abandoning a dead node's capacity; there is never a pending write
    /// at those call sites, so compacting immediately is safe.
    fn maybe_compact(&mut self) {
        if self.dead_space * 2 > self.targets.len() && self.targets.len() > 64 {
            self.compact();
        }
    }

    /// Rebuilds the arena tight: every row packed at its live length, no
    /// slack, no dead space. O(n + m); triggered only when at least half
    /// the arena is abandoned, so the cost is amortized against the
    /// growth that created the garbage.
    ///
    /// **Must not run between a row growth and the write into the grown
    /// slack** — see [`Self::grow_row`] for the ordering contract.
    fn compact(&mut self) {
        let n = self.row_len.len();
        let total: usize = self.row_len.iter().map(|&l| l as usize).sum();
        let mut tight = Vec::with_capacity(total);
        for v in 0..n {
            let start = self.offsets[v] as usize;
            let len = self.row_len[v] as usize;
            self.offsets[v] = tight.len() as u32;
            tight.extend_from_slice(&self.targets[start..start + len]);
            self.row_cap[v] = len as u32;
        }
        self.targets = tight;
        self.dead_space = 0;
        // Conservation: with every row tight and no dead slots, the rows
        // must tile the arena exactly.
        debug_assert_eq!(
            self.targets.len(),
            self.row_cap.iter().map(|&c| c as usize).sum::<usize>(),
            "compacted arena must equal the sum of row capacities"
        );
    }

    /// Cheap per-row invariant probe on the surgery hot paths (debug
    /// builds only): the row fits its capacity and the capacity fits the
    /// arena.
    #[inline]
    fn debug_check_row(&self, vi: usize) {
        debug_assert!(
            self.row_len[vi] <= self.row_cap[vi],
            "row {vi}: len {} exceeds cap {}",
            self.row_len[vi],
            self.row_cap[vi]
        );
        debug_assert!(
            self.offsets[vi] as usize + self.row_cap[vi] as usize <= self.targets.len(),
            "row {vi} extends past the arena end"
        );
    }

    /// Full arena validation — the test oracle behind the equivalence
    /// suites. Checks, for every row: `row_len <= row_cap` and
    /// `offset + row_cap <= arena`; that rows with nonzero capacity are
    /// pairwise disjoint; conservation (`Σ row_cap + dead_space ==
    /// arena`, which holds exactly through every surgery); and that dead
    /// space is at most half the arena (the compaction threshold, modulo
    /// the small-arena cutoff).
    ///
    /// O(n log n); uses hard `assert!`s so integration tests (compiled
    /// without `cfg(test)` for this crate) fail loudly in release runs
    /// too.
    pub fn validate_arena(&self) {
        let n = self.row_len.len();
        assert_eq!(self.offsets.len(), n, "offsets length mismatch");
        assert_eq!(self.row_cap.len(), n, "row_cap length mismatch");
        let mut cap_total = 0usize;
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for v in 0..n {
            let len = self.row_len[v] as usize;
            let cap = self.row_cap[v] as usize;
            let start = self.offsets[v] as usize;
            assert!(len <= cap, "row {v}: len {len} exceeds cap {cap}");
            assert!(
                start + cap <= self.targets.len(),
                "row {v} extends past the arena end"
            );
            cap_total += cap;
            if cap > 0 {
                spans.push((start, cap));
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(
                w[0].0 + w[0].1 <= w[1].0,
                "rows overlap: [{}, +{}) and [{}, +{})",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
        assert_eq!(
            cap_total + self.dead_space,
            self.targets.len(),
            "conservation: capacities + dead space must tile the arena"
        );
        assert!(
            self.dead_space * 2 <= self.targets.len().max(64),
            "dead space {} exceeds half the arena {}",
            self.dead_space,
            self.targets.len()
        );
    }

    /// The live CSR row of node `v` — its neighbour multiset, in arena
    /// order. Exposed so equivalence tests can audit the incremental
    /// mirror against a from-scratch rebuild.
    pub fn row(&self, v: NodeId) -> &[NodeId] {
        let vi = v as usize;
        let start = self.offsets[vi] as usize;
        &self.targets[start..start + self.row_len[vi] as usize]
    }

    /// Total `targets` arena slots (live + slack + abandoned) — exposed
    /// so tests and benchmarks can watch the slack-growth/compaction
    /// policy at work.
    pub fn arena_len(&self) -> usize {
        self.targets.len()
    }

    /// Arena slots abandoned by relocated rows and not yet compacted.
    pub fn dead_space(&self) -> usize {
        self.dead_space
    }

    /// Nodes currently able to activate (alive, degree > 0) — what a
    /// traced round reports as [`RoundMetrics::eligible`].
    pub fn eligible_count(&self) -> u64 {
        self.eligible
    }

    /// One synchronous round over `states`. Returns the number of nodes
    /// whose state changed; updates `metrics` (one round, `evaluated`
    /// activations, `changed` changes).
    pub fn step(
        &mut self,
        protocol: &P,
        states: &mut [P::State],
        metrics: &mut Metrics,
        round_seed: u64,
    ) -> usize {
        self.step_traced(protocol, states, metrics, round_seed, &mut NullTracer, 0)
    }

    /// Like [`Self::step`], but emits one [`RoundMetrics`] event to
    /// `tracer` after the round (when it is enabled — with [`NullTracer`]
    /// this monomorphizes to exactly [`Self::step`]). `faults` is the
    /// number of fault surgeries applied since the previous traced round,
    /// forwarded into the event.
    pub fn step_traced<T: Tracer>(
        &mut self,
        protocol: &P,
        states: &mut [P::State],
        metrics: &mut Metrics,
        round_seed: u64,
        tracer: &mut T,
        faults: u64,
    ) -> usize {
        let trace = tracer.enabled();
        self.refresh_packed(states);
        self.pending.clear();
        let (stats, scheduled) = if self.use_dirty {
            let mut work = std::mem::take(&mut self.worklist);
            work.sort_unstable();
            for &v in &work {
                self.dirty[v as usize] = false;
            }
            let scheduled = work.len() as u64;
            let stats = if trace {
                self.eval_nodes::<true>(protocol, states, work.iter().copied(), round_seed)
            } else {
                self.eval_nodes::<false>(protocol, states, work.iter().copied(), round_seed)
            };
            work.clear();
            // Hand the buffer back so commit() pushes into it.
            debug_assert!(self.worklist.is_empty());
            self.worklist = work;
            (stats, scheduled)
        } else {
            let n = self.row_len.len();
            let stats = if trace {
                self.eval_nodes::<true>(protocol, states, 0..n as NodeId, round_seed)
            } else {
                self.eval_nodes::<false>(protocol, states, 0..n as NodeId, round_seed)
            };
            (stats, self.eligible)
        };
        let changed = self.commit(states, metrics, stats.evaluated);
        if trace {
            tracer.round(&RoundMetrics {
                round: metrics.rounds,
                eligible: self.eligible,
                scheduled,
                activations: stats.evaluated,
                changes: changed as u64,
                neighbor_reads: stats.reads,
                tabular: stats.tabular,
                direct: stats.direct,
                faults,
            });
        }
        changed
    }

    /// Re-encodes the packed mirror if an out-of-band write invalidated
    /// it. Runs at the top of every step, before evaluation reads it.
    fn refresh_packed(&mut self, states: &[P::State]) {
        if self.packed_stale {
            self.packed.reencode(states);
            self.packed_stale = false;
        }
        debug_assert_eq!(self.packed.len(), states.len(), "packed mirror desynced");
    }

    /// Evaluates `nodes` against the *current* `states`, pushing changes
    /// into `self.pending`. Returns the evaluation counters (only
    /// `evaluated` is maintained when `TRACE` is false).
    fn eval_nodes<const TRACE: bool>(
        &mut self,
        protocol: &P,
        states: &[P::State],
        nodes: impl Iterator<Item = NodeId>,
        round_seed: u64,
    ) -> EvalStats {
        let csr = CsrRef {
            offsets: &self.offsets,
            row_len: &self.row_len,
            targets: &self.targets,
            alive: &self.alive,
        };
        let plan_ref = match &self.plan {
            Plan::Tabular(t) => PlanRef::Tabular(t),
            Plan::Direct => PlanRef::Direct,
        };
        eval_chunk::<P, TRACE>(
            protocol,
            &csr,
            plan_ref,
            &self.packed,
            states,
            nodes,
            round_seed,
            &mut self.pending,
            &mut self.bufs,
        )
    }

    /// Applies `self.pending`, marks changed nodes + their neighbours
    /// dirty, keeps the packed mirror in sync, bumps metrics. Shared by
    /// the sequential and parallel steps.
    fn commit(&mut self, states: &mut [P::State], metrics: &mut Metrics, evaluated: u64) -> usize {
        let changed = self.pending.len();
        for i in 0..changed {
            let (v, s) = self.pending[i];
            states[v as usize] = s;
            self.packed.set(v as usize, s.index() as u32);
            if self.use_dirty {
                self.mark_dirty(v);
                let start = self.offsets[v as usize] as usize;
                let len = self.row_len[v as usize] as usize;
                for k in start..start + len {
                    let w = self.targets[k];
                    self.mark_dirty(w);
                }
            }
        }
        metrics.rounds += 1;
        metrics.activations += evaluated;
        metrics.changes += changed as u64;
        changed
    }
}

/// Splits a sorted worklist into per-shard subslices along the
/// partition's boundaries. Zero-copy: shard `k` gets exactly the work
/// items whose ids fall in `partition.range(k)`, and concatenating the
/// slices in shard order reproduces `work` verbatim.
#[cfg(feature = "parallel")]
fn split_by_partition<'a>(work: &'a [NodeId], partition: &Partition) -> Vec<&'a [NodeId]> {
    let mut out = Vec::with_capacity(partition.shards());
    let mut rest = work;
    for k in 0..partition.shards() {
        let end = partition.range(k).end;
        let cut = rest.partition_point(|&v| v < end);
        let (head, tail) = rest.split_at(cut);
        out.push(head);
        rest = tail;
    }
    debug_assert!(rest.is_empty(), "worklist node beyond the last shard");
    out
}

/// This round's work, per shard: either subslices of the sorted dirty
/// worklist, or (for full re-evaluation) the partition's id ranges.
#[cfg(feature = "parallel")]
enum ShardWork<'a> {
    Slices(Vec<&'a [NodeId]>),
    Ranges(&'a Partition),
}

#[cfg(feature = "parallel")]
impl ShardWork<'_> {
    fn len_of(&self, k: usize) -> u64 {
        match self {
            ShardWork::Slices(sl) => sl[k].len() as u64,
            ShardWork::Ranges(p) => p.range(k).len() as u64,
        }
    }
}

/// Fans the shards out over the pool. Each claimed shard locks its own
/// arena (uncontended — shard indices are handed out exactly once per
/// epoch) and evaluates its work against the frozen states. The `TRACE`
/// split happens *before* the pool wakes, so each shard's hot loop is
/// monomorphized with a compile-time constant rather than a captured
/// flag.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn eval_shards<P, const TRACE: bool>(
    protocol: &P,
    csr: &CsrRef<'_>,
    plan: &Plan,
    packed: &PackedStates,
    frozen: &[P::State],
    split: &ShardWork<'_>,
    arenas: &[Mutex<ShardArena<P>>],
    round_seed: u64,
    pool: &mut ShardPool,
) where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    pool.run(arenas.len(), &|k| {
        let mut guard = arenas[k].lock().expect("shard arena poisoned");
        let arena = &mut *guard;
        arena.out.clear();
        let plan_ref = match plan {
            Plan::Tabular(t) => PlanRef::Tabular(t),
            Plan::Direct => PlanRef::Direct,
        };
        arena.stats = match split {
            ShardWork::Slices(sl) => eval_chunk::<P, TRACE>(
                protocol,
                csr,
                plan_ref,
                packed,
                frozen,
                sl[k].iter().copied(),
                round_seed,
                &mut arena.out,
                &mut arena.bufs,
            ),
            ShardWork::Ranges(p) => eval_chunk::<P, TRACE>(
                protocol,
                csr,
                plan_ref,
                packed,
                frozen,
                p.range(k),
                round_seed,
                &mut arena.out,
                &mut arena.bufs,
            ),
        };
    });
}

#[cfg(feature = "parallel")]
impl<P: Protocol> CompiledKernel<P>
where
    P: Sync,
    P::State: Send + Sync,
{
    /// Builds (or rebuilds) the partition + arenas for `shards` shards.
    /// Weighted by the *live* CSR row lengths, so a kernel sharded after
    /// fault surgeries balances the surviving topology.
    fn ensure_sharding(&mut self, shards: usize) {
        let rebuild = match &self.sharding {
            Some(s) => s.partition.shards() != shards,
            None => true,
        };
        if !rebuild {
            return;
        }
        let partition = Partition::from_degrees(&self.row_len, shards);
        let arenas = (0..shards)
            .map(|_| {
                Mutex::new(ShardArena {
                    out: Vec::new(),
                    bufs: EvalBufs::default(),
                    stats: EvalStats::default(),
                })
            })
            .collect();
        self.sharding = Some(Sharding { partition, arenas });
    }

    /// Like [`Self::step`], but evaluates the round's worklist sharded
    /// over `pool`. Bit-identical to the sequential step for any thread
    /// count: shards are contiguous id ranges of the sorted worklist,
    /// coins derive from `(round_seed, v)`, and per-shard updates are
    /// committed in ascending shard order (= node order).
    pub fn step_sharded(
        &mut self,
        protocol: &P,
        states: &mut [P::State],
        metrics: &mut Metrics,
        round_seed: u64,
        pool: &mut ShardPool,
    ) -> usize {
        self.step_sharded_traced(
            protocol,
            states,
            metrics,
            round_seed,
            pool,
            &mut NullTracer,
            0,
        )
    }

    /// Like [`Self::step_traced`], sharded over `pool`. When the tracer
    /// is enabled and the pool actually ran (more than one shard, enough
    /// work), one [`ShardRoundMetrics`] per shard is emitted in
    /// ascending shard order *before* the round's [`RoundMetrics`] —
    /// always from the committing thread, so sinks never see interleaved
    /// events regardless of thread count.
    #[allow(clippy::too_many_arguments)]
    pub fn step_sharded_traced<T: Tracer>(
        &mut self,
        protocol: &P,
        states: &mut [P::State],
        metrics: &mut Metrics,
        round_seed: u64,
        pool: &mut ShardPool,
        tracer: &mut T,
        faults: u64,
    ) -> usize {
        let trace = tracer.enabled();
        let shards = pool.threads();
        self.refresh_packed(states);
        self.pending.clear();
        // Gather this round's work exactly as the sequential step does.
        let work: Option<Vec<NodeId>> = if self.use_dirty {
            let mut w = std::mem::take(&mut self.worklist);
            w.sort_unstable();
            for &v in &w {
                self.dirty[v as usize] = false;
            }
            Some(w)
        } else {
            None
        };
        let scheduled = work.as_ref().map_or(self.eligible, |w| w.len() as u64);
        let work_len = work.as_ref().map_or(self.row_len.len(), |w| w.len());

        let mut per_shard: Vec<ShardRoundMetrics> = Vec::new();
        let stats = if shards <= 1 || work_len < SHARD_MIN_WORK {
            // Not worth waking the pool: evaluate inline, in the same
            // canonical order, producing the identical trajectory.
            match (&work, trace) {
                (Some(w), true) => {
                    self.eval_nodes::<true>(protocol, states, w.iter().copied(), round_seed)
                }
                (Some(w), false) => {
                    self.eval_nodes::<false>(protocol, states, w.iter().copied(), round_seed)
                }
                (None, true) => self.eval_nodes::<true>(
                    protocol,
                    states,
                    0..self.row_len.len() as NodeId,
                    round_seed,
                ),
                (None, false) => self.eval_nodes::<false>(
                    protocol,
                    states,
                    0..self.row_len.len() as NodeId,
                    round_seed,
                ),
            }
        } else {
            self.ensure_sharding(shards);
            let sharding = self.sharding.as_ref().expect("just ensured");
            let split = match &work {
                Some(w) => ShardWork::Slices(split_by_partition(w, &sharding.partition)),
                None => ShardWork::Ranges(&sharding.partition),
            };
            let csr = CsrRef {
                offsets: &self.offsets,
                row_len: &self.row_len,
                targets: &self.targets,
                alive: &self.alive,
            };
            let frozen: &[P::State] = states;
            if trace {
                eval_shards::<P, true>(
                    protocol,
                    &csr,
                    &self.plan,
                    &self.packed,
                    frozen,
                    &split,
                    &sharding.arenas,
                    round_seed,
                    pool,
                );
            } else {
                eval_shards::<P, false>(
                    protocol,
                    &csr,
                    &self.plan,
                    &self.packed,
                    frozen,
                    &split,
                    &sharding.arenas,
                    round_seed,
                    pool,
                );
            }
            let per_slice: Vec<u64> = (0..shards).map(|k| split.len_of(k)).collect();
            drop(split);
            // Merge in ascending shard order: contiguous shards over a
            // sorted worklist concatenate to the sequential order.
            let sharding = self.sharding.as_mut().expect("just ensured");
            let mut stats = EvalStats::default();
            for (k, arena) in sharding.arenas.iter_mut().enumerate() {
                let a = arena.get_mut().expect("shard arena poisoned");
                if trace {
                    per_shard.push(ShardRoundMetrics {
                        round: 0, // stamped after commit below
                        shard: k as u32,
                        shards: shards as u32,
                        scheduled: per_slice[k],
                        activations: a.stats.evaluated,
                        changes: a.out.len() as u64,
                        neighbor_reads: a.stats.reads,
                    });
                }
                stats.evaluated += a.stats.evaluated;
                stats.reads += a.stats.reads;
                stats.tabular += a.stats.tabular;
                stats.direct += a.stats.direct;
                self.pending.append(&mut a.out);
            }
            stats
        };
        if let Some(mut w) = work {
            w.clear();
            debug_assert!(self.worklist.is_empty());
            self.worklist = w;
        }
        let changed = self.commit(states, metrics, stats.evaluated);
        if trace {
            for s in &mut per_shard {
                s.round = metrics.rounds;
                tracer.shard_round(s);
            }
            tracer.round(&RoundMetrics {
                round: metrics.rounds,
                eligible: self.eligible,
                scheduled,
                activations: stats.evaluated,
                changes: changed as u64,
                neighbor_reads: stats.reads,
                tabular: stats.tabular,
                direct: stats.direct,
                faults,
            });
        }
        changed
    }
}

/// Borrowed CSR arrays, cheap to copy into worker closures.
#[derive(Clone, Copy)]
struct CsrRef<'a> {
    offsets: &'a [u32],
    row_len: &'a [u32],
    targets: &'a [NodeId],
    alive: &'a [bool],
}

/// Branch-light in-place insertion sort for short gathered rows.
#[inline]
fn insertion_sort(a: &mut [u32]) {
    for i in 1..a.len() {
        let x = a[i];
        let mut j = i;
        while j > 0 && a[j - 1] > x {
            a[j] = a[j - 1];
            j -= 1;
        }
        a[j] = x;
    }
}

/// The shared inner loop: evaluates `nodes` over frozen `states` (whose
/// packed mirror is `packed`), appending `(node, new state)` for changed
/// nodes to `out`. `bufs` is the evaluator's private workspace
/// (`bufs.scratch` must be all-zero between calls — the dense fallback
/// restores that itself). With `TRACE` false every metric branch is a
/// compile-time constant and the loop is the untraced hot path,
/// unchanged.
///
/// Both plans are *segmented CSR reductions*: gather the row's packed
/// state indices into one contiguous buffer (a width dispatch per row,
/// then a tight widening loop the compiler vectorizes), then reduce the
/// buffer — a tiny per-state histogram mapped through [`class_of`] for
/// the tabular plan, or sort + run-length encoding into a sparse
/// [`NeighborView`] for the direct plan. Regrouping the SM reduction
/// this way is faithful by symmetry (the transition depends only on the
/// multiset), so results are bit-identical to the one-neighbour-at-a-
/// time fold this replaced.
#[allow(clippy::too_many_arguments)]
fn eval_chunk<P: Protocol, const TRACE: bool>(
    protocol: &P,
    csr: &CsrRef<'_>,
    plan: PlanRef<'_>,
    packed: &PackedStates,
    states: &[P::State],
    nodes: impl Iterator<Item = NodeId>,
    round_seed: u64,
    out: &mut Vec<(NodeId, P::State)>,
    bufs: &mut EvalBufs,
) -> EvalStats {
    let mut stats = EvalStats::default();
    let mut evaluated = 0u64;
    match plan {
        PlanRef::Tabular(t) => {
            let q = P::State::COUNT;
            // `classes >= 2` and `classes^q <= ACC_BUDGET = 2^12` bound
            // the tabular alphabet at 12 states; the histogram lives in
            // registers/L1.
            debug_assert!(q <= 16, "tabular plan implies a tiny alphabet");
            let mut hist = [0u32; 16];
            for v in nodes {
                let vi = v as usize;
                let len = csr.row_len[vi] as usize;
                if len == 0 || !csr.alive[vi] {
                    continue;
                }
                let start = csr.offsets[vi] as usize;
                packed.gather(&csr.targets[start..start + len], &mut bufs.row);
                hist[..q].fill(0);
                for &s in &bufs.row {
                    hist[s as usize] += 1;
                }
                // Digit-wise accumulator: digit j = class of state j's
                // count. Count classes are exactly how the per-neighbour
                // fold saturates, so this equals the fold chain while
                // replacing `len` serially-dependent table loads with a
                // q-digit polynomial evaluation.
                let mut acc = 0u64;
                let mut weight = 1u64;
                for &h in &hist[..q] {
                    acc += class_of(h as u64, t.bound, t.period) * weight;
                    weight *= t.classes;
                }
                let own = states[vi].index();
                let coin = round_coin(round_seed, v, P::RANDOMNESS) as usize;
                let new_idx =
                    t.trans[(own * t.randomness + coin) * t.acc_count + acc as usize] as usize;
                evaluated += 1;
                if TRACE {
                    stats.reads += len as u64;
                }
                if new_idx != own {
                    out.push((v, P::State::from_index(new_idx)));
                }
            }
            if TRACE {
                stats.tabular = evaluated;
            }
        }
        PlanRef::Direct => {
            for v in nodes {
                let vi = v as usize;
                let len = csr.row_len[vi] as usize;
                if len == 0 || !csr.alive[vi] {
                    continue;
                }
                let start = csr.offsets[vi] as usize;
                packed.gather(&csr.targets[start..start + len], &mut bufs.row);
                let old = states[vi];
                let coin = round_coin(round_seed, v, P::RANDOMNESS);
                let new = if len <= DENSE_MIN {
                    // Sort + run-length encode: ascending indices are the
                    // canonical `present_states` order (identical to the
                    // interpreter and to a from-scratch build, however
                    // incremental surgery permuted the arena row).
                    if len <= SMALL_SORT {
                        insertion_sort(&mut bufs.row);
                    } else {
                        bufs.row.sort_unstable();
                    }
                    bufs.idx.clear();
                    bufs.cnt.clear();
                    let mut i = 0;
                    while i < len {
                        let s = bufs.row[i];
                        let mut j = i + 1;
                        while j < len && bufs.row[j] == s {
                            j += 1;
                        }
                        bufs.idx.push(s);
                        bufs.cnt.push((j - i) as u32);
                        i = j;
                    }
                    let view: NeighborView<'_, P::State> =
                        NeighborView::new_sparse(&bufs.idx, &bufs.cnt, None);
                    protocol.transition(old, &view, coin)
                } else {
                    // Hub rows: one O(len) scatter into the dense tally
                    // beats sorting. Allocated lazily — most protocols
                    // and graphs never take this branch.
                    if bufs.scratch.len() < P::State::COUNT {
                        bufs.scratch.resize(P::State::COUNT, 0);
                    }
                    for &s in &bufs.row {
                        if bufs.scratch[s as usize] == 0 {
                            bufs.touched.push(s);
                        }
                        bufs.scratch[s as usize] += 1;
                    }
                    bufs.touched.sort_unstable();
                    let new = {
                        let view: NeighborView<'_, P::State> = NeighborView::new_with_presence(
                            &bufs.scratch,
                            Some(&bufs.touched),
                            None,
                        );
                        protocol.transition(old, &view, coin)
                    };
                    for &s in bufs.touched.iter() {
                        bufs.scratch[s as usize] = 0;
                    }
                    bufs.touched.clear();
                    new
                };
                evaluated += 1;
                if TRACE {
                    stats.reads += len as u64;
                }
                if new != old {
                    out.push((v, new));
                }
            }
            if TRACE {
                stats.direct = evaluated;
            }
        }
    }
    stats.evaluated = evaluated;
    stats
}

/// The count class of an exact count `x` under bound `b`, period `m`.
#[inline]
fn class_of(x: u64, b: u64, m: u64) -> u64 {
    if x < b {
        x
    } else {
        b + (x - b) % m
    }
}

/// Builds the tabular plan, or `None` if the protocol's abstract count
/// space exceeds the budget or bound discovery fails to converge.
///
/// Bound discovery mirrors [`crate::compile`]: start from the declared
/// `MAX_THRESHOLD` / `MODULI_LCM`, evaluate the transition on *every*
/// abstract multiset with a recorder attached, and grow the bounds until
/// the recorded queries are subsumed — at which point the classes are a
/// sound abstraction of the counts and the tables are exact.
fn build_tables<P: Protocol>(protocol: &P) -> Option<Tables> {
    let q = P::State::COUNT;
    let r = P::RANDOMNESS.max(1) as usize;
    let mut bound = (P::MAX_THRESHOLD as u64).max(1);
    let mut period = (P::MODULI_LCM as u64).max(1);
    for _ in 0..DISCOVERY_ROUNDS {
        let classes = bound + period;
        let mut acc_count: u64 = 1;
        for _ in 0..q {
            acc_count = acc_count.checked_mul(classes)?;
            if acc_count > ACC_BUDGET {
                return None;
            }
        }
        let entries = acc_count * q as u64 + acc_count * (q as u64) * (r as u64);
        if entries > ENTRY_BUDGET {
            return None;
        }
        let acc_total = acc_count as usize;

        let recorder = RefCell::new(QueryRecorder::new(q));
        let mut trans = vec![0u32; q * r * acc_total];
        let mut counts = vec![0u32; q];
        for a in 0..acc_total {
            // Decode accumulator `a` into representative counts: exact
            // classes map to themselves; tail class `c` represents `c`
            // (the smallest count with that bound/residue signature).
            let mut rem = a as u64;
            let mut empty = true;
            for c in counts.iter_mut() {
                let digit = rem % classes;
                rem /= classes;
                *c = digit as u32;
                if digit > 0 {
                    empty = false;
                }
            }
            for own in 0..q {
                for coin in 0..r {
                    let idx = (own * r + coin) * acc_total + a;
                    trans[idx] = if empty {
                        // Degree-0 nodes never activate; identity keeps
                        // the table total.
                        own as u32
                    } else {
                        let view: NeighborView<'_, P::State> =
                            NeighborView::new(&counts, Some(&recorder));
                        protocol
                            .transition(P::State::from_index(own), &view, coin as u32)
                            .index() as u32
                    };
                }
            }
        }

        let rec = recorder.borrow();
        let need_bound = rec.thresholds.iter().copied().max().unwrap_or(1);
        let need_period = rec
            .moduli
            .iter()
            .copied()
            .fold(1, fssga_core::modthresh::lcm);
        if need_bound > bound || !period.is_multiple_of(need_period) {
            bound = bound.max(need_bound);
            period = fssga_core::modthresh::lcm(period, need_period);
            continue;
        }

        // Bounds subsumed: the representative-count evaluation above is
        // exact on classes. The evaluator computes accumulators directly
        // from per-row histograms via `class_of`, so the table set is
        // just `trans` plus the class parameters.
        return Some(Tables {
            acc_count: acc_total,
            trans,
            randomness: r,
            bound,
            period,
            classes,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use fssga_graph::generators;
    use fssga_graph::rng::Xoshiro256;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Infect {
        Healthy,
        Infected,
    }
    impl_state_space!(Infect { Healthy, Infected });

    struct Spread;
    impl Protocol for Spread {
        type State = Infect;
        const COMPILED: bool = true;
        fn transition(&self, own: Infect, nbrs: &NeighborView<'_, Infect>, _coin: u32) -> Infect {
            if own == Infect::Infected || nbrs.some(Infect::Infected) {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        }
    }

    fn infected_path(n: usize) -> Network<Spread> {
        let g = generators::path(n);
        Network::new(&g, Spread, |v| {
            if v == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        })
    }

    #[test]
    fn tabular_plan_selected_for_small_protocols() {
        let mut net = infected_path(4);
        net.ensure_kernel();
        assert_eq!(net.kernel_plan(), Some(KernelPlan::Tabular));
    }

    #[test]
    fn kernel_matches_interpreter_per_round() {
        let g = generators::grid(5, 7);
        let mut a = Network::new(&g, Spread, |v| {
            if v % 9 == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        });
        let mut b = Network::new(&g, Spread, |v| {
            if v % 9 == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        });
        b.ensure_kernel();
        for round in 0..12 {
            let ca = a.sync_step_seeded(round);
            let cb = b.sync_step_kernel_seeded(round);
            assert_eq!(ca, cb, "round {round} change counts differ");
            assert_eq!(a.states(), b.states(), "round {round} states differ");
        }
    }

    #[test]
    fn dirty_set_quiesces() {
        let mut net = infected_path(10);
        net.ensure_kernel();
        // Path of 10: 9 spreading rounds, then the worklist drains.
        for round in 0..9 {
            assert_eq!(net.sync_step_kernel_seeded(round), 1);
        }
        assert_eq!(net.sync_step_kernel_seeded(99), 0);
        assert_eq!(net.kernel().unwrap().dirty_count(), 0, "worklist drained");
        let before = net.metrics.activations;
        assert_eq!(net.sync_step_kernel_seeded(100), 0);
        assert_eq!(
            net.metrics.activations, before,
            "quiescent round evaluates nothing"
        );
    }

    #[test]
    fn fault_hooks_reschedule_neighbours() {
        // Drive to fixpoint, then delete the infection's only bridge; the
        // kernel must re-evaluate the affected endpoints (here: nothing
        // changes state, but the evaluation must happen).
        let mut net = infected_path(6);
        net.ensure_kernel();
        while net.sync_step_kernel_seeded(0) > 0 {}
        assert_eq!(net.kernel().unwrap().dirty_count(), 0);
        net.remove_edge(2, 3);
        assert_eq!(
            net.kernel().unwrap().dirty_count(),
            2,
            "both endpoints rescheduled"
        );
        let before = net.metrics.activations;
        net.sync_step_kernel_seeded(1);
        assert_eq!(net.metrics.activations, before + 2);
    }

    #[test]
    fn node_removal_reschedules_former_neighbours() {
        let g = generators::star(5);
        let mut net = Network::new(&g, Spread, |v| {
            if v == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        });
        net.ensure_kernel();
        while net.sync_step_kernel_seeded(0) > 0 {}
        net.remove_node(0);
        let k = net.kernel().unwrap();
        // All 4 leaves lost their only neighbour.
        assert_eq!(k.dirty_count(), 4);
        // Leaves are now degree 0: the next round evaluates nobody but
        // still drains the worklist.
        net.sync_step_kernel_seeded(1);
        assert_eq!(net.kernel().unwrap().dirty_count(), 0);
    }

    #[test]
    fn interpreter_interleaving_invalidates_dirty_set() {
        let mut net = infected_path(6);
        net.ensure_kernel();
        while net.sync_step_kernel_seeded(0) > 0 {}
        // Out-of-band write through the interpreter-facing API...
        net.set_state(5, Infect::Healthy);
        // ...must force a full re-evaluation on the next kernel round.
        let before = net.metrics.activations;
        net.sync_step_kernel_seeded(1);
        assert_eq!(net.metrics.activations, before + 6);
        assert_eq!(net.state(5), Infect::Infected, "re-infected by neighbour");
    }

    #[test]
    fn direct_plan_used_for_large_state_spaces() {
        // 5000 states ** 2 classes blows the accumulator budget.
        #[derive(Copy, Clone, PartialEq, Eq, Debug)]
        struct Big(u16);
        impl StateSpace for Big {
            const COUNT: usize = 5000;
            fn index(self) -> usize {
                self.0 as usize
            }
            fn from_index(i: usize) -> Self {
                Big(i as u16)
            }
        }
        struct MaxOf;
        impl Protocol for MaxOf {
            type State = Big;
            const COMPILED: bool = true;
            fn transition(&self, own: Big, nbrs: &NeighborView<'_, Big>, _c: u32) -> Big {
                let mut best = own.0;
                for s in nbrs.present_states() {
                    best = best.max(s.0);
                }
                Big(best)
            }
        }
        let g = generators::cycle(8);
        let mut net = Network::new(&g, MaxOf, |v| Big(v as u16 * 37 % 5000));
        net.ensure_kernel();
        assert_eq!(net.kernel_plan(), Some(KernelPlan::Direct));
        let mut reference = Network::new(&g, MaxOf, |v| Big(v as u16 * 37 % 5000));
        for round in 0..8 {
            net.sync_step_kernel_seeded(round);
            reference.sync_step_seeded(round);
            assert_eq!(net.states(), reference.states());
        }
    }

    /// Coin-driven two-state protocol (RANDOMNESS = 2): the dirty set is
    /// unsound for it, which the scheduling tests below rely on.
    struct Flip;
    impl Protocol for Flip {
        type State = Infect;
        const RANDOMNESS: u32 = 2;
        const COMPILED: bool = true;
        fn transition(&self, _own: Infect, _n: &NeighborView<'_, Infect>, coin: u32) -> Infect {
            if coin == 0 {
                Infect::Healthy
            } else {
                Infect::Infected
            }
        }
    }

    #[test]
    fn probabilistic_protocols_skip_dirty_set() {
        let g = generators::cycle(6);
        let mut a = Network::new(&g, Flip, |_| Infect::Healthy);
        let mut b = Network::new(&g, Flip, |_| Infect::Healthy);
        b.ensure_kernel();
        assert!(!b.kernel().unwrap().uses_dirty_set());
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..10 {
            let seed = rng.next_u64();
            a.sync_step_seeded(seed);
            b.sync_step_kernel_seeded(seed);
            assert_eq!(a.states(), b.states());
        }
    }

    #[test]
    fn double_edge_removal_is_a_noop() {
        // Regression: a second removal of the same edge used to scan a
        // stale row slice and could underflow `row_len`; now it must
        // leave the CSR mirror untouched and reschedule nothing.
        let mut net = infected_path(6);
        net.ensure_kernel();
        while net.sync_step_kernel_seeded(0) > 0 {}
        let mut k = CompiledKernel::new(&net);
        let mut states = net.states().to_vec();
        let mut m = Metrics::default();
        while k.dirty_count() > 0 {
            k.step(net.protocol(), &mut states, &mut m, 0);
        }
        let eligible = k.eligible_count();
        k.on_edge_removed(2, 3);
        assert_eq!(k.dirty_count(), 2);
        let row2 = k.row_len[2];
        let row3 = k.row_len[3];
        // Fire the same surgery again: no row shrinks, nothing new dirty.
        k.on_edge_removed(2, 3);
        k.on_edge_removed(3, 2);
        assert_eq!(k.row_len[2], row2, "row 2 must not shrink again");
        assert_eq!(k.row_len[3], row3, "row 3 must not shrink again");
        assert_eq!(k.dirty_count(), 2, "no-op surgery reschedules nothing");
        assert_eq!(k.eligible_count(), eligible);
        // Phantom edge (never existed): also a no-op.
        k.on_edge_removed(0, 5);
        assert_eq!(k.dirty_count(), 2);
    }

    #[test]
    fn repeated_fault_mid_run_stays_lockstep_with_interpreter() {
        // Network-level double removal: the first succeeds, the second
        // reports `false` and the kernel mirror must stay consistent with
        // the interpreter's topology through the rest of the run.
        let mut a = infected_path(8);
        let mut b = infected_path(8);
        b.ensure_kernel();
        for round in 0..3 {
            a.sync_step_seeded(round);
            b.sync_step_kernel_seeded(round);
        }
        for net in [&mut a, &mut b] {
            assert!(net.remove_edge(4, 5));
            assert!(!net.remove_edge(4, 5), "second removal is a no-op");
            assert!(!net.remove_edge(5, 4), "either orientation");
        }
        for round in 3..10 {
            let ca = a.sync_step_seeded(round);
            let cb = b.sync_step_kernel_seeded(round);
            assert_eq!(ca, cb, "round {round}");
            assert_eq!(a.states(), b.states(), "round {round}");
        }
    }

    #[test]
    fn double_node_removal_is_idempotent() {
        let g = generators::star(5);
        let mut net = Network::new(&g, Spread, |_| Infect::Healthy);
        net.ensure_kernel();
        let mut k = CompiledKernel::new(&net);
        assert_eq!(k.eligible_count(), 5);
        let former: Vec<NodeId> = (1..5).collect();
        k.on_node_removed(0, &former);
        // Hub dead, 4 isolated leaves: nobody is eligible.
        assert_eq!(k.eligible_count(), 0);
        let dirty = k.dirty_count();
        k.on_node_removed(0, &former);
        assert_eq!(k.eligible_count(), 0, "second removal is a no-op");
        assert_eq!(k.dirty_count(), dirty);
    }

    #[test]
    fn eligible_count_tracks_faults() {
        let mut net = infected_path(5);
        net.ensure_kernel();
        let mut k = CompiledKernel::new(&net);
        assert_eq!(k.eligible_count(), 5);
        // Cutting the end edge isolates node 0.
        k.on_edge_removed(0, 1);
        assert_eq!(k.eligible_count(), 4);
        // Removing interior node 2 kills it and isolates node 1.
        k.on_node_removed(2, &[1, 3]);
        assert_eq!(k.eligible_count(), 2, "nodes 3 and 4 remain eligible");
    }

    #[test]
    #[should_panic(expected = "dirty-set scheduling is unsound")]
    fn forcing_dirty_set_on_probabilistic_protocol_panics() {
        let g = generators::cycle(4);
        let net = Network::new(&g, Flip, |_| Infect::Healthy);
        let _ = CompiledKernel::with_schedule(&net, DirtySchedule::Forced);
    }

    #[test]
    fn randomized_protocol_is_never_dirty_scheduled() {
        use crate::obs::RoundLog;
        let g = generators::cycle(6);
        let mut net = Network::new(&g, Flip, |_| Infect::Healthy);
        net.ensure_kernel();
        let mut k = CompiledKernel::new(&net);
        assert!(!k.uses_dirty_set());
        let mut log = RoundLog::default();
        let mut m = Metrics::default();
        let mut states = net.states().to_vec();
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..8 {
            k.step_traced(
                net.protocol(),
                &mut states,
                &mut m,
                rng.next_u64(),
                &mut log,
                0,
            );
        }
        for r in &log.rounds {
            assert_eq!(
                r.scheduled, r.eligible,
                "every eligible node must be scheduled every round"
            );
            assert_eq!(r.activations, r.eligible, "and evaluated");
        }
    }

    #[test]
    fn traced_step_reports_round_metrics() {
        use crate::obs::RoundLog;
        let mut net = infected_path(6);
        net.ensure_kernel();
        let mut k = CompiledKernel::new(&net);
        let mut log = RoundLog::default();
        let mut m = Metrics::default();
        let mut states = net.states().to_vec();
        k.step_traced(net.protocol(), &mut states, &mut m, 0, &mut log, 0);
        let r = log.rounds[0];
        assert_eq!(r.round, 1);
        assert_eq!(r.eligible, 6);
        assert_eq!(r.scheduled, 6, "first round schedules everything");
        assert_eq!(r.activations, 6);
        assert_eq!(r.changes, 1);
        assert_eq!(r.neighbor_reads, 10, "path of 6: degree sum 2*5");
        assert_eq!(r.tabular + r.direct, r.activations, "dispatch totals");
    }

    #[test]
    fn edge_addition_reschedules_endpoints() {
        // Cut the path, reach fixpoint with the right half healthy, then
        // *add* a bridging edge: infection must resume through it.
        let mut net = infected_path(6);
        net.ensure_kernel();
        net.remove_edge(2, 3);
        while net.sync_step_kernel_seeded(0) > 0 {}
        assert_eq!(net.state(3), Infect::Healthy);
        assert!(net.add_edge(1, 4), "fresh bridge");
        assert_eq!(
            net.kernel().unwrap().dirty_count(),
            2,
            "both endpoints rescheduled"
        );
        let mut round = 1;
        while net.sync_step_kernel_seeded(round) > 0 {
            round += 1;
        }
        assert_eq!(net.state(4), Infect::Infected, "spread crossed the bridge");
        assert!(!net.add_edge(1, 4), "duplicate addition reports false");
    }

    #[test]
    fn node_addition_grows_the_mirror() {
        let mut net = infected_path(4);
        net.ensure_kernel();
        while net.sync_step_kernel_seeded(0) > 0 {}
        let v = net.add_node(Infect::Healthy);
        assert_eq!(v, 4);
        assert_eq!(
            net.kernel().unwrap().dirty_count(),
            0,
            "an isolated arrival needs no re-evaluation"
        );
        assert!(net.add_edge(v, 3));
        let mut round = 1;
        while net.sync_step_kernel_seeded(round) > 0 {
            round += 1;
        }
        assert_eq!(net.state(v), Infect::Infected, "arrival caught the spread");
    }

    #[test]
    fn incremental_growth_matches_rebuilt_kernel() {
        // After a mixed churn batch, the incrementally-repaired kernel
        // must evolve bit-identically to a kernel rebuilt from scratch.
        let g = generators::grid(4, 4);
        let init = |v: NodeId| {
            if v == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        };
        let mut inc = Network::new(&g, Spread, init);
        inc.ensure_kernel();
        for round in 0..3 {
            inc.sync_step_kernel_seeded(round);
        }
        // Churn batch: removals and arrivals interleaved.
        inc.remove_edge(0, 1);
        let a = inc.add_node(Infect::Healthy);
        inc.add_edge(a, 5);
        inc.remove_node(10);
        let b = inc.add_node(Infect::Healthy);
        inc.add_edge(b, a);
        inc.add_edge(b, 15);
        // Rebuild path: same topology and states, fresh kernel.
        let snap = inc.graph().snapshot();
        let mut rebuilt = Network::new(&snap, Spread, |v| inc.state(v));
        for w in 0..snap.n() as NodeId {
            if !inc.graph().is_alive(w) {
                rebuilt.remove_node(w);
            }
        }
        rebuilt.ensure_kernel();
        for round in 3..12 {
            let ci = inc.sync_step_kernel_seeded(round);
            let cr = rebuilt.sync_step_kernel_seeded(round);
            assert_eq!(ci, cr, "round {round} change counts");
            assert_eq!(inc.states(), rebuilt.states(), "round {round} states");
        }
    }

    #[test]
    fn slack_growth_doubles_and_compacts() {
        let g = generators::path(2);
        let mut net = Network::new(&g, Spread, |_| Infect::Healthy);
        net.ensure_kernel();
        let mut k = CompiledKernel::new(&net);
        // Row 0 starts tight at cap 1 (degree 1). Growing it past its
        // capacity must relocate with doubling and account dead space.
        k.on_node_added(2, Infect::Healthy);
        k.on_edge_added(0, 2);
        assert_eq!(k.row_len[0], 2);
        assert!(k.row_cap[0] >= 2, "row relocated with more capacity");
        assert!(k.dead_space() > 0, "old allocation abandoned");
        // Hammer one hub row: arena stays bounded by compaction.
        for i in 3..200u32 {
            k.on_node_added(i, Infect::Healthy);
            k.on_edge_added(0, i);
        }
        assert_eq!(k.row_len[0], 199);
        let live: usize = k.row_len.iter().map(|&l| l as usize).sum();
        // Doubling bounds per-row capacity at 2x its live length, and the
        // compaction trigger bounds dead space at half the arena — so the
        // arena is at most ~4x the live entries.
        assert!(
            k.arena_len() <= 4 * live + 64,
            "arena {} not bounded by ~4x live {live}",
            k.arena_len()
        );
        assert!(
            k.dead_space() * 2 <= k.arena_len(),
            "compaction keeps dead space under half the arena"
        );
        // The row must still be intact: every target present exactly once.
        let start = k.offsets[0] as usize;
        let mut row: Vec<NodeId> = k.targets[start..start + k.row_len[0] as usize].to_vec();
        row.sort_unstable();
        let want: Vec<NodeId> = std::iter::once(1).chain(2..200).collect();
        assert_eq!(row, want);
    }

    /// Abandons removable `ballast` nodes until the *next* growth of
    /// `hub`'s (full) row must run the prospective compaction inside
    /// `grow_row`. Returns the hub row capacity at the armed point.
    ///
    /// Before the removal-accounting fix, a removed node's capacity was
    /// never added to `dead_space`, so the trigger window is unreachable
    /// and the final assertion here fails — this helper is the pre-fix
    /// discriminator for both mid-growth tests below.
    fn arm_mid_growth_compaction(
        net: &mut Network<Spread>,
        hub: NodeId,
        ballast: &[NodeId],
    ) -> usize {
        let cap = {
            let k = net.kernel().unwrap();
            assert_eq!(
                k.row_len[hub as usize], k.row_cap[hub as usize],
                "hub row must be full so the next push grows it"
            );
            k.row_cap[hub as usize] as usize
        };
        for &v in ballast {
            {
                let k = net.kernel().unwrap();
                if (k.dead_space() + cap) * 2 > k.arena_len() {
                    return cap;
                }
            }
            assert!(net.remove_node(v));
        }
        let k = net.kernel().unwrap();
        assert!(
            (k.dead_space() + cap) * 2 > k.arena_len(),
            "abandoned {} ballast rows without arming the compaction \
             trigger: dead space {} of arena {} (removal accounting lost)",
            ballast.len(),
            k.dead_space(),
            k.arena_len()
        );
        cap
    }

    /// Audits every live CSR row against a kernel rebuilt from scratch,
    /// then runs both in lockstep for `rounds`.
    fn assert_matches_rebuilt(net: &mut Network<Spread>, rounds: std::ops::Range<u64>) {
        let snap = net.graph().snapshot();
        let mut rebuilt = Network::new(&snap, Spread, |v| net.state(v));
        for w in 0..snap.n() as NodeId {
            if !net.graph().is_alive(w) {
                rebuilt.remove_node(w);
            }
        }
        rebuilt.ensure_kernel();
        {
            let (ki, kr) = (net.kernel().unwrap(), rebuilt.kernel().unwrap());
            for w in 0..snap.n() as NodeId {
                if net.graph().is_alive(w) {
                    let mut a = ki.row(w).to_vec();
                    let mut b = kr.row(w).to_vec();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "row {w} diverged from the rebuilt kernel");
                }
            }
        }
        for round in rounds {
            let ca = net.sync_step_kernel_seeded(round);
            let cb = rebuilt.sync_step_kernel_seeded(round);
            assert_eq!(ca, cb, "round {round} change counts");
            assert_eq!(net.states(), rebuilt.states(), "round {round} states");
        }
    }

    /// Ballast whose abandonment never touches the hub rows: isolated
    /// pairs `v—w`, so each removed node contributes its whole cap-2 row
    /// to dead space (1:1 dead-to-arena ratio within the ballast region).
    fn ballast_pairs(net: &mut Network<Spread>, pairs: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(2 * pairs);
        for _ in 0..pairs {
            let v = net.add_node(Infect::Healthy);
            let w = net.add_node(Infect::Healthy);
            assert!(net.add_edge(v, w));
            out.push(v);
            out.push(w);
        }
        out
    }

    #[test]
    fn compaction_fires_mid_growth_on_interior_row() {
        // Regression for the mid-growth compaction bug: row 0 has the
        // lowest index, so compaction packs it *first* and other rows
        // follow it. Before the fix, a compaction firing inside
        // `grow_row` repacked the arena tight after the grown slack was
        // reserved, and the pending neighbour write landed in the next
        // row's first slot instead of row 0's own slack.
        let g = generators::path(2);
        let mut net = Network::new(&g, Spread, |v| {
            if v == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        });
        net.ensure_kernel();
        // Fill row 0 until it sits exactly at a doubling boundary.
        let mut spokes = vec![1u32];
        loop {
            let k = net.kernel().unwrap();
            if k.row_cap[0] >= 64 && k.row_len[0] == k.row_cap[0] {
                break;
            }
            let v = net.add_node(Infect::Healthy);
            assert!(net.add_edge(0, v));
            spokes.push(v);
        }
        let ballast = ballast_pairs(&mut net, 300);
        let cap = arm_mid_growth_compaction(&mut net, 0, &ballast);
        let dead_before = net.kernel().unwrap().dead_space();
        // The poisoned push: row 0 is full and the prospective trigger
        // is armed, so this growth compacts first, relocates the row,
        // and the pending write must land in the fresh slack.
        let trigger = net.add_node(Infect::Healthy);
        assert!(net.add_edge(0, trigger));
        spokes.push(trigger);
        {
            let k = net.kernel().unwrap();
            k.validate_arena();
            // Compaction observably ran inside the growth: all prior
            // garbage was reclaimed, leaving exactly the relocated
            // row's tightened capacity behind.
            assert_eq!(k.dead_space(), cap, "compaction ran inside grow_row");
            assert!(dead_before > k.dead_space(), "garbage was reclaimed");
            let mut row: Vec<NodeId> = k.row(0).to_vec();
            row.sort_unstable();
            spokes.sort_unstable();
            assert_eq!(row, spokes, "write landed in row 0's own slack");
        }
        assert_matches_rebuilt(&mut net, 0..5);
    }

    #[test]
    fn compaction_fires_mid_growth_on_last_arena_row() {
        // Same scenario, but the grown row is the highest-index node:
        // compaction packs it at the very end of the arena, so before
        // the fix the pending write targeted one slot *past* the arena
        // (an out-of-bounds panic rather than silent corruption).
        let g = generators::path(2);
        let mut net = Network::new(&g, Spread, |v| {
            if v == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        });
        net.ensure_kernel();
        // Persistent partners the hub will connect to, plus an isolated
        // spare kept for the poisoned push: its empty row (cap 0) grows
        // without abandoning anything, so the only dead space left after
        // the trigger is the hub row's own relocation.
        let partners: Vec<NodeId> = (0..64).map(|_| net.add_node(Infect::Healthy)).collect();
        let spare = net.add_node(Infect::Healthy);
        let ballast = ballast_pairs(&mut net, 300);
        // The hub arrives last: highest node index, hence the last row
        // the compaction pass packs.
        let hub = net.add_node(Infect::Healthy);
        for &p in &partners {
            assert!(net.add_edge(hub, p));
        }
        {
            let k = net.kernel().unwrap();
            assert_eq!(k.row_len[hub as usize], 64);
            assert_eq!(k.row_cap[hub as usize], 64, "doubling lands exactly full");
        }
        let cap = arm_mid_growth_compaction(&mut net, hub, &ballast);
        // The poisoned push: the spare is not yet adjacent to the hub.
        assert!(net.add_edge(hub, spare));
        {
            let k = net.kernel().unwrap();
            k.validate_arena();
            assert_eq!(k.dead_space(), cap, "compaction ran inside grow_row");
            let mut row: Vec<NodeId> = k.row(hub).to_vec();
            row.sort_unstable();
            let mut want = partners.clone();
            want.push(spare);
            want.sort_unstable();
            assert_eq!(row, want, "write stayed inside the arena");
        }
        assert_matches_rebuilt(&mut net, 0..5);
    }

    #[test]
    fn removal_heavy_churn_keeps_arena_bounded() {
        // Seeded removal-heavy sweep. Before the fix, a removed node's
        // capacity was never counted as dead space, compaction never
        // fired, and the arena grew linearly with churn volume. After
        // it, doubling bounds each live row at 2x its length and the
        // compaction trigger bounds garbage at half the arena, so the
        // arena stays within ~4x the live entries no matter how long
        // the churn runs.
        let g = generators::grid(8, 8);
        let mut net = Network::new(&g, Spread, |v| {
            if v == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        });
        net.ensure_kernel();
        let mut rng = Xoshiro256::seed_from_u64(0x0C5A);
        let mut alive: Vec<NodeId> = (1..64).collect();
        for cycle in 0..30u64 {
            let removals = alive.len() / 2;
            for _ in 0..removals {
                let i = rng.next_u64() as usize % alive.len();
                let v = alive.swap_remove(i);
                assert!(net.remove_node(v));
            }
            for _ in 0..removals {
                let v = net.add_node(Infect::Healthy);
                for _ in 0..3 {
                    let w = alive[rng.next_u64() as usize % alive.len()];
                    net.add_edge(v, w);
                }
                alive.push(v);
            }
            for r in 0..2 {
                net.sync_step_kernel_seeded(cycle * 2 + r);
            }
            net.kernel().unwrap().validate_arena();
        }
        let k = net.kernel().unwrap();
        let live: usize = k.row_len.iter().map(|&l| l as usize).sum();
        assert!(live > 0, "churn must leave live structure behind");
        assert!(
            k.arena_len() <= 4 * live + 64,
            "arena {} not bounded by ~4x live {live}",
            k.arena_len()
        );
    }

    #[test]
    fn stale_node_addition_is_skipped() {
        let mut net = infected_path(3);
        net.ensure_kernel();
        let mut k = CompiledKernel::new(&net);
        k.on_node_added(7, Infect::Healthy); // not the next slot: must be ignored
        assert_eq!(k.row_len.len(), 3);
        k.on_node_added(3, Infect::Healthy);
        assert_eq!(k.row_len.len(), 4);
    }

    #[test]
    fn duplicate_edge_addition_is_a_noop() {
        let mut net = infected_path(4);
        net.ensure_kernel();
        let mut k = CompiledKernel::new(&net);
        let mut states = net.states().to_vec();
        let mut m = Metrics::default();
        while k.dirty_count() > 0 {
            k.step(net.protocol(), &mut states, &mut m, 0);
        }
        k.on_edge_added(1, 2); // already adjacent in the path
        assert_eq!(k.dirty_count(), 0, "phantom addition reschedules nothing");
        assert_eq!(k.row_len[1], 2);
    }

    #[test]
    fn tabular_fold_increment_saturates_into_tail() {
        // bound 2, period 3: classes 0,1 exact; 2,3,4 = "≥2, ≡0,1,2 (mod 3)".
        assert_eq!(class_of(0, 2, 3), 0);
        assert_eq!(class_of(1, 2, 3), 1);
        assert_eq!(class_of(2, 2, 3), 2);
        assert_eq!(class_of(4, 2, 3), 4);
        assert_eq!(class_of(5, 2, 3), 2);
        assert_eq!(class_of(7, 2, 3), 4);
    }
}
