//! Timed fault plans for the decreasing-benign fault model (Section 1).

use fssga_graph::rng::Xoshiro256;
use fssga_graph::{DynGraph, NodeId};

use crate::network::Network;
use crate::protocol::Protocol;

/// One benign fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An edge dies.
    Edge(NodeId, NodeId),
    /// A node dies (with all incident edges).
    Node(NodeId),
}

/// A fault scheduled at a point in (round/step) time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The time at or after which the fault fires.
    pub time: u64,
    /// What dies.
    pub kind: FaultKind,
}

/// A time-sorted sequence of faults, applied incrementally as simulated
/// time advances.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// Builds a plan; events are sorted by time (stable).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.time);
        Self { events, cursor: 0 }
    }

    /// An empty plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// All events (sorted).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events not yet applied.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Applies every not-yet-applied fault with `time <= now`. Returns the
    /// number of faults applied. Faults that name already-dead structure
    /// are silently skipped (a plan may kill a node and later "kill" one
    /// of its edges).
    pub fn apply_due<P: Protocol>(&mut self, net: &mut Network<P>, now: u64) -> usize {
        let mut applied = 0;
        while self.cursor < self.events.len() && self.events[self.cursor].time <= now {
            match self.events[self.cursor].kind {
                FaultKind::Edge(u, v) => {
                    net.remove_edge(u, v);
                }
                FaultKind::Node(v) => {
                    net.remove_node(v);
                }
            }
            self.cursor += 1;
            applied += 1;
        }
        applied
    }

    /// Generates a random plan: `count` faults at uniform times in
    /// `0..horizon`, each an edge fault with probability `edge_bias`
    /// (else a node fault), drawn from the *initial* topology. Nodes in
    /// `protected` are never killed directly (their edges may still be) —
    /// this is how sensitivity experiments spare the critical set.
    ///
    /// Always realizes exactly `count` events as long as at least one
    /// candidate pool (edges, or unprotected alive nodes) is non-empty:
    /// when the biased coin asks for a fault kind whose pool is empty, the
    /// event is drawn from the other pool instead of being dropped. If
    /// both pools are empty the plan is empty — callers can detect that
    /// via `events().len()`.
    pub fn random(
        graph: &DynGraph,
        count: usize,
        horizon: u64,
        edge_bias: f64,
        protected: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> Self {
        let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
        let nodes: Vec<NodeId> = graph
            .alive_nodes()
            .filter(|v| !protected.contains(v))
            .collect();
        if edges.is_empty() && nodes.is_empty() {
            return Self::none();
        }
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let time = rng.gen_range(horizon.max(1));
            let want_edge = (rng.gen_bool(edge_bias) && !edges.is_empty()) || nodes.is_empty();
            let kind = if want_edge {
                let &(u, v) = rng.choose(&edges);
                FaultKind::Edge(u, v)
            } else {
                FaultKind::Node(*rng.choose(&nodes))
            };
            events.push(FaultEvent { time, kind });
        }
        Self::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use crate::view::NeighborView;
    use fssga_graph::generators;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Unit {
        Only,
    }
    impl_state_space!(Unit { Only });

    struct Idle;
    impl Protocol for Idle {
        type State = Unit;
        fn transition(&self, own: Unit, _n: &NeighborView<'_, Unit>, _c: u32) -> Unit {
            own
        }
    }

    fn net(g: &fssga_graph::Graph) -> Network<Idle> {
        Network::new(g, Idle, |_| Unit::Only)
    }

    #[test]
    fn events_fire_in_time_order() {
        let g = generators::path(5);
        let mut n = net(&g);
        let mut plan = FaultPlan::new(vec![
            FaultEvent {
                time: 5,
                kind: FaultKind::Edge(1, 2),
            },
            FaultEvent {
                time: 2,
                kind: FaultKind::Node(4),
            },
        ]);
        assert_eq!(plan.remaining(), 2);
        assert_eq!(plan.apply_due(&mut n, 1), 0);
        assert_eq!(plan.apply_due(&mut n, 2), 1);
        assert!(!n.graph().is_alive(4));
        assert!(n.graph().has_edge(1, 2));
        assert_eq!(plan.apply_due(&mut n, 10), 1);
        assert!(!n.graph().has_edge(1, 2));
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn double_kill_is_harmless() {
        let g = generators::path(3);
        let mut n = net(&g);
        let mut plan = FaultPlan::new(vec![
            FaultEvent {
                time: 0,
                kind: FaultKind::Node(1),
            },
            FaultEvent {
                time: 1,
                kind: FaultKind::Edge(0, 1),
            },
            FaultEvent {
                time: 2,
                kind: FaultKind::Node(1),
            },
        ]);
        assert_eq!(plan.apply_due(&mut n, 100), 3);
        assert_eq!(n.graph().n_alive(), 2);
    }

    #[test]
    fn random_plan_respects_protection() {
        let g = generators::complete(8);
        let base = net(&g);
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..20 {
            let plan = FaultPlan::random(base.graph(), 10, 50, 0.0, &[0, 1], &mut rng);
            for e in plan.events() {
                if let FaultKind::Node(v) = e.kind {
                    assert!(v != 0 && v != 1, "protected node scheduled to die");
                }
                assert!(e.time < 50);
            }
        }
    }

    #[test]
    fn random_plan_realizes_exact_count() {
        // Regression: node faults requested (edge_bias = 0) while every
        // node is protected used to silently drop events via `continue`;
        // now the events fall back to the edge pool.
        let g = generators::cycle(6);
        let base = net(&g);
        let mut rng = Xoshiro256::seed_from_u64(17);
        let all: Vec<NodeId> = (0..6).collect();
        for count in [1usize, 5, 12] {
            let plan = FaultPlan::random(base.graph(), count, 30, 0.0, &all, &mut rng);
            assert_eq!(plan.events().len(), count, "count = {count}");
            assert!(plan
                .events()
                .iter()
                .all(|e| matches!(e.kind, FaultKind::Edge(_, _))));
        }
    }

    #[test]
    fn random_plan_empty_pools_yield_empty_plan() {
        let g = generators::path(3);
        let mut n = net(&g);
        for v in 0..3 {
            n.remove_node(v);
        }
        let mut rng = Xoshiro256::seed_from_u64(18);
        let plan = FaultPlan::random(n.graph(), 10, 20, 0.5, &[], &mut rng);
        assert!(plan.events().is_empty());
    }

    #[test]
    fn random_plan_edge_bias_one_yields_edges_only() {
        let g = generators::cycle(10);
        let base = net(&g);
        let mut rng = Xoshiro256::seed_from_u64(8);
        let plan = FaultPlan::random(base.graph(), 15, 10, 1.0, &[], &mut rng);
        assert!(plan
            .events()
            .iter()
            .all(|e| matches!(e.kind, FaultKind::Edge(_, _))));
    }
}
