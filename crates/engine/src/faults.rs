//! Timed fault plans for the decreasing-benign fault model (Section 1),
//! extended with *arrival* events for the streaming churn engine.
//!
//! The paper's model only removes structure; [`FaultKind::AddNode`] and
//! [`FaultKind::AddEdge`] go beyond it so that long-running churn
//! workloads (ROADMAP item 3) can grow the network live. Removal-only
//! plans behave exactly as before, and legacy trace text parses
//! unchanged.

use fssga_graph::rng::Xoshiro256;
use fssga_graph::{DynGraph, NodeId};

use crate::network::Network;
use crate::protocol::{Protocol, StateSpace};

/// One churn event: a benign fault (removal) or an arrival.
///
/// The derived `Ord` is part of the replay contract: same-time events are
/// applied in `FaultKind` order (removals before arrivals, edges before
/// nodes within removals, node arrivals before edge arrivals), then by
/// ids — see [`FaultPlan::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// An edge dies.
    Edge(NodeId, NodeId),
    /// A node dies (with all incident edges).
    Node(NodeId),
    /// A fresh node joins the network, isolated, with the given id. The
    /// id must equal the node-slot count at application time (ids grow
    /// monotonically; dead slots are never recycled), otherwise the event
    /// is skipped as stale.
    AddNode(NodeId),
    /// A new edge appears between two alive nodes. Skipped if either
    /// endpoint is dead or the edge already exists.
    AddEdge(NodeId, NodeId),
}

impl FaultKind {
    /// The trace-text fields for this kind, as written inside `fault` /
    /// `event` lines: `edge {u} {v}`, `node {v}`, `add-node {v}`,
    /// `add-edge {u} {v}`. The removal tags are the legacy
    /// `campaign-trace v1` vocabulary; the arrival tags extend it without
    /// disturbing old traces.
    pub fn to_trace_fields(&self) -> String {
        match *self {
            FaultKind::Edge(u, v) => format!("edge {u} {v}"),
            FaultKind::Node(v) => format!("node {v}"),
            FaultKind::AddNode(v) => format!("add-node {v}"),
            FaultKind::AddEdge(u, v) => format!("add-edge {u} {v}"),
        }
    }

    /// Parses the fields written by [`Self::to_trace_fields`] from a
    /// whitespace token stream. Returns `None` on malformed input.
    pub fn from_trace_fields<'a>(parts: &mut impl Iterator<Item = &'a str>) -> Option<FaultKind> {
        fn id<'a>(parts: &mut impl Iterator<Item = &'a str>) -> Option<NodeId> {
            parts.next()?.parse().ok()
        }
        match parts.next()? {
            "edge" => Some(FaultKind::Edge(id(parts)?, id(parts)?)),
            "node" => Some(FaultKind::Node(id(parts)?)),
            "add-node" => Some(FaultKind::AddNode(id(parts)?)),
            "add-edge" => Some(FaultKind::AddEdge(id(parts)?, id(parts)?)),
            _ => None,
        }
    }
}

/// A fault scheduled at a point in (round/step) time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The time at or after which the fault fires.
    pub time: u64,
    /// What dies (or joins).
    pub kind: FaultKind,
}

/// A time-sorted sequence of faults, applied incrementally as simulated
/// time advances.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// Builds a plan; events are sorted by `(time, kind, ids)`. The full
    /// key (not just time) makes the ordering a function of the event
    /// *set*: shuffled input vectors replay bit-identically.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.time, e.kind));
        Self { events, cursor: 0 }
    }

    /// An empty plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// All events (sorted).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events not yet applied.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Applies every not-yet-applied fault with `time <= now`. Returns the
    /// number of faults applied. Faults that name already-dead or stale
    /// structure are silently skipped (a plan may kill a node and later
    /// "kill" one of its edges). Arriving nodes start in
    /// `P::State::from_index(0)`; use [`Self::apply_due_with`] to choose
    /// the initial state.
    pub fn apply_due<P: Protocol>(&mut self, net: &mut Network<P>, now: u64) -> usize {
        self.apply_due_with(net, now, |_| P::State::from_index(0))
    }

    /// [`Self::apply_due`] with an explicit initial state for arriving
    /// nodes (called with the new node's id).
    pub fn apply_due_with<P: Protocol>(
        &mut self,
        net: &mut Network<P>,
        now: u64,
        mut init: impl FnMut(NodeId) -> P::State,
    ) -> usize {
        let mut applied = 0;
        while self.cursor < self.events.len() && self.events[self.cursor].time <= now {
            match self.events[self.cursor].kind {
                FaultKind::Edge(u, v) => {
                    net.remove_edge(u, v);
                }
                FaultKind::Node(v) => {
                    net.remove_node(v);
                }
                FaultKind::AddNode(v) => {
                    if v as usize == net.n() {
                        let state = init(v);
                        net.add_node(state);
                    }
                }
                FaultKind::AddEdge(u, v) => {
                    net.add_edge(u, v);
                }
            }
            self.cursor += 1;
            applied += 1;
        }
        applied
    }

    /// Generates a random removal-only plan: `count` faults at uniform
    /// times in `0..horizon`, each an edge fault with probability
    /// `edge_bias` (else a node fault), drawn from the *initial* topology.
    /// Nodes in `protected` are never killed directly (their edges may
    /// still be) — this is how sensitivity experiments spare the critical
    /// set.
    ///
    /// Always realizes exactly `count` events as long as at least one
    /// candidate pool (edges, or unprotected alive nodes) is non-empty:
    /// when the biased coin asks for a fault kind whose pool is empty, the
    /// event is drawn from the other pool instead of being dropped. If
    /// both pools are empty the plan is empty — callers can detect that
    /// via `events().len()`.
    pub fn random(
        graph: &DynGraph,
        count: usize,
        horizon: u64,
        edge_bias: f64,
        protected: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> Self {
        let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
        let nodes: Vec<NodeId> = graph
            .alive_nodes()
            .filter(|v| !protected.contains(v))
            .collect();
        if edges.is_empty() && nodes.is_empty() {
            return Self::none();
        }
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let time = rng.gen_range(horizon.max(1));
            let want_edge = (rng.gen_bool(edge_bias) && !edges.is_empty()) || nodes.is_empty();
            let kind = if want_edge {
                let &(u, v) = rng.choose(&edges);
                FaultKind::Edge(u, v)
            } else {
                FaultKind::Node(*rng.choose(&nodes))
            };
            events.push(FaultEvent { time, kind });
        }
        Self::new(events)
    }

    /// [`Self::random`] extended with arrivals: each event is an arrival
    /// with probability `arrival_bias` (an [`FaultKind::AddEdge`] between
    /// two currently non-adjacent alive nodes when the `edge_bias` coin
    /// says edge and such a pair is found, else a fresh
    /// [`FaultKind::AddNode`]), and a departure otherwise. Events are
    /// assigned in chronological order against an evolving copy of the
    /// topology, so departures may target earlier arrivals and `AddNode`
    /// ids increase with time (the validity condition
    /// [`Self::apply_due_with`] checks). With `arrival_bias = 0.0` this
    /// is exactly [`Self::random`].
    #[allow(clippy::too_many_arguments)]
    pub fn random_with_arrivals(
        graph: &DynGraph,
        count: usize,
        horizon: u64,
        edge_bias: f64,
        arrival_bias: f64,
        protected: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> Self {
        if arrival_bias <= 0.0 {
            return Self::random(graph, count, horizon, edge_bias, protected, rng);
        }
        let mut sim = graph.clone();
        let mut times: Vec<u64> = (0..count).map(|_| rng.gen_range(horizon.max(1))).collect();
        times.sort_unstable();
        let mut events = Vec::with_capacity(count);
        for time in times {
            let arrival = rng.gen_bool(arrival_bias);
            let kind = if arrival {
                Self::draw_arrival(&mut sim, edge_bias, rng)
            } else {
                match Self::draw_departure(&mut sim, edge_bias, protected, rng) {
                    Some(kind) => kind,
                    // Nothing left to remove: fall back to an arrival so
                    // the plan still realizes exactly `count` events.
                    None => Self::draw_arrival(&mut sim, edge_bias, rng),
                }
            };
            events.push(FaultEvent { time, kind });
        }
        Self::new(events)
    }

    /// Draws one arrival against `sim` and applies it there.
    fn draw_arrival(sim: &mut DynGraph, edge_bias: f64, rng: &mut Xoshiro256) -> FaultKind {
        if rng.gen_bool(edge_bias) && sim.n_alive() >= 2 {
            let pool: Vec<NodeId> = sim.alive_nodes().collect();
            for _ in 0..8 {
                let u = *rng.choose(&pool);
                let v = *rng.choose(&pool);
                if u != v && !sim.has_edge(u, v) {
                    let (u, v) = (u.min(v), u.max(v));
                    sim.add_edge(u, v);
                    return FaultKind::AddEdge(u, v);
                }
            }
            // Dense neighbourhood — give up on finding a missing pair.
        }
        FaultKind::AddNode(sim.add_node())
    }

    /// Draws one departure against `sim` and applies it there. `None` if
    /// both pools are empty.
    fn draw_departure(
        sim: &mut DynGraph,
        edge_bias: f64,
        protected: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> Option<FaultKind> {
        let edges: Vec<(NodeId, NodeId)> = sim.edges().collect();
        let nodes: Vec<NodeId> = sim
            .alive_nodes()
            .filter(|v| !protected.contains(v))
            .collect();
        if edges.is_empty() && nodes.is_empty() {
            return None;
        }
        let want_edge = (rng.gen_bool(edge_bias) && !edges.is_empty()) || nodes.is_empty();
        Some(if want_edge {
            let &(u, v) = rng.choose(&edges);
            sim.remove_edge(u, v);
            FaultKind::Edge(u, v)
        } else {
            let v = *rng.choose(&nodes);
            sim.remove_node(v);
            FaultKind::Node(v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use crate::view::NeighborView;
    use fssga_graph::generators;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Unit {
        Only,
    }
    impl_state_space!(Unit { Only });

    struct Idle;
    impl Protocol for Idle {
        type State = Unit;
        fn transition(&self, own: Unit, _n: &NeighborView<'_, Unit>, _c: u32) -> Unit {
            own
        }
    }

    fn net(g: &fssga_graph::Graph) -> Network<Idle> {
        Network::new(g, Idle, |_| Unit::Only)
    }

    #[test]
    fn events_fire_in_time_order() {
        let g = generators::path(5);
        let mut n = net(&g);
        let mut plan = FaultPlan::new(vec![
            FaultEvent {
                time: 5,
                kind: FaultKind::Edge(1, 2),
            },
            FaultEvent {
                time: 2,
                kind: FaultKind::Node(4),
            },
        ]);
        assert_eq!(plan.remaining(), 2);
        assert_eq!(plan.apply_due(&mut n, 1), 0);
        assert_eq!(plan.apply_due(&mut n, 2), 1);
        assert!(!n.graph().is_alive(4));
        assert!(n.graph().has_edge(1, 2));
        assert_eq!(plan.apply_due(&mut n, 10), 1);
        assert!(!n.graph().has_edge(1, 2));
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn double_kill_is_harmless() {
        let g = generators::path(3);
        let mut n = net(&g);
        let mut plan = FaultPlan::new(vec![
            FaultEvent {
                time: 0,
                kind: FaultKind::Node(1),
            },
            FaultEvent {
                time: 1,
                kind: FaultKind::Edge(0, 1),
            },
            FaultEvent {
                time: 2,
                kind: FaultKind::Node(1),
            },
        ]);
        assert_eq!(plan.apply_due(&mut n, 100), 3);
        assert_eq!(n.graph().n_alive(), 2);
    }

    #[test]
    fn arrivals_apply_in_order() {
        let g = generators::path(3); // slots 0,1,2
        let mut n = net(&g);
        let mut plan = FaultPlan::new(vec![
            FaultEvent {
                time: 1,
                kind: FaultKind::AddNode(3),
            },
            FaultEvent {
                time: 1,
                kind: FaultKind::AddEdge(3, 2),
            },
            FaultEvent {
                time: 2,
                kind: FaultKind::AddNode(9), // stale id: skipped
            },
        ]);
        assert_eq!(plan.apply_due(&mut n, 1), 2);
        assert_eq!(n.graph().n_slots(), 4);
        assert!(n.graph().has_edge(2, 3));
        assert_eq!(plan.apply_due(&mut n, 5), 1, "stale arrival still consumed");
        assert_eq!(n.graph().n_slots(), 4, "stale arrival is a no-op");
        assert!(n.graph().is_connected());
    }

    #[test]
    fn same_time_arrival_pair_orders_node_before_edge() {
        // Derived FaultKind order: AddNode < AddEdge, so an arrival pair
        // scheduled at the same time works regardless of input order.
        let g = generators::path(2);
        let mut n = net(&g);
        let mut plan = FaultPlan::new(vec![
            FaultEvent {
                time: 3,
                kind: FaultKind::AddEdge(2, 0),
            },
            FaultEvent {
                time: 3,
                kind: FaultKind::AddNode(2),
            },
        ]);
        plan.apply_due(&mut n, 3);
        assert!(n.graph().has_edge(0, 2));
    }

    #[test]
    fn shuffled_inputs_replay_bit_identically() {
        // Satellite: same-round events are ordered by (time, kind, ids),
        // so the sorted plan is a function of the event *set*.
        let base = vec![
            FaultEvent {
                time: 4,
                kind: FaultKind::Node(1),
            },
            FaultEvent {
                time: 4,
                kind: FaultKind::Edge(2, 3),
            },
            FaultEvent {
                time: 4,
                kind: FaultKind::Edge(0, 1),
            },
            FaultEvent {
                time: 4,
                kind: FaultKind::AddNode(6),
            },
            FaultEvent {
                time: 2,
                kind: FaultKind::AddEdge(0, 5),
            },
            FaultEvent {
                time: 4,
                kind: FaultKind::Node(0),
            },
        ];
        let reference = FaultPlan::new(base.clone());
        let mut rng = Xoshiro256::seed_from_u64(99);
        for _ in 0..20 {
            let mut shuffled = base.clone();
            rng.shuffle(&mut shuffled);
            assert_eq!(FaultPlan::new(shuffled).events(), reference.events());
        }
    }

    #[test]
    fn random_plan_respects_protection() {
        let g = generators::complete(8);
        let base = net(&g);
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..20 {
            let plan = FaultPlan::random(base.graph(), 10, 50, 0.0, &[0, 1], &mut rng);
            for e in plan.events() {
                if let FaultKind::Node(v) = e.kind {
                    assert!(v != 0 && v != 1, "protected node scheduled to die");
                }
                assert!(e.time < 50);
            }
        }
    }

    #[test]
    fn random_plan_realizes_exact_count() {
        // Regression: node faults requested (edge_bias = 0) while every
        // node is protected used to silently drop events via `continue`;
        // now the events fall back to the edge pool.
        let g = generators::cycle(6);
        let base = net(&g);
        let mut rng = Xoshiro256::seed_from_u64(17);
        let all: Vec<NodeId> = (0..6).collect();
        for count in [1usize, 5, 12] {
            let plan = FaultPlan::random(base.graph(), count, 30, 0.0, &all, &mut rng);
            assert_eq!(plan.events().len(), count, "count = {count}");
            assert!(plan
                .events()
                .iter()
                .all(|e| matches!(e.kind, FaultKind::Edge(_, _))));
        }
    }

    #[test]
    fn random_plan_empty_pools_yield_empty_plan() {
        let g = generators::path(3);
        let mut n = net(&g);
        for v in 0..3 {
            n.remove_node(v);
        }
        let mut rng = Xoshiro256::seed_from_u64(18);
        let plan = FaultPlan::random(n.graph(), 10, 20, 0.5, &[], &mut rng);
        assert!(plan.events().is_empty());
    }

    #[test]
    fn random_plan_edge_bias_one_yields_edges_only() {
        let g = generators::cycle(10);
        let base = net(&g);
        let mut rng = Xoshiro256::seed_from_u64(8);
        let plan = FaultPlan::random(base.graph(), 15, 10, 1.0, &[], &mut rng);
        assert!(plan
            .events()
            .iter()
            .all(|e| matches!(e.kind, FaultKind::Edge(_, _))));
    }

    #[test]
    fn arrival_plan_applies_cleanly_and_realizes_count() {
        let g = generators::cycle(8);
        let mut rng = Xoshiro256::seed_from_u64(41);
        for arrival_bias in [0.3, 0.7, 1.0] {
            let base = net(&g);
            let mut plan = FaultPlan::random_with_arrivals(
                base.graph(),
                24,
                40,
                0.5,
                arrival_bias,
                &[],
                &mut rng,
            );
            assert_eq!(plan.events().len(), 24);
            if arrival_bias >= 1.0 {
                assert!(plan
                    .events()
                    .iter()
                    .all(|e| matches!(e.kind, FaultKind::AddNode(_) | FaultKind::AddEdge(_, _))));
            }
            // Every AddNode must name the id that is fresh when it fires:
            // replay onto a live network and count the realized arrivals.
            let wanted = plan
                .events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::AddNode(_)))
                .count();
            let mut n = net(&g);
            plan.apply_due(&mut n, u64::MAX);
            assert_eq!(n.graph().n_slots(), 8 + wanted, "no stale AddNode ids");
        }
    }

    #[test]
    fn arrival_bias_zero_matches_random() {
        let g = generators::cycle(6);
        let base = net(&g);
        let a = FaultPlan::random_with_arrivals(
            base.graph(),
            10,
            20,
            0.5,
            0.0,
            &[],
            &mut Xoshiro256::seed_from_u64(5),
        );
        let b = FaultPlan::random(
            base.graph(),
            10,
            20,
            0.5,
            &[],
            &mut Xoshiro256::seed_from_u64(5),
        );
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn trace_fields_round_trip() {
        for kind in [
            FaultKind::Edge(3, 9),
            FaultKind::Node(7),
            FaultKind::AddNode(12),
            FaultKind::AddEdge(12, 1),
        ] {
            let text = kind.to_trace_fields();
            let parsed = FaultKind::from_trace_fields(&mut text.split_whitespace());
            assert_eq!(parsed, Some(kind), "{text}");
        }
        assert_eq!(
            FaultKind::from_trace_fields(&mut "frob 1 2".split_whitespace()),
            None
        );
        assert_eq!(
            FaultKind::from_trace_fields(&mut "edge 1".split_whitespace()),
            None
        );
    }
}
