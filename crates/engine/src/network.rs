//! A network of identical automata: graph + per-node states + the O(deg)
//! activation machinery.

use std::cell::RefCell;

use fssga_core::multiset::Multiset;
use fssga_graph::rng::{SplitMix64, Xoshiro256};
use fssga_graph::{DynGraph, Graph, NodeId};

use crate::kernel::{CompiledKernel, KernelPlan};
use crate::obs::{NullTracer, RoundMetrics, Tracer};
#[cfg(feature = "parallel")]
use crate::pool::ShardPool;
use crate::protocol::{Protocol, StateSpace};
use crate::view::{NeighborView, QueryRecorder};

/// The coin a node draws in a synchronous round: a pure function of
/// `(round_seed, node, r)`, shared by the sequential stepper, the parallel
/// stepper, and the table-level interpreter so that all three agree
/// bit-for-bit.
#[inline]
pub fn round_coin(round_seed: u64, v: NodeId, r: u32) -> u32 {
    if r <= 1 {
        return 0;
    }
    let mut sm = SplitMix64::new(round_seed ^ (v as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    (sm.next_u64() % r as u64) as u32
}

/// Execution counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Individual node activations performed.
    pub activations: u64,
    /// Synchronous rounds performed.
    pub rounds: u64,
    /// Activations that changed the node's state.
    pub changes: u64,
}

impl Metrics {
    /// Field-wise difference `self - earlier`. The counters are monotone,
    /// so this is the cost of everything executed since `earlier` was
    /// cloned — what [`crate::RunReport`] reports per run.
    pub fn since(&self, earlier: &Metrics) -> Metrics {
        Metrics {
            activations: self.activations - earlier.activations,
            rounds: self.rounds - earlier.rounds,
            changes: self.changes - earlier.changes,
        }
    }
}

/// A graph whose every node runs the same [`Protocol`] automaton.
///
/// The graph is a [`DynGraph`]: the paper's *decreasing benign faults*
/// (edge/node deletion) can be injected mid-run. A node with no remaining
/// neighbours never activates — an SM function's domain is `Q^+`, so a
/// degree-0 node has nothing to read and simply holds its state; dead
/// nodes likewise freeze.
pub struct Network<P: Protocol> {
    protocol: P,
    graph: DynGraph,
    states: Vec<P::State>,
    next: Vec<P::State>,
    scratch: Vec<u32>,
    touched: Vec<u32>,
    recorder: Option<RefCell<QueryRecorder>>,
    /// Compiled execution engine, built on demand (see
    /// [`Self::ensure_kernel`]).
    kernel: Option<CompiledKernel<P>>,
    /// Set whenever states are written outside the kernel (interpreter
    /// rounds, async activations, [`Self::set_state`]); the next kernel
    /// round then re-evaluates every node instead of trusting its
    /// dirty-set bookkeeping.
    kernel_stale: bool,
    /// Fault surgeries applied since the last *traced* round; drained
    /// into [`RoundMetrics::faults`] by the traced steppers and left
    /// untouched otherwise.
    pending_faults: u64,
    /// Persistent worker pool for sharded rounds — built on first use,
    /// rebuilt when the requested thread count changes, parked between
    /// rounds so sharded stepping pays no spawn cost per round.
    #[cfg(feature = "parallel")]
    pool: Option<ShardPool>,
    /// Execution counters (public for instrumentation).
    ///
    /// `rounds` and `changes` agree bit-for-bit between the interpreter
    /// and kernel paths. `activations` does not: the kernel's dirty-set
    /// scheduler skips nodes whose neighbourhood is unchanged (they
    /// provably would not change state), so it reports *fewer*
    /// activations for the same trajectory.
    pub metrics: Metrics,
}

impl<P: Protocol> Network<P> {
    /// Builds a network over `graph`, with per-node initial states from
    /// `init` (this is where distinguished roles — originator, target,
    /// sink membership — enter, per the paper's per-algorithm setups).
    pub fn new(graph: &Graph, protocol: P, mut init: impl FnMut(NodeId) -> P::State) -> Self {
        let n = graph.n();
        let states: Vec<P::State> = (0..n as NodeId).map(&mut init).collect();
        Self {
            protocol,
            graph: DynGraph::from_graph(graph),
            next: states.clone(),
            states,
            scratch: vec![0; P::State::COUNT],
            touched: Vec::with_capacity(64),
            recorder: None,
            kernel: None,
            kernel_stale: false,
            pending_faults: 0,
            #[cfg(feature = "parallel")]
            pool: None,
            metrics: Metrics::default(),
        }
    }

    /// Like [`Self::new`], but compiles the execution kernel eagerly at
    /// construction (the [`crate::Runner`] otherwise builds it on first
    /// use).
    pub fn new_compiled(graph: &Graph, protocol: P, init: impl FnMut(NodeId) -> P::State) -> Self {
        let mut net = Self::new(graph, protocol, init);
        net.ensure_kernel();
        net
    }

    /// Number of node slots.
    pub fn n(&self) -> usize {
        self.graph.n_slots()
    }

    /// The current (possibly fault-reduced) topology.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// All node states (dead nodes keep their last state).
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The state of node `v`.
    pub fn state(&self, v: NodeId) -> P::State {
        self.states[v as usize]
    }

    /// Overwrites the state of node `v` (test setup, oracles).
    pub fn set_state(&mut self, v: NodeId, s: P::State) {
        self.states[v as usize] = s;
        self.kernel_stale = true;
    }

    /// Compiles the execution kernel for the current topology if not
    /// already built. Idempotent; cheap to call before every kernel
    /// round.
    pub fn ensure_kernel(&mut self) {
        if self.kernel.is_none() {
            self.kernel = Some(CompiledKernel::new(self));
            self.kernel_stale = false;
        }
    }

    /// Discards any compiled kernel and rebuilds one from scratch on the
    /// current topology: a fresh CSR with no slack-growth history and
    /// every node scheduled. This is the from-scratch baseline the churn
    /// bench and the incremental-repair equivalence tests race against
    /// [`Self::add_edge`]/[`Self::remove_edge`]'s in-place mirror updates.
    pub fn rebuild_kernel(&mut self) {
        self.kernel = None;
        self.ensure_kernel();
    }

    /// The compiled kernel, if one has been built.
    pub fn kernel(&self) -> Option<&CompiledKernel<P>> {
        self.kernel.as_ref()
    }

    /// Which evaluation plan the compiled kernel selected, if built.
    pub fn kernel_plan(&self) -> Option<KernelPlan> {
        self.kernel.as_ref().map(|k| k.plan())
    }

    /// Starts recording the mod/thresh queries the protocol performs.
    pub fn enable_recording(&mut self) {
        self.recorder = Some(RefCell::new(QueryRecorder::new(P::State::COUNT)));
    }

    /// The recorded queries so far, if recording is enabled.
    pub fn recorded_queries(&self) -> Option<QueryRecorder> {
        self.recorder.as_ref().map(|r| r.borrow().clone())
    }

    /// Removes an edge (a benign fault). Returns whether it existed.
    ///
    /// Keeps the compiled kernel's topology mirror and dirty-set
    /// bookkeeping in sync: both endpoints are rescheduled for
    /// re-evaluation, since their neighbour multisets changed without any
    /// state change — the one event the dirty-set invariant cannot
    /// observe on its own.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let removed = self.graph.remove_edge(u, v);
        if removed {
            self.pending_faults += 1;
            if let Some(k) = self.kernel.as_mut() {
                k.on_edge_removed(u, v);
            }
        }
        removed
    }

    /// Removes a node and its edges (a benign fault). The node's state is
    /// frozen; it never activates again and neighbours no longer see it.
    ///
    /// Like [`Self::remove_edge`], invalidates the kernel's dirty-set
    /// bookkeeping for every former neighbour.
    pub fn remove_node(&mut self, v: NodeId) -> bool {
        if v as usize >= self.graph.n_slots() {
            return false;
        }
        let removed = if self.kernel.is_some() && self.graph.is_alive(v) {
            let former: Vec<NodeId> = self.graph.neighbors(v).to_vec();
            let removed = self.graph.remove_node(v);
            debug_assert!(removed);
            if let Some(k) = self.kernel.as_mut() {
                k.on_node_removed(v, &former);
            }
            removed
        } else {
            self.graph.remove_node(v)
        };
        if removed {
            self.pending_faults += 1;
        }
        removed
    }

    /// Adds an edge between two alive nodes (a churn arrival). Returns
    /// whether it was added (`false` for self-loops, dead endpoints, or
    /// an existing edge).
    ///
    /// Keeps the compiled kernel's CSR mirror in sync via slack growth
    /// (see [`CompiledKernel`]): both endpoints are rescheduled, since
    /// their neighbour multisets grew without any state change.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let added = self.graph.add_edge(u, v);
        if added {
            self.pending_faults += 1;
            if let Some(k) = self.kernel.as_mut() {
                k.on_edge_added(u, v);
            }
        }
        added
    }

    /// Adds a fresh, isolated, alive node with the given initial state
    /// and returns its id (always the previous [`Self::n`]). The node
    /// cannot activate until an edge attaches it; the kernel mirror grows
    /// in step.
    pub fn add_node(&mut self, state: P::State) -> NodeId {
        let v = self.graph.add_node();
        self.states.push(state);
        self.next.push(state);
        self.pending_faults += 1;
        if let Some(k) = self.kernel.as_mut() {
            k.on_node_added(v, state);
        }
        v
    }

    /// Drains the fault-surgery counter ("faults since the last traced
    /// round") — called exactly once per traced round.
    pub(crate) fn take_pending_faults(&mut self) -> u64 {
        std::mem::take(&mut self.pending_faults)
    }

    /// Tallies the neighbour states of `v` into the scratch counter.
    /// Callers must invoke [`Self::clear_scratch`] afterwards.
    fn tally(&mut self, v: NodeId) {
        for &w in self.graph.neighbors(v) {
            let idx = self.states[w as usize].index();
            if self.scratch[idx] == 0 {
                self.touched.push(idx as u32);
            }
            self.scratch[idx] += 1;
        }
        // Canonical presence order (ascending state index) so
        // `present_states` iterates identically across the interpreter,
        // the compiled kernel and the verifier's exhaustive driver.
        self.touched.sort_unstable();
    }

    fn clear_scratch(&mut self) {
        for &idx in &self.touched {
            self.scratch[idx as usize] = 0;
        }
        self.touched.clear();
    }

    /// The neighbour multiset of `v` as a core [`Multiset`] — for
    /// cross-validation against table-level FSSGA programs.
    pub fn multiset_of(&self, v: NodeId) -> Multiset {
        let mut ms = Multiset::empty(P::State::COUNT);
        for &w in self.graph.neighbors(v) {
            ms.push(self.states[w as usize].index());
        }
        ms
    }

    /// Whether `v` can activate (alive with at least one neighbour).
    pub fn can_activate(&self, v: NodeId) -> bool {
        self.graph.is_alive(v) && self.graph.degree(v) > 0
    }

    /// Asynchronously activates node `v` (Definition 3.10's asynchronous
    /// successor): reads neighbours atomically, replaces `σ(v)`. The coin
    /// is drawn from `rng` iff the protocol is probabilistic. Returns
    /// whether the state changed; a node that cannot activate returns
    /// `false` without consuming randomness.
    pub fn activate(&mut self, v: NodeId, rng: &mut Xoshiro256) -> bool {
        if !self.can_activate(v) {
            return false;
        }
        let coin = if P::RANDOMNESS > 1 {
            rng.gen_range(P::RANDOMNESS as u64) as u32
        } else {
            0
        };
        self.activate_with_coin(v, coin)
    }

    /// Activation with an explicit coin (the synchronous path and the
    /// compiler use this).
    pub fn activate_with_coin(&mut self, v: NodeId, coin: u32) -> bool {
        if !self.can_activate(v) {
            return false;
        }
        self.tally(v);
        let view = NeighborView::new_with_presence(
            &self.scratch,
            Some(&self.touched),
            self.recorder.as_ref(),
        );
        let old = self.states[v as usize];
        let new = self.protocol.transition(old, &view, coin);
        self.clear_scratch();
        self.states[v as usize] = new;
        self.kernel_stale = true;
        self.metrics.activations += 1;
        let changed = new != old;
        if changed {
            self.metrics.changes += 1;
        }
        changed
    }

    /// The coin node `v` uses in the synchronous round with seed
    /// `round_seed`. Deriving coins from `(round_seed, v)` — rather than
    /// from a shared stream — makes the parallel synchronous step
    /// bit-identical to the sequential one.
    #[inline]
    pub(crate) fn coin_for(round_seed: u64, v: NodeId) -> u32 {
        round_coin(round_seed, v, P::RANDOMNESS)
    }

    /// One synchronous round (Definition 3.10's synchronous successor):
    /// every activatable node computes its new state from the *old*
    /// network state; all updates land at once. Returns the number of
    /// nodes whose state changed.
    pub fn sync_step(&mut self, rng: &mut Xoshiro256) -> usize {
        let round_seed = if P::RANDOMNESS > 1 { rng.next_u64() } else { 0 };
        self.sync_step_seeded(round_seed)
    }

    /// Synchronous round with an explicit seed (determinism across
    /// sequential/parallel paths; see [`crate::parallel`]).
    pub fn sync_step_seeded(&mut self, round_seed: u64) -> usize {
        self.sync_step_seeded_traced(round_seed, &mut NullTracer)
    }

    /// Like [`Self::sync_step_seeded`], but emits one [`RoundMetrics`]
    /// event to `tracer` after the round. With [`NullTracer`] (whose
    /// `enabled` is a constant `false`) this monomorphizes to exactly the
    /// untraced round: the per-node read counting is behind the hoisted
    /// flag and the evaluated count is recovered from the existing
    /// activation counter.
    pub fn sync_step_seeded_traced<T: Tracer>(&mut self, round_seed: u64, tracer: &mut T) -> usize {
        let trace = tracer.enabled();
        let before_activations = self.metrics.activations;
        let mut reads = 0u64;
        let n = self.n();
        let mut changed = 0;
        for v in 0..n as NodeId {
            if !self.can_activate(v) {
                self.next[v as usize] = self.states[v as usize];
                continue;
            }
            if trace {
                reads += self.graph.degree(v) as u64;
            }
            self.tally(v);
            let view = NeighborView::new_with_presence(
                &self.scratch,
                Some(&self.touched),
                self.recorder.as_ref(),
            );
            let old = self.states[v as usize];
            let new = self
                .protocol
                .transition(old, &view, Self::coin_for(round_seed, v));
            self.clear_scratch();
            self.next[v as usize] = new;
            self.metrics.activations += 1;
            if new != old {
                changed += 1;
            }
        }
        std::mem::swap(&mut self.states, &mut self.next);
        self.kernel_stale = true;
        self.metrics.rounds += 1;
        self.metrics.changes += changed as u64;
        if trace {
            // The interpreter evaluates every eligible node, so one
            // counter serves as eligible, scheduled, and activations; all
            // interpreter dispatches are native `transition` calls.
            let evaluated = self.metrics.activations - before_activations;
            tracer.round(&RoundMetrics {
                round: self.metrics.rounds,
                eligible: evaluated,
                scheduled: evaluated,
                activations: evaluated,
                changes: changed as u64,
                neighbor_reads: reads,
                tabular: 0,
                direct: evaluated,
                faults: self.take_pending_faults(),
            });
        }
        changed
    }

    /// One synchronous round on the compiled kernel (built on demand).
    /// Bit-identical trajectory to [`Self::sync_step`]; see the
    /// [`Metrics`] note about activation counts. The coin stream comes
    /// from `rng` exactly as in the interpreter path, so the two paths
    /// are interchangeable round-by-round.
    pub fn sync_step_kernel(&mut self, rng: &mut Xoshiro256) -> usize {
        let round_seed = if P::RANDOMNESS > 1 { rng.next_u64() } else { 0 };
        self.sync_step_kernel_seeded(round_seed)
    }

    /// Kernel round with an explicit seed (see
    /// [`Self::sync_step_seeded`]).
    pub fn sync_step_kernel_seeded(&mut self, round_seed: u64) -> usize {
        self.sync_step_kernel_seeded_traced(round_seed, &mut NullTracer)
    }

    /// Like [`Self::sync_step_kernel_seeded`], but forwards one
    /// [`RoundMetrics`] event per round to `tracer` (see
    /// [`CompiledKernel::step_traced`]).
    pub fn sync_step_kernel_seeded_traced<T: Tracer>(
        &mut self,
        round_seed: u64,
        tracer: &mut T,
    ) -> usize {
        assert!(
            self.recorder.is_none(),
            "query recording requires the interpreter stepper"
        );
        self.ensure_kernel();
        let faults = if tracer.enabled() {
            self.take_pending_faults()
        } else {
            0
        };
        let mut kernel = self.kernel.take().expect("ensured above");
        if self.kernel_stale {
            kernel.mark_all_dirty();
            self.kernel_stale = false;
        }
        let changed = kernel.step_traced(
            &self.protocol,
            &mut self.states,
            &mut self.metrics,
            round_seed,
            tracer,
            faults,
        );
        self.kernel = Some(kernel);
        changed
    }

    /// Splits the network into the pieces the parallel stepper needs.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parallel_parts(
        &mut self,
    ) -> (&P, &DynGraph, &[P::State], &mut [P::State], &mut Metrics) {
        (
            &self.protocol,
            &self.graph,
            &self.states,
            &mut self.next,
            &mut self.metrics,
        )
    }

    pub(crate) fn swap_buffers(&mut self) {
        std::mem::swap(&mut self.states, &mut self.next);
        self.kernel_stale = true;
    }

    pub(crate) fn recording_enabled(&self) -> bool {
        self.recorder.is_some()
    }
}

#[cfg(feature = "parallel")]
impl<P: Protocol> Network<P>
where
    P: Sync,
    P::State: Send + Sync,
{
    /// Kernel round with an explicit seed, evaluated over the sharded
    /// backend with `threads` threads. Bit-identical to
    /// [`Self::sync_step_kernel_seeded`] for any thread count.
    pub fn sync_step_kernel_sharded_seeded(&mut self, round_seed: u64, threads: usize) -> usize {
        self.sync_step_kernel_sharded_seeded_traced(round_seed, threads, &mut NullTracer)
    }

    /// Traced variant of [`Self::sync_step_kernel_sharded_seeded`]: emits
    /// per-shard [`crate::ShardRoundMetrics`] (when the pool actually
    /// runs) followed by the round's [`RoundMetrics`], all from this
    /// thread in deterministic order. The worker pool persists inside
    /// the network across rounds; it is rebuilt only when `threads`
    /// changes.
    pub fn sync_step_kernel_sharded_seeded_traced<T: Tracer>(
        &mut self,
        round_seed: u64,
        threads: usize,
        tracer: &mut T,
    ) -> usize {
        assert!(
            self.recorder.is_none(),
            "query recording requires the interpreter stepper"
        );
        self.ensure_kernel();
        let faults = if tracer.enabled() {
            self.take_pending_faults()
        } else {
            0
        };
        let mut kernel = self.kernel.take().expect("ensured above");
        if self.kernel_stale {
            kernel.mark_all_dirty();
            self.kernel_stale = false;
        }
        let threads = threads.max(1);
        if self.pool.as_ref().is_none_or(|p| p.threads() != threads) {
            self.pool = Some(ShardPool::new(threads));
        }
        let pool = self.pool.as_mut().expect("just ensured");
        let changed = kernel.step_sharded_traced(
            &self.protocol,
            &mut self.states,
            &mut self.metrics,
            round_seed,
            pool,
            tracer,
            faults,
        );
        self.kernel = Some(kernel);
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use fssga_graph::generators;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Infect {
        Healthy,
        Infected,
    }
    impl_state_space!(Infect { Healthy, Infected });

    /// State 1 spreads to neighbours (iterated OR).
    struct Spread;
    impl Protocol for Spread {
        type State = Infect;
        fn transition(&self, own: Infect, nbrs: &NeighborView<'_, Infect>, _coin: u32) -> Infect {
            if own == Infect::Infected || nbrs.some(Infect::Infected) {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        }
    }

    fn seeded(net_seed: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(net_seed)
    }

    #[test]
    fn sync_spread_takes_distance_rounds() {
        let g = generators::path(6);
        let mut net = Network::new(&g, Spread, |v| {
            if v == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        });
        let mut rng = seeded(1);
        for round in 1..=5 {
            let changed = net.sync_step(&mut rng);
            assert_eq!(changed, 1, "round {round} infects exactly one new node");
            let infected = net
                .states()
                .iter()
                .filter(|&&s| s == Infect::Infected)
                .count();
            assert_eq!(infected, round + 1);
        }
        assert_eq!(net.sync_step(&mut rng), 0, "fixpoint reached");
        assert_eq!(net.metrics.rounds, 6);
    }

    #[test]
    fn async_activation_only_updates_target() {
        let g = generators::path(3);
        let mut net = Network::new(&g, Spread, |v| {
            if v == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        });
        let mut rng = seeded(2);
        assert!(!net.activate(2, &mut rng), "node 2 sees no infection yet");
        assert!(net.activate(1, &mut rng));
        assert_eq!(net.state(1), Infect::Infected);
        assert_eq!(net.state(2), Infect::Healthy);
        assert!(net.activate(2, &mut rng));
        assert_eq!(net.metrics.activations, 3);
        assert_eq!(net.metrics.changes, 2);
    }

    #[test]
    fn faults_block_spread() {
        let g = generators::path(4);
        let mut net = Network::new(&g, Spread, |v| {
            if v == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        });
        net.remove_edge(1, 2);
        let mut rng = seeded(3);
        for _ in 0..10 {
            net.sync_step(&mut rng);
        }
        assert_eq!(net.state(1), Infect::Infected);
        assert_eq!(net.state(2), Infect::Healthy, "cut isolates the right half");
    }

    #[test]
    fn isolated_node_never_activates() {
        let g = generators::path(3);
        let mut net = Network::new(&g, Spread, |_| Infect::Healthy);
        net.remove_node(1); // isolates 0 and 2
        net.set_state(0, Infect::Infected);
        let mut rng = seeded(4);
        assert!(!net.activate(0, &mut rng));
        assert_eq!(net.sync_step(&mut rng), 0);
        assert!(!net.can_activate(1));
    }

    #[test]
    fn dead_node_invisible_to_neighbors() {
        let g = generators::star(4);
        let mut net = Network::new(&g, Spread, |v| {
            if v == 1 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        });
        net.remove_node(1);
        let mut rng = seeded(5);
        for _ in 0..5 {
            net.sync_step(&mut rng);
        }
        assert_eq!(net.state(0), Infect::Healthy, "infection died with node 1");
    }

    #[test]
    fn multiset_of_matches_tally() {
        let g = generators::star(5);
        let net = Network::new(&g, Spread, |v| {
            if v % 2 == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        });
        let ms = net.multiset_of(0);
        assert_eq!(ms.len(), 4);
        assert_eq!(ms.mu(Infect::Infected.index()), 2); // nodes 2, 4
        assert_eq!(ms.mu(Infect::Healthy.index()), 2); // nodes 1, 3
    }

    #[test]
    fn recording_observes_protocol_queries() {
        let g = generators::cycle(4);
        let mut net = Network::new(&g, Spread, |_| Infect::Healthy);
        net.enable_recording();
        let mut rng = seeded(6);
        net.sync_step(&mut rng);
        let rec = net.recorded_queries().unwrap();
        // Spread asks only some(Infected): threshold 1 everywhere, no mods.
        assert_eq!(rec.thresholds, vec![1, 1]);
        assert_eq!(rec.moduli, vec![1, 1]);
    }

    #[test]
    fn coin_derivation_is_stable() {
        // Same (seed, node) -> same coin, independent of anything else.
        struct Coiny;
        impl Protocol for Coiny {
            type State = Infect;
            const RANDOMNESS: u32 = 8;
            fn transition(&self, _own: Infect, _n: &NeighborView<'_, Infect>, coin: u32) -> Infect {
                if coin.is_multiple_of(2) {
                    Infect::Healthy
                } else {
                    Infect::Infected
                }
            }
        }
        let a = Network::<Coiny>::coin_for(42, 7);
        let b = Network::<Coiny>::coin_for(42, 7);
        assert_eq!(a, b);
        assert!(a < 8);
        let coins: std::collections::HashSet<u32> = (0..100u32)
            .map(|v| Network::<Coiny>::coin_for(42, v))
            .collect();
        assert!(coins.len() > 1, "different nodes get different coins");
    }
}
