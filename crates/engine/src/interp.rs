//! Running table-level FSSGA automata directly.
//!
//! [`crate::Network`] executes typed Rust protocols; this module executes
//! a [`ProbFssga`] given as program tables (the artifact of Section 3's
//! formal model, or of [`crate::compile`]). Coins are drawn with the same
//! `(round_seed, node)` derivation as the typed engine, so a protocol and
//! its compiled form can be stepped side by side and compared state by
//! state.

use fssga_core::multiset::Multiset;
use fssga_core::ProbFssga;
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{DynGraph, Graph, NodeId};

use crate::network::round_coin;
use crate::obs::{NullTracer, RoundMetrics, Tracer};

/// A network whose nodes run a table-level [`ProbFssga`].
pub struct InterpNetwork<'a> {
    auto: &'a ProbFssga,
    graph: DynGraph,
    states: Vec<usize>,
    next: Vec<usize>,
    /// Reusable neighbour-multiset accumulator plus the indices touched
    /// while filling it — cleared sparsely after every activation so the
    /// hot loop never allocates.
    ms: Multiset,
    touched: Vec<usize>,
    /// Synchronous rounds completed (feeds [`RoundMetrics::round`]).
    rounds: u64,
}

impl<'a> InterpNetwork<'a> {
    /// Builds the network; `init` gives each node's initial state id.
    pub fn new(graph: &Graph, auto: &'a ProbFssga, mut init: impl FnMut(NodeId) -> usize) -> Self {
        let states: Vec<usize> = (0..graph.n() as NodeId)
            .map(|v| {
                let s = init(v);
                assert!(s < auto.num_states(), "initial state out of range");
                s
            })
            .collect();
        Self {
            auto,
            graph: DynGraph::from_graph(graph),
            next: states.clone(),
            states,
            ms: Multiset::empty(auto.num_states()),
            touched: Vec::with_capacity(64),
            rounds: 0,
        }
    }

    /// Current states (ids).
    pub fn states(&self) -> &[usize] {
        &self.states
    }

    /// The current topology.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// Removes an edge (benign fault).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.graph.remove_edge(u, v)
    }

    /// Removes a node (benign fault).
    pub fn remove_node(&mut self, v: NodeId) -> bool {
        self.graph.remove_node(v)
    }

    /// Fills the reusable accumulator with `v`'s neighbour multiset.
    /// Pair every call with [`Self::clear_multiset`].
    fn fill_multiset(&mut self, v: NodeId) {
        for &w in self.graph.neighbors(v) {
            let s = self.states[w as usize];
            if self.ms.mu(s) == 0 {
                self.touched.push(s);
            }
            self.ms.push(s);
        }
    }

    fn clear_multiset(&mut self) {
        for &s in &self.touched {
            self.ms.zero(s);
        }
        self.touched.clear();
    }

    /// Asynchronous activation of `v`; returns whether the state changed.
    pub fn activate(&mut self, v: NodeId, rng: &mut Xoshiro256) -> bool {
        if !self.graph.is_alive(v) || self.graph.degree(v) == 0 {
            return false;
        }
        let coin = if self.auto.randomness() > 1 {
            rng.gen_range(self.auto.randomness() as u64) as usize
        } else {
            0
        };
        self.fill_multiset(v);
        let new = self
            .auto
            .transition(self.states[v as usize], coin, &self.ms);
        self.clear_multiset();
        let changed = new != self.states[v as usize];
        self.states[v as usize] = new;
        changed
    }

    /// One synchronous round with an explicit round seed (matches
    /// [`crate::network::round_coin`]); returns the number of changes.
    pub fn sync_step_seeded(&mut self, round_seed: u64) -> usize {
        self.sync_step_traced(round_seed, &mut NullTracer)
    }

    /// Like [`Self::sync_step_seeded`], but emits one [`RoundMetrics`]
    /// event to `tracer` (with [`NullTracer`] this monomorphizes to the
    /// untraced round). The table-level interpreter evaluates every
    /// eligible node natively, so `eligible = scheduled = activations =
    /// direct`; it has no fault channel of its own, so `faults` is 0.
    pub fn sync_step_traced<T: Tracer>(&mut self, round_seed: u64, tracer: &mut T) -> usize {
        let trace = tracer.enabled();
        let n = self.graph.n_slots();
        let mut changed = 0;
        let mut evaluated = 0u64;
        let mut reads = 0u64;
        for v in 0..n as NodeId {
            let old = self.states[v as usize];
            if !self.graph.is_alive(v) || self.graph.degree(v) == 0 {
                self.next[v as usize] = old;
                continue;
            }
            if trace {
                evaluated += 1;
                reads += self.graph.degree(v) as u64;
            }
            let coin = round_coin(round_seed, v, self.auto.randomness() as u32) as usize;
            self.fill_multiset(v);
            let new = self.auto.transition(old, coin, &self.ms);
            self.clear_multiset();
            self.next[v as usize] = new;
            if new != old {
                changed += 1;
            }
        }
        std::mem::swap(&mut self.states, &mut self.next);
        self.rounds += 1;
        if trace {
            tracer.round(&RoundMetrics {
                round: self.rounds,
                eligible: evaluated,
                scheduled: evaluated,
                activations: evaluated,
                changes: changed as u64,
                neighbor_reads: reads,
                tabular: 0,
                direct: evaluated,
                faults: 0,
            });
        }
        changed
    }

    /// One synchronous round, drawing the round seed from `rng` exactly as
    /// the typed engine does.
    pub fn sync_step(&mut self, rng: &mut Xoshiro256) -> usize {
        let round_seed = if self.auto.randomness() > 1 {
            rng.next_u64()
        } else {
            0
        };
        self.sync_step_seeded(round_seed)
    }

    /// Synchronous rounds to fixpoint, up to `max_rounds`.
    pub fn run_to_fixpoint(&mut self, rng: &mut Xoshiro256, max_rounds: usize) -> Option<usize> {
        (1..=max_rounds).find(|_| self.sync_step(rng) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_core::modthresh::{ModThreshProgram, Prop};
    use fssga_core::{FsmProgram, Fssga};
    use fssga_graph::generators;

    /// 2-state infection automaton as tables.
    fn infection() -> ProbFssga {
        let catch = ModThreshProgram::new(2, 2, vec![(Prop::some(1), 1)], 0).unwrap();
        let keep = ModThreshProgram::new(2, 2, vec![], 1).unwrap();
        ProbFssga::from_deterministic(
            Fssga::new(
                2,
                vec![FsmProgram::ModThresh(catch), FsmProgram::ModThresh(keep)],
            )
            .unwrap(),
        )
    }

    #[test]
    fn interp_spreads_like_native() {
        let auto = infection();
        let g = generators::path(8);
        let mut net = InterpNetwork::new(&g, &auto, |v| usize::from(v == 0));
        let mut rng = Xoshiro256::seed_from_u64(1);
        let rounds = net.run_to_fixpoint(&mut rng, 100).expect("converges");
        assert_eq!(rounds, 8, "7 spreading rounds + 1 quiescent");
        assert!(net.states().iter().all(|&s| s == 1));
    }

    #[test]
    fn interp_respects_faults() {
        let auto = infection();
        let g = generators::path(6);
        let mut net = InterpNetwork::new(&g, &auto, |v| usize::from(v == 0));
        net.remove_edge(2, 3);
        let mut rng = Xoshiro256::seed_from_u64(2);
        net.run_to_fixpoint(&mut rng, 100).unwrap();
        assert_eq!(net.states(), &[1, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn async_activation() {
        let auto = infection();
        let g = generators::path(3);
        let mut net = InterpNetwork::new(&g, &auto, |v| usize::from(v == 0));
        let mut rng = Xoshiro256::seed_from_u64(3);
        assert!(!net.activate(2, &mut rng));
        assert!(net.activate(1, &mut rng));
        assert!(net.activate(2, &mut rng));
        assert_eq!(net.states(), &[1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_initial_state_rejected() {
        let auto = infection();
        let g = generators::path(3);
        let _ = InterpNetwork::new(&g, &auto, |_| 7);
    }
}
