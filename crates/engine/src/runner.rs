//! The unified run facade: one builder for every execution mode.
//!
//! Historically the crate grew six run entry points
//! (`SyncScheduler::{run_to_fixpoint, run_to_fixpoint_with_rng,
//! run_rounds}` and `AsyncScheduler::{run_steps, run_to_fixpoint,
//! run_order}`), each with its own return convention. [`Runner`] collapses
//! them into one builder:
//!
//! ```
//! use fssga_engine::{Budget, Network, Policy, Runner};
//! # use fssga_engine::{impl_state_space, NeighborView, Protocol};
//! # #[derive(Copy, Clone, PartialEq, Eq, Debug)]
//! # enum S { A, B }
//! # impl_state_space!(S { A, B });
//! # struct Flip;
//! # impl Protocol for Flip {
//! #     type State = S;
//! #     const COMPILED: bool = true;
//! #     fn transition(&self, o: S, n: &NeighborView<'_, S>, _c: u32) -> S {
//! #         if o == S::B || n.some(S::B) { S::B } else { S::A }
//! #     }
//! # }
//! # let g = fssga_graph::generators::path(4);
//! # let mut net = Network::new(&g, Flip, |v| if v == 0 { S::B } else { S::A });
//! let report = Runner::new(&mut net)
//!     .policy(Policy::Sync)
//!     .budget(Budget::Fixpoint(100))
//!     .seed(0)
//!     .run();
//! assert!(report.reached_fixpoint());
//! ```
//!
//! The runner also decides *how* to execute: with [`Engine::Auto`] (the
//! default), synchronous rounds of a protocol that opted in via
//! [`Protocol::COMPILED`] run on the [`crate::CompiledKernel`] — a
//! [`crate::PackedStates`] index mirror (4–32 bits per node) reduced row
//! by row over CSR adjacency, with batched histogram/run-length
//! tallies, dirty-set scheduling, and slack-growth arena repair under
//! churn — and everything else runs on the interpreter. Trajectories
//! (states, change counts, fixpoint rounds) are bit-identical between
//! engines; only the `activations` metric differs (the kernel provably
//! skips no-op re-evaluations).
//!
//! # Observability
//!
//! Attach any [`Tracer`] with [`Runner::tracer`] to receive one
//! [`crate::RoundMetrics`] event per round (or per asynchronous sweep),
//! or call [`Runner::observed`] to just collect the aggregate: either way
//! the run's [`RunReport::metrics`] carries a [`RunMetrics`] summary.
//! Tracing is zero-cost when absent — the default [`NullTracer`] path
//! monomorphizes to the untraced steppers. Bounded state recording rides
//! the same hook: [`Runner::record`] snapshots into a [`History`] (which
//! can stride or decimate; see [`crate::history`]) at the start of the
//! run and after every round.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fssga_graph::rng::Xoshiro256;
use fssga_graph::NodeId;

use crate::history::History;
use crate::network::{Metrics, Network};
use crate::obs::{Counters, NullTracer, RoundMetrics, RunMetrics, Tee, Tracer};
use crate::protocol::Protocol;
use crate::scheduler::AsyncPolicy;

/// A cheap, cloneable cancellation flag for cooperative run interruption.
///
/// Clones share one flag: hand one clone to a watchdog (or any other
/// thread) and another to [`Runner::cancel`] (or
/// [`crate::ChurnOptions::cancel`]), and the run stops at the next
/// **round boundary** after [`CancelToken::cancel`] is called, reporting
/// [`RunReport::cancelled`].
///
/// Round granularity is a deliberate safety choice, not a limitation:
/// a synchronous round — sharded or not — is the engine's atomic unit of
/// progress. Workers of a sharded round write proposals into per-shard
/// scratch arenas and nothing becomes visible until the committing
/// thread merges them in shard order; interrupting *between* rounds
/// therefore can never leave half-committed states, a torn dirty set, or
/// an arena mid-compaction (see DESIGN.md §12 for the full argument).
/// The token is checked with one relaxed atomic load per round (or per
/// asynchronous activation), so an un-cancelled token costs nothing
/// measurable.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Which execution engine [`Runner`] uses for synchronous rounds.
/// (Asynchronous activations always run on the interpreter — single-node
/// activation is exactly what the interpreter is for.)
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Kernel if the protocol opted in ([`Protocol::COMPILED`]) and query
    /// recording is off; interpreter otherwise.
    #[default]
    Auto,
    /// Always the interpreter (per-activation `transition` calls).
    Interpreter,
    /// Always the compiled kernel. Panics if query recording is enabled.
    Kernel,
    /// The compiled kernel's sharded backend — pair with
    /// [`Runner::threads`] to pick the thread count. Without a
    /// `.threads(n)` call (or at `n = 1`) this is equivalent to
    /// [`Engine::Kernel`]: one shard *is* the sequential kernel, and the
    /// trajectory is bit-identical across thread counts either way.
    Sharded,
}

/// Monomorphized parallel-step entry points. [`Runner::threads`] captures
/// these where the `P: Sync` bounds hold, so the bound-free
/// [`Runner::run`] can dispatch the sharded path without infecting every
/// caller with `Send + Sync` requirements.
#[cfg(feature = "parallel")]
struct ParCaps<P: Protocol> {
    /// Sharded kernel round (see
    /// [`Network::sync_step_kernel_sharded_seeded_traced`]).
    kernel_step: fn(&mut Network<P>, u64, usize, &mut dyn Tracer) -> usize,
    /// Chunked interpreter round (see [`crate::parallel`]).
    interp_step: fn(&mut Network<P>, u64, usize, &mut dyn Tracer) -> usize,
}

#[cfg(feature = "parallel")]
impl<P: Protocol> Clone for ParCaps<P> {
    fn clone(&self) -> Self {
        *self
    }
}

#[cfg(feature = "parallel")]
impl<P: Protocol> Copy for ParCaps<P> {}

/// Activation order.
#[derive(Clone, Copy, Debug, Default)]
pub enum Policy<'o> {
    /// Synchronous rounds (Definition 3.10's synchronous successor).
    #[default]
    Sync,
    /// Asynchronous single-node activations under a fairness policy.
    Async(AsyncPolicy),
    /// Fully adversarial: activate exactly these nodes, in this order.
    Order(&'o [NodeId]),
}

/// How much work to do.
#[derive(Clone, Copy, Debug)]
pub enum Budget {
    /// Exactly this many synchronous rounds (or asynchronous sweeps).
    Rounds(usize),
    /// Exactly this many single-node activations (asynchronous policies
    /// only).
    Steps(usize),
    /// Run until a round (or sweep) changes nothing, up to this many.
    Fixpoint(usize),
}

/// What a [`Runner`] did. All counters cover this run only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Synchronous rounds or asynchronous sweeps executed.
    pub rounds: usize,
    /// Node activations performed (kernel runs count only re-evaluated
    /// nodes; see [`Metrics`]).
    pub activations: u64,
    /// Activations that changed a node's state.
    pub changes: u64,
    /// The 1-based round/sweep at which a fixpoint (no changes) was first
    /// observed, if any. For an empty asynchronous sweep set this is
    /// `Some(1)` (vacuous fixpoint).
    pub fixpoint: Option<usize>,
    /// Whether the run stopped early because its [`CancelToken`] fired
    /// (always at a round/activation boundary — never mid-round). All
    /// other counters cover the work actually done before the stop.
    pub cancelled: bool,
    /// Raw counter delta for this run.
    pub counters: Metrics,
    /// Aggregated per-round metrics — present iff the run was observed
    /// (a tracer was attached or [`Runner::observed`] was called).
    pub metrics: Option<RunMetrics>,
}

impl RunReport {
    /// Whether the run observed a quiescent round/sweep.
    pub fn reached_fixpoint(&self) -> bool {
        self.fixpoint.is_some()
    }
}

/// Builder for a single run. See the [module docs](self) for the
/// deprecated entry points each configuration replaces and for the
/// observability hooks.
pub struct Runner<'n, 'r, 'o, 'h, P: Protocol, T: Tracer = NullTracer> {
    net: &'n mut Network<P>,
    policy: Policy<'o>,
    budget: Budget,
    seed: u64,
    rng: Option<&'r mut Xoshiro256>,
    engine: Engine,
    tracer: T,
    record: Option<&'h mut History<P::State>>,
    observe: bool,
    cancel: Option<CancelToken>,
    /// Thread count for synchronous rounds; set by [`Self::threads`]
    /// together with the dispatch capabilities.
    #[cfg(feature = "parallel")]
    threads: usize,
    #[cfg(feature = "parallel")]
    par: Option<ParCaps<P>>,
}

impl<'n, P: Protocol> Runner<'n, '_, '_, '_, P, NullTracer> {
    /// A runner over `net` with defaults: synchronous rounds, fixpoint
    /// budget of 1 000 000, seed 0, engine [`Engine::Auto`], no tracer.
    pub fn new(net: &'n mut Network<P>) -> Self {
        Self {
            net,
            policy: Policy::Sync,
            budget: Budget::Fixpoint(1_000_000),
            seed: 0,
            rng: None,
            engine: Engine::Auto,
            tracer: NullTracer,
            record: None,
            observe: false,
            cancel: None,
            #[cfg(feature = "parallel")]
            threads: 1,
            #[cfg(feature = "parallel")]
            par: None,
        }
    }
}

impl<'n, 'r, 'o, 'h, P: Protocol, T: Tracer> Runner<'n, 'r, 'o, 'h, P, T> {
    /// Sets the activation order.
    pub fn policy(mut self, policy: Policy<'o>) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the work budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Seeds the runner's own RNG (ignored if [`Self::rng`] is given).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Draws all randomness (round seeds, coins, activation orders) from
    /// an external generator instead of a run-local one — for callers
    /// that interleave runs with other seeded decisions (fault
    /// campaigns).
    pub fn rng(mut self, rng: &'r mut Xoshiro256) -> Self {
        self.rng = Some(rng);
        self
    }

    /// Selects the execution engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches a per-round event sink (pass `&mut sink` to keep
    /// ownership). The run is then observed: the report additionally
    /// carries a [`RunMetrics`] aggregate.
    pub fn tracer<T2: Tracer>(self, tracer: T2) -> Runner<'n, 'r, 'o, 'h, P, T2> {
        Runner {
            net: self.net,
            policy: self.policy,
            budget: self.budget,
            seed: self.seed,
            rng: self.rng,
            engine: self.engine,
            tracer,
            record: self.record,
            observe: self.observe,
            cancel: self.cancel,
            #[cfg(feature = "parallel")]
            threads: self.threads,
            #[cfg(feature = "parallel")]
            par: self.par,
        }
    }

    /// Observes the run without an external sink: collects the
    /// [`RunMetrics`] aggregate into [`RunReport::metrics`].
    pub fn observed(mut self) -> Self {
        self.observe = true;
        self
    }

    /// Attaches a cooperative [`CancelToken`]: the run stops at the next
    /// round (or activation) boundary after the token fires and the
    /// report carries [`RunReport::cancelled`]. Pass a clone and keep
    /// the original to cancel from another thread (a wall-clock
    /// watchdog, a client-disconnect handler).
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Snapshots states into `history` at the start of the run and after
    /// every synchronous round / asynchronous sweep (once at the end for
    /// step- and order-driven runs). Use a strided or capped [`History`]
    /// to bound memory on long runs.
    pub fn record(mut self, history: &'h mut History<P::State>) -> Self {
        self.record = Some(history);
        self
    }

    fn use_kernel(&self) -> bool {
        match self.engine {
            Engine::Auto => P::COMPILED && !self.net.recording_enabled(),
            Engine::Interpreter => false,
            Engine::Kernel | Engine::Sharded => true,
        }
    }

    /// The thread count synchronous rounds will use (1 unless
    /// [`Self::threads`] was called).
    fn thread_count(&self) -> usize {
        #[cfg(feature = "parallel")]
        {
            self.threads
        }
        #[cfg(not(feature = "parallel"))]
        {
            1
        }
    }

    /// Executes the run.
    pub fn run(self) -> RunReport {
        let kernel = self.use_kernel();
        let threads = self.thread_count();
        let observe = self.observe || self.tracer.enabled();
        #[cfg(feature = "parallel")]
        let par = self.par;
        #[cfg(not(feature = "parallel"))]
        let _ = threads;
        let Runner {
            net,
            policy,
            budget,
            seed,
            rng,
            mut tracer,
            record,
            cancel,
            ..
        } = self;
        if observe {
            let mut counters = Counters::default();
            let mut tee = Tee(&mut tracer, &mut counters);
            let mut report = run_core(
                net,
                policy,
                budget,
                seed,
                rng,
                record,
                cancel,
                &mut tee,
                |net, round_seed, t| {
                    #[cfg(feature = "parallel")]
                    if threads > 1 {
                        if let Some(caps) = par {
                            let step = if kernel {
                                caps.kernel_step
                            } else {
                                caps.interp_step
                            };
                            let dyn_tracer: &mut dyn Tracer = t;
                            return step(net, round_seed, threads, dyn_tracer);
                        }
                    }
                    if kernel {
                        net.sync_step_kernel_seeded_traced(round_seed, t)
                    } else {
                        net.sync_step_seeded_traced(round_seed, t)
                    }
                },
            );
            report.metrics = Some(counters.run);
            report
        } else {
            run_core(
                net,
                policy,
                budget,
                seed,
                rng,
                record,
                cancel,
                &mut NullTracer,
                |net, round_seed, _| {
                    #[cfg(feature = "parallel")]
                    if threads > 1 {
                        if let Some(caps) = par {
                            let step = if kernel {
                                caps.kernel_step
                            } else {
                                caps.interp_step
                            };
                            return step(net, round_seed, threads, &mut NullTracer);
                        }
                    }
                    if kernel {
                        net.sync_step_kernel_seeded(round_seed)
                    } else {
                        net.sync_step_seeded(round_seed)
                    }
                },
            )
        }
    }
}

#[cfg(feature = "parallel")]
impl<P, T> Runner<'_, '_, '_, '_, P, T>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
    T: Tracer,
{
    /// Runs synchronous rounds over `threads` threads (clamped to at
    /// least 1). Kernel engines use the sharded backend — a
    /// degree-weighted contiguous [`fssga_graph::Partition`] evaluated
    /// over a persistent [`crate::ShardPool`] — and the interpreter uses
    /// chunked scoped threads ([`crate::parallel`]). Either way the
    /// trajectory is **bit-identical** to the single-threaded run: coins
    /// derive from `(round_seed, node)` and per-shard results commit in
    /// node order.
    ///
    /// This is the only builder knob requiring `P: Sync` — it captures
    /// the monomorphized parallel steppers here so [`Self::run`] itself
    /// stays free of `Send + Sync` bounds.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self.par = Some(ParCaps {
            kernel_step: |net, round_seed, threads, mut t| {
                net.sync_step_kernel_sharded_seeded_traced(round_seed, threads, &mut t)
            },
            interp_step: |net, round_seed, threads, mut t| {
                crate::parallel::sync_step_parallel_seeded_traced(net, round_seed, threads, &mut t)
            },
        });
        self
    }

    /// As [`Self::run`] over `threads` threads.
    #[deprecated(note = "use `.threads(n).run()`; it composes with every other builder knob")]
    pub fn run_parallel(self, threads: usize) -> RunReport {
        self.threads(threads).run()
    }
}

/// The shared driver: `step_sync(net, round_seed, tracer)` performs one
/// synchronous round; everything else (budgets, async sweeps, history
/// recording, reporting) is engine-independent. Asynchronous sweeps are
/// traced here (per sweep) since individual activations have no round
/// structure of their own; step- and order-driven runs emit one
/// aggregate event with `round == 0`.
#[allow(clippy::too_many_arguments)]
fn run_core<P: Protocol, Tr: Tracer>(
    net: &mut Network<P>,
    policy: Policy<'_>,
    budget: Budget,
    seed: u64,
    rng: Option<&mut Xoshiro256>,
    mut record: Option<&mut History<P::State>>,
    cancel: Option<CancelToken>,
    tracer: &mut Tr,
    mut step_sync: impl FnMut(&mut Network<P>, u64, &mut Tr) -> usize,
) -> RunReport {
    let before = net.metrics.clone();
    let tr = tracer.enabled();
    // One relaxed load per round/activation boundary; `None` folds to a
    // constant `false`.
    let mut cancelled = false;
    let stop = |cancelled: &mut bool| -> bool {
        if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            *cancelled = true;
        }
        *cancelled
    };
    let mut local_rng;
    let rng: &mut Xoshiro256 = match rng {
        Some(r) => r,
        None => {
            local_rng = Xoshiro256::seed_from_u64(seed);
            &mut local_rng
        }
    };
    if let Some(h) = record.as_deref_mut() {
        h.record(net);
    }
    let mut rounds = 0usize;
    let mut fixpoint: Option<usize> = None;
    match policy {
        Policy::Sync => {
            let (max_rounds, stop_at_fixpoint) = match budget {
                Budget::Rounds(k) => (k, false),
                Budget::Fixpoint(k) => (k, true),
                Budget::Steps(_) => panic!(
                    "Budget::Steps counts single activations; \
                     synchronous execution needs Budget::Rounds or Budget::Fixpoint"
                ),
            };
            for round in 1..=max_rounds {
                if stop(&mut cancelled) {
                    break;
                }
                let round_seed = if P::RANDOMNESS > 1 { rng.next_u64() } else { 0 };
                let changed = step_sync(net, round_seed, tracer);
                rounds = round;
                if let Some(h) = record.as_deref_mut() {
                    h.record(net);
                }
                if changed == 0 {
                    fixpoint.get_or_insert(round);
                    if stop_at_fixpoint {
                        break;
                    }
                }
            }
        }
        Policy::Async(policy) => match budget {
            Budget::Steps(steps) => {
                // Activations land on *alive* nodes only; dead slots
                // would dilute the budget (their "activation" is a
                // no-op). Topology cannot change during the run, so
                // the alive set is computed once.
                let alive: Vec<NodeId> = net.graph().alive_nodes().collect();
                let mut reads = 0u64;
                if !alive.is_empty() {
                    let n = alive.len();
                    match policy {
                        AsyncPolicy::UniformRandom => {
                            for _ in 0..steps {
                                if stop(&mut cancelled) {
                                    break;
                                }
                                let v = alive[rng.gen_index(n)];
                                if tr && net.can_activate(v) {
                                    reads += net.graph().degree(v) as u64;
                                }
                                net.activate(v, rng);
                            }
                        }
                        AsyncPolicy::RoundRobin => {
                            for i in 0..steps {
                                if stop(&mut cancelled) {
                                    break;
                                }
                                let v = alive[i % n];
                                if tr && net.can_activate(v) {
                                    reads += net.graph().degree(v) as u64;
                                }
                                net.activate(v, rng);
                            }
                        }
                        AsyncPolicy::RandomPermutation => {
                            let mut order = alive;
                            let mut idx = order.len(); // reshuffle first
                            for _ in 0..steps {
                                if stop(&mut cancelled) {
                                    break;
                                }
                                if idx == order.len() {
                                    rng.shuffle(&mut order);
                                    idx = 0;
                                }
                                let v = order[idx];
                                idx += 1;
                                if tr && net.can_activate(v) {
                                    reads += net.graph().degree(v) as u64;
                                }
                                net.activate(v, rng);
                            }
                        }
                    }
                }
                if tr {
                    emit_aggregate(net, tracer, &before, 0, steps as u64, reads);
                }
            }
            Budget::Rounds(sweeps) | Budget::Fixpoint(sweeps) => {
                let stop_at_fixpoint = matches!(budget, Budget::Fixpoint(_));
                if stop_at_fixpoint {
                    assert!(
                        policy != AsyncPolicy::UniformRandom,
                        "fixpoint detection needs sweep-based policies"
                    );
                }
                let alive: Vec<NodeId> = net.graph().alive_nodes().collect();
                let mut order = alive.clone();
                if order.is_empty() {
                    fixpoint = Some(1);
                } else {
                    for sweep in 1..=sweeps {
                        if stop(&mut cancelled) {
                            break;
                        }
                        match policy {
                            AsyncPolicy::RandomPermutation => rng.shuffle(&mut order),
                            // A uniform-random "sweep" is |alive|
                            // independent draws (no fairness
                            // guarantee — hence no fixpoint mode).
                            AsyncPolicy::UniformRandom => {
                                for slot in order.iter_mut() {
                                    *slot = alive[rng.gen_index(alive.len())];
                                }
                            }
                            AsyncPolicy::RoundRobin => {}
                        }
                        let sweep_before = net.metrics.clone();
                        let mut reads = 0u64;
                        let mut changed = false;
                        for &v in &order {
                            if tr && net.can_activate(v) {
                                reads += net.graph().degree(v) as u64;
                            }
                            if net.activate(v, rng) {
                                changed = true;
                            }
                        }
                        rounds = sweep;
                        if let Some(h) = record.as_deref_mut() {
                            h.record(net);
                        }
                        if tr {
                            emit_aggregate(
                                net,
                                tracer,
                                &sweep_before,
                                sweep as u64,
                                order.len() as u64,
                                reads,
                            );
                        }
                        if !changed {
                            fixpoint.get_or_insert(sweep);
                            if stop_at_fixpoint {
                                break;
                            }
                        }
                    }
                }
            }
        },
        Policy::Order(order) => {
            let mut reads = 0u64;
            for &v in order {
                if stop(&mut cancelled) {
                    break;
                }
                if tr && net.can_activate(v) {
                    reads += net.graph().degree(v) as u64;
                }
                net.activate(v, rng);
            }
            if tr {
                emit_aggregate(net, tracer, &before, 0, order.len() as u64, reads);
            }
        }
    }
    // Step- and order-driven runs have no per-round hook; snapshot once
    // at the end (sync rounds and async sweeps recorded above).
    let tail_record = matches!(policy, Policy::Order(_))
        || (matches!(policy, Policy::Async(_)) && matches!(budget, Budget::Steps(_)));
    if tail_record {
        if let Some(h) = record {
            h.record(net);
        }
    }
    let counters = net.metrics.since(&before);
    RunReport {
        rounds,
        activations: counters.activations,
        changes: counters.changes,
        fixpoint,
        cancelled,
        counters,
        metrics: None,
    }
}

/// Emits one asynchronous-phase [`RoundMetrics`] event: activation and
/// change counts come from the network's counter delta, eligibility is
/// not re-derived (individual activations have no synchronous-round
/// eligibility semantics), and every interpreter activation is a direct
/// dispatch.
fn emit_aggregate<P: Protocol, Tr: Tracer>(
    net: &mut Network<P>,
    tracer: &mut Tr,
    since: &Metrics,
    round: u64,
    scheduled: u64,
    reads: u64,
) {
    let delta = net.metrics.since(since);
    let faults = net.take_pending_faults();
    tracer.round(&RoundMetrics {
        round,
        eligible: delta.activations,
        scheduled,
        activations: delta.activations,
        changes: delta.changes,
        neighbor_reads: reads,
        tabular: 0,
        direct: delta.activations,
        faults,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use crate::view::NeighborView;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Tick {
        A,
        B,
    }
    impl_state_space!(Tick { A, B });

    /// Oscillates forever: no fixpoint, so budgets and cancellation are
    /// the only ways out.
    struct Osc;
    impl Protocol for Osc {
        type State = Tick;
        fn transition(&self, own: Tick, _n: &NeighborView<'_, Tick>, _c: u32) -> Tick {
            match own {
                Tick::A => Tick::B,
                Tick::B => Tick::A,
            }
        }
    }

    #[test]
    fn pre_fired_token_stops_before_any_round() {
        let g = fssga_graph::generators::path(4);
        let mut net = Network::new(&g, Osc, |_| Tick::A);
        let token = CancelToken::new();
        token.cancel();
        let report = Runner::new(&mut net)
            .budget(Budget::Rounds(100))
            .cancel(token)
            .run();
        assert!(report.cancelled);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.activations, 0);
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let g = fssga_graph::generators::path(4);
        let run = |cancel: Option<CancelToken>| {
            let mut net = Network::new(&g, Osc, |_| Tick::A);
            let mut r = Runner::new(&mut net).budget(Budget::Rounds(7));
            if let Some(token) = cancel {
                r = r.cancel(token);
            }
            let report = r.run();
            (report.rounds, report.activations, report.cancelled)
        };
        let plain = run(None);
        let tokened = run(Some(CancelToken::new()));
        assert_eq!(plain.0, tokened.0);
        assert_eq!(plain.1, tokened.1);
        assert!(!plain.2 && !tokened.2);
    }

    #[test]
    fn async_sweeps_observe_cancellation() {
        let g = fssga_graph::generators::cycle(6);
        let mut net = Network::new(&g, Osc, |_| Tick::A);
        let token = CancelToken::new();
        token.cancel();
        let report = Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::RoundRobin))
            .budget(Budget::Steps(1000))
            .cancel(token)
            .run();
        assert!(report.cancelled);
        assert_eq!(report.activations, 0);
    }
}
