//! Activation schedulers for the two evolution models of Section 3.4.

use fssga_graph::rng::Xoshiro256;
use fssga_graph::NodeId;

use crate::network::Network;
use crate::protocol::Protocol;

/// The synchronous model: every node activates simultaneously each round.
pub struct SyncScheduler;

impl SyncScheduler {
    /// Runs synchronous rounds until no state changes, up to `max_rounds`.
    /// Returns the number of rounds taken to reach the fixpoint, or `None`
    /// if it was not reached. Deterministic protocols need no entropy;
    /// probabilistic ones get a fixed-seed stream (use
    /// [`Self::run_to_fixpoint_with_rng`] to control it).
    pub fn run_to_fixpoint<P: Protocol>(net: &mut Network<P>, max_rounds: usize) -> Option<usize> {
        let mut rng = Xoshiro256::seed_from_u64(0);
        Self::run_to_fixpoint_with_rng(net, &mut rng, max_rounds)
    }

    /// As [`Self::run_to_fixpoint`], drawing coins from `rng`.
    pub fn run_to_fixpoint_with_rng<P: Protocol>(
        net: &mut Network<P>,
        rng: &mut Xoshiro256,
        max_rounds: usize,
    ) -> Option<usize> {
        (1..=max_rounds).find(|_| net.sync_step(rng) == 0)
    }

    /// Runs exactly `rounds` synchronous rounds; returns the total number
    /// of state changes.
    pub fn run_rounds<P: Protocol>(
        net: &mut Network<P>,
        rng: &mut Xoshiro256,
        rounds: usize,
    ) -> usize {
        (0..rounds).map(|_| net.sync_step(rng)).sum()
    }
}

/// Asynchronous activation orders. All three satisfy the paper's fairness
/// assumption ("each node activates at least once per unit time") in
/// expectation or deterministically; fully adversarial orders are
/// available through [`AsyncScheduler::run_order`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AsyncPolicy {
    /// Each step activates a uniformly random alive node.
    UniformRandom,
    /// Repeated sweeps in fixed id order.
    RoundRobin,
    /// Repeated sweeps, each in a fresh random order.
    RandomPermutation,
}

/// The asynchronous model: nodes activate one at a time.
pub struct AsyncScheduler;

impl AsyncScheduler {
    /// Performs `steps` single activations under `policy`. Returns the
    /// number of state changes.
    ///
    /// Activations are drawn from the *alive* nodes only. Iterating raw id
    /// slots would silently spend steps on dead nodes after faults,
    /// diluting step budgets and breaking the fairness assumption for the
    /// survivors (a dead slot "activation" is a no-op). The topology
    /// cannot change during this call, so the alive set is computed once.
    pub fn run_steps<P: Protocol>(
        net: &mut Network<P>,
        rng: &mut Xoshiro256,
        steps: usize,
        policy: AsyncPolicy,
    ) -> usize {
        let alive: Vec<NodeId> = net.graph().alive_nodes().collect();
        if alive.is_empty() {
            return 0;
        }
        let n = alive.len();
        let mut changes = 0;
        match policy {
            AsyncPolicy::UniformRandom => {
                for _ in 0..steps {
                    let v = alive[rng.gen_index(n)];
                    if net.activate(v, rng) {
                        changes += 1;
                    }
                }
            }
            AsyncPolicy::RoundRobin => {
                for i in 0..steps {
                    let v = alive[i % n];
                    if net.activate(v, rng) {
                        changes += 1;
                    }
                }
            }
            AsyncPolicy::RandomPermutation => {
                let mut order = alive;
                let mut idx = order.len(); // force reshuffle on first step
                for _ in 0..steps {
                    if idx == order.len() {
                        rng.shuffle(&mut order);
                        idx = 0;
                    }
                    let v = order[idx];
                    idx += 1;
                    if net.activate(v, rng) {
                        changes += 1;
                    }
                }
            }
        }
        changes
    }

    /// Runs full sweeps (one activation per node per sweep, in round-robin
    /// or freshly-permuted order) until a sweep changes nothing; returns
    /// the number of sweeps to the fixpoint, or `None` after `max_sweeps`.
    pub fn run_to_fixpoint<P: Protocol>(
        net: &mut Network<P>,
        rng: &mut Xoshiro256,
        max_sweeps: usize,
        policy: AsyncPolicy,
    ) -> Option<usize> {
        assert!(
            policy != AsyncPolicy::UniformRandom,
            "fixpoint detection needs sweep-based policies"
        );
        // Sweeps cover alive nodes only (dead slots cannot activate and
        // must not count toward sweep fairness).
        let mut order: Vec<NodeId> = net.graph().alive_nodes().collect();
        if order.is_empty() {
            return Some(1);
        }
        for sweep in 1..=max_sweeps {
            if policy == AsyncPolicy::RandomPermutation {
                rng.shuffle(&mut order);
            }
            let mut changed = false;
            for &v in &order {
                if net.activate(v, rng) {
                    changed = true;
                }
            }
            if !changed {
                return Some(sweep);
            }
        }
        None
    }

    /// Activates nodes in exactly the given (adversarial) order.
    /// Returns the number of state changes.
    pub fn run_order<P: Protocol>(
        net: &mut Network<P>,
        rng: &mut Xoshiro256,
        order: &[NodeId],
    ) -> usize {
        order.iter().filter(|&&v| net.activate(v, rng)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use crate::view::NeighborView;
    use fssga_graph::generators;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Infect {
        Healthy,
        Infected,
    }
    impl_state_space!(Infect { Healthy, Infected });

    struct Spread;
    impl Protocol for Spread {
        type State = Infect;
        fn transition(&self, own: Infect, nbrs: &NeighborView<'_, Infect>, _c: u32) -> Infect {
            if own == Infect::Infected || nbrs.some(Infect::Infected) {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        }
    }

    fn infected_net(g: &fssga_graph::Graph) -> Network<Spread> {
        Network::new(g, Spread, |v| {
            if v == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        })
    }

    fn all_infected(net: &Network<Spread>) -> bool {
        net.states().iter().all(|&s| s == Infect::Infected)
    }

    #[test]
    fn sync_fixpoint_on_path() {
        let g = generators::path(10);
        let mut net = infected_net(&g);
        // 9 spreading rounds + 1 quiescent round.
        assert_eq!(SyncScheduler::run_to_fixpoint(&mut net, 100), Some(10));
        assert!(all_infected(&net));
    }

    #[test]
    fn sync_fixpoint_budget_exceeded() {
        let g = generators::path(10);
        let mut net = infected_net(&g);
        assert_eq!(SyncScheduler::run_to_fixpoint(&mut net, 3), None);
    }

    #[test]
    fn round_robin_sweeps_converge() {
        let g = generators::cycle(12);
        let mut net = infected_net(&g);
        let mut rng = Xoshiro256::seed_from_u64(9);
        let sweeps =
            AsyncScheduler::run_to_fixpoint(&mut net, &mut rng, 100, AsyncPolicy::RoundRobin)
                .expect("converges");
        // Round-robin in id order spreads clockwise a full arc per sweep,
        // so very few sweeps are needed — but at least 2 (last is quiet).
        assert!(sweeps >= 2);
        assert!(all_infected(&net));
    }

    #[test]
    fn random_permutation_sweeps_converge() {
        let g = generators::grid(5, 5);
        let mut net = infected_net(&g);
        let mut rng = Xoshiro256::seed_from_u64(10);
        AsyncScheduler::run_to_fixpoint(&mut net, &mut rng, 200, AsyncPolicy::RandomPermutation)
            .expect("converges");
        assert!(all_infected(&net));
    }

    #[test]
    fn uniform_random_eventually_spreads() {
        let g = generators::path(6);
        let mut net = infected_net(&g);
        let mut rng = Xoshiro256::seed_from_u64(11);
        AsyncScheduler::run_steps(&mut net, &mut rng, 10_000, AsyncPolicy::UniformRandom);
        assert!(all_infected(&net));
    }

    #[test]
    #[should_panic(expected = "sweep-based")]
    fn uniform_random_fixpoint_rejected() {
        let g = generators::path(3);
        let mut net = infected_net(&g);
        let mut rng = Xoshiro256::seed_from_u64(12);
        let _ = AsyncScheduler::run_to_fixpoint(&mut net, &mut rng, 10, AsyncPolicy::UniformRandom);
    }

    #[test]
    fn dead_nodes_do_not_dilute_step_budgets() {
        // Kill an interior node: a 5-step round-robin budget must perform
        // 5 real activations over the 5 survivors, not 4 + a wasted slot.
        let g = generators::path(6);
        let mut net = infected_net(&g);
        net.remove_node(3);
        let mut rng = Xoshiro256::seed_from_u64(20);
        AsyncScheduler::run_steps(&mut net, &mut rng, 5, AsyncPolicy::RoundRobin);
        assert_eq!(net.metrics.activations, 5, "every step hits an alive node");
        // Same for the random policies: budgets land on alive nodes only.
        for policy in [AsyncPolicy::UniformRandom, AsyncPolicy::RandomPermutation] {
            let mut net = infected_net(&g);
            net.remove_node(3);
            AsyncScheduler::run_steps(&mut net, &mut rng, 50, policy);
            assert_eq!(net.metrics.activations, 50, "{policy:?}");
        }
    }

    #[test]
    fn fixpoint_sweeps_skip_dead_nodes() {
        let g = generators::path(8);
        let mut net = infected_net(&g);
        net.remove_node(7); // leaf: the rest still converges
        let mut rng = Xoshiro256::seed_from_u64(21);
        AsyncScheduler::run_to_fixpoint(&mut net, &mut rng, 100, AsyncPolicy::RoundRobin)
            .expect("converges");
        let infected = net
            .states()
            .iter()
            .take(7)
            .filter(|&&s| s == Infect::Infected)
            .count();
        assert_eq!(infected, 7);
        // A sweep over an all-dead graph terminates immediately.
        let mut net = infected_net(&g);
        for v in 0..8 {
            net.remove_node(v);
        }
        assert_eq!(
            AsyncScheduler::run_to_fixpoint(&mut net, &mut rng, 10, AsyncPolicy::RoundRobin),
            Some(1)
        );
    }

    #[test]
    fn adversarial_order_can_stall_or_finish() {
        let g = generators::path(4);
        // Worst order: far end first — nothing to see, no spread beyond 1.
        let mut net = infected_net(&g);
        let mut rng = Xoshiro256::seed_from_u64(13);
        let changes = AsyncScheduler::run_order(&mut net, &mut rng, &[3, 2, 1]);
        assert_eq!(changes, 1, "only node 1 sees the infection");
        // Best order: 1, 2, 3 — full spread in one pass.
        let mut net2 = infected_net(&g);
        let changes2 = AsyncScheduler::run_order(&mut net2, &mut rng, &[1, 2, 3]);
        assert_eq!(changes2, 3);
        assert!(all_infected(&net2));
    }

    #[test]
    fn run_rounds_counts_changes() {
        let g = generators::path(5);
        let mut net = infected_net(&g);
        let mut rng = Xoshiro256::seed_from_u64(14);
        let changes = SyncScheduler::run_rounds(&mut net, &mut rng, 2);
        assert_eq!(changes, 2);
    }
}
