//! Activation schedulers for the two evolution models of Section 3.4.
//!
//! **Deprecated facade.** The six run entry points below predate
//! [`crate::Runner`], which subsumes all of them behind one builder (and
//! adds engine selection — compiled kernel vs interpreter). They remain
//! as thin wrappers for source compatibility; each doc comment names its
//! replacement, and the workspace itself compiles with `-D deprecated`.

use fssga_graph::rng::Xoshiro256;
use fssga_graph::NodeId;

use crate::network::Network;
use crate::protocol::Protocol;
use crate::runner::{Budget, Engine, Policy, Runner};

/// The synchronous model: every node activates simultaneously each round.
pub struct SyncScheduler;

impl SyncScheduler {
    /// Runs synchronous rounds until no state changes, up to `max_rounds`.
    /// Returns the number of rounds taken to reach the fixpoint, or `None`
    /// if it was not reached.
    #[deprecated(note = "use Runner::new(net).budget(Budget::Fixpoint(max_rounds)).run().fixpoint")]
    pub fn run_to_fixpoint<P: Protocol>(net: &mut Network<P>, max_rounds: usize) -> Option<usize> {
        Runner::new(net)
            .engine(Engine::Interpreter)
            .budget(Budget::Fixpoint(max_rounds))
            .run()
            .fixpoint
    }

    /// As [`Self::run_to_fixpoint`], drawing coins from `rng`.
    #[deprecated(
        note = "use Runner::new(net).budget(Budget::Fixpoint(max_rounds)).rng(rng).run().fixpoint"
    )]
    pub fn run_to_fixpoint_with_rng<P: Protocol>(
        net: &mut Network<P>,
        rng: &mut Xoshiro256,
        max_rounds: usize,
    ) -> Option<usize> {
        Runner::new(net)
            .engine(Engine::Interpreter)
            .budget(Budget::Fixpoint(max_rounds))
            .rng(rng)
            .run()
            .fixpoint
    }

    /// Runs exactly `rounds` synchronous rounds; returns the total number
    /// of state changes.
    #[deprecated(
        note = "use Runner::new(net).budget(Budget::Rounds(rounds)).rng(rng).run().changes"
    )]
    pub fn run_rounds<P: Protocol>(
        net: &mut Network<P>,
        rng: &mut Xoshiro256,
        rounds: usize,
    ) -> usize {
        Runner::new(net)
            .engine(Engine::Interpreter)
            .budget(Budget::Rounds(rounds))
            .rng(rng)
            .run()
            .changes as usize
    }
}

/// Asynchronous activation orders. All three satisfy the paper's fairness
/// assumption ("each node activates at least once per unit time") in
/// expectation or deterministically; fully adversarial orders are
/// available through [`Policy::Order`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AsyncPolicy {
    /// Each step activates a uniformly random alive node.
    UniformRandom,
    /// Repeated sweeps in fixed id order.
    RoundRobin,
    /// Repeated sweeps, each in a fresh random order.
    RandomPermutation,
}

/// The asynchronous model: nodes activate one at a time.
pub struct AsyncScheduler;

impl AsyncScheduler {
    /// Performs `steps` single activations under `policy`. Returns the
    /// number of state changes.
    #[deprecated(
        note = "use Runner::new(net).policy(Policy::Async(policy)).budget(Budget::Steps(steps)).rng(rng).run().changes"
    )]
    pub fn run_steps<P: Protocol>(
        net: &mut Network<P>,
        rng: &mut Xoshiro256,
        steps: usize,
        policy: AsyncPolicy,
    ) -> usize {
        Runner::new(net)
            .policy(Policy::Async(policy))
            .budget(Budget::Steps(steps))
            .rng(rng)
            .run()
            .changes as usize
    }

    /// Runs full sweeps (one activation per node per sweep, in round-robin
    /// or freshly-permuted order) until a sweep changes nothing; returns
    /// the number of sweeps to the fixpoint, or `None` after `max_sweeps`.
    #[deprecated(
        note = "use Runner::new(net).policy(Policy::Async(policy)).budget(Budget::Fixpoint(max_sweeps)).rng(rng).run().fixpoint"
    )]
    pub fn run_to_fixpoint<P: Protocol>(
        net: &mut Network<P>,
        rng: &mut Xoshiro256,
        max_sweeps: usize,
        policy: AsyncPolicy,
    ) -> Option<usize> {
        Runner::new(net)
            .policy(Policy::Async(policy))
            .budget(Budget::Fixpoint(max_sweeps))
            .rng(rng)
            .run()
            .fixpoint
    }

    /// Activates nodes in exactly the given (adversarial) order.
    /// Returns the number of state changes.
    #[deprecated(note = "use Runner::new(net).policy(Policy::Order(order)).rng(rng).run().changes")]
    pub fn run_order<P: Protocol>(
        net: &mut Network<P>,
        rng: &mut Xoshiro256,
        order: &[NodeId],
    ) -> usize {
        Runner::new(net)
            .policy(Policy::Order(order))
            .rng(rng)
            .run()
            .changes as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_state_space;
    use crate::view::NeighborView;
    use fssga_graph::generators;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Infect {
        Healthy,
        Infected,
    }
    impl_state_space!(Infect { Healthy, Infected });

    struct Spread;
    impl Protocol for Spread {
        type State = Infect;
        const COMPILED: bool = true;
        fn transition(&self, own: Infect, nbrs: &NeighborView<'_, Infect>, _c: u32) -> Infect {
            if own == Infect::Infected || nbrs.some(Infect::Infected) {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        }
    }

    fn infected_net(g: &fssga_graph::Graph) -> Network<Spread> {
        Network::new(g, Spread, |v| {
            if v == 0 {
                Infect::Infected
            } else {
                Infect::Healthy
            }
        })
    }

    fn all_infected(net: &Network<Spread>) -> bool {
        net.states().iter().all(|&s| s == Infect::Infected)
    }

    #[test]
    fn sync_fixpoint_on_path() {
        let g = generators::path(10);
        let mut net = infected_net(&g);
        // 9 spreading rounds + 1 quiescent round.
        let report = Runner::new(&mut net).budget(Budget::Fixpoint(100)).run();
        assert_eq!(report.fixpoint, Some(10));
        assert_eq!(report.rounds, 10);
        assert!(all_infected(&net));
    }

    #[test]
    fn sync_fixpoint_budget_exceeded() {
        let g = generators::path(10);
        let mut net = infected_net(&g);
        let report = Runner::new(&mut net).budget(Budget::Fixpoint(3)).run();
        assert_eq!(report.fixpoint, None);
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn deprecated_wrappers_match_runner() {
        // The wrappers must stay bit-compatible until removal.
        let g = generators::path(10);
        let mut a = infected_net(&g);
        let mut b = infected_net(&g);
        #[allow(deprecated)]
        let legacy = SyncScheduler::run_to_fixpoint(&mut a, 100);
        let report = Runner::new(&mut b)
            .engine(Engine::Interpreter)
            .budget(Budget::Fixpoint(100))
            .run();
        assert_eq!(legacy, report.fixpoint);
        assert_eq!(a.states(), b.states());
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn kernel_and_interpreter_engines_agree() {
        let g = generators::grid(6, 6);
        let mut a = infected_net(&g);
        let mut b = infected_net(&g);
        let ra = Runner::new(&mut a)
            .engine(Engine::Interpreter)
            .budget(Budget::Fixpoint(100))
            .run();
        let rb = Runner::new(&mut b)
            .engine(Engine::Kernel)
            .budget(Budget::Fixpoint(100))
            .run();
        assert_eq!(ra.fixpoint, rb.fixpoint);
        assert_eq!(ra.changes, rb.changes);
        assert_eq!(a.states(), b.states());
        assert!(
            rb.activations <= ra.activations,
            "dirty-set never evaluates more"
        );
    }

    #[test]
    fn round_robin_sweeps_converge() {
        let g = generators::cycle(12);
        let mut net = infected_net(&g);
        let mut rng = Xoshiro256::seed_from_u64(9);
        let report = Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::RoundRobin))
            .budget(Budget::Fixpoint(100))
            .rng(&mut rng)
            .run();
        // Round-robin in id order spreads clockwise a full arc per sweep,
        // so very few sweeps are needed — but at least 2 (last is quiet).
        assert!(report.fixpoint.expect("converges") >= 2);
        assert!(all_infected(&net));
    }

    #[test]
    fn random_permutation_sweeps_converge() {
        let g = generators::grid(5, 5);
        let mut net = infected_net(&g);
        let mut rng = Xoshiro256::seed_from_u64(10);
        let report = Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::RandomPermutation))
            .budget(Budget::Fixpoint(200))
            .rng(&mut rng)
            .run();
        assert!(report.reached_fixpoint());
        assert!(all_infected(&net));
    }

    #[test]
    fn uniform_random_eventually_spreads() {
        let g = generators::path(6);
        let mut net = infected_net(&g);
        let mut rng = Xoshiro256::seed_from_u64(11);
        Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::UniformRandom))
            .budget(Budget::Steps(10_000))
            .rng(&mut rng)
            .run();
        assert!(all_infected(&net));
    }

    #[test]
    #[should_panic(expected = "sweep-based")]
    fn uniform_random_fixpoint_rejected() {
        let g = generators::path(3);
        let mut net = infected_net(&g);
        let _ = Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::UniformRandom))
            .budget(Budget::Fixpoint(10))
            .run();
    }

    #[test]
    #[should_panic(expected = "Budget::Steps")]
    fn sync_step_budget_rejected() {
        let g = generators::path(3);
        let mut net = infected_net(&g);
        let _ = Runner::new(&mut net).budget(Budget::Steps(10)).run();
    }

    #[test]
    fn dead_nodes_do_not_dilute_step_budgets() {
        // Kill an interior node: a 5-step round-robin budget must perform
        // 5 real activations over the 5 survivors, not 4 + a wasted slot.
        let g = generators::path(6);
        let mut net = infected_net(&g);
        net.remove_node(3);
        let mut rng = Xoshiro256::seed_from_u64(20);
        let report = Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::RoundRobin))
            .budget(Budget::Steps(5))
            .rng(&mut rng)
            .run();
        assert_eq!(report.activations, 5, "every step hits an alive node");
        // Same for the random policies: budgets land on alive nodes only.
        for policy in [AsyncPolicy::UniformRandom, AsyncPolicy::RandomPermutation] {
            let mut net = infected_net(&g);
            net.remove_node(3);
            let report = Runner::new(&mut net)
                .policy(Policy::Async(policy))
                .budget(Budget::Steps(50))
                .rng(&mut rng)
                .run();
            assert_eq!(report.activations, 50, "{policy:?}");
        }
    }

    #[test]
    fn fixpoint_sweeps_skip_dead_nodes() {
        let g = generators::path(8);
        let mut net = infected_net(&g);
        net.remove_node(7); // leaf: the rest still converges
        let mut rng = Xoshiro256::seed_from_u64(21);
        let report = Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::RoundRobin))
            .budget(Budget::Fixpoint(100))
            .rng(&mut rng)
            .run();
        assert!(report.reached_fixpoint());
        let infected = net
            .states()
            .iter()
            .take(7)
            .filter(|&&s| s == Infect::Infected)
            .count();
        assert_eq!(infected, 7);
        // A sweep over an all-dead graph terminates immediately.
        let mut net = infected_net(&g);
        for v in 0..8 {
            net.remove_node(v);
        }
        let report = Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::RoundRobin))
            .budget(Budget::Fixpoint(10))
            .rng(&mut rng)
            .run();
        assert_eq!(report.fixpoint, Some(1));
        assert_eq!(report.activations, 0);
    }

    #[test]
    fn adversarial_order_can_stall_or_finish() {
        let g = generators::path(4);
        // Worst order: far end first — nothing to see, no spread beyond 1.
        let mut net = infected_net(&g);
        let report = Runner::new(&mut net)
            .policy(Policy::Order(&[3, 2, 1]))
            .run();
        assert_eq!(report.changes, 1, "only node 1 sees the infection");
        // Best order: 1, 2, 3 — full spread in one pass.
        let mut net2 = infected_net(&g);
        let report2 = Runner::new(&mut net2)
            .policy(Policy::Order(&[1, 2, 3]))
            .run();
        assert_eq!(report2.changes, 3);
        assert!(all_infected(&net2));
    }

    #[test]
    fn run_rounds_counts_changes() {
        let g = generators::path(5);
        let mut net = infected_net(&g);
        let mut rng = Xoshiro256::seed_from_u64(14);
        let report = Runner::new(&mut net)
            .budget(Budget::Rounds(2))
            .rng(&mut rng)
            .run();
        assert_eq!(report.changes, 2);
        assert_eq!(report.rounds, 2);
        assert_eq!(report.fixpoint, None, "no quiescent round seen yet");
    }

    #[test]
    fn async_sweep_rounds_budget_runs_exactly_k() {
        let g = generators::path(12);
        let mut net = infected_net(&g);
        let mut rng = Xoshiro256::seed_from_u64(15);
        let report = Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::RoundRobin))
            .budget(Budget::Rounds(3))
            .rng(&mut rng)
            .run();
        assert_eq!(report.rounds, 3);
        assert_eq!(report.activations, 36);
    }
}
