//! The deterministic fault-campaign engine.
//!
//! A [`Campaign`] declaratively bundles everything a fault experiment
//! needs — initial graph, protocol, scheduler policy, time budget, a
//! [`FaultPlan`], and a correctness oracle — and [`Campaign::run`]
//! interleaves them: at every tick the due faults fire (recording the
//! graph-snapshot chain the "reasonably correct" predicate of Section 2
//! needs, without caller boilerplate), then one unit of computation runs
//! (a synchronous round, or one asynchronous sweep). The outcome carries a
//! fully seed-deterministic, serializable [`CampaignTrace`] — seed,
//! policy, applied fault schedule, activation order, verdict — so any
//! failure replays bit-for-bit via [`Campaign::replay`], and the
//! delta-debugging shrinker ([`crate::shrink`]) can minimize a failing
//! schedule by re-running the campaign as its test function.

use fssga_graph::rng::Xoshiro256;
use fssga_graph::{Graph, NodeId};

use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::network::Network;
use crate::obs::{FaultSurgery, NullTracer, Tracer};
use crate::protocol::Protocol;
use crate::runner::{Budget, Engine, Policy, Runner};
use crate::scheduler::AsyncPolicy;
use crate::sensitivity::{reasonably_correct, Verdict};
use crate::shrink::{shrink_schedule, ShrinkResult};

/// How simulated time advances: one tick is one synchronous round, or one
/// asynchronous sweep (`n_alive` single activations) under a policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunPolicy {
    /// Synchronous rounds.
    Sync,
    /// Asynchronous sweeps under the given activation policy.
    Async(AsyncPolicy),
}

impl RunPolicy {
    fn tag(self) -> &'static str {
        match self {
            RunPolicy::Sync => "sync",
            RunPolicy::Async(AsyncPolicy::UniformRandom) => "async-uniform",
            RunPolicy::Async(AsyncPolicy::RoundRobin) => "async-round-robin",
            RunPolicy::Async(AsyncPolicy::RandomPermutation) => "async-random-permutation",
        }
    }

    fn from_tag(s: &str) -> Option<Self> {
        Some(match s {
            "sync" => RunPolicy::Sync,
            "async-uniform" => RunPolicy::Async(AsyncPolicy::UniformRandom),
            "async-round-robin" => RunPolicy::Async(AsyncPolicy::RoundRobin),
            "async-random-permutation" => RunPolicy::Async(AsyncPolicy::RandomPermutation),
            _ => return None,
        })
    }
}

/// The replayable record of one campaign run. Two runs of the same
/// [`Campaign`] produce equal traces (including the full activation
/// order), which is the determinism contract the shrinker and the replay
/// test lean on. [`CampaignTrace::to_text`] / [`CampaignTrace::from_text`]
/// round-trip the trace through a line-oriented text format (no external
/// serialization dependency).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignTrace {
    /// The RNG seed the run started from.
    pub seed: u64,
    /// The scheduling policy.
    pub policy: RunPolicy,
    /// The tick budget.
    pub horizon: u64,
    /// Faults actually applied, with the tick each fired at.
    pub schedule: Vec<FaultEvent>,
    /// Flattened asynchronous activation order (empty for [`RunPolicy::Sync`]).
    pub activations: Vec<NodeId>,
    /// The verdict the run ended with.
    pub verdict: Verdict,
}

fn verdict_tag(v: Verdict) -> &'static str {
    match v {
        Verdict::ReasonablyCorrect => "reasonably-correct",
        Verdict::Incorrect => "incorrect",
        Verdict::Inconclusive => "inconclusive",
    }
}

fn verdict_from_tag(s: &str) -> Option<Verdict> {
    Some(match s {
        "reasonably-correct" => Verdict::ReasonablyCorrect,
        "incorrect" => Verdict::Incorrect,
        "inconclusive" => Verdict::Inconclusive,
        _ => return None,
    })
}

impl CampaignTrace {
    /// Serializes the trace to a stable line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("campaign-trace v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("policy {}\n", self.policy.tag()));
        out.push_str(&format!("horizon {}\n", self.horizon));
        out.push_str(&format!("verdict {}\n", verdict_tag(self.verdict)));
        for e in &self.schedule {
            // `to_trace_fields` writes the legacy `edge {u} {v}` /
            // `node {v}` forms verbatim, so removal-only traces are
            // byte-identical to the original v1 format.
            out.push_str(&format!("fault {} {}\n", e.time, e.kind.to_trace_fields()));
        }
        if !self.activations.is_empty() {
            out.push_str("activations");
            for &v in &self.activations {
                out.push_str(&format!(" {v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses a trace from [`Self::to_text`] output.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("campaign-trace v1") {
            return Err("missing 'campaign-trace v1' header".into());
        }
        let mut seed = None;
        let mut policy = None;
        let mut horizon = None;
        let mut verdict = None;
        let mut schedule = Vec::new();
        let mut activations = Vec::new();
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("seed") => {
                    seed = Some(parse_field(parts.next(), "seed")?);
                }
                Some("policy") => {
                    let tag = parts.next().ok_or("policy missing value")?;
                    policy = Some(RunPolicy::from_tag(tag).ok_or(format!("bad policy {tag:?}"))?);
                }
                Some("horizon") => {
                    horizon = Some(parse_field(parts.next(), "horizon")?);
                }
                Some("verdict") => {
                    let tag = parts.next().ok_or("verdict missing value")?;
                    verdict = Some(verdict_from_tag(tag).ok_or(format!("bad verdict {tag:?}"))?);
                }
                Some("fault") => {
                    let time: u64 = parse_field(parts.next(), "fault time")?;
                    // Accepts the legacy `edge` / `node` vocabulary plus
                    // the arrival tags (`add-node` / `add-edge`).
                    let kind = FaultKind::from_trace_fields(&mut parts)
                        .ok_or_else(|| format!("bad fault kind in {line:?}"))?;
                    schedule.push(FaultEvent { time, kind });
                }
                Some("activations") => {
                    for tok in parts {
                        activations.push(tok.parse().map_err(|_| format!("bad id {tok:?}"))?);
                    }
                }
                Some(other) => return Err(format!("unknown line {other:?}")),
                None => {}
            }
        }
        Ok(CampaignTrace {
            seed: seed.ok_or("missing seed")?,
            policy: policy.ok_or("missing policy")?,
            horizon: horizon.ok_or("missing horizon")?,
            schedule,
            activations,
            verdict: verdict.ok_or("missing verdict")?,
        })
    }
}

fn parse_field<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
    tok.ok_or(format!("{what} missing"))?
        .parse()
        .map_err(|_| format!("bad {what}"))
}

/// The outcome of one campaign run.
#[derive(Clone, Debug)]
pub struct CampaignOutcome<A> {
    /// The verdict.
    pub verdict: Verdict,
    /// The answer the run produced (`None` ⇒ [`Verdict::Inconclusive`]).
    pub answer: Option<A>,
    /// The replayable trace.
    pub trace: CampaignTrace,
    /// The graph-snapshot chain `G_0 ⊇ G_1 ⊇ … ⊇ G_f` (one snapshot
    /// before any fault plus one after every applied fault) — the witness
    /// set [`reasonably_correct`] judged the answer against.
    pub snapshots: Vec<Graph>,
}

/// The answer-extraction half of a campaign's oracle: reads the final
/// answer off the surviving network, `None` when inconclusive.
///
/// `Send + Sync` so a `&Campaign` can be shared across the worker pool
/// by [`Campaign::sweep_parallel`] — campaign oracles are pure functions
/// of their arguments plus immutable captures, so the bounds cost
/// nothing in practice.
pub type AnswerFn<'a, P, A> = Box<dyn Fn(&Network<P>) -> Option<A> + Send + Sync + 'a>;

/// A declarative fault campaign over a [`Protocol`] network.
///
/// Every run is a pure function of the campaign: the RNG is reseeded, the
/// network is rebuilt from the initial graph, and the fault plan is
/// re-walked, so [`Campaign::run`], [`Campaign::shrink`], and
/// [`Campaign::replay`] all agree bit-for-bit. The correctness oracle is
/// split in two: `answer` reads the final answer off the surviving network
/// (returning `None` when the run is inconclusive), and `reference`
/// computes the fault-free answer on an arbitrary snapshot-chain member;
/// the verdict is [`Verdict::ReasonablyCorrect`] iff some chain member's
/// reference answer equals the run's answer (Section 2's definition, with
/// the realized chain as the witness set).
pub struct Campaign<'a, P: Protocol, A: PartialEq> {
    graph: Graph,
    protocol: Box<dyn Fn() -> P + Send + Sync + 'a>,
    init: Box<dyn Fn(NodeId) -> P::State + Send + Sync + 'a>,
    answer: AnswerFn<'a, P, A>,
    reference: Box<dyn Fn(&Graph) -> A + Send + Sync + 'a>,
    policy: RunPolicy,
    horizon: u64,
    seed: u64,
    plan: FaultPlan,
    engine: Engine,
}

impl<'a, P: Protocol, A: PartialEq> Campaign<'a, P, A> {
    /// A new campaign with defaults: synchronous rounds, horizon 100,
    /// seed 0, no faults.
    pub fn new(
        graph: &Graph,
        protocol: impl Fn() -> P + Send + Sync + 'a,
        init: impl Fn(NodeId) -> P::State + Send + Sync + 'a,
        answer: impl Fn(&Network<P>) -> Option<A> + Send + Sync + 'a,
        reference: impl Fn(&Graph) -> A + Send + Sync + 'a,
    ) -> Self {
        Self {
            graph: graph.clone(),
            protocol: Box::new(protocol),
            init: Box::new(init),
            answer: Box::new(answer),
            reference: Box::new(reference),
            policy: RunPolicy::Sync,
            horizon: 100,
            seed: 0,
            plan: FaultPlan::none(),
            engine: Engine::Auto,
        }
    }

    /// Selects the execution engine for synchronous ticks (the compiled
    /// kernel's fault hooks keep its dirty-set bookkeeping consistent
    /// across mid-run topology changes, so trajectories are identical
    /// either way).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the scheduling policy.
    pub fn policy(mut self, policy: RunPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the tick budget.
    pub fn horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault plan.
    pub fn plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The campaign's fault plan.
    pub fn current_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The initial graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Runs the campaign with its configured plan.
    pub fn run(&self) -> CampaignOutcome<A> {
        self.run_with_schedule(self.plan.events())
    }

    /// Like [`Self::run`], forwarding per-tick [`crate::RoundMetrics`]
    /// events and discrete [`FaultSurgery`] events to `tracer` (the
    /// `fssga-chaos --trace-out` artifact comes from here).
    pub fn run_traced<T: Tracer>(&self, tracer: &mut T) -> CampaignOutcome<A> {
        self.run_with_schedule_traced(self.plan.events(), tracer)
    }

    /// Runs the campaign with an alternative fault schedule (the shrinker
    /// and the sensitivity estimator go through here); everything else —
    /// seed, policy, horizon — is taken from the campaign.
    pub fn run_with_schedule(&self, schedule: &[FaultEvent]) -> CampaignOutcome<A> {
        self.run_with_schedule_traced(schedule, &mut NullTracer)
    }

    /// Traced variant of [`Self::run_with_schedule`]; zero-cost with
    /// [`NullTracer`].
    pub fn run_with_schedule_traced<T: Tracer>(
        &self,
        schedule: &[FaultEvent],
        tracer: &mut T,
    ) -> CampaignOutcome<A> {
        let mut events = schedule.to_vec();
        events.sort_by_key(|e| e.time);
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let mut net = Network::new(&self.graph, (self.protocol)(), &self.init);
        let mut snapshots = vec![net.graph().snapshot()];
        let mut trace = CampaignTrace {
            seed: self.seed,
            policy: self.policy,
            horizon: self.horizon,
            schedule: Vec::new(),
            activations: Vec::new(),
            verdict: Verdict::Inconclusive,
        };
        let mut cursor = 0usize;
        for tick in 0..self.horizon {
            // Faults due at this tick fire first, each extending the
            // snapshot chain the oracle judges against.
            while cursor < events.len() && events[cursor].time <= tick {
                let ev = events[cursor];
                cursor += 1;
                let applied = match ev.kind {
                    FaultKind::Edge(u, v) => net.remove_edge(u, v),
                    FaultKind::Node(v) => net.remove_node(v),
                    FaultKind::AddNode(v) => {
                        // Arrivals use the campaign's own init closure, so
                        // a joining node starts exactly as it would have at
                        // time zero. Stale ids are skipped (see FaultKind).
                        if v as usize == net.n() {
                            net.add_node((self.init)(v));
                            true
                        } else {
                            false
                        }
                    }
                    FaultKind::AddEdge(u, v) => net.add_edge(u, v),
                };
                if applied {
                    trace.schedule.push(FaultEvent {
                        time: tick,
                        kind: ev.kind,
                    });
                    snapshots.push(net.graph().snapshot());
                    if tracer.enabled() {
                        tracer.fault(&FaultSurgery {
                            round: tick,
                            kind: ev.kind,
                        });
                    }
                }
            }
            match self.policy {
                RunPolicy::Sync => {
                    Runner::new(&mut net)
                        .engine(self.engine)
                        .budget(Budget::Rounds(1))
                        .rng(&mut rng)
                        .tracer(&mut *tracer)
                        .run();
                }
                RunPolicy::Async(policy) => {
                    // The order is materialized here (not inside the
                    // runner) because the trace records it — and because
                    // order-building must consume the RNG *before* the
                    // activations draw their coins, exactly as the
                    // pre-`Runner` code did.
                    let alive: Vec<NodeId> = net.graph().alive_nodes().collect();
                    if alive.is_empty() {
                        continue;
                    }
                    let order: Vec<NodeId> = match policy {
                        AsyncPolicy::UniformRandom => (0..alive.len())
                            .map(|_| alive[rng.gen_index(alive.len())])
                            .collect(),
                        AsyncPolicy::RoundRobin => alive,
                        AsyncPolicy::RandomPermutation => {
                            let mut order = alive;
                            rng.shuffle(&mut order);
                            order
                        }
                    };
                    Runner::new(&mut net)
                        .policy(Policy::Order(&order))
                        .budget(Budget::Steps(order.len()))
                        .rng(&mut rng)
                        .tracer(&mut *tracer)
                        .run();
                    trace.activations.extend_from_slice(&order);
                }
            }
        }
        let answer = (self.answer)(&net);
        trace.verdict = match &answer {
            None => Verdict::Inconclusive,
            Some(a) => {
                if reasonably_correct(&snapshots, a, &self.reference) {
                    Verdict::ReasonablyCorrect
                } else {
                    Verdict::Incorrect
                }
            }
        };
        CampaignOutcome {
            verdict: trace.verdict,
            answer,
            trace,
            snapshots,
        }
    }

    /// Replays a previously emitted trace: reruns the campaign with the
    /// trace's schedule (seed, policy, and horizon must match this
    /// campaign's — they are asserted). By determinism the returned
    /// outcome's trace equals `trace` bit-for-bit.
    pub fn replay(&self, trace: &CampaignTrace) -> CampaignOutcome<A> {
        assert_eq!(trace.seed, self.seed, "replay seed mismatch");
        assert_eq!(trace.policy, self.policy, "replay policy mismatch");
        assert_eq!(trace.horizon, self.horizon, "replay horizon mismatch");
        self.run_with_schedule(&trace.schedule)
    }

    /// Fans the `times × kinds` single-fault probes of the empirical
    /// sensitivity estimator out over `threads` threads, with this
    /// campaign's [`Self::run_with_schedule`] as the probe body. Every
    /// probe is an independent, fully seed-deterministic run, and the
    /// report is merged in sweep order, so the result is bit-identical
    /// to `sweep_single_faults(kinds, times, |s| self.run_with_schedule(s)
    /// .verdict)` for any thread count.
    #[cfg(feature = "parallel")]
    pub fn sweep_parallel(
        &self,
        kinds: &[FaultKind],
        times: &[u64],
        threads: usize,
    ) -> crate::sensitivity::SensitivityReport {
        crate::sensitivity::sweep_single_faults_parallel(kinds, times, threads, |schedule| {
            self.run_with_schedule(schedule).verdict
        })
    }

    /// If the configured plan yields [`Verdict::Incorrect`], delta-debugs
    /// the fault schedule to a 1-minimal failing counterexample (dropping
    /// events, advancing times, weakening node kills to single-edge cuts)
    /// and returns it; `None` if the campaign does not fail.
    pub fn shrink(&self) -> Option<ShrinkResult> {
        if self.run().verdict != Verdict::Incorrect {
            return None;
        }
        Some(shrink_schedule(
            self.plan.events(),
            &self.graph,
            self.horizon,
            |schedule| self.run_with_schedule(schedule).verdict == Verdict::Incorrect,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::NeighborView;
    use fssga_graph::generators;

    // An OR-diffusion over 4 bits: bit b set anywhere spreads everywhere
    // reachable. The "answer" is node 0's final mask; the fault-free
    // reference on a chain graph is the OR over node 0's component.
    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    struct Mask(u8);
    impl crate::protocol::StateSpace for Mask {
        const COUNT: usize = 16;
        fn index(self) -> usize {
            self.0 as usize
        }
        fn from_index(i: usize) -> Self {
            Mask(i as u8)
        }
    }

    struct Or;
    impl Protocol for Or {
        type State = Mask;
        fn transition(&self, own: Mask, nbrs: &NeighborView<'_, Mask>, _c: u32) -> Mask {
            let mut acc = own.0;
            for s in nbrs.present_states() {
                acc |= s.0;
            }
            Mask(acc)
        }
    }

    fn init_mask(v: NodeId) -> Mask {
        Mask(1 << (v % 4))
    }

    fn or_campaign(g: &Graph) -> Campaign<'_, Or, u8> {
        Campaign::new(
            g,
            || Or,
            init_mask,
            |net: &Network<Or>| Some(net.state(0).0),
            |g: &Graph| {
                let d = fssga_graph::DynGraph::from_graph(g);
                d.component_of(0)
                    .into_iter()
                    .map(|v| init_mask(v).0)
                    .fold(0, |a, b| a | b)
            },
        )
    }

    #[test]
    fn fault_free_campaign_is_reasonably_correct() {
        let g = generators::path(9);
        let out = or_campaign(&g).horizon(20).run();
        assert_eq!(out.verdict, Verdict::ReasonablyCorrect);
        assert_eq!(out.answer, Some(0b1111));
        assert_eq!(out.snapshots.len(), 1);
        assert!(out.trace.schedule.is_empty());
    }

    #[test]
    fn snapshot_chain_grows_per_applied_fault() {
        let g = generators::path(9);
        let plan = FaultPlan::new(vec![
            FaultEvent {
                time: 0,
                kind: FaultKind::Edge(4, 5),
            },
            FaultEvent {
                time: 2,
                kind: FaultKind::Edge(4, 5), // already dead: not applied
            },
            FaultEvent {
                time: 3,
                kind: FaultKind::Node(7),
            },
        ]);
        let out = or_campaign(&g).horizon(20).plan(plan).run();
        assert_eq!(out.snapshots.len(), 3, "initial + 2 applied faults");
        assert_eq!(out.trace.schedule.len(), 2);
        // Cut at time 0 before any diffusion: node 0 sees exactly its own
        // side's bits, the fault-free answer on the post-cut graph.
        assert_eq!(out.verdict, Verdict::ReasonablyCorrect);
    }

    #[test]
    fn traces_are_deterministic_and_round_trip() {
        let g = generators::grid(3, 4);
        let plan = FaultPlan::new(vec![FaultEvent {
            time: 1,
            kind: FaultKind::Node(5),
        }]);
        for policy in [
            RunPolicy::Sync,
            RunPolicy::Async(AsyncPolicy::UniformRandom),
            RunPolicy::Async(AsyncPolicy::RoundRobin),
            RunPolicy::Async(AsyncPolicy::RandomPermutation),
        ] {
            let c = or_campaign(&g)
                .horizon(15)
                .seed(42)
                .policy(policy)
                .plan(plan.clone());
            let a = c.run();
            let b = c.run();
            assert_eq!(a.trace, b.trace, "{policy:?}");
            let parsed = CampaignTrace::from_text(&a.trace.to_text()).unwrap();
            assert_eq!(parsed, a.trace, "{policy:?} text round-trip");
            let replayed = c.replay(&a.trace);
            assert_eq!(replayed.trace, a.trace, "{policy:?} replay");
        }
    }

    #[test]
    fn legacy_trace_text_round_trips_byte_identically() {
        // Satellite: removal-only trace text from before the arrival
        // vocabulary existed must parse unchanged and re-serialize to the
        // same bytes.
        let legacy = "campaign-trace v1\n\
                      seed 42\n\
                      policy sync\n\
                      horizon 15\n\
                      verdict reasonably-correct\n\
                      fault 1 node 5\n\
                      fault 3 edge 2 6\n";
        let parsed = CampaignTrace::from_text(legacy).unwrap();
        assert_eq!(
            parsed.schedule,
            vec![
                FaultEvent {
                    time: 1,
                    kind: FaultKind::Node(5),
                },
                FaultEvent {
                    time: 3,
                    kind: FaultKind::Edge(2, 6),
                },
            ]
        );
        assert_eq!(parsed.to_text(), legacy, "byte-identical re-serialization");

        // The extended vocabulary round-trips through the same parser.
        let churny = "campaign-trace v1\n\
                      seed 7\n\
                      policy sync\n\
                      horizon 9\n\
                      verdict inconclusive\n\
                      fault 2 add-node 12\n\
                      fault 2 add-edge 12 3\n";
        let parsed = CampaignTrace::from_text(churny).unwrap();
        assert_eq!(parsed.schedule[0].kind, FaultKind::AddNode(12));
        assert_eq!(parsed.schedule[1].kind, FaultKind::AddEdge(12, 3));
        assert_eq!(parsed.to_text(), churny);
        assert!(CampaignTrace::from_text(
            "campaign-trace v1\nseed 1\npolicy sync\nhorizon 1\nverdict inconclusive\nfault 0 frob 1\n"
        )
        .is_err());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_sweep_matches_sequential_sweep() {
        use crate::sensitivity::sweep_single_faults;
        let g = generators::grid(3, 4);
        let c = or_campaign(&g).horizon(12).seed(9);
        let kinds: Vec<FaultKind> = (0..g.n() as NodeId).map(FaultKind::Node).collect();
        let times = [0u64, 2, 5];
        let sequential =
            sweep_single_faults(&kinds, &times, |s| c.run_with_schedule(s).verdict).probes;
        for threads in [1usize, 2, 4, 8] {
            let parallel = c.sweep_parallel(&kinds, &times, threads).probes;
            assert_eq!(sequential, parallel, "{threads} threads");
        }
    }

    #[test]
    fn strict_oracle_fails_and_shrinks_to_one_event() {
        // Oracle that only accepts the *initial* graph's answer: any fault
        // that actually hides bits from node 0 is a failure. Bury one
        // decisive cut (the time-0 edge cut isolating nodes 0..=3 from the
        // bit-3 carrier) in a pile of harmless faults.
        let g = generators::path(8);
        let strict = Campaign::new(
            &g,
            || Or,
            init_mask,
            |net: &Network<Or>| Some(net.state(0).0),
            |_: &Graph| 0b1111u8, // the full union, regardless of faults
        )
        .horizon(20)
        .plan(FaultPlan::new(vec![
            FaultEvent {
                time: 0,
                kind: FaultKind::Edge(2, 3),
            },
            FaultEvent {
                time: 5,
                kind: FaultKind::Edge(5, 6),
            },
            FaultEvent {
                time: 9,
                kind: FaultKind::Node(7),
            },
        ]));
        assert_eq!(strict.run().verdict, Verdict::Incorrect);
        let shrunk = strict.shrink().expect("campaign fails, must shrink");
        assert_eq!(shrunk.schedule.len(), 1, "1-minimal: {:?}", shrunk.schedule);
        assert_eq!(
            strict.run_with_schedule(&shrunk.schedule).verdict,
            Verdict::Incorrect
        );
    }
}
