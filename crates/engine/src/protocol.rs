//! The [`Protocol`] trait: what a node does when it activates.

use crate::view::NeighborView;

/// A finite state space with a canonical enumeration.
///
/// Protocol states are typically Rust enums or small product types; the
/// engine needs a dense `0..COUNT` indexing to tally neighbour states into
/// a scratch array (the "cartesian product of the variables' ranges" trick
/// the paper describes under Algorithm 4.1).
pub trait StateSpace: Copy + Eq + std::fmt::Debug {
    /// Number of distinct states, `|Q|`.
    const COUNT: usize;

    /// Dense index in `0..COUNT`.
    fn index(self) -> usize;

    /// Inverse of [`Self::index`]. May panic for `i >= COUNT`.
    fn from_index(i: usize) -> Self;
}

/// A node program in the FSSGA model.
///
/// The engine calls [`Protocol::transition`] when a node activates,
/// passing the node's own state (read asymmetrically, per Definition
/// 3.10), a [`NeighborView`] of its neighbours' states (readable only
/// through symmetric, finite mod/thresh queries), and — for probabilistic
/// protocols (Definition 3.11) — a uniformly random coin in
/// `0..RANDOMNESS`.
pub trait Protocol {
    /// The node state type `Q`.
    type State: StateSpace;

    /// The per-activation randomness `r` of Definition 3.11. `1` means
    /// deterministic.
    const RANDOMNESS: u32 = 1;

    /// Declared upper bound on the thresh arguments (`μ >= t`,
    /// `count_capped(_, t)`) this protocol uses. Generic wrappers — the
    /// α synchronizer — need it to synthesize an inner neighbour view
    /// from their own finite queries; `compile_protocol` discovers the
    /// true bound, and the test suites cross-check declarations. The
    /// default covers `some` / `none` / `exactly_one`.
    const MAX_THRESHOLD: u32 = 2;

    /// Declared lcm of the mod-atom moduli this protocol uses (1 = no mod
    /// atoms). Same role as [`Self::MAX_THRESHOLD`].
    const MODULI_LCM: u32 = 1;

    /// Opt-in flag for the compiled execution path: when `true`, the
    /// [`crate::Runner`] with engine `Auto` may execute synchronous
    /// rounds on a [`crate::CompiledKernel`] instead of the interpreter.
    /// Opting in asserts that `transition` is a pure function of
    /// `(own, view, coin)` — no interior mutability, no out-of-band
    /// inputs — which every mod-thresh protocol is by construction.
    /// Defaults to `false` so foreign protocols must claim purity
    /// explicitly.
    const COMPILED: bool = false;

    /// The new state of an activating node.
    fn transition(
        &self,
        own: Self::State,
        neighbors: &NeighborView<'_, Self::State>,
        coin: u32,
    ) -> Self::State;
}

impl<P: Protocol> Protocol for &P {
    type State = P::State;
    const RANDOMNESS: u32 = P::RANDOMNESS;
    const MAX_THRESHOLD: u32 = P::MAX_THRESHOLD;
    const MODULI_LCM: u32 = P::MODULI_LCM;
    const COMPILED: bool = P::COMPILED;

    fn transition(
        &self,
        own: Self::State,
        neighbors: &NeighborView<'_, Self::State>,
        coin: u32,
    ) -> Self::State {
        (*self).transition(own, neighbors, coin)
    }
}

/// Implements [`StateSpace`] for a fieldless enum by listing its variants.
///
/// ```
/// use fssga_engine::{impl_state_space, StateSpace};
///
/// #[derive(Copy, Clone, PartialEq, Eq, Debug)]
/// enum Color { Red, Green, Blue }
/// impl_state_space!(Color { Red, Green, Blue });
///
/// assert_eq!(Color::COUNT, 3);
/// assert_eq!(Color::from_index(Color::Green.index()), Color::Green);
/// ```
#[macro_export]
macro_rules! impl_state_space {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::StateSpace for $ty {
            const COUNT: usize = $crate::impl_state_space!(@count $($variant),+);

            fn index(self) -> usize {
                // Irrefutable on single-variant enums, which are legal here.
                #[allow(unused_assignments, irrefutable_let_patterns)]
                {
                    let mut i = 0;
                    $(
                        if let $ty::$variant = self {
                            return i;
                        }
                        i += 1;
                    )+
                    unreachable!()
                }
            }

            fn from_index(i: usize) -> Self {
                #[allow(unused_assignments)]
                {
                    let mut j = 0;
                    $(
                        if i == j {
                            return $ty::$variant;
                        }
                        j += 1;
                    )+
                    panic!("state index {i} out of range")
                }
            }
        }
    };
    (@count $head:ident $(, $tail:ident)*) => {
        1 $( + { let _ = stringify!($tail); 1 } )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Tri {
        A,
        B,
        C,
    }
    impl_state_space!(Tri { A, B, C });

    #[test]
    fn macro_roundtrip() {
        assert_eq!(Tri::COUNT, 3);
        for i in 0..3 {
            assert_eq!(Tri::from_index(i).index(), i);
        }
        assert_eq!(Tri::A.index(), 0);
        assert_eq!(Tri::C.index(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn macro_out_of_range() {
        let _ = Tri::from_index(3);
    }
}
