//! Job execution: one validated [`JobSpec`] → one engine run.
//!
//! This module owns the protocol registry (the typed dispatch from
//! [`Proto`] to concrete engine invocations) and the cancellation
//! plumbing. Every run threads a [`JobCancel`] through the engine's
//! [`CancelToken`] hooks, so the watchdog (wall budget) and the
//! connection writer (client gone) can stop it at the next round
//! boundary; the *first* cause to fire wins and becomes the error code
//! the client sees.
//!
//! Determinism contract: every job is a pure function of its
//! [`JobSpec`] — seeded topology, seeded initial states, deterministic
//! engines — so re-running a spec (here, through `fssga-bench`, or by a
//! direct [`Runner`] call following the recipes documented on
//! [`Proto`]) reproduces the streamed metrics and the final-state
//! fingerprint bit for bit. The `done` frame carries that fingerprint
//! (FNV-1a over final state indices, hex-encoded) as the witness.

use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};

use fssga_engine::{
    run_churn_oracle_traced, Budget, CancelToken, ChannelTrace, ChurnConfig, ChurnOptions,
    ChurnStream, Engine, Network, NullTracer, Protocol, RunReport, Runner, StateSpace, Tracer,
};
use fssga_graph::{DynGraph, NodeId};
use fssga_protocols::census::{Census, FmSketch};
use fssga_protocols::parity::{KParity, ParityState};
use fssga_protocols::shortest_paths::ShortestPaths;
use fssga_protocols::unison::{KUnison, UnisonState};

use crate::job::{codes, JobError, JobKind, JobSpec, Proto};
use crate::json::{self, Json};

/// A cancellation token paired with a first-cause record.
///
/// Multiple parties can try to cancel one job — the watchdog on a wall
/// deadline, the connection writer on client disconnect, the server on
/// drain. [`JobCancel::fire`] is first-wins: the earliest cause is
/// latched and becomes the `error` frame's code, later calls are
/// no-ops. The underlying [`CancelToken`] is what the engine polls at
/// round boundaries.
#[derive(Clone, Debug, Default)]
pub struct JobCancel {
    token: CancelToken,
    cause: Arc<Mutex<Option<&'static str>>>,
}

impl JobCancel {
    /// A fresh, unfired cancel handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// The engine-facing token (clone it into [`Runner::cancel`]).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Requests cancellation with `cause` (a [`codes`] constant).
    /// First call wins; later causes are ignored.
    pub fn fire(&self, cause: &'static str) {
        let mut slot = self.cause.lock().expect("cause lock");
        if slot.is_none() {
            *slot = Some(cause);
            self.token.cancel();
        }
    }

    /// The latched cause, if the handle has fired.
    pub fn cause(&self) -> Option<&'static str> {
        *self.cause.lock().expect("cause lock")
    }
}

/// FNV-1a over final state indices — the cross-run bit-identity
/// witness carried by `done` frames (same function as the bench
/// harness's, so service results check against recorded baselines).
pub fn fingerprint(indices: impl Iterator<Item = usize>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in indices {
        h ^= i as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The per-node initial census sketch for job seed `seed` — derived
/// per node (not from a sequential RNG) so churn arrivals are just as
/// deterministic as the initial population.
pub fn census_sketch(seed: u64, v: NodeId) -> FmSketch<16> {
    use fssga_graph::rng::Xoshiro256;
    let mut rng = Xoshiro256::seed_from_u64(seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    FmSketch::random_init(&mut rng)
}

/// Executes `spec` as job `job`, streaming metric lines into `tx` when
/// the spec asks for it. Returns the final `done` line, or the
/// structured error to send instead. Blocking happens only inside the
/// engine and on the (cancellation-aware) stream channel.
pub fn execute(
    job: u64,
    spec: &JobSpec,
    cancel: &JobCancel,
    tx: &SyncSender<String>,
) -> Result<String, JobError> {
    match spec.kind {
        JobKind::Churn => churn_job(job, spec, cancel, tx),
        JobKind::Run => {
            let seed = spec.seed;
            match spec.proto {
                Proto::Census => run_job(job, spec, cancel, tx, Census::<16>, |v| {
                    census_sketch(seed, v)
                }),
                Proto::ShortestPaths => run_job(job, spec, cancel, tx, ShortestPaths::<256>, |v| {
                    ShortestPaths::<256>::init(v == 0)
                }),
                Proto::KParity => run_job(job, spec, cancel, tx, KParity::<16>, |v| {
                    ParityState::init(v == 0)
                }),
                Proto::KUnison => {
                    run_job(job, spec, cancel, tx, KUnison::<8>, |_| UnisonState::at(0))
                }
            }
        }
    }
}

/// Maps a finished run to its `done` line or structured error.
fn finish_run(
    job: u64,
    spec: &JobSpec,
    cancel: &JobCancel,
    report: &RunReport,
    fp: u64,
) -> Result<String, JobError> {
    if report.cancelled {
        return Err(cancel_error(cancel, spec));
    }
    if spec.fixpoint && report.fixpoint.is_none() {
        return Err(JobError::new(
            codes::BUDGET_ROUNDS,
            format!(
                "no fixpoint within the round budget ({} rounds)",
                spec.rounds
            ),
        ));
    }
    Ok(json::obj(vec![
        ("t", json::s("done")),
        ("job", json::nu(job)),
        ("kind", json::s("run")),
        ("rounds", json::nu(report.rounds as u64)),
        ("activations", json::nu(report.activations)),
        ("changes", json::nu(report.changes)),
        (
            "fixpoint",
            report.fixpoint.map_or(Json::Null, |r| json::nu(r as u64)),
        ),
        ("fingerprint", json::s(format!("{fp:016x}"))),
    ])
    .to_string())
}

/// The error for a cancelled job: the latched first cause, or (belt
/// and braces) `budget-wall` if something cancelled the raw token
/// without recording why.
fn cancel_error(cancel: &JobCancel, spec: &JobSpec) -> JobError {
    let code = cancel.cause().unwrap_or(codes::BUDGET_WALL);
    JobError::new(
        code,
        match code {
            codes::BUDGET_WALL => format!("wall budget of {} ms exhausted", spec.wall_ms),
            codes::SHUTTING_DOWN => "server draining; job cancelled at a round boundary".into(),
            _ => "job cancelled".into(),
        },
    )
}

/// One static-topology [`Runner`] run. The monomorphized heart of the
/// service: everything protocol-specific arrived via `proto` + `init`.
fn run_job<P>(
    job: u64,
    spec: &JobSpec,
    cancel: &JobCancel,
    tx: &SyncSender<String>,
    proto: P,
    init: impl FnMut(NodeId) -> P::State,
) -> Result<String, JobError>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    let g = spec.graph.build(spec.seed);
    let mut net = Network::new(&g, proto, init);
    let budget = if spec.fixpoint {
        Budget::Fixpoint(spec.rounds)
    } else {
        Budget::Rounds(spec.rounds)
    };
    let engine = if spec.threads > 1 {
        Engine::Sharded
    } else {
        Engine::Auto
    };
    let report = {
        let runner = Runner::new(&mut net)
            .budget(budget)
            .seed(spec.seed)
            .engine(engine)
            .cancel(cancel.token().clone())
            .threads(spec.threads);
        if spec.stream {
            runner
                .tracer(ChannelTrace::with_cancel(
                    tx.clone(),
                    cancel.token().clone(),
                ))
                .run()
        } else {
            runner.run()
        }
    };
    let fp = fingerprint(net.states().iter().map(|s| s.index()));
    finish_run(job, spec, cancel, &report, fp)
}

/// One churn run: seeded stream over the dirty-set kernel, census
/// protocol (enforced at parse time), converge-then-churn like the
/// recorded churn baselines.
fn churn_job(
    job: u64,
    spec: &JobSpec,
    cancel: &JobCancel,
    tx: &SyncSender<String>,
) -> Result<String, JobError> {
    let c = spec
        .churn
        .as_ref()
        .expect("churn spec present for churn kind");
    let g = spec.graph.build(spec.seed);
    let stream = ChurnStream::generate(
        &DynGraph::from_graph(&g),
        &ChurnConfig {
            seed: spec.seed,
            horizon: c.horizon,
            rate: c.rate,
            arrival_bias: c.arrival_bias,
            edge_bias: c.edge_bias,
            attach: c.attach,
            protected: Vec::new(),
        },
    );
    let seed = spec.seed;
    let mut net = Network::new_compiled(&g, Census::<16>, |v| census_sketch(seed, v));
    // Converge on the initial topology first (the baseline protocol:
    // churn measures *repair*, not initial convergence).
    let pre = Runner::new(&mut net)
        .engine(Engine::Kernel)
        .budget(Budget::Fixpoint(10 * g.n().max(1)))
        .cancel(cancel.token().clone())
        .run();
    if pre.cancelled {
        return Err(cancel_error(cancel, spec));
    }
    let opts = ChurnOptions {
        window: 0,
        check_every: 0,
        cancel: Some(cancel.token().clone()),
    };
    fn churn_run<T: Tracer>(
        net: &mut Network<Census<16>>,
        stream: &ChurnStream,
        opts: &ChurnOptions,
        seed: u64,
        tracer: &mut T,
    ) -> fssga_engine::ChurnReport {
        run_churn_oracle_traced(
            net,
            stream,
            opts,
            |v| census_sketch(seed, v),
            |_| -> Option<()> { None },
            |_| (),
            tracer,
        )
    }
    let report = if spec.stream {
        let mut tracer = ChannelTrace::with_cancel(tx.clone(), cancel.token().clone());
        churn_run(&mut net, &stream, &opts, seed, &mut tracer)
    } else {
        churn_run(&mut net, &stream, &opts, seed, &mut NullTracer)
    };
    if cancel.token().is_cancelled() {
        return Err(cancel_error(cancel, spec));
    }
    let fp = fingerprint(net.states().iter().map(|s| s.index()));
    Ok(json::obj(vec![
        ("t", json::s("done")),
        ("job", json::nu(job)),
        ("kind", json::s("churn")),
        ("rounds", json::nu(report.rounds)),
        ("events", json::nu(report.events())),
        ("arrivals", json::nu(report.arrivals)),
        ("departures", json::nu(report.departures)),
        ("activations", json::nu(report.activations)),
        ("changes", json::nu(report.changes)),
        ("final_alive", json::nu(report.final_alive as u64)),
        ("final_edges", json::nu(report.final_edges as u64)),
        ("fingerprint", json::s(format!("{fp:016x}"))),
    ])
    .to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Limits;
    use std::sync::mpsc::sync_channel;

    fn spec(text: &str) -> JobSpec {
        JobSpec::parse(&Json::parse(text).unwrap(), &Limits::default()).unwrap()
    }

    /// Runs a spec with a roomy channel, returning (stream lines, result).
    fn run(spec: &JobSpec) -> (Vec<String>, Result<String, JobError>) {
        let (tx, rx) = sync_channel(4096);
        let cancel = JobCancel::new();
        let out = execute(1, spec, &cancel, &tx);
        drop(tx);
        (rx.into_iter().collect(), out)
    }

    #[test]
    fn census_job_reports_fixpoint_and_fingerprint() {
        let s = spec(r#"{"proto":"census","graph":{"gen":"torus","rows":8,"cols":8}}"#);
        let (lines, out) = run(&s);
        let done = Json::parse(&out.unwrap()).unwrap();
        assert_eq!(done.get("t").and_then(Json::as_str), Some("done"));
        let rounds = done.get("rounds").and_then(Json::as_u64).unwrap();
        assert!(rounds > 0);
        assert!(done.get("fixpoint").and_then(Json::as_u64).is_some());
        let fp = done
            .get("fingerprint")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        assert_eq!(fp.len(), 16);
        // One streamed round event per executed round.
        let round_lines = lines
            .iter()
            .filter(|l| l.starts_with(r#"{"t":"round""#))
            .count();
        assert_eq!(round_lines as u64, rounds);
        // Same spec → bit-identical outcome.
        let (_, again) = run(&s);
        let done2 = Json::parse(&again.unwrap()).unwrap();
        assert_eq!(
            done2.get("fingerprint").and_then(Json::as_str),
            Some(fp.as_str())
        );
    }

    #[test]
    fn sharded_run_matches_sequential_fingerprint() {
        let base =
            spec(r#"{"proto":"shortest-paths","graph":{"gen":"torus","rows":12,"cols":12}}"#);
        let sharded = spec(
            r#"{"proto":"shortest-paths","graph":{"gen":"torus","rows":12,"cols":12},"threads":3}"#,
        );
        let fp = |s: &JobSpec| {
            let (_, out) = run(s);
            Json::parse(&out.unwrap())
                .unwrap()
                .get("fingerprint")
                .and_then(Json::as_str)
                .unwrap()
                .to_owned()
        };
        assert_eq!(
            fp(&base),
            fp(&sharded),
            "thread count must not change results"
        );
    }

    #[test]
    fn kunison_fixpoint_request_fails_with_budget_rounds() {
        let s = spec(r#"{"proto":"kunison","graph":{"gen":"cycle","n":8},"rounds":32}"#);
        let (_, out) = run(&s);
        assert_eq!(out.unwrap_err().code, codes::BUDGET_ROUNDS);
        // Bounded non-fixpoint mode succeeds with exactly the asked rounds.
        let s = spec(
            r#"{"proto":"kunison","graph":{"gen":"cycle","n":8},"rounds":32,"fixpoint":false}"#,
        );
        let (_, out) = run(&s);
        let done = Json::parse(&out.unwrap()).unwrap();
        assert_eq!(done.get("rounds").and_then(Json::as_u64), Some(32));
    }

    #[test]
    fn fired_cancel_surfaces_its_cause() {
        let s = spec(r#"{"proto":"census","graph":{"gen":"torus","rows":8,"cols":8}}"#);
        let (tx, _rx) = sync_channel(4096);
        let cancel = JobCancel::new();
        cancel.fire(codes::BUDGET_WALL);
        cancel.fire(codes::SHUTTING_DOWN); // later cause loses
        let err = execute(1, &s, &cancel, &tx).unwrap_err();
        assert_eq!(err.code, codes::BUDGET_WALL);
    }

    #[test]
    fn churn_job_streams_and_replays_bit_identically() {
        let s = spec(
            r#"{"kind":"churn","proto":"census","graph":{"gen":"torus","rows":8,"cols":8},
                "rounds":48,"churn":{"rate":2.0}}"#,
        );
        let (lines, out) = run(&s);
        let done = Json::parse(&out.unwrap()).unwrap();
        assert_eq!(done.get("kind").and_then(Json::as_str), Some("churn"));
        assert!(done.get("events").and_then(Json::as_u64).unwrap() > 0);
        assert!(lines.iter().any(|l| l.starts_with(r#"{"t":"churn""#)));
        let (lines2, out2) = run(&s);
        assert_eq!(lines, lines2, "streamed churn metrics must replay exactly");
        assert_eq!(
            Json::parse(&out2.unwrap())
                .unwrap()
                .get("fingerprint")
                .and_then(Json::as_str),
            done.get("fingerprint").and_then(Json::as_str),
        );
    }

    #[test]
    fn stream_false_sends_nothing() {
        let s = spec(r#"{"proto":"census","graph":{"gen":"path","n":16},"stream":false}"#);
        let (lines, out) = run(&s);
        assert!(out.is_ok());
        assert!(lines.is_empty());
    }
}
