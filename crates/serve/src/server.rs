//! The TCP front end: accept loop, per-connection protocol driver,
//! admission control, and ordered shutdown.
//!
//! # Connection lifecycle
//!
//! A connection may exchange any number of `ping`/`pong` frames, then
//! submit **at most one job**; after the job's final `done`/`error`
//! frame the server closes the connection. One-job-per-connection
//! keeps the framing unambiguous (every frame after `accepted` belongs
//! to that job) and makes client retry logic trivial.
//!
//! # Admission
//!
//! The handler thread parses and validates the request ([`crate::job`]
//! applies the node cap and clamps budgets), then tries a non-blocking
//! push onto the bounded [`JobQueue`]. A full queue sheds the job with
//! an `overloaded` error — backpressure is explicit and immediate, the
//! client never waits in an invisible line. On success the client gets
//! an `accepted` frame echoing the job id and the *effective* (post-
//! clamp) budgets, then the handler becomes the job's writer: it
//! drains the job's stream channel into frames until the worker drops
//! its end.
//!
//! # Ownership and shutdown order
//!
//! [`ServerHandle::shutdown`] tears down in dependency order:
//!
//! 1. the shutdown latch flips — admission starts refusing
//!    (`shutting-down`), the accept loop exits on its next poll;
//! 2. the accept thread is joined (no new connections);
//! 3. the queue closes — parked jobs drain, then workers see `None`;
//! 4. the worker pool is joined (running jobs finish within their wall
//!    budgets; the watchdog is still live to enforce that);
//! 5. the watchdog stops (nothing can register anymore).
//!
//! Handler threads are not joined: each one exits on its own when its
//! writer loop finishes or its idle read times out and observes the
//! latch. They hold only their socket and channel ends, so process
//! shutdown never blocks on a slow client.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::exec::JobCancel;
use crate::job::{codes, JobError, JobSpec, Limits};
use crate::json::{self, Json};
use crate::pool::{JobQueue, QueuedJob, WorkerPool};
use crate::watchdog::Watchdog;
use crate::wire::{read_frame, write_frame, FrameError};

/// Per-job stream channel capacity, in JSONL lines. Bounded so a slow
/// client backpressures the engine (via [`fssga_engine::ChannelTrace`])
/// instead of buffering an unbounded trace server-side.
const STREAM_CAPACITY: usize = 256;

/// Server configuration; `Default` gives the documented defaults.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address. Use port 0 for an ephemeral port (tests/bench);
    /// the bound address is reported by [`ServerHandle::addr`].
    pub addr: String,
    /// Worker threads — the running-job concurrency bound.
    pub workers: usize,
    /// Parked-job capacity; pushes beyond it shed with `overloaded`.
    pub queue_cap: usize,
    /// Admission caps and budget clamps.
    pub limits: Limits,
    /// Whether a client `shutdown` frame is honoured (`false` answers
    /// it with `forbidden`). Enable for bench/CI drivers only.
    pub allow_shutdown: bool,
    /// Idle-read poll interval per connection, in milliseconds. Idle
    /// connections notice the shutdown latch within this bound.
    pub read_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7117".into(),
            workers: 2,
            queue_cap: 16,
            limits: Limits::default(),
            allow_shutdown: false,
            read_timeout_ms: 10_000,
        }
    }
}

/// Shared server state, one per [`serve`] call.
#[derive(Debug)]
struct Ctx {
    cfg: ServeConfig,
    shutdown: AtomicBool,
    next_job: AtomicU64,
    queue: Arc<JobQueue>,
}

/// A running server; dropping it without calling
/// [`ServerHandle::shutdown`] leaves the threads running (the binary
/// relies on that for its run-forever mode).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    accept: Option<JoinHandle<()>>,
    workers: Option<WorkerPool>,
    watchdog: Arc<Watchdog>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a client-initiated `shutdown` has been requested (the
    /// binary polls this to decide when to begin teardown).
    pub fn shutdown_requested(&self) -> bool {
        self.ctx.shutdown.load(Ordering::Relaxed)
    }

    /// Graceful teardown in the order documented in the module docs.
    pub fn shutdown(mut self) {
        self.ctx.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.ctx.queue.close();
        if let Some(pool) = self.workers.take() {
            pool.join();
        }
        self.watchdog.stop();
    }
}

/// Binds, spawns the accept loop / workers / watchdog, and returns.
pub fn serve(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let queue = JobQueue::new(cfg.queue_cap);
    let watchdog = Watchdog::start();
    let workers = WorkerPool::spawn(cfg.workers, Arc::clone(&queue), Arc::clone(&watchdog));
    let ctx = Arc::new(Ctx {
        cfg,
        shutdown: AtomicBool::new(false),
        next_job: AtomicU64::new(1),
        queue,
    });
    let accept_ctx = Arc::clone(&ctx);
    let accept = std::thread::Builder::new()
        .name("fssga-serve-accept".into())
        .spawn(move || accept_loop(&listener, &accept_ctx))
        .expect("spawn accept loop");
    Ok(ServerHandle {
        addr,
        ctx,
        accept: Some(accept),
        workers: Some(workers),
        watchdog,
    })
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>) {
    let mut conn = 0u64;
    while !ctx.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                conn += 1;
                let ctx = Arc::clone(ctx);
                let _ = std::thread::Builder::new()
                    .name(format!("fssga-serve-conn-{conn}"))
                    .spawn(move || {
                        let _ = handle_connection(stream, &ctx);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            // Transient accept errors (e.g. aborted handshakes) are
            // not fatal to the server.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Sends one server frame, where `v` is already a JSON tree.
fn send(stream: &mut TcpStream, v: &Json) -> io::Result<()> {
    write_frame(stream, &v.to_string())
}

fn send_error(stream: &mut TcpStream, job: u64, e: &JobError) -> io::Result<()> {
    write_frame(stream, &e.to_jsonl(job))
}

fn handle_connection(mut stream: TcpStream, ctx: &Arc<Ctx>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(ctx.cfg.read_timeout_ms.max(1))))?;
    stream.set_write_timeout(Some(Duration::from_millis(10_000)))?;
    stream.set_nodelay(true)?;
    loop {
        let text = match read_frame(&mut stream) {
            Ok(Some(text)) => text,
            Ok(None) => return Ok(()), // clean client close
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle poll tick: drop the connection if draining,
                // otherwise keep waiting for the next frame.
                if ctx.shutdown.load(Ordering::Relaxed) {
                    let e = JobError::new(codes::SHUTTING_DOWN, "server draining");
                    let _ = send_error(&mut stream, 0, &e);
                    return Ok(());
                }
                continue;
            }
            Err(e) => {
                let err = JobError::new(codes::BAD_FRAME, e.to_string());
                let _ = send_error(&mut stream, 0, &err);
                return Ok(());
            }
        };
        let v = match Json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                let err = JobError::new(codes::BAD_FRAME, format!("frame is not JSON: {e}"));
                let _ = send_error(&mut stream, 0, &err);
                return Ok(());
            }
        };
        match v.get("t").and_then(Json::as_str) {
            Some("ping") => send(&mut stream, &json::obj(vec![("t", json::s("pong"))]))?,
            Some("shutdown") => {
                if !ctx.cfg.allow_shutdown {
                    let e =
                        JobError::new(codes::FORBIDDEN, "server started without --allow-shutdown");
                    let _ = send_error(&mut stream, 0, &e);
                    return Ok(());
                }
                ctx.shutdown.store(true, Ordering::Relaxed);
                send(&mut stream, &json::obj(vec![("t", json::s("bye"))]))?;
                return Ok(());
            }
            Some("job") => return handle_job(stream, ctx, &v),
            other => {
                let e = JobError::new(
                    codes::BAD_FRAME,
                    format!("unknown frame type {other:?} (job|ping|shutdown)"),
                );
                let _ = send_error(&mut stream, 0, &e);
                return Ok(());
            }
        }
    }
}

/// Admits one job and then acts as its writer until the final frame.
fn handle_job(mut stream: TcpStream, ctx: &Arc<Ctx>, v: &Json) -> io::Result<()> {
    let job = ctx.next_job.fetch_add(1, Ordering::Relaxed);
    if ctx.shutdown.load(Ordering::Relaxed) {
        let e = JobError::new(codes::SHUTTING_DOWN, "server draining");
        return send_error(&mut stream, job, &e);
    }
    let spec = match JobSpec::parse(v, &ctx.cfg.limits) {
        Ok(spec) => spec,
        Err(e) => return send_error(&mut stream, job, &e),
    };
    let (tx, rx) = sync_channel::<String>(STREAM_CAPACITY);
    let cancel = JobCancel::new();
    let queued = QueuedJob {
        id: job,
        spec: spec.clone(),
        cancel: cancel.clone(),
        deadline: Instant::now() + Duration::from_millis(spec.wall_ms),
        tx,
    };
    let depth = match ctx.queue.push(queued) {
        Ok(depth) => depth,
        Err(_rejected) => {
            let e = JobError::new(
                codes::OVERLOADED,
                format!("job queue full ({} parked)", ctx.cfg.queue_cap),
            );
            return send_error(&mut stream, job, &e);
        }
    };
    send(
        &mut stream,
        &json::obj(vec![
            ("t", json::s("accepted")),
            ("job", json::nu(job)),
            ("queue", json::nu(depth as u64)),
            ("rounds", json::nu(spec.rounds as u64)),
            ("wall_ms", json::nu(spec.wall_ms)),
            ("threads", json::nu(spec.threads as u64)),
        ]),
    )?;
    writer_loop(stream, rx, &cancel)
}

/// Drains the job's stream channel into frames. A write failure means
/// the client is gone: fire the cancel handle (so the engine stops at
/// the next round boundary) and keep draining the channel so the
/// worker's sends never wedge.
fn writer_loop(mut stream: TcpStream, rx: Receiver<String>, cancel: &JobCancel) -> io::Result<()> {
    let mut client_gone = false;
    for line in rx.iter() {
        if client_gone {
            continue; // drain without writing
        }
        if write_frame(&mut stream, &line).is_err() {
            cancel.fire(codes::DISCONNECTED);
            client_gone = true;
        }
    }
    if !client_gone {
        stream.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn connect(handle: &ServerHandle) -> TcpStream {
        TcpStream::connect(handle.addr()).expect("connect")
    }

    fn roundtrip(stream: &mut TcpStream, frame: &str) -> Json {
        write_frame(stream, frame).unwrap();
        let text = read_frame(stream).unwrap().expect("response frame");
        Json::parse(&text).unwrap()
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_cap: 2,
            allow_shutdown: true,
            read_timeout_ms: 50,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn ping_job_and_shutdown_round_trip() {
        let handle = serve(test_config()).unwrap();
        let mut c = connect(&handle);
        assert_eq!(
            roundtrip(&mut c, r#"{"t":"ping"}"#)
                .get("t")
                .and_then(Json::as_str),
            Some("pong")
        );
        let accepted = roundtrip(
            &mut c,
            r#"{"t":"job","proto":"census","graph":{"gen":"torus","rows":8,"cols":8}}"#,
        );
        assert_eq!(accepted.get("t").and_then(Json::as_str), Some("accepted"));
        let job = accepted.get("job").and_then(Json::as_u64).unwrap();
        let mut rounds = 0u64;
        loop {
            let v = Json::parse(&read_frame(&mut c).unwrap().expect("streamed frame")).unwrap();
            match v.get("t").and_then(Json::as_str) {
                Some("round") => rounds += 1,
                Some("done") => {
                    assert_eq!(v.get("job").and_then(Json::as_u64), Some(job));
                    assert_eq!(v.get("rounds").and_then(Json::as_u64), Some(rounds));
                    break;
                }
                other => panic!("unexpected frame type {other:?}"),
            }
        }
        assert!(
            read_frame(&mut c).unwrap().is_none(),
            "server closes after the final frame"
        );
        let mut c = connect(&handle);
        assert_eq!(
            roundtrip(&mut c, r#"{"t":"shutdown"}"#)
                .get("t")
                .and_then(Json::as_str),
            Some("bye")
        );
        assert!(handle.shutdown_requested());
        handle.shutdown();
    }

    #[test]
    fn bad_frames_get_structured_errors_and_a_close() {
        let handle = serve(test_config()).unwrap();
        let mut c = connect(&handle);
        let v = roundtrip(&mut c, "not json");
        assert_eq!(v.get("code").and_then(Json::as_str), Some(codes::BAD_FRAME));
        // A raw oversized length prefix also errors (and closes).
        let mut c = connect(&handle);
        c.write_all(&u32::MAX.to_be_bytes()).unwrap();
        let text = read_frame(&mut c).unwrap().expect("error frame");
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("code").and_then(Json::as_str), Some(codes::BAD_FRAME));
        let mut rest = Vec::new();
        c.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection closed after protocol error");
        handle.shutdown();
    }

    #[test]
    fn shutdown_forbidden_without_opt_in() {
        let cfg = ServeConfig {
            allow_shutdown: false,
            ..test_config()
        };
        let handle = serve(cfg).unwrap();
        let mut c = connect(&handle);
        let v = roundtrip(&mut c, r#"{"t":"shutdown"}"#);
        assert_eq!(v.get("code").and_then(Json::as_str), Some(codes::FORBIDDEN));
        assert!(!handle.shutdown_requested());
        handle.shutdown();
    }
}
