//! Job requests: the typed form of a `{"t":"job",...}` frame.
//!
//! Everything a client can ask for is parsed here into [`JobSpec`],
//! with every unknown, missing, or out-of-range field rejected as a
//! structured [`JobError`] *before* the job is admitted to the queue.
//! The server's [`Limits`] are applied at parse time too: node caps
//! reject the request outright (`budget-nodes`); round, wall-clock and
//! thread requests are silently clamped to the server maxima (the
//! `accepted` frame echoes the effective values, so a clamped client
//! can see what it actually got).
//!
//! DESIGN.md §12 documents the wire-level schema field by field; this
//! module is its executable twin.

use crate::json::Json;

/// Well-known error codes carried by `{"t":"error","code":...}` frames.
///
/// Codes are a closed set — clients can switch on them — and each is
/// documented in DESIGN.md §12.5 with the state it can occur in.
pub mod codes {
    /// The frame was not a JSON object with a recognised `"t"` tag.
    pub const BAD_FRAME: &str = "bad-frame";
    /// A job field was missing, of the wrong type, or out of range.
    pub const BAD_REQUEST: &str = "bad-request";
    /// The `proto` name is not one the service hosts.
    pub const UNSUPPORTED_PROTO: &str = "unsupported-proto";
    /// The `graph.gen` name is not a generator the service exposes.
    pub const UNSUPPORTED_GRAPH: &str = "unsupported-graph";
    /// The requested graph exceeds the server's node cap.
    pub const BUDGET_NODES: &str = "budget-nodes";
    /// A fixpoint was requested but not reached within the round budget.
    pub const BUDGET_ROUNDS: &str = "budget-rounds";
    /// The watchdog cancelled the job at its wall-clock deadline.
    pub const BUDGET_WALL: &str = "budget-wall";
    /// The job queue was full; retry later (backpressure shed).
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining and no longer admits jobs.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// A `shutdown` frame arrived but the server was started without
    /// `--allow-shutdown`.
    pub const FORBIDDEN: &str = "forbidden";
    /// An invariant failed server-side; the detail is diagnostic only.
    pub const INTERNAL: &str = "internal";
    /// Internal cancellation cause: the client vanished mid-stream.
    /// Recorded as a [`crate::exec::JobCancel`] cause so the engine
    /// stops promptly; by construction it is never *delivered* (there
    /// is no one left to deliver it to).
    pub const DISCONNECTED: &str = "disconnected";
}

/// A structured job failure, rendered as an `error` frame.
#[derive(Clone, Debug, PartialEq)]
pub struct JobError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable context; never required for client dispatch.
    pub detail: String,
}

impl JobError {
    /// Builds an error with the given code and detail.
    pub fn new(code: &'static str, detail: impl Into<String>) -> Self {
        JobError {
            code,
            detail: detail.into(),
        }
    }

    /// The `{"t":"error",...}` response line for job `job`.
    pub fn to_jsonl(&self, job: u64) -> String {
        let v = crate::json::obj(vec![
            ("t", crate::json::s("error")),
            ("job", crate::json::nu(job)),
            ("code", crate::json::s(self.code)),
            ("detail", crate::json::s(&self.detail)),
        ]);
        v.to_string()
    }
}

/// Server-side admission and clamping limits (one per server).
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Jobs whose graph has more nodes than this are rejected
    /// (`budget-nodes`); checked from the [`GraphSpec`] arithmetic, so
    /// no memory is committed before the check.
    pub max_nodes: usize,
    /// Upper clamp on a job's round budget (and a churn job's horizon).
    pub max_rounds: usize,
    /// Upper clamp on a job's wall-clock budget, in milliseconds; also
    /// the default when the request omits `wall_ms`.
    pub max_wall_ms: u64,
    /// Upper clamp on a job's `threads` request.
    pub max_threads: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_nodes: 2_000_000,
            max_rounds: 100_000,
            max_wall_ms: 30_000,
            max_threads: 8,
        }
    }
}

/// Which execution path a job takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// One [`fssga_engine::Runner`] run on a static topology.
    Run,
    /// A churn stream over the dirty-set kernel
    /// ([`fssga_engine::run_churn_oracle_traced`]).
    Churn,
}

/// Which protocol the job instantiates. The service hosts a fixed,
/// documented registry — all compiled, all deterministic for a given
/// seed, so replays are bit-identical (the property the `done` frame's
/// fingerprint witnesses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// `Census<16>` — FM-sketch size estimation. Per-node initial
    /// sketches derive from the job seed:
    /// `Xoshiro256::seed_from_u64(seed ^ (v * 0x9E37_79B9_7F4A_7C15))`
    /// feeding `FmSketch::random_init`, so arrivals under churn are
    /// deterministic too.
    Census,
    /// `ShortestPaths<256>` — distance labelling; node 0 is the sink.
    ShortestPaths,
    /// `KParity<16>` — distance-mod-K labelling; node 0 is the source.
    KParity,
    /// `KUnison<8>` — mod-K clock synchronisation, all clocks starting
    /// at phase 0. Never reaches a fixpoint (the clocks tick forever):
    /// the canonical way to exercise round and wall budgets.
    KUnison,
}

impl Proto {
    /// Parses a wire `proto` name.
    pub fn parse(name: &str) -> Result<Proto, JobError> {
        match name {
            "census" => Ok(Proto::Census),
            "shortest-paths" => Ok(Proto::ShortestPaths),
            "kparity" => Ok(Proto::KParity),
            "kunison" => Ok(Proto::KUnison),
            other => Err(JobError::new(
                codes::UNSUPPORTED_PROTO,
                format!("unknown proto {other:?} (census|shortest-paths|kparity|kunison)"),
            )),
        }
    }

    /// The wire name (inverse of [`Self::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Proto::Census => "census",
            Proto::ShortestPaths => "shortest-paths",
            Proto::KParity => "kparity",
            Proto::KUnison => "kunison",
        }
    }
}

/// The topology a job runs on, described by generator name + shape
/// parameters. The node count is pure arithmetic on the spec, so the
/// [`Limits::max_nodes`] admission check runs before any allocation.
/// Seeded generators (`gnp`, `preferential-attachment`) draw from
/// `Xoshiro256::seed_from_u64(job seed)`, making the topology part of
/// the job's deterministic replay contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphSpec {
    /// `path(n)`.
    Path {
        /// Node count.
        n: usize,
    },
    /// `cycle(n)`.
    Cycle {
        /// Node count.
        n: usize,
    },
    /// `complete(n)`.
    Complete {
        /// Node count.
        n: usize,
    },
    /// `star(n)`.
    Star {
        /// Node count (centre + `n - 1` leaves).
        n: usize,
    },
    /// `grid(rows, cols)` — open boundaries.
    Grid {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// `torus(rows, cols)` — wrapped boundaries.
    Torus {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// `hypercube(d)` — `2^d` nodes.
    Hypercube {
        /// Dimension, capped at 24 (16 Mi nodes) by the parser.
        d: usize,
    },
    /// `gnp(n, p)` — Erdős–Rényi, seeded by the job seed.
    Gnp {
        /// Node count.
        n: usize,
        /// Edge probability in `[0, 1]`.
        p: f64,
    },
    /// `preferential_attachment(n, m)` — seeded by the job seed.
    PreferentialAttachment {
        /// Node count.
        n: usize,
        /// Edges per arriving node.
        m: usize,
    },
}

impl GraphSpec {
    /// Parses the `graph` object of a job request.
    pub fn parse(v: &Json) -> Result<GraphSpec, JobError> {
        let bad = |what: &str| JobError::new(codes::BAD_REQUEST, format!("graph: {what}"));
        let gen = v
            .get("gen")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing string field \"gen\""))?;
        let field = |name: &str| -> Result<usize, JobError> {
            v.get(name)
                .and_then(Json::as_usize)
                .filter(|&x| x > 0)
                .ok_or_else(|| bad(&format!("missing/invalid positive integer \"{name}\"")))
        };
        match gen {
            "path" => Ok(GraphSpec::Path { n: field("n")? }),
            "cycle" => Ok(GraphSpec::Cycle { n: field("n")? }),
            "complete" => Ok(GraphSpec::Complete { n: field("n")? }),
            "star" => Ok(GraphSpec::Star { n: field("n")? }),
            "grid" => Ok(GraphSpec::Grid {
                rows: field("rows")?,
                cols: field("cols")?,
            }),
            "torus" => Ok(GraphSpec::Torus {
                rows: field("rows")?,
                cols: field("cols")?,
            }),
            "hypercube" => {
                let d = field("d")?;
                if d > 24 {
                    return Err(bad("hypercube dimension capped at 24"));
                }
                Ok(GraphSpec::Hypercube { d })
            }
            "gnp" => {
                let p = v
                    .get("p")
                    .and_then(Json::as_f64)
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| bad("\"p\" must be a number in [0, 1]"))?;
                Ok(GraphSpec::Gnp { n: field("n")?, p })
            }
            "preferential-attachment" => Ok(GraphSpec::PreferentialAttachment {
                n: field("n")?,
                m: field("m")?,
            }),
            other => Err(JobError::new(
                codes::UNSUPPORTED_GRAPH,
                format!("unknown generator {other:?}"),
            )),
        }
    }

    /// The node count this spec will produce, without building anything.
    pub fn nodes(&self) -> usize {
        match *self {
            GraphSpec::Path { n }
            | GraphSpec::Cycle { n }
            | GraphSpec::Complete { n }
            | GraphSpec::Star { n }
            | GraphSpec::Gnp { n, .. }
            | GraphSpec::PreferentialAttachment { n, .. } => n,
            GraphSpec::Grid { rows, cols } | GraphSpec::Torus { rows, cols } => {
                rows.saturating_mul(cols)
            }
            GraphSpec::Hypercube { d } => 1usize << d,
        }
    }

    /// Builds the graph. `seed` feeds the seeded generators only.
    pub fn build(&self, seed: u64) -> fssga_graph::Graph {
        use fssga_graph::generators as g;
        use fssga_graph::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        match *self {
            GraphSpec::Path { n } => g::path(n),
            GraphSpec::Cycle { n } => g::cycle(n),
            GraphSpec::Complete { n } => g::complete(n),
            GraphSpec::Star { n } => g::star(n),
            GraphSpec::Grid { rows, cols } => g::grid(rows, cols),
            GraphSpec::Torus { rows, cols } => g::torus(rows, cols),
            GraphSpec::Hypercube { d } => g::hypercube(d),
            GraphSpec::Gnp { n, p } => g::gnp(n, p, &mut rng),
            GraphSpec::PreferentialAttachment { n, m } => {
                g::preferential_attachment(n, m, &mut rng)
            }
        }
    }
}

/// Churn-stream parameters of a `kind: "churn"` job; see
/// [`fssga_engine::ChurnConfig`] for the semantics of each knob.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Rounds the stream spans (clamped to [`Limits::max_rounds`]).
    pub horizon: u64,
    /// Mean events per round.
    pub rate: f64,
    /// Probability an event is an arrival.
    pub arrival_bias: f64,
    /// Probability an event targets an edge rather than a node.
    pub edge_bias: f64,
    /// Attachment edges per arriving node.
    pub attach: usize,
}

/// A fully validated, limit-clamped job, ready for the queue.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Execution path.
    pub kind: JobKind,
    /// Protocol instance.
    pub proto: Proto,
    /// Topology.
    pub graph: GraphSpec,
    /// Determinism seed (default `0xF55A_2006`, the bench suite's).
    pub seed: u64,
    /// Sharded-kernel thread count; `1` (the default) runs the
    /// sequential auto-selected engine. Clamped to
    /// [`Limits::max_threads`]. Ignored by churn jobs (the dirty-set
    /// kernel is sequential).
    pub threads: usize,
    /// Effective round budget (request clamped to
    /// [`Limits::max_rounds`]); a churn job's horizon.
    pub rounds: usize,
    /// Whether the run stops at quiescence (`true`, the default) or
    /// executes exactly `rounds` rounds. A fixpoint job that exhausts
    /// `rounds` without converging fails with `budget-rounds`.
    pub fixpoint: bool,
    /// Effective wall-clock budget in milliseconds (request clamped to
    /// [`Limits::max_wall_ms`], which is also the default).
    pub wall_ms: u64,
    /// Whether per-round metric events stream back to the client
    /// (default `true`). `false` sends only `accepted` + `done`/`error`.
    pub stream: bool,
    /// Present iff `kind` is [`JobKind::Churn`].
    pub churn: Option<ChurnSpec>,
}

/// Default job seed — the bench suite's `DEFAULT_SEED`, so unseeded
/// service runs are comparable with recorded baselines.
pub const DEFAULT_SEED: u64 = 0xF55A_2006;

impl JobSpec {
    /// Parses and validates the body of a `{"t":"job",...}` frame,
    /// applying `limits` (rejects on the node cap, clamps the rest).
    pub fn parse(v: &Json, limits: &Limits) -> Result<JobSpec, JobError> {
        let bad = |what: String| JobError::new(codes::BAD_REQUEST, what);
        let kind = match v.get("kind").and_then(Json::as_str).unwrap_or("run") {
            "run" => JobKind::Run,
            "churn" => JobKind::Churn,
            other => return Err(bad(format!("unknown kind {other:?} (run|churn)"))),
        };
        let proto = Proto::parse(
            v.get("proto")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing string field \"proto\"".into()))?,
        )?;
        let graph = GraphSpec::parse(
            v.get("graph")
                .ok_or_else(|| bad("missing object field \"graph\"".into()))?,
        )?;
        if graph.nodes() > limits.max_nodes {
            return Err(JobError::new(
                codes::BUDGET_NODES,
                format!(
                    "graph has {} nodes, server cap is {}",
                    graph.nodes(),
                    limits.max_nodes
                ),
            ));
        }
        let opt_u64 = |name: &str| -> Result<Option<u64>, JobError> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(x) => x
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| bad(format!("\"{name}\" must be a non-negative integer"))),
            }
        };
        let opt_bool = |name: &str| -> Result<Option<bool>, JobError> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(x) => x
                    .as_bool()
                    .map(Some)
                    .ok_or_else(|| bad(format!("\"{name}\" must be a boolean"))),
            }
        };
        let seed = opt_u64("seed")?.unwrap_or(DEFAULT_SEED);
        let threads = (opt_u64("threads")?.unwrap_or(1) as usize).clamp(1, limits.max_threads);
        let rounds = (opt_u64("rounds")?.unwrap_or(limits.max_rounds as u64) as usize)
            .clamp(1, limits.max_rounds);
        let fixpoint = opt_bool("fixpoint")?.unwrap_or(true);
        let wall_ms = opt_u64("wall_ms")?
            .unwrap_or(limits.max_wall_ms)
            .clamp(1, limits.max_wall_ms);
        let stream = opt_bool("stream")?.unwrap_or(true);
        let churn = match (kind, v.get("churn")) {
            (JobKind::Run, None) => None,
            (JobKind::Run, Some(_)) => {
                return Err(bad(
                    "\"churn\" options are only valid with kind \"churn\"".into()
                ))
            }
            (JobKind::Churn, spec) => {
                if proto != Proto::Census {
                    return Err(bad(
                        "churn jobs run the census protocol only (its repair path is \
                         the one the dirty-set kernel supports under arrivals)"
                            .into(),
                    ));
                }
                let d = ChurnSpec {
                    horizon: rounds as u64,
                    rate: 2.0,
                    arrival_bias: 0.5,
                    edge_bias: 0.7,
                    attach: 2,
                };
                let s = spec.unwrap_or(&Json::Null);
                let opt_f64 = |name: &str, lo: f64, hi: f64, dft: f64| -> Result<f64, JobError> {
                    match s.get(name) {
                        None | Some(Json::Null) => Ok(dft),
                        Some(x) => x.as_f64().filter(|x| (lo..=hi).contains(x)).ok_or_else(|| {
                            bad(format!("churn.{name} must be a number in [{lo}, {hi}]"))
                        }),
                    }
                };
                Some(ChurnSpec {
                    horizon: s
                        .get("horizon")
                        .and_then(Json::as_u64)
                        .unwrap_or(d.horizon)
                        .clamp(1, limits.max_rounds as u64),
                    rate: opt_f64("rate", 0.0, 1000.0, d.rate)?,
                    arrival_bias: opt_f64("arrival_bias", 0.0, 1.0, d.arrival_bias)?,
                    edge_bias: opt_f64("edge_bias", 0.0, 1.0, d.edge_bias)?,
                    attach: s.get("attach").and_then(Json::as_usize).unwrap_or(d.attach),
                })
            }
        };
        Ok(JobSpec {
            kind,
            proto,
            graph,
            seed,
            threads,
            rounds,
            fixpoint,
            wall_ms,
            stream,
            churn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<JobSpec, JobError> {
        JobSpec::parse(&Json::parse(text).unwrap(), &Limits::default())
    }

    #[test]
    fn minimal_run_job_gets_documented_defaults() {
        let spec =
            parse(r#"{"t":"job","proto":"census","graph":{"gen":"torus","rows":8,"cols":8}}"#)
                .unwrap();
        assert_eq!(spec.kind, JobKind::Run);
        assert_eq!(spec.proto, Proto::Census);
        assert_eq!(spec.graph.nodes(), 64);
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert_eq!(spec.threads, 1);
        assert_eq!(spec.rounds, Limits::default().max_rounds);
        assert!(spec.fixpoint && spec.stream);
        assert_eq!(spec.wall_ms, Limits::default().max_wall_ms);
        assert!(spec.churn.is_none());
    }

    #[test]
    fn limits_clamp_and_reject() {
        let limits = Limits {
            max_nodes: 100,
            max_rounds: 50,
            max_wall_ms: 1_000,
            max_threads: 2,
        };
        let v = Json::parse(
            r#"{"proto":"census","graph":{"gen":"path","n":10},
                "rounds":500,"wall_ms":99999,"threads":64}"#,
        )
        .unwrap();
        let spec = JobSpec::parse(&v, &limits).unwrap();
        assert_eq!(
            (spec.rounds, spec.wall_ms, spec.threads),
            (50, 1_000, 2),
            "over-asks clamp to server maxima"
        );
        let big = Json::parse(r#"{"proto":"census","graph":{"gen":"torus","rows":64,"cols":64}}"#)
            .unwrap();
        let err = JobSpec::parse(&big, &limits).unwrap_err();
        assert_eq!(err.code, codes::BUDGET_NODES);
    }

    #[test]
    fn churn_jobs_take_census_only_and_default_sanely() {
        let spec = parse(
            r#"{"kind":"churn","proto":"census","graph":{"gen":"torus","rows":8,"cols":8},
                "rounds":64,"churn":{"rate":3.5}}"#,
        )
        .unwrap();
        let c = spec.churn.unwrap();
        assert_eq!(c.horizon, 64, "horizon defaults to the round budget");
        assert_eq!(c.rate, 3.5);
        assert_eq!((c.arrival_bias, c.edge_bias, c.attach), (0.5, 0.7, 2));
        let err = parse(r#"{"kind":"churn","proto":"kunison","graph":{"gen":"path","n":4}}"#)
            .unwrap_err();
        assert_eq!(err.code, codes::BAD_REQUEST);
    }

    #[test]
    fn structured_errors_carry_closed_codes() {
        let cases = [
            (
                r#"{"proto":"nope","graph":{"gen":"path","n":4}}"#,
                codes::UNSUPPORTED_PROTO,
            ),
            (
                r#"{"proto":"census","graph":{"gen":"moebius","n":4}}"#,
                codes::UNSUPPORTED_GRAPH,
            ),
            (r#"{"proto":"census"}"#, codes::BAD_REQUEST),
            (
                r#"{"proto":"census","graph":{"gen":"gnp","n":4,"p":1.5}}"#,
                codes::BAD_REQUEST,
            ),
            (
                r#"{"proto":"census","graph":{"gen":"path","n":4},"churn":{}}"#,
                codes::BAD_REQUEST,
            ),
        ];
        for (text, code) in cases {
            assert_eq!(parse(text).unwrap_err().code, code, "{text}");
        }
    }

    #[test]
    fn error_frames_render_the_documented_shape() {
        let line = JobError::new(codes::OVERLOADED, "queue full (16)").to_jsonl(7);
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("t").and_then(Json::as_str), Some("error"));
        assert_eq!(v.get("job").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(
            v.get("detail").and_then(Json::as_str),
            Some("queue full (16)")
        );
    }
}
