//! Framing: length-prefixed JSON over a byte stream.
//!
//! Every message in either direction is one *frame*: a 4-byte
//! big-endian unsigned length `L`, followed by exactly `L` bytes of
//! UTF-8 JSON. `L` counts the JSON bytes only (not the prefix) and must
//! be in `1..=MAX_FRAME`. The prefix makes the protocol trivially
//! self-delimiting — a client written in any language can speak it with
//! `recv(4)` + `recv(L)` and never needs an incremental JSON parser.
//!
//! Clean shutdown is an EOF *between* frames: [`read_frame`] returns
//! `Ok(None)` when the stream ends before any prefix byte, and an error
//! when it ends mid-prefix or mid-payload (a truncated frame).
//!
//! Ownership: this module owns nothing but the byte-level encoding. It
//! never interprets the JSON; parsing and dispatch happen in
//! [`crate::job`] and [`crate::server`].

use std::io::{self, Read, Write};

/// Hard cap on a frame's JSON payload, in bytes (1 MiB).
///
/// Large enough for any job request the service accepts (requests are
/// a few hundred bytes; the largest response lines are per-round metric
/// events well under 1 KiB), small enough that a hostile prefix cannot
/// make the server allocate unbounded memory.
pub const MAX_FRAME: usize = 1 << 20;

/// Errors surfaced by [`read_frame`].
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including EOF inside a frame).
    Io(io::Error),
    /// The length prefix was zero or exceeded [`MAX_FRAME`].
    BadLength(u32),
    /// The payload bytes were not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadLength(l) => write!(f, "bad frame length {l} (max {MAX_FRAME})"),
            FrameError::BadUtf8 => f.write_str("frame payload is not UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame: 4-byte big-endian length, then the payload bytes.
///
/// The payload must not exceed [`MAX_FRAME`]; server-built responses
/// are always far below it, so overflow here is a logic error and
/// panics in debug builds (it is truncation-checked in release too).
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    debug_assert!(bytes.len() <= MAX_FRAME, "oversized outbound frame");
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame.
///
/// Returns `Ok(Some(json))` on a complete frame, `Ok(None)` on a clean
/// EOF at a frame boundary, and `Err` on truncation, an out-of-range
/// length prefix, or non-UTF-8 payload.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<String>, FrameError> {
    let mut prefix = [0u8; 4];
    // Hand-rolled first-byte read so EOF-before-anything is clean.
    match r.read(&mut prefix[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(e.into()),
    }
    r.read_exact(&mut prefix[1..])?;
    let len = u32::from_be_bytes(prefix);
    if len == 0 || len as usize > MAX_FRAME {
        return Err(FrameError::BadLength(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::BadUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"t":"ping"}"#).unwrap();
        write_frame(&mut buf, "{}").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(r#"{"t":"ping"}"#)
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{}"));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frames_error() {
        // EOF mid-prefix.
        let mut r = Cursor::new(vec![0u8, 0]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
        // EOF mid-payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn length_bounds_are_enforced() {
        let mut r = Cursor::new(vec![0, 0, 0, 0]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::BadLength(0))));
        let oversized = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        let mut r = Cursor::new(oversized);
        assert!(matches!(read_frame(&mut r), Err(FrameError::BadLength(_))));
    }

    #[test]
    fn non_utf8_payload_errors() {
        let mut buf = 2u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::BadUtf8)));
    }
}
