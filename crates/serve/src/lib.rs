//! `fssga-serve` — the always-on simulation service.
//!
//! A long-running TCP server that accepts simulation and churn jobs as
//! length-prefixed JSON frames, multiplexes them onto the engine
//! through the [`fssga_engine::Runner`] builder, and streams per-round
//! metrics back to the client incrementally through the engine's
//! [`fssga_engine::Tracer`] hooks. Every job runs under three budgets —
//! nodes (admission-time rejection), rounds (engine budget), and
//! wall-clock (a watchdog thread firing cooperative cancellation) —
//! and a bounded queue sheds load explicitly when the service is busy.
//!
//! The wire protocol is fully documented in DESIGN.md §12; the crate
//! layout mirrors its sections:
//!
//! * [`wire`] — framing: 4-byte big-endian length + UTF-8 JSON.
//! * [`json`] — the dependency-free JSON tree (the workspace has no
//!   serde by policy).
//! * [`job`] — the job schema, server [`job::Limits`], and the closed
//!   set of [`job::codes`] error codes.
//! * [`exec`] — the protocol registry and the [`exec::JobCancel`]
//!   first-cause cancellation handle.
//! * [`pool`] — the bounded [`pool::JobQueue`] (backpressure) and the
//!   [`pool::WorkerPool`] that drains it.
//! * [`watchdog`] — the wall-clock deadline registry.
//! * [`server`] — accept loop, per-connection protocol driver,
//!   admission, and the ordered graceful shutdown.
//!
//! Determinism is the service's headline guarantee: a job is a pure
//! function of its spec, so the streamed metrics and the `done`
//! frame's final-state fingerprint are bit-identical to a direct
//! in-process [`fssga_engine::Runner`] run of the same spec — the
//! end-to-end tests assert exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod job;
pub mod json;
pub mod pool;
pub mod server;
pub mod watchdog;
pub mod wire;

pub use exec::{census_sketch, execute, fingerprint, JobCancel};
pub use job::{codes, ChurnSpec, GraphSpec, JobError, JobKind, JobSpec, Limits, Proto};
pub use json::Json;
pub use pool::{JobQueue, QueuedJob, WorkerPool};
pub use server::{serve, ServeConfig, ServerHandle};
pub use watchdog::Watchdog;
pub use wire::{read_frame, write_frame, FrameError, MAX_FRAME};
