//! The `fssga-serve` binary: bind, serve, drain on request.
//!
//! ```text
//! fssga-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!             [--max-nodes N] [--max-rounds N] [--max-wall-ms MS]
//!             [--max-threads N] [--read-timeout-ms MS]
//!             [--allow-shutdown] [--for-ms MS]
//! ```
//!
//! Runs until either a client sends a `shutdown` frame (honoured only
//! with `--allow-shutdown`) or the optional `--for-ms` deadline
//! passes; both paths end in the ordered graceful shutdown documented
//! in [`fssga_serve::server`]. Without either, the process serves
//! until killed.

use std::time::{Duration, Instant};

use fssga_serve::{serve, ServeConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fssga-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
         \x20                  [--max-nodes N] [--max-rounds N] [--max-wall-ms MS]\n\
         \x20                  [--max-threads N] [--read-timeout-ms MS]\n\
         \x20                  [--allow-shutdown] [--for-ms MS]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServeConfig::default();
    let mut for_ms: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs {what}");
                usage()
            })
        };
        let parse = |text: String, what: &str| -> u64 {
            text.parse().unwrap_or_else(|_| {
                eprintln!("{what} must be an integer, got {text:?}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("an address"),
            "--workers" => cfg.workers = parse(value("a count"), "--workers") as usize,
            "--queue-cap" => cfg.queue_cap = parse(value("a count"), "--queue-cap") as usize,
            "--max-nodes" => cfg.limits.max_nodes = parse(value("a count"), "--max-nodes") as usize,
            "--max-rounds" => {
                cfg.limits.max_rounds = parse(value("a count"), "--max-rounds") as usize
            }
            "--max-wall-ms" => cfg.limits.max_wall_ms = parse(value("millis"), "--max-wall-ms"),
            "--max-threads" => {
                cfg.limits.max_threads = parse(value("a count"), "--max-threads") as usize
            }
            "--read-timeout-ms" => {
                cfg.read_timeout_ms = parse(value("millis"), "--read-timeout-ms")
            }
            "--allow-shutdown" => cfg.allow_shutdown = true,
            "--for-ms" => for_ms = Some(parse(value("millis"), "--for-ms")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }

    let handle = match serve(cfg.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("fssga-serve: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    println!(
        "fssga-serve listening on {} (workers {}, queue {}, caps: {} nodes / {} rounds / {} ms, shutdown frames {})",
        handle.addr(),
        cfg.workers,
        cfg.queue_cap,
        cfg.limits.max_nodes,
        cfg.limits.max_rounds,
        cfg.limits.max_wall_ms,
        if cfg.allow_shutdown { "allowed" } else { "forbidden" },
    );

    let started = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(50));
        if handle.shutdown_requested() {
            println!("fssga-serve: shutdown requested by client; draining");
            break;
        }
        if let Some(ms) = for_ms {
            if started.elapsed() >= Duration::from_millis(ms) {
                println!("fssga-serve: --for-ms deadline reached; draining");
                break;
            }
        }
    }
    handle.shutdown();
    println!("fssga-serve: drained and stopped");
}
