//! A minimal JSON value model, parser, and writer.
//!
//! The workspace is dependency-free by policy (no serde), and the wire
//! protocol only needs plain JSON trees: this module supplies the ~20%
//! of a JSON library the service actually uses. Numbers are held as
//! `f64`, which represents every integer a JavaScript client can emit
//! exactly (|x| ≤ 2⁵³); DESIGN.md §12 documents that integer wire
//! fields live in that range. Parsing is strict UTF-8 recursive descent
//! with a depth cap so a hostile frame cannot blow the stack.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`]. Job requests are
/// at most three levels deep; 32 leaves generous headroom while keeping
/// the recursive parser stack-safe on malicious input.
const MAX_DEPTH: u32 = 32;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (see the module docs for integer precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value
    /// on lookup, matching common JSON semantics).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9e15 => Some(*x as u64),
            _ => None,
        }
    }

    /// [`Self::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Compact serialization (no whitespace), inverse of [`Json::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() <= 9e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .ok()
        .filter(|x| x.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(utf8_chunk(bytes, chunk_start, *pos)?);
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(utf8_chunk(bytes, chunk_start, *pos)?);
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        *pos += 4;
                        // Surrogate pairs: accept the \uD800-\uDBFF +
                        // \uDC00-\uDFFF form; lone surrogates error.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos..*pos + 2) != Some(b"\\u") {
                                return Err("lone high surrogate".into());
                            }
                            *pos += 2;
                            let hex2 = bytes
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated low surrogate")?;
                            let low = u32::from_str_radix(hex2, 16)
                                .map_err(|_| "bad low surrogate".to_owned())?;
                            *pos += 4;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("bad low surrogate".into());
                            }
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(char::from_u32(c).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                }
                chunk_start = *pos;
            }
            c if c < 0x20 => return Err("raw control character in string".into()),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn utf8_chunk(bytes: &[u8], start: usize, end: usize) -> Result<&str, String> {
    std::str::from_utf8(&bytes[start..end]).map_err(|_| "invalid UTF-8 in string".to_owned())
}

/// Convenience constructor for object literals in response-building code.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Convenience constructor for string values.
pub fn s(text: impl Into<String>) -> Json {
    Json::Str(text.into())
}

/// Convenience constructor for numeric values from any integer/float.
pub fn n(x: impl Into<f64>) -> Json {
    Json::Num(x.into())
}

/// Numeric value from a `u64` (lossless up to 2⁵³, the wire contract).
pub fn nu(x: u64) -> Json {
    Json::Num(x as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures_and_round_trips() {
        let text = r#"{"t":"job","kind":"run","n":42,"opts":{"deep":[1,2,{"x":null}]},"ok":true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("t").and_then(Json::as_str), Some("job"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let round_tripped = Json::parse(&v.to_string()).unwrap();
        assert_eq!(round_tripped, v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\tβ\u{1}\u{1F600}".into());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Escaped input forms, including a surrogate pair.
        let parsed = Json::parse(r#""\u0041\n\ud83d\ude00""#).unwrap();
        assert_eq!(parsed, Json::Str("A\n\u{1F600}".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "nan",
            "\"\\ud800\"",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let deep = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(Json::parse(&deep).is_err(), "depth cap enforced");
    }

    #[test]
    fn integer_precision_contract() {
        assert_eq!(Json::parse("9007199254740992").unwrap().as_u64(), None); // > 9e15 guard
        assert_eq!(
            Json::parse("8999999999999999").unwrap().as_u64(),
            Some(8_999_999_999_999_999)
        );
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(nu(12).to_string(), "12");
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }
}
