//! The bounded job queue and the worker pool that drains it.
//!
//! Backpressure lives here: [`JobQueue::push`] is non-blocking and
//! *rejects* when the queue is at capacity — the connection handler
//! turns that rejection into an `overloaded` error frame, so a client
//! learns immediately instead of waiting in an invisible line. Workers
//! block in [`JobQueue::pop`] between jobs.
//!
//! Ownership and shutdown: the queue is shared (`Arc`) between the
//! accept side (pushes) and the workers (pops). [`JobQueue::close`]
//! flips a latch — pushes start failing, pops drain what is already
//! queued and then return `None`, and each worker exits its loop.
//! [`WorkerPool::join`] then reaps the threads. The server tears down
//! in exactly that order (see [`crate::server`]).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::exec::{self, JobCancel};
use crate::job::{codes, JobError, JobSpec};
use crate::watchdog::Watchdog;

/// One admitted job, parked in the queue until a worker picks it up.
#[derive(Debug)]
pub struct QueuedJob {
    /// Server-unique job id (echoed in every response frame).
    pub id: u64,
    /// The validated, limit-clamped request.
    pub spec: JobSpec,
    /// Cancellation handle shared with the watchdog and the
    /// connection writer.
    pub cancel: JobCancel,
    /// Wall-clock deadline (admission time + the job's `wall_ms`).
    /// The clock starts at admission, so time spent queued counts
    /// against the budget — a shed-load guarantee, not a stopwatch.
    pub deadline: Instant,
    /// Stream channel back to the connection's writer loop.
    pub tx: SyncSender<String>,
}

/// Queue interior behind one mutex.
#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    closed: bool,
}

/// The bounded, closable job queue.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

impl JobQueue {
    /// A queue admitting at most `cap` parked jobs (running jobs do
    /// not count — capacity bounds *waiting*, workers bound *running*).
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(JobQueue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            cap: cap.max(1),
        })
    }

    /// Admits `job`, returning the queue depth after the push, or the
    /// job back if the queue is full or closed (the caller sheds it).
    // The Err variant hands ownership of the whole job back to the
    // shedding caller on purpose; boxing it would add an allocation to
    // every admission to shrink a cold rejection path.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, job: QueuedJob) -> Result<usize, QueuedJob> {
        let mut s = self.state.lock().expect("queue lock");
        if s.closed || s.jobs.len() >= self.cap {
            return Err(job);
        }
        s.jobs.push_back(job);
        let depth = s.jobs.len();
        drop(s);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained (the worker-exit signal).
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = s.jobs.pop_front() {
                return Some(job);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes fail, pops drain then end.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently parked (diagnostic only — racy by nature).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").jobs.len()
    }
}

/// The fixed set of worker threads executing queued jobs.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads draining `queue`. Each job is
    /// registered with `watchdog` for its wall deadline *before*
    /// execution and deregistered only after its final frame is
    /// handed to the connection channel — so a job wedged on a
    /// stalled client is still cancellable.
    pub fn spawn(workers: usize, queue: Arc<JobQueue>, watchdog: Arc<Watchdog>) -> Self {
        let handles = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let watchdog = Arc::clone(&watchdog);
                std::thread::Builder::new()
                    .name(format!("fssga-serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &watchdog))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Reaps the workers. Call only after [`JobQueue::close`], or this
    /// blocks until someone else closes the queue.
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(queue: &JobQueue, watchdog: &Watchdog) {
    while let Some(job) = queue.pop() {
        watchdog.watch(job.id, job.deadline, job.cancel.clone());
        // A panic inside the engine is an invariant violation, not a
        // protocol event — convert it to an `internal` error frame so
        // the worker (and the client's connection) survive it.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            exec::execute(job.id, &job.spec, &job.cancel, &job.tx)
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".into());
            Err(JobError::new(codes::INTERNAL, msg))
        });
        let line = match outcome {
            Ok(done) => done,
            Err(e) => e.to_jsonl(job.id),
        };
        send_final(&job.tx, line, &job.cancel);
        watchdog.unwatch(job.id);
        // Dropping `job` here drops the worker's `tx`; once the tracer
        // clones inside `execute` are gone too, the connection's
        // receiver disconnects and its writer loop finishes.
    }
}

/// Delivers the final `done`/`error` line without wedging the worker:
/// bounded-channel pressure is retried until the job's cancel handle
/// fires (client gone or wall deadline), then the line is dropped.
fn send_final(tx: &SyncSender<String>, mut line: String, cancel: &JobCancel) {
    loop {
        match tx.try_send(line) {
            Ok(()) => return,
            Err(TrySendError::Full(l)) => {
                if cancel.token().is_cancelled() {
                    return;
                }
                line = l;
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Limits;
    use crate::json::Json;
    use std::sync::mpsc::sync_channel;

    fn tiny_spec() -> JobSpec {
        JobSpec::parse(
            &Json::parse(r#"{"proto":"census","graph":{"gen":"path","n":8},"stream":false}"#)
                .unwrap(),
            &Limits::default(),
        )
        .unwrap()
    }

    fn queued(id: u64, tx: SyncSender<String>) -> QueuedJob {
        QueuedJob {
            id,
            spec: tiny_spec(),
            cancel: JobCancel::new(),
            deadline: Instant::now() + Duration::from_secs(30),
            tx,
        }
    }

    #[test]
    fn queue_bounds_and_sheds() {
        let q = JobQueue::new(2);
        let (tx, _rx) = sync_channel(8);
        assert_eq!(q.push(queued(1, tx.clone())).unwrap(), 1);
        assert_eq!(q.push(queued(2, tx.clone())).unwrap(), 2);
        let rejected = q.push(queued(3, tx.clone())).unwrap_err();
        assert_eq!(rejected.id, 3, "full queue returns the job for shedding");
        assert_eq!(q.pop().unwrap().id, 1, "FIFO order");
        q.close();
        assert!(q.push(queued(4, tx)).is_err(), "closed queue rejects");
        assert_eq!(q.pop().unwrap().id, 2, "close drains what was queued");
        assert!(q.pop().is_none(), "then signals worker exit");
    }

    #[test]
    fn workers_drain_jobs_to_final_frames() {
        let q = JobQueue::new(8);
        let watchdog = Watchdog::start();
        let pool = WorkerPool::spawn(2, Arc::clone(&q), Arc::clone(&watchdog));
        let mut rxs = Vec::new();
        for id in 0..4 {
            let (tx, rx) = sync_channel(8);
            q.push(queued(id, tx)).unwrap();
            rxs.push((id, rx));
        }
        for (id, rx) in rxs {
            let line = rx.recv().expect("final frame");
            let v = Json::parse(&line).unwrap();
            assert_eq!(v.get("t").and_then(Json::as_str), Some("done"));
            assert_eq!(v.get("job").and_then(Json::as_u64), Some(id));
            assert!(rx.recv().is_err(), "channel closes after the final frame");
        }
        q.close();
        pool.join();
        watchdog.stop();
    }

    #[test]
    fn final_frame_is_dropped_not_wedged_when_cancelled() {
        let (tx, _rx) = sync_channel(1);
        tx.send("occupying the only slot".into()).unwrap();
        let cancel = JobCancel::new();
        cancel.fire(codes::BUDGET_WALL);
        send_final(&tx, "late line".into(), &cancel); // must return promptly
    }
}
