//! The wall-clock watchdog: one thread, many deadlines.
//!
//! Every job entering a worker is registered here with its admission
//! deadline; the watchdog thread sleeps until the *nearest* deadline,
//! fires that job's [`JobCancel`] with `budget-wall`, and moves on.
//! Cancellation is cooperative — the engine observes the token at the
//! next round boundary (see the cancellation-safety argument in
//! DESIGN.md §12.6) — so "cancelled at deadline" means "no new round
//! starts after the deadline", not a mid-round abort.
//!
//! Ownership and shutdown: the watchdog owns only its registry and
//! thread. Workers call [`Watchdog::watch`] / [`Watchdog::unwatch`]
//! around each job; the server calls [`Watchdog::stop`] *after* the
//! worker pool has been joined, so no entry can be registered during
//! teardown and stopping cannot strand a live job.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::exec::JobCancel;
use crate::job::codes;

#[derive(Debug)]
struct Entry {
    id: u64,
    deadline: Instant,
    cancel: JobCancel,
}

#[derive(Debug, Default)]
struct State {
    entries: Vec<Entry>,
    stopping: bool,
}

/// The deadline registry plus its firing thread.
#[derive(Debug)]
pub struct Watchdog {
    state: Mutex<State>,
    wake: Condvar,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Watchdog {
    /// Starts the watchdog thread and returns the shared registry.
    pub fn start() -> Arc<Self> {
        let dog = Arc::new(Watchdog {
            state: Mutex::new(State::default()),
            wake: Condvar::new(),
            thread: Mutex::new(None),
        });
        let for_thread = Arc::clone(&dog);
        let handle = std::thread::Builder::new()
            .name("fssga-serve-watchdog".into())
            .spawn(move || for_thread.run())
            .expect("spawn watchdog");
        *dog.thread.lock().expect("watchdog thread slot") = Some(handle);
        dog
    }

    /// Registers job `id`: at `deadline`, `cancel` fires `budget-wall`
    /// (unless some other cause beat it to the punch — [`JobCancel`]
    /// is first-cause-wins).
    pub fn watch(&self, id: u64, deadline: Instant, cancel: JobCancel) {
        let mut s = self.state.lock().expect("watchdog lock");
        s.entries.push(Entry {
            id,
            deadline,
            cancel,
        });
        drop(s);
        self.wake.notify_one();
    }

    /// Deregisters job `id` (idempotent; the job finished or was
    /// already fired).
    pub fn unwatch(&self, id: u64) {
        let mut s = self.state.lock().expect("watchdog lock");
        s.entries.retain(|e| e.id != id);
    }

    /// Stops and joins the watchdog thread. Entries still registered
    /// are dropped without firing; call after the workers are joined.
    pub fn stop(&self) {
        self.state.lock().expect("watchdog lock").stopping = true;
        self.wake.notify_all();
        let handle = self.thread.lock().expect("watchdog thread slot").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Live registrations (diagnostic only).
    pub fn watching(&self) -> usize {
        self.state.lock().expect("watchdog lock").entries.len()
    }

    fn run(&self) {
        let mut s = self.state.lock().expect("watchdog lock");
        loop {
            if s.stopping {
                return;
            }
            let now = Instant::now();
            // Fire everything due; keep the rest and find the nearest.
            let mut nearest: Option<Instant> = None;
            s.entries.retain(|e| {
                if e.deadline <= now {
                    e.cancel.fire(codes::BUDGET_WALL);
                    false
                } else {
                    nearest = Some(match nearest {
                        None => e.deadline,
                        Some(t) => t.min(e.deadline),
                    });
                    true
                }
            });
            s = match nearest {
                None => self.wake.wait(s).expect("watchdog lock"),
                Some(t) => {
                    let timeout = t.saturating_duration_since(Instant::now());
                    self.wake.wait_timeout(s, timeout).expect("watchdog lock").0
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fires_only_expired_deadlines() {
        let dog = Watchdog::start();
        let soon = JobCancel::new();
        let later = JobCancel::new();
        dog.watch(1, Instant::now() + Duration::from_millis(20), soon.clone());
        dog.watch(2, Instant::now() + Duration::from_secs(60), later.clone());
        let t0 = Instant::now();
        while soon.cause().is_none() && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(soon.cause(), Some(codes::BUDGET_WALL));
        assert_eq!(later.cause(), None, "future deadline must not fire");
        assert_eq!(dog.watching(), 1, "fired entry is removed");
        dog.unwatch(2);
        assert_eq!(dog.watching(), 0);
        dog.stop();
    }

    #[test]
    fn unwatch_prevents_firing() {
        let dog = Watchdog::start();
        let cancel = JobCancel::new();
        dog.watch(
            7,
            Instant::now() + Duration::from_millis(30),
            cancel.clone(),
        );
        dog.unwatch(7);
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(cancel.cause(), None);
        dog.stop();
    }
}
