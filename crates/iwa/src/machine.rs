//! The isotonic web automaton model.

use fssga_graph::rng::Xoshiro256;
use fssga_graph::{DynGraph, Graph, NodeId};

/// A rule guard: a condition on the labels present among the neighbours
/// of the agent's position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Guard {
    /// Fires unconditionally.
    Always,
    /// Some neighbour carries the label.
    Present(u16),
    /// No neighbour carries the label.
    Absent(u16),
}

/// One IWA transition rule. Rules are tried in order; the first
/// *applicable* rule fires (guard satisfied, and — if the rule moves —
/// some neighbour carries the destination label).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IwaRule {
    /// Agent state in which this rule applies.
    pub state: u16,
    /// Neighbourhood condition.
    pub guard: Guard,
    /// New label for the current position.
    pub relabel: u16,
    /// Label of the neighbour to step to (`None` = stay put). If several
    /// neighbours carry it, the machine picks one uniformly at random —
    /// the model allows "any neighbour having some specified label".
    pub move_to: Option<u16>,
    /// New agent state.
    pub next_state: u16,
}

/// An IWA program: a finite agent-state set, a finite label set, and an
/// ordered rule list.
#[derive(Clone, Debug)]
pub struct Iwa {
    /// Number of agent states.
    pub num_states: usize,
    /// Number of node labels.
    pub num_labels: usize,
    /// The ordered rule list.
    pub rules: Vec<IwaRule>,
}

impl Iwa {
    /// Validates all rule components against the declared ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (i, r) in self.rules.iter().enumerate() {
            if r.state as usize >= self.num_states || r.next_state as usize >= self.num_states {
                return Err(format!("rule {i}: agent state out of range"));
            }
            if r.relabel as usize >= self.num_labels {
                return Err(format!("rule {i}: relabel out of range"));
            }
            let lbl = match (r.guard, r.move_to) {
                (Guard::Present(l), _) | (Guard::Absent(l), _) => Some(l),
                (_, Some(l)) => Some(l),
                _ => None,
            };
            if let Some(l) = lbl {
                if l as usize >= self.num_labels {
                    return Err(format!("rule {i}: label out of range"));
                }
            }
            if let Some(l) = r.move_to {
                if l as usize >= self.num_labels {
                    return Err(format!("rule {i}: move label out of range"));
                }
            }
        }
        Ok(())
    }
}

/// A fired step, for tracing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IwaStep {
    /// Index of the rule that fired.
    pub rule: usize,
    /// Node the agent was at.
    pub at: NodeId,
    /// Node the agent moved to (same as `at` for non-moving rules).
    pub to: NodeId,
}

/// A running IWA machine: program + graph + labels + agent.
pub struct IwaMachine {
    iwa: Iwa,
    graph: DynGraph,
    labels: Vec<u16>,
    agent: NodeId,
    state: u16,
    steps: u64,
}

impl IwaMachine {
    /// Builds the machine; `init_label` gives each node's initial label.
    pub fn new(
        iwa: Iwa,
        g: &Graph,
        start: NodeId,
        mut init_label: impl FnMut(NodeId) -> u16,
    ) -> Self {
        iwa.validate().expect("valid IWA program");
        let labels = (0..g.n() as NodeId).map(&mut init_label).collect();
        Self {
            iwa,
            graph: DynGraph::from_graph(g),
            labels,
            agent: start,
            state: 0,
            steps: 0,
        }
    }

    /// Current agent position.
    pub fn agent(&self) -> NodeId {
        self.agent
    }

    /// Current agent state.
    pub fn state(&self) -> u16 {
        self.state
    }

    /// Node labels.
    pub fn labels(&self) -> &[u16] {
        &self.labels
    }

    /// Steps fired so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The live topology (fault injection).
    pub fn graph_mut(&mut self) -> &mut DynGraph {
        &mut self.graph
    }

    fn guard_holds(&self, g: Guard) -> bool {
        match g {
            Guard::Always => true,
            Guard::Present(l) => self
                .graph
                .neighbors(self.agent)
                .iter()
                .any(|&w| self.labels[w as usize] == l),
            Guard::Absent(l) => !self
                .graph
                .neighbors(self.agent)
                .iter()
                .any(|&w| self.labels[w as usize] == l),
        }
    }

    /// Fires the first applicable rule. Returns the step, or `None` if the
    /// machine has halted (no applicable rule).
    pub fn step(&mut self, rng: &mut Xoshiro256) -> Option<IwaStep> {
        for (i, r) in self.iwa.rules.iter().enumerate() {
            if r.state != self.state || !self.guard_holds(r.guard) {
                continue;
            }
            let to = match r.move_to {
                None => self.agent,
                Some(l) => {
                    let candidates: Vec<NodeId> = self
                        .graph
                        .neighbors(self.agent)
                        .iter()
                        .copied()
                        .filter(|&w| self.labels[w as usize] == l)
                        .collect();
                    if candidates.is_empty() {
                        continue; // rule not applicable; try the next
                    }
                    candidates[rng.gen_index(candidates.len())]
                }
            };
            let at = self.agent;
            self.labels[at as usize] = r.relabel;
            self.agent = to;
            self.state = r.next_state;
            self.steps += 1;
            return Some(IwaStep { rule: i, at, to });
        }
        None
    }

    /// Runs up to `max_steps`; returns the number of steps fired.
    pub fn run(&mut self, max_steps: u64, rng: &mut Xoshiro256) -> u64 {
        let mut fired = 0;
        for _ in 0..max_steps {
            if self.step(rng).is_none() {
                break;
            }
            fired += 1;
        }
        fired
    }
}

/// A simple example: depth-first *tree* traversal as an IWA (labels:
/// 0 = unvisited, 1 = on the agent's path, 2 = done). The agent marks its
/// position, walks to unvisited neighbours while they exist, and
/// backtracks along path labels otherwise.
///
/// On a tree the backtrack target is unique (finished children are
/// relabelled 2), so every node is visited. On graphs with cycles,
/// "move to any 1-labelled neighbour" can jump across a chord and strand
/// part of the path — Milgram's full traversal program prevents this
/// with by-arm marking (the same mechanism as the Section 4.5 FSSGA
/// traversal in `fssga-protocols`); we keep the three-label demo simple
/// and exercise it on trees.
pub fn dfs_traversal_iwa() -> Iwa {
    Iwa {
        num_states: 1,
        num_labels: 3,
        rules: vec![
            // Advance to an unvisited neighbour, leaving a path mark.
            IwaRule {
                state: 0,
                guard: Guard::Present(0),
                relabel: 1,
                move_to: Some(0),
                next_state: 0,
            },
            // No unvisited neighbour: finish this node, backtrack.
            IwaRule {
                state: 0,
                guard: Guard::Absent(0),
                relabel: 2,
                move_to: Some(1),
                next_state: 0,
            },
            // Nowhere to backtrack either (origin): finish and halt via
            // inapplicability next time (relabel keeps the machine sane).
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_graph::generators;

    #[test]
    fn validation_catches_bad_rules() {
        let mut iwa = dfs_traversal_iwa();
        assert!(iwa.validate().is_ok());
        iwa.rules.push(IwaRule {
            state: 5,
            guard: Guard::Always,
            relabel: 0,
            move_to: None,
            next_state: 0,
        });
        assert!(iwa.validate().is_err());
    }

    #[test]
    fn dfs_traversal_visits_everything() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for trial in 0..10 {
            let g = generators::random_tree(20, &mut rng);
            let mut m = IwaMachine::new(dfs_traversal_iwa(), &g, 0, |_| 0);
            m.run(10_000, &mut rng);
            // Every node should end labelled 2 (done), except possibly the
            // agent's final position (labelled when it fired its last rule).
            let unfinished: Vec<_> = (0..g.n()).filter(|&v| m.labels()[v] == 0).collect();
            assert!(unfinished.is_empty(), "trial {trial}: {unfinished:?}");
        }
    }

    #[test]
    fn dfs_step_count_is_linear_in_edges() {
        // The DFS agent crosses each tree edge twice and inspects others
        // locally: total steps <= 2n on any graph (it never re-enters a
        // done node).
        let mut rng = Xoshiro256::seed_from_u64(8);
        let g = generators::binary_tree(36);
        let mut m = IwaMachine::new(dfs_traversal_iwa(), &g, 0, |_| 0);
        let fired = m.run(100_000, &mut rng);
        assert!(fired <= 2 * g.n() as u64, "fired = {fired}");
    }

    #[test]
    fn halting_when_no_rule_applies() {
        let g = generators::path(2);
        let iwa = Iwa {
            num_states: 1,
            num_labels: 2,
            rules: vec![IwaRule {
                state: 0,
                guard: Guard::Present(1),
                relabel: 1,
                move_to: None,
                next_state: 0,
            }],
        };
        // No node has label 1, so the guard never holds: immediate halt.
        let mut m = IwaMachine::new(iwa, &g, 0, |_| 0);
        let mut rng = Xoshiro256::seed_from_u64(9);
        assert!(m.step(&mut rng).is_none());
        assert_eq!(m.steps(), 0);
    }

    #[test]
    fn move_rule_skipped_without_candidates() {
        let g = generators::path(3);
        let iwa = Iwa {
            num_states: 1,
            num_labels: 3,
            rules: vec![
                // Wants to move to label 2, which nobody has: inapplicable.
                IwaRule {
                    state: 0,
                    guard: Guard::Always,
                    relabel: 1,
                    move_to: Some(2),
                    next_state: 0,
                },
                // Fallback: relabel in place.
                IwaRule {
                    state: 0,
                    guard: Guard::Always,
                    relabel: 1,
                    move_to: None,
                    next_state: 0,
                },
            ],
        };
        let mut m = IwaMachine::new(iwa, &g, 1, |_| 0);
        let mut rng = Xoshiro256::seed_from_u64(10);
        let step = m.step(&mut rng).unwrap();
        assert_eq!(step.rule, 1, "the moving rule must be skipped");
        assert_eq!(step.to, 1);
        assert_eq!(m.labels()[1], 1);
    }

    #[test]
    fn trace_records_moves() {
        let g = generators::path(2);
        let iwa = Iwa {
            num_states: 1,
            num_labels: 2,
            rules: vec![IwaRule {
                state: 0,
                guard: Guard::Always,
                relabel: 1,
                move_to: Some(0),
                next_state: 0,
            }],
        };
        let mut m = IwaMachine::new(iwa, &g, 0, |_| 0);
        let mut rng = Xoshiro256::seed_from_u64(11);
        let s1 = m.step(&mut rng).unwrap();
        assert_eq!((s1.at, s1.to), (0, 1));
        // Node 0 now has label 1; no label-0 neighbour remains: halt.
        assert!(m.step(&mut rng).is_none());
    }
}
