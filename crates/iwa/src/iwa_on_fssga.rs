//! Simulating an IWA on an FSSGA network with O(log Δ) expected delay per
//! IWA step (Section 5.1, second direction).
//!
//! The agent is represented by a distinguished node state carrying the
//! IWA agent state. Non-moving rules take one synchronous round. Moving
//! rules need *local symmetry breaking* — the agent cannot name a
//! neighbour — so the candidates (neighbours carrying the destination
//! label) run the Section 4.4 coin-flip tournament: Θ(log d) expected
//! rounds among `d` candidates, which is the paper's O(log Δ) delay.
//!
//! The node-state alphabet is finite per IWA program: labels `L`, agent
//! states `S` and rules `R` are const generics, and the protocol stores
//! the rule list as data. A node state is its label plus a role: idle,
//! a tournament participant, or the agent (deciding, or mid-election on
//! rule `r`).

use fssga_engine::{NeighborView, Network, Protocol, StateSpace};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{Graph, NodeId};

use crate::machine::{Guard, Iwa, IwaStep};

/// Tournament role of a non-agent node.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Part {
    /// Not participating.
    Idle,
    /// Flipped heads.
    Heads,
    /// Flipped tails.
    Tails,
    /// Eliminated this tournament.
    Eliminated,
}

/// Phase of an agent mid-move.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum APhase {
    /// Ask candidates to flip.
    Flip,
    /// Wait for flips.
    Wait,
    /// Nobody flipped tails: re-run.
    NoTails,
    /// Exactly one tails: hand over.
    OneTails,
}

/// A node's role.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Role {
    /// Ordinary node (possibly a tournament participant).
    Node(Part),
    /// The agent, about to pick its next rule.
    AgentDecide {
        /// Current IWA agent state.
        state: u8,
    },
    /// The agent, electing a move target for rule `rule`.
    AgentElect {
        /// The rule being executed.
        rule: u8,
        /// Election phase.
        phase: APhase,
    },
}

/// Node state: label × role.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct IwaNode<const L: usize, const S: usize, const R: usize> {
    /// The IWA node label.
    pub label: u8,
    /// The node's role.
    pub role: Role,
}

impl<const L: usize, const S: usize, const R: usize> IwaNode<L, S, R> {
    /// An idle node with the given label.
    pub fn idle(label: u8) -> Self {
        IwaNode {
            label,
            role: Role::Node(Part::Idle),
        }
    }

    /// The agent's starting state at its origin node.
    pub fn agent(label: u8) -> Self {
        IwaNode {
            label,
            role: Role::AgentDecide { state: 0 },
        }
    }

    /// Whether this node currently hosts the agent.
    pub fn is_agent(self) -> bool {
        matches!(
            self.role,
            Role::AgentDecide { .. } | Role::AgentElect { .. }
        )
    }
}

const fn role_count(s: usize, r: usize) -> usize {
    4 + s + r * 4
}

impl<const L: usize, const S: usize, const R: usize> StateSpace for IwaNode<L, S, R> {
    const COUNT: usize = L * role_count(S, R);

    fn index(self) -> usize {
        let role = match self.role {
            Role::Node(p) => p as usize,
            Role::AgentDecide { state } => 4 + state as usize,
            Role::AgentElect { rule, phase } => 4 + S + (rule as usize) * 4 + phase as usize,
        };
        self.label as usize * role_count(S, R) + role
    }

    fn from_index(i: usize) -> Self {
        assert!(i < Self::COUNT);
        let label = (i / role_count(S, R)) as u8;
        let r = i % role_count(S, R);
        let role = if r < 4 {
            Role::Node(match r {
                0 => Part::Idle,
                1 => Part::Heads,
                2 => Part::Tails,
                _ => Part::Eliminated,
            })
        } else if r < 4 + S {
            Role::AgentDecide {
                state: (r - 4) as u8,
            }
        } else {
            let e = r - 4 - S;
            Role::AgentElect {
                rule: (e / 4) as u8,
                phase: match e % 4 {
                    0 => APhase::Flip,
                    1 => APhase::Wait,
                    2 => APhase::NoTails,
                    _ => APhase::OneTails,
                },
            }
        };
        IwaNode { label, role }
    }
}

/// The FSSGA protocol hosting an IWA program.
pub struct IwaProtocol<const L: usize, const S: usize, const R: usize> {
    iwa: Iwa,
}

impl<const L: usize, const S: usize, const R: usize> IwaProtocol<L, S, R> {
    /// Wraps an IWA program; the const parameters must match its sizes.
    pub fn new(iwa: Iwa) -> Self {
        assert!(iwa.num_labels <= L && iwa.num_states <= S && iwa.rules.len() <= R);
        assert!(L <= 64, "label digest is a fixed 64-slot array");
        iwa.validate().expect("valid IWA program");
        Self { iwa }
    }

    /// The wrapped program.
    pub fn iwa(&self) -> &Iwa {
        &self.iwa
    }
}

impl<const L: usize, const S: usize, const R: usize> Protocol for IwaProtocol<L, S, R> {
    type State = IwaNode<L, S, R>;
    const RANDOMNESS: u32 = 2;

    fn transition(
        &self,
        own: IwaNode<L, S, R>,
        nbrs: &NeighborView<'_, IwaNode<L, S, R>>,
        coin: u32,
    ) -> IwaNode<L, S, R> {
        // Neighbourhood digest.
        let mut label_present = [false; 64];
        let mut agent_elect: Option<(u8, APhase)> = None;
        let mut tails = 0u32;
        for ps in nbrs.present_states() {
            label_present[ps.label as usize] = true;
            match ps.role {
                Role::AgentElect { rule, phase } => agent_elect = Some((rule, phase)),
                Role::Node(Part::Tails) => {
                    tails = (tails + nbrs.count_capped(ps, 2)).min(2);
                }
                _ => {}
            }
        }
        let flip = |label: u8| IwaNode::<L, S, R> {
            label,
            role: Role::Node(if coin == 0 { Part::Heads } else { Part::Tails }),
        };

        match own.role {
            Role::Node(part) => {
                if let Some((rule_idx, phase)) = agent_elect {
                    let rule = self.iwa.rules[rule_idx as usize];
                    let want = rule.move_to.expect("election implies a moving rule");
                    let participating = own.label == want as u8 || part != Part::Idle;
                    if !participating {
                        return own;
                    }
                    match (phase, part) {
                        (APhase::Flip, Part::Heads) => IwaNode {
                            label: own.label,
                            role: Role::Node(Part::Eliminated),
                        },
                        (APhase::Flip, Part::Eliminated) => own,
                        (APhase::Flip, _) => flip(own.label),
                        (APhase::NoTails, Part::Heads) => flip(own.label),
                        (APhase::OneTails, Part::Tails) => IwaNode {
                            // Receive the agent in the rule's next state.
                            label: own.label,
                            role: Role::AgentDecide {
                                state: rule.next_state as u8,
                            },
                        },
                        (APhase::OneTails, _) => IwaNode {
                            label: own.label,
                            role: Role::Node(Part::Idle),
                        },
                        _ => own,
                    }
                } else if part != Part::Idle {
                    // Orphaned participant (agent left): reset.
                    IwaNode {
                        label: own.label,
                        role: Role::Node(Part::Idle),
                    }
                } else {
                    own
                }
            }
            Role::AgentDecide { state } => {
                // Pick the first applicable rule (guard uses presence
                // queries — exactly the IWA's own observational power).
                for (i, r) in self.iwa.rules.iter().enumerate() {
                    if r.state != state as u16 {
                        continue;
                    }
                    let guard_ok = match r.guard {
                        Guard::Always => true,
                        Guard::Present(l) => label_present[l as usize],
                        Guard::Absent(l) => !label_present[l as usize],
                    };
                    if !guard_ok {
                        continue;
                    }
                    match r.move_to {
                        None => {
                            // Fire in place: relabel + state change.
                            return IwaNode {
                                label: r.relabel as u8,
                                role: Role::AgentDecide {
                                    state: r.next_state as u8,
                                },
                            };
                        }
                        Some(l) => {
                            if !label_present[l as usize] {
                                continue; // no candidate: inapplicable
                            }
                            return IwaNode {
                                label: own.label,
                                role: Role::AgentElect {
                                    rule: i as u8,
                                    phase: APhase::Flip,
                                },
                            };
                        }
                    }
                }
                own // halted
            }
            Role::AgentElect { rule, phase } => {
                let r = self.iwa.rules[rule as usize];
                match phase {
                    APhase::Flip | APhase::NoTails => IwaNode {
                        label: own.label,
                        role: Role::AgentElect {
                            rule,
                            phase: APhase::Wait,
                        },
                    },
                    APhase::Wait => {
                        let next_phase = match tails {
                            0 => APhase::NoTails,
                            1 => APhase::OneTails,
                            _ => APhase::Flip,
                        };
                        IwaNode {
                            label: own.label,
                            role: Role::AgentElect {
                                rule,
                                phase: next_phase,
                            },
                        }
                    }
                    APhase::OneTails => IwaNode {
                        // The move completes: relabel the vacated node.
                        label: r.relabel as u8,
                        role: Role::Node(Part::Idle),
                    },
                }
            }
        }
    }
}

/// Drives an [`IwaProtocol`] network and reconstructs the induced IWA
/// step sequence for validation.
pub struct IwaFssgaHarness<const L: usize, const S: usize, const R: usize> {
    net: Network<IwaProtocol<L, S, R>>,
    agent: NodeId,
}

impl<const L: usize, const S: usize, const R: usize> IwaFssgaHarness<L, S, R> {
    /// Sets up the network with the agent at `start`.
    pub fn new(
        iwa: Iwa,
        g: &Graph,
        start: NodeId,
        mut init_label: impl FnMut(NodeId) -> u16,
    ) -> Self {
        let net = Network::new(g, IwaProtocol::<L, S, R>::new(iwa), |v| {
            if v == start {
                IwaNode::agent(init_label(v) as u8)
            } else {
                IwaNode::idle(init_label(v) as u8)
            }
        });
        Self { net, agent: start }
    }

    /// Node labels as a `u16` vector (for comparison with [`crate::IwaMachine`]).
    pub fn labels(&self) -> Vec<u16> {
        self.net
            .states()
            .iter()
            .map(|s| u16::from(s.label))
            .collect()
    }

    /// The network, for inspection/faults.
    pub fn network_mut(&mut self) -> &mut Network<IwaProtocol<L, S, R>> {
        &mut self.net
    }

    /// Runs until `steps` IWA steps have been simulated (or the round
    /// budget runs out). Returns the induced `(step, rounds_taken)` list.
    pub fn run(
        &mut self,
        steps: usize,
        max_rounds: u64,
        rng: &mut Xoshiro256,
    ) -> Vec<(IwaStep, u32)> {
        let mut out = Vec::new();
        let mut rounds_this = 0u32;
        let mut last_states: Vec<IwaNode<L, S, R>> = self.net.states().to_vec();
        for _ in 0..max_rounds {
            if out.len() >= steps {
                break;
            }
            self.net.sync_step(rng);
            rounds_this += 1;
            let states = self.net.states();
            // Detect a completed step: either the agent fired in place
            // (label/state changed while staying AgentDecide), or the
            // agent moved (a new node became AgentDecide).
            let agents: Vec<NodeId> = (0..self.net.n() as NodeId)
                .filter(|&v| states[v as usize].is_agent())
                .collect();
            assert!(agents.len() <= 1, "one agent at most: {agents:?}");
            if let Some(&a) = agents.first() {
                let was = last_states[a as usize];
                let now = states[a as usize];
                let moved = a != self.agent && matches!(now.role, Role::AgentDecide { .. });
                let fired_in_place = a == self.agent
                    && matches!(was.role, Role::AgentDecide { .. })
                    && matches!(now.role, Role::AgentDecide { .. })
                    && (was.label != now.label || was.role != now.role);
                if moved || fired_in_place {
                    let step = IwaStep {
                        rule: usize::MAX,
                        at: self.agent,
                        to: a,
                    };
                    out.push((step, rounds_this));
                    rounds_this = 0;
                    self.agent = a;
                }
            }
            last_states = states.to_vec();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{dfs_traversal_iwa, IwaMachine};
    use fssga_graph::generators;

    type DfsProto = IwaFssgaHarness<3, 1, 2>;

    #[test]
    fn state_space_roundtrip() {
        for i in 0..IwaNode::<3, 2, 4>::COUNT {
            assert_eq!(IwaNode::<3, 2, 4>::from_index(i).index(), i);
        }
    }

    #[test]
    fn dfs_iwa_on_fssga_visits_everything() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        for trial in 0..5 {
            let g = generators::random_tree(12, &mut rng);
            let mut h = DfsProto::new(dfs_traversal_iwa(), &g, 0, |_| 0);
            h.run(4 * g.n(), 100_000, &mut rng);
            let unvisited: Vec<usize> = (0..g.n()).filter(|&v| h.labels()[v] == 0).collect();
            assert!(unvisited.is_empty(), "trial {trial}: {unvisited:?}");
        }
    }

    #[test]
    fn induced_steps_are_legal_moves() {
        let g = generators::binary_tree(12);
        let mut rng = Xoshiro256::seed_from_u64(22);
        let mut h = DfsProto::new(dfs_traversal_iwa(), &g, 0, |_| 0);
        let steps = h.run(20, 100_000, &mut rng);
        assert!(!steps.is_empty());
        for (s, _) in &steps {
            assert!(
                s.at == s.to || g.has_edge(s.at, s.to),
                "illegal agent move {s:?}"
            );
        }
    }

    #[test]
    fn non_moving_rules_take_one_round() {
        // An IWA that only relabels in place: every step = 1 round.
        let iwa = Iwa {
            num_states: 2,
            num_labels: 2,
            rules: vec![
                IwaRule {
                    state: 0,
                    guard: Guard::Always,
                    relabel: 1,
                    move_to: None,
                    next_state: 1,
                },
                IwaRule {
                    state: 1,
                    guard: Guard::Always,
                    relabel: 0,
                    move_to: None,
                    next_state: 0,
                },
            ],
        };
        use crate::machine::IwaRule;
        let g = generators::path(4);
        let mut rng = Xoshiro256::seed_from_u64(23);
        let mut h = IwaFssgaHarness::<2, 2, 2>::new(iwa, &g, 1, |_| 0);
        let steps = h.run(6, 1000, &mut rng);
        assert_eq!(steps.len(), 6);
        for (_, rounds) in &steps {
            assert_eq!(*rounds, 1, "in-place rules are single-round");
        }
    }

    #[test]
    fn move_delay_grows_logarithmically_with_degree() {
        // Agent at a star hub moving to a leaf: the tournament among d
        // candidates takes Θ(log d) rounds; far sublinear growth.
        let iwa = Iwa {
            num_states: 1,
            num_labels: 2,
            rules: vec![crate::machine::IwaRule {
                state: 0,
                guard: Guard::Always,
                relabel: 1,
                move_to: Some(0),
                next_state: 0,
            }],
        };
        let mut rng = Xoshiro256::seed_from_u64(24);
        let avg_rounds = |d: usize, rng: &mut Xoshiro256| -> f64 {
            let g = generators::star(d + 1);
            let mut total = 0u32;
            let trials = 60;
            for _ in 0..trials {
                let mut h = IwaFssgaHarness::<2, 1, 1>::new(iwa.clone(), &g, 0, |_| 0);
                let steps = h.run(1, 100_000, rng);
                total += steps[0].1;
            }
            f64::from(total) / trials as f64
        };
        let a2 = avg_rounds(2, &mut rng);
        let a64 = avg_rounds(64, &mut rng);
        assert!(a64 > a2);
        assert!(a64 < a2 * 12.0, "log growth expected: {a2} -> {a64}");
    }

    #[test]
    fn fssga_simulation_matches_machine_reachability() {
        // The same IWA on the same graph: both executions must visit the
        // same label-reachable configuration class. For the DFS program:
        // every node ends non-zero in both.
        let g = generators::binary_tree(9);
        let mut rng = Xoshiro256::seed_from_u64(25);
        let mut machine = IwaMachine::new(dfs_traversal_iwa(), &g, 0, |_| 0);
        machine.run(10_000, &mut rng);
        let mut h = DfsProto::new(dfs_traversal_iwa(), &g, 0, |_| 0);
        h.run(4 * g.n(), 100_000, &mut rng);
        for v in 0..g.n() {
            assert_ne!(machine.labels()[v], 0, "machine missed {v}");
            assert_ne!(h.labels()[v], 0, "fssga sim missed {v}");
        }
    }
}
