//! Simulating a synchronous FSSGA round on an IWA, in O(m) agent steps
//! (Section 5.1, first direction).
//!
//! "An IWA can compute a single synchronous FSSGA round in O(m) time, by
//! using Milgram's traversal algorithm and the neighbour-counting
//! technique from Lemma 3.8."
//!
//! The simulator keeps the agent honest to the IWA discipline:
//!
//! * it has a *position* and only ever moves along edges (each move
//!   counted);
//! * it reads and writes only the label of its current node (labels are
//!   tuples from a finite set: the node's current FSSGA state, its
//!   computed next state, and two finite marks);
//! * its internal memory is finite: the working state of a sequential SM
//!   program — or, for mod-thresh programs, the Lemma 3.8 counters, which
//!   are bounded by `∏ M_i (T_i + 1)`.
//!
//! Per round the agent walks a DFS route (2 moves per tree edge), and at
//! each node visits every neighbour twice (mark + unmark), folding their
//! states into its finite evaluator: `8m + O(n)` moves per round — the
//! paper's Θ(m).

use fssga_core::modthresh::ModThreshProgram;
use fssga_core::{FsmProgram, ProbFssga};
use fssga_engine::network::round_coin;
use fssga_graph::{Graph, NodeId};

/// The finite per-node evaluator the agent carries while counting one
/// neighbourhood.
enum AgentEval<'a> {
    /// Sequential program: carry the working state.
    Seq {
        prog: &'a fssga_core::SeqProgram,
        w: usize,
    },
    /// Parallel program: left-fold (valid for SM programs).
    Par {
        prog: &'a fssga_core::ParProgram,
        w: Option<usize>,
    },
    /// Mod-thresh program: the Lemma 3.8 counters `(μ mod M_i, min(μ, T_i))`.
    Counters {
        prog: &'a ModThreshProgram,
        moduli: Vec<u64>,
        thresholds: Vec<u64>,
        counts: Vec<(u64, u64)>,
    },
}

impl<'a> AgentEval<'a> {
    fn new(prog: &'a FsmProgram) -> Self {
        match prog {
            FsmProgram::Seq(p) => AgentEval::Seq { prog: p, w: p.w0() },
            FsmProgram::Par(p) => AgentEval::Par { prog: p, w: None },
            FsmProgram::ModThresh(p) => {
                let moduli = p.moduli();
                let thresholds = p.thresholds();
                let counts = vec![(0, 0); p.num_inputs()];
                AgentEval::Counters {
                    prog: p,
                    moduli,
                    thresholds,
                    counts,
                }
            }
        }
    }

    fn feed(&mut self, q: usize) {
        match self {
            AgentEval::Seq { prog, w } => *w = prog.step(*w, q),
            AgentEval::Par { prog, w } => {
                let aq = prog.lift(q);
                *w = Some(match *w {
                    None => aq,
                    Some(w) => prog.combine(w, aq),
                });
            }
            AgentEval::Counters {
                moduli,
                thresholds,
                counts,
                ..
            } => {
                let (a, b) = counts[q];
                counts[q] = ((a + 1) % moduli[q], (b + 1).min(thresholds[q]));
            }
        }
    }

    fn finish(self) -> usize {
        match self {
            AgentEval::Seq { prog, w } => prog.output(w),
            AgentEval::Par { prog, w } => prog.output(w.expect("degree >= 1")),
            AgentEval::Counters { prog, counts, .. } => eval_mt_counters(prog, &counts),
        }
    }
}

fn eval_mt_counters(prog: &ModThreshProgram, counts: &[(u64, u64)]) -> usize {
    use fssga_core::modthresh::{Atom, Prop};
    fn eval(p: &Prop, counts: &[(u64, u64)]) -> bool {
        match p {
            Prop::True => true,
            Prop::False => false,
            Prop::Not(q) => !eval(q, counts),
            Prop::And(ps) => ps.iter().all(|p| eval(p, counts)),
            Prop::Or(ps) => ps.iter().any(|p| eval(p, counts)),
            Prop::Atom(Atom::Mod { state, r, m }) => counts[*state].0 % m == *r,
            Prop::Atom(Atom::Thresh { state, t }) => counts[*state].1 < *t,
        }
    }
    for (p, r) in prog.clauses() {
        if eval(p, counts) {
            return r;
        }
    }
    prog.default_result()
}

/// The IWA-disciplined simulator of a synchronous FSSGA network.
pub struct FssgaOnIwa<'a> {
    auto: &'a ProbFssga,
    graph: &'a Graph,
    /// Label field 1: the node's current FSSGA state.
    cur: Vec<usize>,
    /// Label field 2: the node's computed next state (commit phase).
    next: Vec<usize>,
    agent: NodeId,
    moves: u64,
    rounds: u64,
}

impl<'a> FssgaOnIwa<'a> {
    /// Builds the simulator; the agent starts at node 0.
    pub fn new(
        auto: &'a ProbFssga,
        graph: &'a Graph,
        mut init: impl FnMut(NodeId) -> usize,
    ) -> Self {
        let cur: Vec<usize> = (0..graph.n() as NodeId).map(&mut init).collect();
        Self {
            auto,
            graph,
            next: cur.clone(),
            cur,
            agent: 0,
            moves: 0,
            rounds: 0,
        }
    }

    /// Node states after the rounds simulated so far.
    pub fn states(&self) -> &[usize] {
        &self.cur
    }

    /// Total agent moves.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Moves the agent along an edge (asserted) and counts the move.
    fn hop(&mut self, to: NodeId) {
        debug_assert!(
            self.graph.has_edge(self.agent, to),
            "agent may only move along edges"
        );
        self.agent = to;
        self.moves += 1;
    }

    /// A DFS route over the graph from the agent's position: the visit
    /// order plus the edge-walk cost (2 per tree edge). The route is what
    /// Milgram's traversal produces; we generate it centrally but charge
    /// every hop to the agent.
    fn dfs_route(&self) -> Vec<NodeId> {
        let n = self.graph.n();
        let mut seen = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut stack = vec![self.agent];
        seen[self.agent as usize] = true;
        while let Some(v) = stack.pop() {
            order.push(v);
            for &w in self.graph.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        order
    }

    /// Simulates one synchronous round; coins match
    /// [`fssga_engine::network::round_coin`], so the result is
    /// bit-identical to [`fssga_engine::interp::InterpNetwork`].
    /// Returns the agent moves consumed by this round.
    pub fn sync_round(&mut self, round_seed: u64) -> u64 {
        let start_moves = self.moves;
        let route = self.dfs_route();
        // Phase 1: visit every node; count its neighbourhood; store next.
        for &v in &route {
            self.walk_to(v);
            if self.graph.degree(v) == 0 {
                self.next[v as usize] = self.cur[v as usize];
                continue;
            }
            let coin = round_coin(round_seed, v, self.auto.randomness() as u32) as usize;
            let q = self.cur[v as usize];
            let mut eval = AgentEval::new(self.auto.program(q, coin));
            // Visit each neighbour (2 hops each) to read its current
            // state into the finite evaluator; then a second pass to
            // clear the "counted" marks (2 hops each). We charge the
            // hops; the mark bits themselves are label fields.
            let nbrs: Vec<NodeId> = self.graph.neighbors(v).to_vec();
            for &w in &nbrs {
                self.hop(w);
                eval.feed(self.cur[w as usize]);
                self.hop(v);
            }
            for &w in &nbrs {
                self.hop(w); // unmark pass
                self.hop(v);
            }
            self.next[v as usize] = eval.finish();
        }
        // Phase 2: commit.
        for &v in &route {
            self.walk_to(v);
            self.cur[v as usize] = self.next[v as usize];
        }
        self.rounds += 1;
        self.moves - start_moves
    }

    /// Walks the agent to `v` along a shortest path (cost charged).
    fn walk_to(&mut self, v: NodeId) {
        if self.agent == v {
            return;
        }
        // BFS path from current position (centrally computed; hop-charged).
        let parent = fssga_graph::exact::bfs_tree(self.graph, self.agent);
        let mut path = vec![v];
        let mut cur = v;
        while parent[cur as usize] != cur {
            cur = parent[cur as usize];
            path.push(cur);
        }
        for &node in path.iter().rev().skip(1) {
            self.hop(node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fssga_core::library;
    use fssga_core::modthresh::Prop;
    use fssga_core::Fssga;
    use fssga_engine::interp::InterpNetwork;
    use fssga_graph::generators;

    /// 2-state infection automaton with a mod-thresh program.
    fn infection() -> ProbFssga {
        let catch = ModThreshProgram::new(2, 2, vec![(Prop::some(1), 1)], 0).unwrap();
        let keep = ModThreshProgram::new(2, 2, vec![], 1).unwrap();
        ProbFssga::from_deterministic(
            Fssga::new(
                2,
                vec![FsmProgram::ModThresh(catch), FsmProgram::ModThresh(keep)],
            )
            .unwrap(),
        )
    }

    /// 3-state automaton using a sequential MAX program for every state.
    fn max_auto() -> ProbFssga {
        let f = (0..3)
            .map(|_| FsmProgram::Seq(library::max_state_seq(3)))
            .collect();
        ProbFssga::from_deterministic(Fssga::new(3, f).unwrap())
    }

    /// Same function, parallel presentation.
    fn max_auto_par() -> ProbFssga {
        let f = (0..3)
            .map(|_| FsmProgram::Par(library::max_state_par(3)))
            .collect();
        ProbFssga::from_deterministic(Fssga::new(3, f).unwrap())
    }

    fn lockstep(auto: &ProbFssga, g: &Graph, init: impl Fn(NodeId) -> usize + Copy, rounds: u64) {
        let mut iwa = FssgaOnIwa::new(auto, g, init);
        let mut net = InterpNetwork::new(g, auto, init);
        for r in 0..rounds {
            iwa.sync_round(r * 13 + 1);
            net.sync_step_seeded(r * 13 + 1);
            assert_eq!(iwa.states(), net.states(), "round {r}");
        }
    }

    use fssga_graph::Graph;

    #[test]
    fn modthresh_lockstep_with_network() {
        let auto = infection();
        let g = generators::grid(4, 5);
        lockstep(&auto, &g, |v| usize::from(v == 0), 8);
    }

    #[test]
    fn seq_program_lockstep() {
        let auto = max_auto();
        let g = generators::connected_gnp(
            25,
            0.12,
            &mut fssga_graph::rng::Xoshiro256::seed_from_u64(4),
        );
        lockstep(&auto, &g, |v| (v as usize) % 3, 6);
    }

    #[test]
    fn par_program_lockstep() {
        let auto = max_auto_par();
        let g = generators::cycle(12);
        lockstep(&auto, &g, |v| (v as usize * 2 + 1) % 3, 6);
    }

    #[test]
    fn moves_per_round_are_linear_in_m() {
        let auto = infection();
        for g in [
            generators::cycle(30),
            generators::complete(12),
            generators::grid(6, 6),
        ] {
            let mut iwa = FssgaOnIwa::new(&auto, &g, |v| usize::from(v == 0));
            let moves = iwa.sync_round(1);
            // Counting costs 4 hops per directed edge (mark + unmark
            // visits, each there-and-back): 8m; the two traversal passes
            // add O(n).
            let bound = 8 * g.m() as u64 + 6 * g.n() as u64 + 10;
            assert!(
                moves <= bound,
                "moves {moves} > bound {bound} on n={}, m={}",
                g.n(),
                g.m()
            );
            assert!(moves >= 8 * g.m() as u64, "counting alone needs 8m hops");
        }
    }

    #[test]
    fn probabilistic_automaton_lockstep() {
        // r = 2: state flips depend on the coin; the shared round_coin
        // derivation keeps both executions identical.
        let c0 = ModThreshProgram::new(2, 2, vec![(Prop::some(1), 1)], 0).unwrap();
        let c1 = ModThreshProgram::new(2, 2, vec![], 0).unwrap();
        let keep = ModThreshProgram::new(2, 2, vec![], 1).unwrap();
        let auto = ProbFssga::new(
            2,
            2,
            vec![
                FsmProgram::ModThresh(c0),
                FsmProgram::ModThresh(c1),
                FsmProgram::ModThresh(keep.clone()),
                FsmProgram::ModThresh(keep),
            ],
        )
        .unwrap();
        let g = generators::grid(5, 4);
        lockstep(&auto, &g, |v| usize::from(v % 3 == 0), 10);
    }
}
