//! Section 5.1: isotonic web automata (IWA) and the mutual simulations
//! with FSSGA.
//!
//! The IWA model (Milgram 1975) has a *single* finite-state agent walking
//! a graph whose nodes carry finite labels. Each rule is conditional on
//! the presence/absence of a label in the neighbourhood of the agent's
//! position; firing a rule relabels the current node, optionally moves the
//! agent to a neighbour carrying a specified label, and changes the agent
//! state. The model "resembles ours in that the computation is symmetric
//! and uses finitely many states. The main difference is that the IWA
//! model has a single locus of action whereas our model has inherent
//! parallelism."
//!
//! * [`machine`] — the IWA model itself: rules, guards, the sequential
//!   machine.
//! * [`fssga_on_iwa`] — an IWA-disciplined agent that computes synchronous
//!   FSSGA rounds in O(m) agent steps per round (traversal + the
//!   Lemma 3.8 neighbour-counting technique).
//! * [`iwa_on_fssga`] — an FSSGA protocol that simulates an IWA with
//!   O(log Δ) expected rounds per IWA step (the delay is the local
//!   symmetry breaking needed to pick the agent's next destination, as in
//!   Sections 4.4–4.6 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fssga_on_iwa;
pub mod iwa_on_fssga;
pub mod machine;

pub use machine::{Guard, Iwa, IwaMachine, IwaRule};
