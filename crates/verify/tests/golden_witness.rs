//! Golden tests for the checker's counterexamples: the deliberately
//! broken protocols in `fssga_verify::broken` must be caught, with
//! stable, minimized, *replayable* witnesses.

use fssga_verify::broken::{
    first_wins_init, FirstWins, Overcounter, FIRST_WINS_CONTRACT, OVERCOUNTER_CONTRACT,
};
use fssga_verify::checker::check_protocol;
use fssga_verify::explore::{Explorer, NoObserver};
use fssga_verify::graphs::family;
use fssga_verify::Severity;

#[test]
fn first_wins_order_dependence_has_golden_witness() {
    let fam = family(FIRST_WINS_CONTRACT.max_nodes);
    let report = check_protocol(&FIRST_WINS_CONTRACT, &FirstWins, &fam, |_, v| {
        first_wins_init(v)
    });
    assert!(
        !report.is_clean(),
        "the seeded order-dependent protocol must fail verification"
    );

    // The first error is on the minimal instance (the family is
    // size-ordered), and its witness text is pinned: any change to the
    // exploration order, scheduling, or formatting shows up here.
    let first = report
        .diagnostics
        .iter()
        .find(|d| d.severity == Severity::Error)
        .expect("at least one error");
    assert_eq!(first.analysis, "verify-confluence");
    let witness = first.witness.as_deref().expect("confluence witness");
    let golden = include_str!("golden/first_wins.txt");
    assert_eq!(
        witness,
        golden.trim_end(),
        "witness drifted from the golden file"
    );
}

#[test]
fn first_wins_witness_replays_to_distinct_fixpoints() {
    // Re-derive the diverging instance mechanically and replay both
    // schedules: the witness is not just text, it is machine-checkable.
    let fam = family(FIRST_WINS_CONTRACT.max_nodes);
    let init_of = |n: usize| -> Vec<u32> {
        (0..n as u32)
            .map(|v| {
                use fssga_engine::StateSpace;
                first_wins_init(v).index() as u32
            })
            .collect()
    };
    let diverging = fam
        .iter()
        .find_map(|g| {
            let explorer = Explorer::new(&FirstWins, &g.graph, FIRST_WINS_CONTRACT.config_budget);
            let ex = explorer.explore_async(&init_of(g.graph.n()), &mut NoObserver);
            (ex.terminals.len() > 1).then_some((g, ex))
        })
        .expect("FirstWins must diverge somewhere in the family");
    let (g, ex) = diverging;
    assert_eq!(g.name, "all-n4-#20", "minimal diverging instance");

    let init = init_of(g.graph.n());
    let explorer = Explorer::new(&FirstWins, &g.graph, FIRST_WINS_CONTRACT.config_budget);
    let a = explorer
        .replay(&init, &ex.schedule_to(ex.terminals[0]))
        .unwrap();
    let b = explorer
        .replay(&init, &ex.schedule_to(ex.terminals[1]))
        .unwrap();
    assert_eq!(a, ex.configs[ex.terminals[0]]);
    assert_eq!(b, ex.configs[ex.terminals[1]]);
    assert_ne!(a, b, "the two schedules must reach distinct fixpoints");
}

#[test]
fn overcounter_query_bound_violation_is_caught() {
    let fam = family(OVERCOUNTER_CONTRACT.max_nodes);
    let report = check_protocol(&OVERCOUNTER_CONTRACT, &Overcounter, &fam, |_, _| {
        fssga_verify::broken::OcState::Lo
    });
    assert!(!report.is_clean());
    // Both faces of the same defect: the recorder sees a threshold above
    // the declared bound, and two same-class multisets map differently.
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error
                && d.analysis == "verify-totality"
                && d.message.contains("threshold 3 > declared MAX_THRESHOLD 2")),
        "{report}"
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error
                && d.analysis == "verify-totality"
                && d.message
                    .contains("not a function of the declared count classes")),
        "{report}"
    );
}
