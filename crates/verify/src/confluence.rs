//! Confluence (order-independence) checking.
//!
//! A protocol whose contract claims `order_independent` promises the
//! Church–Rosser property of the paper's SM framework: on any instance,
//! every maximal asynchronous run from the canonical initial
//! configuration reaches the *same* fixed point, no matter how the
//! daemon interleaves activations or what coins are drawn. Over the
//! finite explored transition graph this reduces to two checks:
//!
//! 1. the graph of state-*changing* transitions is acyclic (otherwise
//!    the daemon can loop forever — a non-termination witness), and
//! 2. it has exactly one sink (otherwise two schedules reach two
//!    different fixed points — a divergence witness).
//!
//! In a finite acyclic graph every maximal path ends in a sink, so
//! acyclicity plus a unique sink *is* confluence on that instance.
//!
//! Contracts additionally claiming `semilattice` get the algebraic
//! check: the induced binary operation `a ∘ b := f(a, {b})` must be
//! idempotent, commutative and associative, and transitions on
//! two-element multisets must equal the iterated join — the structure
//! the paper's Section 5 semilattice machinery detects syntactically,
//! here verified semantically.

use fssga_core::diag::{Diagnostic, Report};
use fssga_engine::{NeighborView, Protocol, StateSpace};
use fssga_protocols::contract::SemanticContract;

use crate::explore::{format_config, Exploration};
use crate::graphs::NamedGraph;
use crate::witness::Witness;

const ANALYSIS: &str = "verify-confluence";

/// Builds a witness for a schedule on a named instance.
fn witness<P: Protocol>(
    graph: &NamedGraph,
    init: &[u32],
    schedule: Vec<crate::witness::Step>,
    outcome: String,
) -> Witness {
    Witness {
        graph_name: graph.name.clone(),
        n: graph.graph.n(),
        edges: graph.graph.edges().collect(),
        init: init
            .iter()
            .map(|&q| format!("{:?}", P::State::from_index(q as usize)))
            .collect(),
        schedule,
        outcome,
    }
}

/// Assesses one explored instance against an `order_independent` claim.
pub fn assess<P: Protocol>(
    contract: &SemanticContract,
    graph: &NamedGraph,
    init: &[u32],
    ex: &Exploration,
    report: &mut Report,
) {
    if ex.panic.is_some() {
        return; // the totality pass reports the panic itself
    }
    if ex.truncated {
        report.push(Diagnostic::warning(
            ANALYSIS,
            contract.name,
            format!(
                "confluence NOT certified on {}: exploration budget of {} configurations \
                 exhausted before closure",
                graph.name, contract.config_budget
            ),
        ));
        return;
    }
    if let Some(cycle) = ex.find_cycle() {
        let entry = cycle[0];
        let w = witness::<P>(
            graph,
            init,
            ex.schedule_to(entry),
            format!(
                "reaches {} from which {} changing transition(s) loop back — the daemon \
                 can schedule this run forever",
                format_config::<P>(&ex.configs[entry]),
                cycle.len()
            ),
        );
        report.push(
            Diagnostic::error(
                ANALYSIS,
                contract.name,
                format!(
                    "non-terminating activation cycle on {} ({} reachable configurations)",
                    graph.name,
                    ex.configs.len()
                ),
            )
            .with_witness(w.to_string()),
        );
        return;
    }
    if ex.terminals.len() > 1 {
        let a = ex.terminals[0];
        let b = ex.terminals[1];
        let wa = witness::<P>(
            graph,
            init,
            ex.schedule_to(a),
            format!("fixpoint A = {}", format_config::<P>(&ex.configs[a])),
        );
        let wb = witness::<P>(
            graph,
            init,
            ex.schedule_to(b),
            format!("fixpoint B = {}", format_config::<P>(&ex.configs[b])),
        );
        report.push(
            Diagnostic::error(
                ANALYSIS,
                contract.name,
                format!(
                    "order-dependence on {}: {} distinct fixpoints reachable from one \
                     initial configuration",
                    graph.name,
                    ex.terminals.len()
                ),
            )
            .with_witness(format!("{wa}\n--- diverges from ---\n{wb}")),
        );
    }
}

/// Checks the semilattice laws of the induced join `a ∘ b := f(a, {b})`,
/// plus `f(a, {b, c}) = (a ∘ b) ∘ c` on two-element multisets.
pub fn check_semilattice<P: Protocol>(
    contract: &SemanticContract,
    protocol: &P,
    report: &mut Report,
) {
    let count = P::State::COUNT;
    if P::RANDOMNESS > 1 {
        report.push(Diagnostic::note(
            ANALYSIS,
            contract.name,
            "semilattice check skipped: protocol is randomized",
        ));
        return;
    }
    if count.pow(3) > 2_000_000 {
        report.push(Diagnostic::note(
            ANALYSIS,
            contract.name,
            format!("semilattice check skipped: {count}^3 triples exceed the budget"),
        ));
        return;
    }

    let mut counts = vec![0u32; count];
    let state = |i: usize| format!("{:?}", P::State::from_index(i));

    // The induced join table.
    let mut op = vec![0usize; count * count];
    for a in 0..count {
        for b in 0..count {
            counts[b] = 1;
            let touched = [b as u32];
            let view = NeighborView::<P::State>::over_sparse(&counts, &touched, None);
            op[a * count + b] = protocol
                .transition(P::State::from_index(a), &view, 0)
                .index();
            counts[b] = 0;
        }
    }

    let mut errors = 0usize;
    let mut push = |report: &mut Report, message: String, witness: String| {
        if errors < 3 {
            report.push(Diagnostic::error(ANALYSIS, contract.name, message).with_witness(witness));
        }
        errors += 1;
    };

    for a in 0..count {
        if op[a * count + a] != a {
            push(
                report,
                "induced join is not idempotent".into(),
                format!("{} ∘ {} = {}", state(a), state(a), state(op[a * count + a])),
            );
        }
        for b in 0..count {
            if op[a * count + b] != op[b * count + a] {
                push(
                    report,
                    "induced join is not commutative".into(),
                    format!(
                        "{} ∘ {} = {} but {} ∘ {} = {}",
                        state(a),
                        state(b),
                        state(op[a * count + b]),
                        state(b),
                        state(a),
                        state(op[b * count + a])
                    ),
                );
            }
            for c in 0..count {
                let left = op[op[a * count + b] * count + c];
                let right = op[a * count + op[b * count + c]];
                if left != right {
                    push(
                        report,
                        "induced join is not associative".into(),
                        format!(
                            "({} ∘ {}) ∘ {} = {} but {} ∘ ({} ∘ {}) = {}",
                            state(a),
                            state(b),
                            state(c),
                            state(left),
                            state(a),
                            state(b),
                            state(c),
                            state(right)
                        ),
                    );
                }
                // f(a, {b, c}) must equal the iterated join.
                counts[b] += 1;
                counts[c] += 1;
                let touched = if b == c {
                    vec![b as u32]
                } else {
                    vec![b.min(c) as u32, b.max(c) as u32]
                };
                let view = NeighborView::<P::State>::over_sparse(&counts, &touched, None);
                let direct = protocol
                    .transition(P::State::from_index(a), &view, 0)
                    .index();
                counts[b] -= 1;
                counts[c] -= 1;
                if direct != left {
                    push(
                        report,
                        "transition on a two-element multiset differs from the iterated join"
                            .into(),
                        format!(
                            "f({}, {{{}, {}}}) = {} but ({} ∘ {}) ∘ {} = {}",
                            state(a),
                            state(b),
                            state(c),
                            state(direct),
                            state(a),
                            state(b),
                            state(c),
                            state(left)
                        ),
                    );
                }
            }
        }
    }
    if errors > 3 {
        report.push(Diagnostic::note(
            ANALYSIS,
            contract.name,
            format!("{} further semilattice violations suppressed", errors - 3),
        ));
    }
}
