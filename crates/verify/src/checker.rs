//! The per-protocol checking pipeline: explore every instance of the
//! family under the contract's scheduling model, feeding one shared
//! semantic-totality observer, then assess confluence and the
//! semilattice laws where the contract claims them.

use fssga_core::diag::{Diagnostic, Report};
use fssga_engine::view::QueryRecorder;
use fssga_engine::{Protocol, StateSpace};
use fssga_graph::{Graph, NodeId};
use fssga_protocols::contract::{Scheduling, SemanticContract};

use crate::confluence;
use crate::explore::Explorer;
use crate::graphs::NamedGraph;
use crate::totality::{self, TotalityObserver};

/// Runs the semantic checks (exploration, totality, confluence,
/// semilattice) for one protocol over an instance family. Sensitivity
/// certification is separate — it needs a per-algorithm campaign driver,
/// not just a transition function.
pub fn check_protocol<P: Protocol>(
    contract: &SemanticContract,
    protocol: &P,
    family: &[NamedGraph],
    init: impl Fn(&Graph, NodeId) -> P::State,
) -> Report {
    let mut report = Report::new();
    let mut observer = TotalityObserver::<P>::new();
    let mut recorder = QueryRecorder::new(P::State::COUNT);
    let mut instances = 0usize;
    let mut closed = 0usize;
    let mut max_configs = 0usize;

    for named in family.iter().filter(|g| g.graph.n() <= contract.max_nodes) {
        instances += 1;
        let g = &named.graph;
        let init_cfg: Vec<u32> = (0..g.n() as NodeId)
            .map(|v| init(g, v).index() as u32)
            .collect();
        let explorer = Explorer::new(protocol, g, contract.config_budget);
        let ex = match contract.scheduling {
            Scheduling::Any => explorer.explore_async(&init_cfg, &mut observer),
            Scheduling::SyncOnly => explorer.explore_sync(&init_cfg, &mut observer),
        };
        recorder.merge(&explorer.recorder.borrow());
        max_configs = max_configs.max(ex.configs.len());
        if !ex.truncated && ex.panic.is_none() {
            closed += 1;
        }
        totality::check_exploration::<P>(contract, named, &init_cfg, &ex, &mut report);
        if contract.order_independent {
            confluence::assess::<P>(contract, named, &init_cfg, &ex, &mut report);
        }
    }

    if contract.semilattice {
        confluence::check_semilattice(contract, protocol, &mut report);
    }

    let transitions = observer.transitions();
    let signatures = observer.distinct_signatures();
    observer.finish(contract, &recorder, &mut report);

    report.push(Diagnostic::note(
        "verify",
        contract.name,
        format!(
            "explored {instances} instance(s) ({closed} to closure), max {max_configs} \
             configurations, {transitions} transitions, {signatures} distinct count-class \
             signatures"
        ),
    ));
    report
}
