//! `fssga-verify`: a bounded exhaustive model checker for the semantic
//! contracts of the shipped FSSGA protocols.
//!
//! The paper's SM framework makes strong *semantic* promises — diffusion
//! protocols are order-independent (Church–Rosser under the adversarial
//! daemon), transitions are total SM functions of the neighbour multiset
//! within declared mod/thresh bounds, and each algorithm sits in a
//! declared Section 2 sensitivity class. `fssga-analysis` checks what it
//! can *syntactically*; this crate checks the claims *semantically*, by
//! exhaustively exploring every activation order (or every synchronous
//! coin vector) of each protocol's product state space on a family of
//! small graphs:
//!
//! * [`confluence`] — every maximal run reaches the same fixed point, and
//!   claimed semilattice joins satisfy the algebraic laws;
//! * [`totality`] — no reachable transition panics, exceeds its declared
//!   query bounds, or distinguishes multisets its bounds cannot express;
//! * [`sensitivity`] — exhaustive single-fault replay certifies the
//!   declared 0 / k / Θ(n) class.
//!
//! Every violation carries a minimized, replayable [`witness::Witness`].
//! The crate is wired into CI as the `fssga-lint verify` subcommand; the
//! deliberately broken protocols in [`broken`] keep the checker honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broken;
pub mod checker;
pub mod confluence;
pub mod explore;
pub mod graphs;
pub mod sensitivity;
pub mod shipped;
pub mod totality;
pub mod witness;

pub use fssga_core::diag::{Diagnostic, Report, Severity};
pub use shipped::{verify_shipped, verify_shipped_scaled, ProtocolVerification, VerifyScale};
