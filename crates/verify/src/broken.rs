//! Deliberately broken protocols that validate the checker itself.
//!
//! A verifier that has never failed anything proves nothing. These
//! protocols are seeded defects: each violates exactly one checked
//! property, and the test suite (including the golden-witness test)
//! asserts the checker catches it with a stable, replayable, minimized
//! counterexample.

use fssga_engine::{impl_state_space, NeighborView, Protocol};
use fssga_graph::NodeId;
use fssga_protocols::contract::{Scheduling, SemanticContract};

/// States of the [`FirstWins`] toy protocol.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FwState {
    /// Undecided.
    Blank,
    /// Committed to faction A.
    A,
    /// Committed to faction B.
    B,
}
impl_state_space!(FwState { Blank, A, B });

/// A sticky "first faction to reach me wins" rumor: `Blank` adopts `A`
/// if any neighbour has it, else `B` if any neighbour has that; decided
/// nodes never change. The tie-break prefers `A`, but *which* faction
/// reaches an undecided node first depends on the activation order — a
/// textbook order-DEPENDENT protocol whose (falsely) declared
/// order-independence the confluence check must refute.
pub struct FirstWins;

impl Protocol for FirstWins {
    type State = FwState;

    fn transition(&self, own: FwState, nbrs: &NeighborView<'_, FwState>, _coin: u32) -> FwState {
        match own {
            FwState::Blank => {
                if nbrs.some(FwState::A) {
                    FwState::A
                } else if nbrs.some(FwState::B) {
                    FwState::B
                } else {
                    FwState::Blank
                }
            }
            decided => decided,
        }
    }
}

/// Canonical initial configuration: node 0 seeds `A`, node 1 seeds `B`,
/// everyone else is undecided.
pub fn first_wins_init(v: NodeId) -> FwState {
    match v {
        0 => FwState::A,
        1 => FwState::B,
        _ => FwState::Blank,
    }
}

/// The (false) contract [`FirstWins`] ships with: it claims
/// order-independence, which fails on the first four-node instance where
/// two undecided nodes sit between the seeds.
pub const FIRST_WINS_CONTRACT: SemanticContract = SemanticContract {
    name: "broken-first-wins",
    order_independent: true,
    semilattice: false,
    scheduling: Scheduling::Any,
    sensitivity: fssga_engine::SensitivityClass::Linear,
    max_nodes: 4,
    config_budget: 10_000,
};

/// States of the [`Overcounter`] toy protocol.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OcState {
    /// Few crowded neighbours seen so far.
    Lo,
    /// Saw at least three `Lo` neighbours at once.
    Hi,
}
impl_state_space!(OcState { Lo, Hi });

/// Queries `μ_Lo >= 3` while leaving `MAX_THRESHOLD` at its default of
/// 2 — the query-bound violation the semantic totality pass must flag
/// (and, equivalently, a transition that is not a function of the
/// declared count classes: multisets with two and three `Lo` neighbours
/// are identical under `min(μ, 2)` yet map to different states).
pub struct Overcounter;

impl Protocol for Overcounter {
    type State = OcState;

    fn transition(&self, own: OcState, nbrs: &NeighborView<'_, OcState>, _coin: u32) -> OcState {
        if own == OcState::Lo && nbrs.at_least(OcState::Lo, 3) {
            OcState::Hi
        } else {
            own
        }
    }
}

/// The contract [`Overcounter`] ships with.
pub const OVERCOUNTER_CONTRACT: SemanticContract = SemanticContract {
    name: "broken-overcounter",
    order_independent: false,
    semilattice: false,
    scheduling: Scheduling::Any,
    sensitivity: fssga_engine::SensitivityClass::Linear,
    max_nodes: 4,
    config_budget: 10_000,
};
