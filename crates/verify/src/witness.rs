//! Replayable counterexamples.
//!
//! Every violation the checker reports carries a [`Witness`]: the graph,
//! the initial configuration, and the exact activation schedule that
//! exhibits the defect. Witness schedules come out of a breadth-first
//! exploration, so they are shortest within the explored space, and the
//! instance family is ordered by size, so the first reported graph is
//! minimal within the family. A witness can be replayed mechanically with
//! [`crate::explore::Explorer::replay`].

use std::fmt;

use fssga_graph::Edge;

/// One step of a replayable schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Asynchronous single activation: node `node` fires with coin `coin`.
    Activate {
        /// The activated node.
        node: u32,
        /// The coin it draws (`0` for deterministic protocols).
        coin: u32,
    },
    /// Synchronous round: every node fires simultaneously, node `v`
    /// drawing `coins[v]`.
    Round {
        /// Per-node coins for the round.
        coins: Vec<u32>,
    },
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Activate { node, coin } => write!(f, "activate({node}, coin {coin})"),
            Step::Round { coins } => {
                write!(f, "round[")?;
                for (i, c) in coins.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A minimized, replayable counterexample.
#[derive(Clone, Debug)]
pub struct Witness {
    /// Family name of the instance graph.
    pub graph_name: String,
    /// Number of nodes.
    pub n: usize,
    /// The instance's edge list.
    pub edges: Vec<Edge>,
    /// Debug-formatted initial state per node.
    pub init: Vec<String>,
    /// The activation schedule from the initial configuration.
    pub schedule: Vec<Step>,
    /// What the schedule exhibits (diverging fixpoints, a cycle, a
    /// panic, ...), in terms a reader can re-check by hand.
    pub outcome: String,
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph {} (n={}; edges", self.graph_name, self.n)?;
        if self.edges.is_empty() {
            write!(f, " none")?;
        }
        for (u, v) in &self.edges {
            write!(f, " {u}-{v}")?;
        }
        writeln!(f, ")")?;
        writeln!(f, "init [{}]", self.init.join(", "))?;
        write!(f, "schedule:")?;
        if self.schedule.is_empty() {
            write!(f, " (empty)")?;
        }
        for (i, s) in self.schedule.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, " {s}")?;
        }
        writeln!(f)?;
        write!(f, "outcome: {}", self.outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witness_display_is_stable() {
        let w = Witness {
            graph_name: "path-3".into(),
            n: 3,
            edges: vec![(0, 1), (1, 2)],
            init: vec!["A".into(), "Blank".into(), "B".into()],
            schedule: vec![
                Step::Activate { node: 1, coin: 0 },
                Step::Round {
                    coins: vec![0, 1, 0],
                },
            ],
            outcome: "example".into(),
        };
        let text = w.to_string();
        assert_eq!(
            text,
            "graph path-3 (n=3; edges 0-1 1-2)\n\
             init [A, Blank, B]\n\
             schedule: activate(1, coin 0), round[0,1,0]\n\
             outcome: example"
        );
    }
}
