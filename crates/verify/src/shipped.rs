//! The verification entry point for the twelve shipped protocols.
//!
//! Each protocol gets a driver that (a) runs the generic
//! [`crate::checker::check_protocol`] pipeline over its contract's
//! instance family, and (b) where the declared sensitivity class is
//! falsifiable (`Zero` / `Constant(k)`), replays an *exhaustive*
//! single-fault sweep on a dedicated instance and certifies the verdict
//! pattern with [`crate::sensitivity::certify`]. Protocols declared
//! `Linear` get [`crate::sensitivity::note_linear`]: no single-fault
//! pattern can refute `|χ| ≤ n`, and the Θ(n) lower-bound evidence lives
//! in the experiment suite.

use fssga_core::diag::Report;
use fssga_engine::faults::FaultKind;
use fssga_engine::{
    sweep_single_faults, AsyncPolicy, Budget, Campaign, Network, Policy, Runner, Sensitive, Verdict,
};
use fssga_graph::rng::Xoshiro256;
use fssga_graph::{exact, generators, DynGraph, Graph, NodeId};
use fssga_protocols::bfs::{Bfs, BfsState};
use fssga_protocols::census::{Census, FmSketch};
use fssga_protocols::contract::SemanticContract;
use fssga_protocols::election::{ElectState, Election};
use fssga_protocols::firing_squad::{FiringSquad, FsspState};
use fssga_protocols::greedy_tourist::{GreedyTourist, TourLabel, TouristBfs};
use fssga_protocols::parity::{KParity, ParityState};
use fssga_protocols::random_walk::{RandomWalk, WalkHarness, WalkState};
use fssga_protocols::shortest_paths::{labels_as_distances, ShortestPaths};
use fssga_protocols::synchronizer::{alpha_network, Alpha, AlphaState};
use fssga_protocols::traversal::{TravState, Traversal};
use fssga_protocols::two_coloring::{self, Color, ColoringOutcome, TwoColoring};
use fssga_protocols::unison::{KUnison, UnisonState};
use fssga_protocols::{bfs, parity, random_walk, shortest_paths, synchronizer, traversal};
use fssga_protocols::{census, election, firing_squad, greedy_tourist, unison};

use crate::checker::check_protocol;
use crate::graphs::{family, paths};
use crate::sensitivity::{certify, exhaustive_kinds, note_linear};

/// How much of the contract-declared exploration space to actually cover.
///
/// The contracts pin the instance family each claim is certified on;
/// this knob lets callers shrink it uniformly — the tier-1 test runs
/// [`VerifyScale::quick`] so `cargo test` stays fast, while the
/// `fssga-lint verify` CI gate runs [`VerifyScale::full`].
pub struct VerifyScale {
    /// Cap on instance size (intersected with each contract's own cap).
    pub max_nodes: usize,
    /// Cap on configurations explored per instance (intersected with each
    /// contract's own budget).
    pub config_budget: usize,
    /// Whether to run the exhaustive single-fault sweeps.
    pub sweeps: bool,
}

impl VerifyScale {
    /// Full contract-declared coverage (the CI lint gate).
    pub fn full() -> Self {
        Self {
            max_nodes: usize::MAX,
            config_budget: usize::MAX,
            sweeps: true,
        }
    }

    /// Reduced coverage for fast test runs: instances up to four nodes,
    /// a few thousand configurations per instance, sweeps included.
    pub fn quick() -> Self {
        Self {
            max_nodes: 4,
            config_budget: 4_000,
            sweeps: true,
        }
    }
}

/// One protocol's verification outcome.
pub struct ProtocolVerification {
    /// The contract name (`"census"`, `"bfs"`, ...).
    pub name: &'static str,
    /// Everything the checks found.
    pub report: Report,
}

fn scaled(c: &SemanticContract, scale: &VerifyScale) -> SemanticContract {
    SemanticContract {
        max_nodes: c.max_nodes.min(scale.max_nodes),
        config_budget: c.config_budget.min(scale.config_budget),
        ..*c
    }
}

/// Verifies all twelve shipped protocols at full contract coverage.
pub fn verify_shipped() -> Vec<ProtocolVerification> {
    verify_shipped_scaled(&VerifyScale::full())
}

/// Verifies all twelve shipped protocols at the given coverage scale, in
/// the contract order of [`fssga_protocols::contract::all`].
pub fn verify_shipped_scaled(scale: &VerifyScale) -> Vec<ProtocolVerification> {
    vec![
        ProtocolVerification {
            name: census::CONTRACT.name,
            report: check_census(scale),
        },
        ProtocolVerification {
            name: shortest_paths::CONTRACT.name,
            report: check_shortest_paths(scale),
        },
        ProtocolVerification {
            name: two_coloring::CONTRACT.name,
            report: check_two_coloring(scale),
        },
        ProtocolVerification {
            name: synchronizer::CONTRACT.name,
            report: check_alpha(scale),
        },
        ProtocolVerification {
            name: bfs::CONTRACT.name,
            report: check_bfs(scale),
        },
        ProtocolVerification {
            name: random_walk::CONTRACT.name,
            report: check_random_walk(scale),
        },
        ProtocolVerification {
            name: traversal::CONTRACT.name,
            report: check_traversal(scale),
        },
        ProtocolVerification {
            name: greedy_tourist::CONTRACT.name,
            report: check_greedy_tourist(scale),
        },
        ProtocolVerification {
            name: election::CONTRACT.name,
            report: check_election(scale),
        },
        ProtocolVerification {
            name: firing_squad::CONTRACT.name,
            report: check_firing_squad(scale),
        },
        ProtocolVerification {
            name: parity::CONTRACT.name,
            report: check_kparity(scale),
        },
        ProtocolVerification {
            name: unison::CONTRACT.name,
            report: check_kunison(scale),
        },
    ]
}

/// Flattens per-protocol results into one report (the lint gate's view).
pub fn combined_report(results: Vec<ProtocolVerification>) -> Report {
    let mut all = Report::new();
    for r in results {
        all.extend(r.report);
    }
    all
}

// --- census ---------------------------------------------------------------

fn check_census(scale: &VerifyScale) -> Report {
    let c = scaled(&census::CONTRACT, scale);
    // A 3-bit sketch keeps the product space small; the initial sketches
    // cover all three bit positions so the union lattice is exercised.
    let mut report = check_protocol(&c, &Census::<3>, &family(c.max_nodes), |_, v| {
        FmSketch::<3>(1u16 << (v % 3))
    });
    if scale.sweeps {
        sweep_census(&c, &mut report);
    }
    report
}

fn sweep_census(c: &SemanticContract, report: &mut Report) {
    // cycle(5) stays connected under any single node kill or edge cut, so
    // every surviving bit keeps diffusing: no probe may be harmful.
    let g = generators::cycle(5);
    let mut rng = Xoshiro256::seed_from_u64(601);
    let sketches: Vec<FmSketch<8>> = (0..g.n())
        .map(|_| FmSketch::random_init(&mut rng))
        .collect();
    let campaign = Campaign::new(
        &g,
        || Census::<8>,
        |v| sketches[v as usize],
        |net: &Network<Census<8>>| net.graph().is_alive(0).then(|| net.state(0).0),
        |g: &Graph| {
            let d = DynGraph::from_graph(g);
            d.component_of(0)
                .into_iter()
                .fold(0u16, |acc, v| acc | sketches[v as usize].0)
        },
    )
    .horizon(25);
    let kinds = exhaustive_kinds(&g);
    let sweep = sweep_single_faults(&kinds, &[0, 1, 2, 4, 7], |schedule| {
        campaign.run_with_schedule(schedule).verdict
    });
    certify(c, "cycle-5", g.n(), &sweep, |_| Vec::new(), report);
}

// --- shortest paths -------------------------------------------------------

fn check_shortest_paths(scale: &VerifyScale) -> Report {
    let c = scaled(&shortest_paths::CONTRACT, scale);
    let mut report = check_protocol(&c, &ShortestPaths::<6>, &family(c.max_nodes), |_, v| {
        ShortestPaths::<6>::init(v == 0)
    });
    if scale.sweeps {
        sweep_shortest_paths(&c, &mut report);
    }
    report
}

fn sweep_shortest_paths(c: &SemanticContract, report: &mut Report) {
    let g = generators::cycle(5);
    let campaign = Campaign::new(
        &g,
        || ShortestPaths::<32>,
        |v| ShortestPaths::<32>::init(v == 0),
        |net: &Network<ShortestPaths<32>>| {
            net.graph().is_alive(0).then(|| {
                let dist = labels_as_distances(net.states());
                net.graph()
                    .alive_nodes()
                    .map(|v| (v, dist[v as usize]))
                    .collect::<Vec<_>>()
            })
        },
        |g: &Graph| {
            // Dead nodes appear as isolated slots in snapshots; on a cycle
            // degree > 0 is exactly "alive".
            let dist = exact::bfs_distances(g, &[0]);
            g.nodes()
                .filter(|&v| g.degree(v) > 0)
                .map(|v| (v, dist[v as usize]))
                .collect::<Vec<_>>()
        },
    )
    .horizon(30);
    let kinds = exhaustive_kinds(&g);
    let sweep = sweep_single_faults(&kinds, &[0, 2, 5], |schedule| {
        campaign.run_with_schedule(schedule).verdict
    });
    certify(c, "cycle-5", g.n(), &sweep, |_| Vec::new(), report);
}

// --- two-coloring ---------------------------------------------------------

fn check_two_coloring(scale: &VerifyScale) -> Report {
    let c = scaled(&two_coloring::CONTRACT, scale);
    let mut report = check_protocol(&c, &TwoColoring, &family(c.max_nodes), |_, v| {
        TwoColoring::init(v == 0)
    });
    if scale.sweeps {
        // One bipartite and one odd instance, both 2-connected.
        sweep_two_coloring(&c, "cycle-4", generators::cycle(4), &mut report);
        sweep_two_coloring(&c, "cycle-5", generators::cycle(5), &mut report);
    }
    report
}

/// The predicted outcome of a converged run on `g`, restricted to the
/// seed's component: proper iff that component is bipartite.
fn coloring_reference(g: &Graph) -> ColoringOutcome {
    let dist = exact::bfs_distances(g, &[0]);
    let odd_edge = g.edges().any(|(u, v)| {
        let (du, dv) = (dist[u as usize], dist[v as usize]);
        du != exact::UNREACHABLE && dv != exact::UNREACHABLE && (du + dv) % 2 == 0
    });
    if odd_edge {
        ColoringOutcome::OddCycleDetected
    } else {
        ColoringOutcome::ProperColoring
    }
}

fn sweep_two_coloring(c: &SemanticContract, instance: &str, g: Graph, report: &mut Report) {
    let campaign = Campaign::new(
        &g,
        || TwoColoring,
        |v| TwoColoring::init(v == 0),
        |net: &Network<TwoColoring>| {
            net.graph().is_alive(0).then(|| {
                let comp = net.graph().component_of(0);
                let states: Vec<Color> = comp.iter().map(|&v| net.state(v)).collect();
                two_coloring::outcome(&states)
            })
        },
        coloring_reference,
    )
    .horizon(30);
    let kinds = exhaustive_kinds(&g);
    let sweep = sweep_single_faults(&kinds, &[0, 2, 6], |schedule| {
        campaign.run_with_schedule(schedule).verdict
    });
    certify(c, instance, g.n(), &sweep, |_| Vec::new(), report);
}

// --- α synchronizer -------------------------------------------------------

fn check_alpha(scale: &VerifyScale) -> Report {
    let c = scaled(&synchronizer::CONTRACT, scale);
    let mut report = check_protocol(&c, &Alpha(TwoColoring), &family(c.max_nodes), |_, v| {
        AlphaState::init(TwoColoring::init(v == 0))
    });
    if scale.sweeps {
        sweep_alpha(&c, &mut report);
    }
    report
}

fn sweep_alpha(c: &SemanticContract, report: &mut Report) {
    // The α synchronizer holds no global structure: after any lone fault
    // every surviving clock must keep ticking. "Harmful" here means some
    // alive, non-isolated node makes no clock progress over ten sweeps.
    let n = 6usize;
    let g = generators::cycle(n);
    let kinds = exhaustive_kinds(&g);
    let sweep = sweep_single_faults(&kinds, &[0, 4], |schedule| {
        let ev = schedule[0];
        let mut net = alpha_network(&g, TwoColoring, |v| TwoColoring::init(v == 0));
        let mut rng = Xoshiro256::seed_from_u64(604);
        Runner::new(&mut net)
            .policy(Policy::Async(AsyncPolicy::RoundRobin))
            .budget(Budget::Steps(ev.time as usize * n))
            .rng(&mut rng)
            .run();
        match ev.kind {
            FaultKind::Edge(u, v) => {
                net.remove_edge(u, v);
            }
            FaultKind::Node(v) => {
                net.remove_node(v);
            }
            FaultKind::AddNode(_) | FaultKind::AddEdge(_, _) => {
                unreachable!("exhaustive_kinds generates removals only")
            }
        }
        let alive: Vec<NodeId> = net.graph().alive_nodes().collect();
        let mut progressed = vec![false; n];
        for _ in 0..10 {
            let before: Vec<u8> = (0..n as NodeId).map(|v| net.state(v).clock).collect();
            Runner::new(&mut net)
                .policy(Policy::Async(AsyncPolicy::RoundRobin))
                .budget(Budget::Steps(alive.len()))
                .rng(&mut rng)
                .run();
            for &v in &alive {
                if net.state(v).clock != before[v as usize] {
                    progressed[v as usize] = true;
                }
            }
        }
        let stuck = alive
            .iter()
            .any(|&v| net.graph().degree(v) > 0 && !progressed[v as usize]);
        if stuck {
            Verdict::Incorrect
        } else {
            Verdict::ReasonablyCorrect
        }
    });
    certify(c, "cycle-6", n, &sweep, |_| Vec::new(), report);
}

// --- BFS (Algorithm 4.1) --------------------------------------------------

fn check_bfs(scale: &VerifyScale) -> Report {
    let c = scaled(&bfs::CONTRACT, scale);
    let mut report = check_protocol(&c, &Bfs, &family(c.max_nodes), |g, v| {
        BfsState::init(v == 0, v == g.n() as NodeId - 1)
    });
    note_linear(&c, &mut report);
    report
}

// --- random walk (Algorithm 4.2) ------------------------------------------

fn check_random_walk(scale: &VerifyScale) -> Report {
    let c = scaled(&random_walk::CONTRACT, scale);
    let mut report = check_protocol(&c, &RandomWalk, &family(c.max_nodes), |_, v| {
        if v == 0 {
            WalkState::Flip
        } else {
            WalkState::Blank
        }
    });
    if scale.sweeps {
        sweep_random_walk(&c, &mut report);
    }
    report
}

fn sweep_random_walk(c: &SemanticContract, report: &mut Report) {
    // Faults land between moves, when the configuration is clean (one
    // Flip walker, everyone else Blank), so `time` counts completed
    // moves. cycle(4) minus any node or edge is a path: the walk can
    // always continue unless the walker itself dies.
    let g = generators::cycle(4);
    let seed = 606u64;
    let kinds = exhaustive_kinds(&g);
    let sweep = sweep_single_faults(&kinds, &[0, 2, 5], |schedule| {
        let ev = schedule[0];
        let mut h = WalkHarness::new(&g, 0);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let _ = h.run(ev.time as usize, 100_000, &mut rng);
        match ev.kind {
            FaultKind::Edge(u, v) => {
                h.network_mut().remove_edge(u, v);
            }
            FaultKind::Node(v) => {
                h.network_mut().remove_node(v);
            }
            FaultKind::AddNode(_) | FaultKind::AddEdge(_, _) => {
                unreachable!("exhaustive_kinds generates removals only")
            }
        }
        let alive_walkers = {
            let net = h.network_mut();
            (0..net.n() as NodeId)
                .filter(|&v| net.graph().is_alive(v) && net.state(v).is_walker())
                .count()
        };
        if alive_walkers != 1 {
            return Verdict::Incorrect;
        }
        let run = h.run(2, 50_000, &mut rng);
        if run.rounds_per_move.len() == 2 {
            Verdict::ReasonablyCorrect
        } else {
            Verdict::Incorrect
        }
    });
    let critical_at = |t: u64| {
        let mut h = WalkHarness::new(&g, 0);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let _ = h.run(t as usize, 100_000, &mut rng);
        h.critical_set()
    };
    certify(c, "cycle-4", g.n(), &sweep, critical_at, report);
}

// --- Milgram traversal (Algorithm 4.3) ------------------------------------

fn check_traversal(scale: &VerifyScale) -> Report {
    let c = scaled(&traversal::CONTRACT, scale);
    let mut report = check_protocol(&c, &Traversal, &family(c.max_nodes), |_, v| {
        TravState::init(v == 0)
    });
    note_linear(&c, &mut report);
    report
}

// --- greedy tourist -------------------------------------------------------

fn check_greedy_tourist(scale: &VerifyScale) -> Report {
    let c = scaled(&greedy_tourist::CONTRACT, scale);
    // One visited node among unvisited targets: the BFS-labelling phase
    // the harness runs each epoch.
    let mut report = check_protocol(&c, &TouristBfs, &family(c.max_nodes), |_, v| {
        if v == 0 {
            TourLabel::Star
        } else {
            TourLabel::Target
        }
    });
    if scale.sweeps {
        sweep_greedy_tourist(&c, &mut report);
    }
    report
}

/// Replays the fault-free tourist prefix to round budget `t` and returns
/// its declared critical set there (the agent's position).
fn tourist_critical_at(g: &Graph, t: u64) -> Vec<NodeId> {
    let mut tour = GreedyTourist::new(g, 0);
    let mut rng = Xoshiro256::seed_from_u64(605);
    let _ = tour.run(t, &mut rng);
    tour.critical_set()
}

fn sweep_greedy_tourist(c: &SemanticContract, report: &mut Report) {
    // 2-connected: killing any single non-agent node leaves the rest
    // connected, so the tour must still finish; only the agent's own node
    // is load-bearing.
    let mut grng = Xoshiro256::seed_from_u64(77);
    let g = generators::cycle_with_chords(8, 2, &mut grng);
    let kinds = exhaustive_kinds(&g);
    let sweep = sweep_single_faults(&kinds, &[0, 5, 12], |schedule| {
        let ev = schedule[0];
        let mut tour = GreedyTourist::new(&g, 0);
        let mut rng = Xoshiro256::seed_from_u64(605);
        let _ = tour.run(ev.time, &mut rng);
        match ev.kind {
            FaultKind::Edge(u, v) => {
                tour.network_mut().remove_edge(u, v);
            }
            FaultKind::Node(v) => {
                tour.network_mut().remove_node(v);
            }
            FaultKind::AddNode(_) | FaultKind::AddEdge(_, _) => {
                unreachable!("exhaustive_kinds generates removals only")
            }
        }
        let _ = tour.run(200_000, &mut rng);
        let unvisited_alive = tour
            .network()
            .graph()
            .alive_nodes()
            .any(|v| !tour.visited()[v as usize]);
        if unvisited_alive {
            Verdict::Incorrect
        } else {
            Verdict::ReasonablyCorrect
        }
    });
    certify(
        c,
        "cycle-with-chords-8",
        g.n(),
        &sweep,
        |t| tourist_critical_at(&g, t),
        report,
    );
}

// --- leader election (Algorithm 4.4) ---------------------------------------

fn check_election(scale: &VerifyScale) -> Report {
    let c = scaled(&election::CONTRACT, scale);
    let mut report = check_protocol(&c, &Election, &family(c.max_nodes), |_, _| {
        ElectState::init()
    });
    note_linear(&c, &mut report);
    report
}

// --- firing squad ----------------------------------------------------------

fn check_firing_squad(scale: &VerifyScale) -> Report {
    let c = scaled(&firing_squad::CONTRACT, scale);
    // Path graphs only: the protocol is specified for oriented paths with
    // the general at an endpoint.
    let mut report = check_protocol(&c, &FiringSquad, &paths(c.max_nodes), |_, v| {
        FsspState::init(v == 0)
    });
    note_linear(&c, &mut report);
    report
}

// --- k-parity ---------------------------------------------------------------

fn check_kparity(scale: &VerifyScale) -> Report {
    let c = scaled(&parity::CONTRACT, scale);
    let mut report = check_protocol(&c, &KParity::<4>, &family(c.max_nodes), |_, v| {
        ParityState::init(v == 0)
    });
    note_linear(&c, &mut report);
    report
}

// --- k-unison ---------------------------------------------------------------

fn check_kunison(scale: &VerifyScale) -> Report {
    let c = scaled(&unison::CONTRACT, scale);
    // Mixed start: one joining node among clocked ones, exercising the
    // adoption rule alongside the tick guard. Unison never stabilizes —
    // the explorer tolerates its limit cycles.
    let mut report = check_protocol(&c, &KUnison::<4>, &family(c.max_nodes), |_, v| {
        if v == 0 {
            UnisonState::joining()
        } else {
            UnisonState::at(0)
        }
    });
    if scale.sweeps {
        sweep_kunison(&c, &mut report);
    }
    report
}

fn sweep_kunison(c: &SemanticContract, report: &mut Report) {
    // cycle(5) stays connected under any single node kill or edge cut, and
    // survivors start in unison, so after a recovery window they must be
    // back in unison and still advancing: no probe may be harmful.
    let g = generators::cycle(5);
    let kinds = exhaustive_kinds(&g);
    let sweep = sweep_single_faults(&kinds, &[0, 3, 7], |schedule| {
        let ev = schedule[0];
        let mut net = Network::new_compiled(&g, KUnison::<4>, |_| UnisonState::at(0));
        for _ in 0..ev.time {
            net.sync_step_kernel_seeded(0);
        }
        match ev.kind {
            FaultKind::Edge(u, v) => {
                net.remove_edge(u, v);
            }
            FaultKind::Node(v) => {
                net.remove_node(v);
            }
            FaultKind::AddNode(_) | FaultKind::AddEdge(_, _) => {
                unreachable!("exhaustive_kinds generates removals only")
            }
        }
        let clocks = |net: &Network<KUnison<4>>| -> Vec<Option<u8>> {
            net.graph()
                .alive_nodes()
                .map(|v| net.state(v).clock)
                .collect()
        };
        let in_unison = |cs: &[Option<u8>]| cs.iter().all(|x| x.is_some() && *x == cs[0]);
        for _ in 0..3 * g.n() {
            net.sync_step_kernel_seeded(0);
        }
        let settled = clocks(&net);
        if settled.is_empty() || !in_unison(&settled) {
            return Verdict::Incorrect;
        }
        let next = settled[0].map(|x| (x + 1) % 4);
        net.sync_step_kernel_seeded(0);
        let after = clocks(&net);
        if in_unison(&after) && after[0] == next {
            Verdict::ReasonablyCorrect
        } else {
            Verdict::Incorrect
        }
    });
    certify(c, "cycle-5", g.n(), &sweep, |_| Vec::new(), report);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_shrinks_contracts() {
        let scale = VerifyScale::quick();
        let c = scaled(&election::CONTRACT, &scale);
        assert_eq!(c.max_nodes, 3);
        assert_eq!(c.config_budget, 4_000);
        assert_eq!(c.name, "leader-election");
    }

    #[test]
    fn combined_report_flattens() {
        let mut a = Report::new();
        a.push(fssga_core::diag::Diagnostic::note("x", "a", "m"));
        let mut b = Report::new();
        b.push(fssga_core::diag::Diagnostic::note("x", "b", "m"));
        let all = combined_report(vec![
            ProtocolVerification {
                name: "a",
                report: a,
            },
            ProtocolVerification {
                name: "b",
                report: b,
            },
        ]);
        assert_eq!(all.diagnostics.len(), 2);
    }
}
